/**
 * @file
 * Bringing your own application to the library: implement the
 * Workload interface for a custom kernel (here, a Jacobi stencil
 * relaxation — physics-style iterative smoothing that tolerates
 * noise), annotate its hot loads, and measure LVA on it with the same
 * machinery the paper benchmarks use.
 *
 * Build & run:  ./build/examples/custom_workload
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/approx_memory.hh"
#include "eval/evaluator.hh"
#include "workloads/region.hh"
#include "workloads/workload.hh"

using namespace lva;

namespace {

/**
 * A 2D Jacobi relaxation: each sweep replaces every interior cell by
 * the mean of its four neighbours. The neighbour loads are annotated
 * approximable — a wrong-by-a-few-percent neighbour nudges
 * convergence, it does not break it.
 */
class JacobiWorkload : public Workload
{
  public:
    explicit JacobiWorkload(const WorkloadParams &params)
        : Workload(params)
    {
        siteNbr_ = declareSite("stencil_neighbor", true);
        siteStore_ = declareSite("cell_store", false);
    }

    const char *name() const override { return "jacobi"; }
    ValueKind approxKind() const override
    {
        return ValueKind::Float32;
    }

    void
    generate() override
    {
        dim_ = static_cast<u32>(params_.scaled(512, 32));
        grid_.init(arena_, static_cast<u64>(dim_) * dim_, true);
        next_.init(arena_, static_cast<u64>(dim_) * dim_, false);
        Rng rng(mix64(params_.seed) ^ 0x7aceb1UL);
        for (u64 i = 0; i < grid_.size(); ++i)
            grid_.raw(i) = static_cast<float>(rng.uniform(0.0, 100.0));
    }

    void
    run(MemoryBackend &mem) override
    {
        const u32 sweeps = 6;
        for (u32 s = 0; s < sweeps; ++s) {
            for (u32 y = 1; y + 1 < dim_; ++y) {
                const ThreadId tid = threadOf(y);
                for (u32 x = 1; x + 1 < dim_; ++x) {
                    const u64 i = static_cast<u64>(y) * dim_ + x;
                    const float up =
                        grid_.load(mem, tid, siteNbr_, i - dim_);
                    const float down =
                        grid_.load(mem, tid, siteNbr_, i + dim_);
                    const float left =
                        grid_.load(mem, tid, siteNbr_, i - 1);
                    const float right =
                        grid_.load(mem, tid, siteNbr_, i + 1);
                    next_.store(mem, tid, siteStore_, i,
                                0.25f * (up + down + left + right));
                    mem.tickInstructions(tid, 12);
                }
            }
            for (u64 i = 0; i < grid_.size(); ++i)
                grid_.raw(i) = next_.raw(i);
        }
        mem.finish();
    }

    double
    outputErrorVs(const Workload &golden) const override
    {
        const auto &ref = dynamic_cast<const JacobiWorkload &>(golden);
        double err = 0.0;
        double norm = 0.0;
        for (u64 i = 0; i < grid_.size(); ++i) {
            err += std::fabs(grid_.raw(i) - ref.grid_.raw(i));
            norm += std::fabs(ref.grid_.raw(i));
        }
        return norm > 0.0 ? err / norm : 0.0;
    }

  private:
    u32 dim_ = 0;
    Region<float> grid_;
    Region<float> next_;
    LoadSiteId siteNbr_, siteStore_;
};

} // namespace

int
main()
{
    WorkloadParams params;
    params.seed = 5;

    JacobiWorkload golden(params);
    golden.generate();
    ApproxMemory golden_mem(Evaluator::preciseConfig());
    golden.run(golden_mem);

    JacobiWorkload approx(params);
    approx.generate();
    ApproxMemory::Config cfg = Evaluator::baselineLva();
    cfg.approx.approxDegree = 8;
    ApproxMemory approx_mem(cfg);
    approx.run(approx_mem);

    const MemMetrics pm = golden_mem.metrics();
    const MemMetrics am = approx_mem.metrics();

    std::printf("custom_workload: Jacobi stencil, annotated neighbor "
                "loads, degree 8\n\n");
    std::printf("effective MPKI:   %.3f -> %.3f (-%.1f%%)\n",
                pm.mpki(), am.mpki(),
                (1.0 - am.mpki() / pm.mpki()) * 100.0);
    std::printf("blocks fetched:   %llu -> %llu (-%.1f%%)\n",
                static_cast<unsigned long long>(pm.fetches),
                static_cast<unsigned long long>(am.fetches),
                (1.0 - static_cast<double>(am.fetches) /
                           static_cast<double>(pm.fetches)) * 100.0);
    std::printf("relative L1 error of final field: %.3f%%\n",
                approx.outputErrorVs(golden) * 100.0);
    std::printf("\nImplementing Workload gets you the whole harness: "
                "Evaluator sweeps,\ntrace capture and the full-system "
                "timing model all work unchanged.\n");
    return 0;
}
