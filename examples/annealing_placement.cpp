/**
 * @file
 * Simulated-annealing chip placement under LVA — the canneal scenario:
 * the highest-MPKI workload in the paper, where approximating the
 * <x, y> coordinate loads in the routing-cost function removes most
 * misses from the critical path, and the approximation degree trades
 * fetch energy against placement quality.
 *
 * Build & run:  ./build/examples/annealing_placement
 */

#include <cstdio>

#include "core/approx_memory.hh"
#include "eval/evaluator.hh"
#include "util/table.hh"
#include "workloads/canneal.hh"

using namespace lva;

int
main()
{
    WorkloadParams params;
    params.seed = 3;
    params.scale = 1.0;

    // Golden: precise annealing.
    CannealWorkload golden(params);
    golden.generate();
    ApproxMemory golden_mem(Evaluator::preciseConfig());
    golden.run(golden_mem);
    const MemMetrics pm = golden_mem.metrics();

    std::printf("annealing_placement: precise routing cost %.0f "
                "(MPKI %.2f)\n\n",
                golden.finalCost(), pm.mpki());

    Table table({"approx degree", "routing cost", "cost error",
                 "eff. MPKI", "fetches vs precise"});

    for (u32 degree : {0u, 4u, 16u}) {
        CannealWorkload w(params);
        w.generate();
        ApproxMemory::Config cfg = Evaluator::baselineLva();
        cfg.approx.approxDegree = degree;
        ApproxMemory mem(cfg);
        w.run(mem);
        const MemMetrics m = mem.metrics();

        table.addRow({std::to_string(degree),
                      fmtDouble(w.finalCost(), 0),
                      fmtPercent(w.outputErrorVs(golden), 2),
                      fmtDouble(m.mpki(), 2),
                      fmtPercent(static_cast<double>(m.fetches) /
                                     static_cast<double>(pm.fetches),
                                 1)});
    }

    table.print("placement quality vs memory savings");
    std::printf("\nHigher degrees fetch less (energy) at slightly "
                "worse placements -- the paper's energy-error "
                "trade-off.\n");
    return 0;
}
