/**
 * @file
 * Image-similarity search under load value approximation — the
 * ferret-style scenario from the paper's introduction, using the
 * library's public workload API.
 *
 * We run the content-based search precisely and with LVA, then show
 * that the returned result sets overlap almost entirely while a large
 * fraction of database misses never waited on memory.
 *
 * Build & run:  ./build/examples/image_search
 */

#include <cstdio>

#include "core/approx_memory.hh"
#include "eval/evaluator.hh"
#include "workloads/ferret.hh"

using namespace lva;

int
main()
{
    WorkloadParams params;
    params.seed = 7;
    params.scale = 0.5;

    // Golden run: exact nearest-neighbour search.
    FerretWorkload golden(params);
    golden.generate();
    ApproxMemory golden_mem(Evaluator::preciseConfig());
    golden.run(golden_mem);

    // Approximate run: the paper's baseline LVA beside each L1.
    FerretWorkload approx(params);
    approx.generate();
    ApproxMemory approx_mem(Evaluator::baselineLva());
    approx.run(approx_mem);

    const MemMetrics pm = golden_mem.metrics();
    const MemMetrics am = approx_mem.metrics();

    std::printf("image_search: %zu queries over the feature "
                "database\n\n",
                golden.results().size());

    for (std::size_t q = 0; q < golden.results().size(); ++q) {
        u32 overlap = 0;
        for (u32 id : approx.results()[q])
            for (u32 ref : golden.results()[q])
                if (id == ref) {
                    ++overlap;
                    break;
                }
        std::printf("  query %zu: %u of %u precise results retained\n",
                    q, overlap, FerretWorkload::topK);
    }

    std::printf("\nsearch quality error (1 - overlap): %.1f%%\n",
                approx.outputErrorVs(golden) * 100.0);
    std::printf("effective MPKI:  precise %.3f -> LVA %.3f "
                "(%.1f%% reduction)\n",
                pm.mpki(), am.mpki(),
                (1.0 - am.mpki() / pm.mpki()) * 100.0);
    std::printf("approximable-load coverage: %.1f%%\n",
                am.coverage() * 100.0);
    return 0;
}
