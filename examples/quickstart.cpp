/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * We run a noise-tolerant streaming computation (a moving average over
 * a sensor trace) twice — once precisely and once with a load value
 * approximator beside a 64 KB L1 — and report what LVA bought us:
 * effective-MPKI reduction, coverage, fetch savings, and what it cost:
 * application output error.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/approx_memory.hh"
#include "util/arena.hh"
#include "util/random.hh"
#include "workloads/region.hh"

using namespace lva;

namespace {

/** A noisy but smooth "sensor" trace: ideal approximate value
 *  locality (consecutive values within a few percent). */
std::vector<float>
makeSensorTrace(std::size_t n)
{
    Rng rng(1234);
    std::vector<float> out(n);
    double level = 20.0;
    for (std::size_t i = 0; i < n; ++i) {
        level += rng.gaussian() * 0.05;
        out[i] = static_cast<float>(level);
    }
    return out;
}

/** The kernel: windowed moving average over the samples, reading the
 *  sensor data through the (possibly approximating) memory system. */
double
movingAverage(MemoryBackend &mem, Region<float> &samples,
              LoadSiteId site)
{
    double checksum = 0.0;
    constexpr std::size_t window = 8;
    for (std::size_t i = 0; i + window < samples.size(); ++i) {
        float sum = 0.0f;
        for (std::size_t k = 0; k < window; ++k)
            sum += samples.load(mem, /*tid=*/0, site, i + k);
        checksum += sum / window;
        mem.tickInstructions(0, 24);
    }
    return checksum;
}

} // namespace

int
main()
{
    const std::size_t n = 1 << 18; // 1 MB of floats: misses guaranteed
    const std::vector<float> trace = makeSensorTrace(n);

    // Declare the sensor array as approximable (the EnerJ-style
    // annotation) and place it in simulated memory.
    VirtualArena arena;
    Region<float> samples;
    samples.init(arena, n, /*approximable=*/true);
    for (std::size_t i = 0; i < n; ++i)
        samples.raw(i) = trace[i];
    const LoadSiteId site = 0x400; // this load's static PC

    // --- Precise run. ---
    ApproxMemory::Config precise_cfg;
    precise_cfg.threads = 1;
    precise_cfg.mode = MemMode::Precise;
    ApproxMemory precise_mem(precise_cfg);
    const double golden = movingAverage(precise_mem, samples, site);

    // --- LVA run: paper-baseline approximator, degree 4. ---
    ApproxMemory::Config lva_cfg;
    lva_cfg.threads = 1;
    lva_cfg.mode = MemMode::Lva;
    lva_cfg.approx = ApproximatorConfig::baseline();
    lva_cfg.approx.approxDegree = 16; // skip 16 of every 17 fetches
    ApproxMemory lva_mem(lva_cfg);
    const double approx = movingAverage(lva_mem, samples, site);

    const MemMetrics p = precise_mem.metrics();
    const MemMetrics a = lva_mem.metrics();

    std::printf("quickstart: moving average over %zu samples\n\n", n);
    std::printf("%-28s %12s %12s\n", "", "precise", "LVA(deg 16)");
    std::printf("%-28s %12.3f %12.3f\n", "effective MPKI", p.mpki(),
                a.mpki());
    std::printf("%-28s %12llu %12llu\n", "L1 blocks fetched",
                static_cast<unsigned long long>(p.fetches),
                static_cast<unsigned long long>(a.fetches));
    std::printf("%-28s %12s %11.1f%%\n", "coverage", "-",
                a.coverage() * 100.0);
    std::printf("\noutput checksum: precise=%.2f approx=%.2f "
                "(error %.4f%%)\n",
                golden, approx,
                relativeError(approx, golden) * 100.0);
    std::printf("MPKI reduced %.1f%%, fetches reduced %.1f%%\n",
                (1.0 - a.mpki() / p.mpki()) * 100.0,
                (1.0 - static_cast<double>(a.fetches) /
                           static_cast<double>(p.fetches)) * 100.0);
    return 0;
}
