/**
 * @file
 * lva_trace — record, inspect and replay full-system traces.
 *
 *   lva_trace record <workload> <file> [--seed N] [--scale F]
 *       [--machine FILE]
 *   lva_trace info <file>
 *   lva_trace replay <file> [--degree N] [--precise] [--hetero]
 *       [--machine FILE]
 *
 * Recording runs the workload's precise execution once and saves the
 * per-thread access stream (one thread per core of the machine, the
 * Table II 4-core CMP by default); replay drives the full-system
 * timing model without re-executing the workload. --machine swaps in
 * an lva-machine-v1 topology file (docs/topology.md) on either side;
 * a replayed trace must carry exactly one thread per replay core.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "cpu/trace.hh"
#include "cpu/trace_io.hh"
#include "sim/full_system.hh"
#include "sim/machine_config.hh"
#include "workloads/workload.hh"

using namespace lva;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  lva_trace record <workload> <file> [--seed N] [--scale F]\n"
        "      [--machine FILE]\n"
        "  lva_trace info <file>\n"
        "  lva_trace replay <file> [--degree N] [--precise] "
        "[--hetero]\n"
        "      [--machine FILE]\n");
    std::exit(2);
}

/** Load an lva-machine-v1 file or exit with its parse diagnostic. */
MachineConfig
loadMachineOrDie(const char *path)
{
    try {
        return machineFromFile(path);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lva_trace: %s\n", e.what());
        std::exit(2);
    }
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4)
        usage();
    WorkloadParams params;
    for (int i = 4; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            params.seed = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            params.scale = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--machine") && i + 1 < argc)
            params.threads = loadMachineOrDie(argv[++i]).cores;
        else
            usage();
    }
    auto w = makeWorkload(argv[2], params);
    w->generate();
    TraceRecorder rec(params.threads);
    w->run(rec);
    writeTraces(rec.traces(), argv[3]);
    std::printf("recorded %llu events (%llu instructions) from %s "
                "into %s\n",
                static_cast<unsigned long long>(rec.totalEvents()),
                static_cast<unsigned long long>(
                    rec.totalInstructions()),
                argv[2], argv[3]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const auto traces = readTraces(argv[2]);
    std::printf("%s: %zu threads\n", argv[2], traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
        u64 loads = 0;
        u64 stores = 0;
        u64 approx = 0;
        u64 dependent = 0;
        u64 instr = 0;
        for (const auto &ev : traces[t]) {
            (ev.isLoad ? loads : stores) += 1;
            approx += ev.approximable;
            dependent += ev.dependsOnPrev;
            instr += ev.instrBefore + 1;
        }
        std::printf("  thread %zu: %llu loads (%llu approximable, "
                    "%llu dependent), %llu stores, %llu instructions\n",
                    t, static_cast<unsigned long long>(loads),
                    static_cast<unsigned long long>(approx),
                    static_cast<unsigned long long>(dependent),
                    static_cast<unsigned long long>(stores),
                    static_cast<unsigned long long>(instr));
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        usage();
    bool precise = false;
    bool hetero = false;
    u32 degree = 0;
    const char *machineFile = nullptr;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--degree") && i + 1 < argc)
            degree = static_cast<u32>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--precise"))
            precise = true;
        else if (!std::strcmp(argv[i], "--hetero"))
            hetero = true;
        else if (!std::strcmp(argv[i], "--machine") && i + 1 < argc)
            machineFile = argv[++i];
        else
            usage();
    }

    const auto traces = readTraces(argv[2]);
    FullSystemConfig cfg;
    if (machineFile != nullptr)
        cfg = loadMachineOrDie(machineFile)
                  .fullSystem(/*lvaEnabled=*/!precise, degree);
    else
        cfg = precise ? FullSystemConfig::baseline()
                      : FullSystemConfig::lva(degree);
    if (hetero) // the flag forces it on top of the machine file
        cfg.heteroNoc = true;
    if (traces.size() != cfg.cores) {
        std::fprintf(stderr,
                     "lva_trace: trace has %zu threads but the replay "
                     "machine has %u cores\n",
                     traces.size(), cfg.cores);
        return 2;
    }
    FullSystemSim sim(cfg);
    const FullSystemResult r = sim.run(traces);

    std::printf("replayed %s (%s%s)\n", argv[2],
                precise ? "precise"
                        : ("LVA degree " + std::to_string(degree))
                              .c_str(),
                hetero ? ", hetero NoC" : "");
    std::printf("  cycles            %.0f (IPC %.2f)\n", r.cycles,
                r.ipc);
    std::printf("  L1 misses         %llu (demand %llu, approx %llu, "
                "fetches skipped %llu)\n",
                static_cast<unsigned long long>(r.l1Misses),
                static_cast<unsigned long long>(r.demandMisses),
                static_cast<unsigned long long>(r.approxMisses),
                static_cast<unsigned long long>(r.fetchesSkipped));
    std::printf("  avg miss latency  %.1f cycles\n",
                r.avgL1MissLatency);
    std::printf("  DRAM accesses     %llu\n",
                static_cast<unsigned long long>(r.dramAccesses));
    std::printf("  NoC flit-hops     %llu\n",
                static_cast<unsigned long long>(r.flitHops));
    std::printf("  dyn. energy       %.1f uJ (L1 %.1f, L2 %.1f, DRAM "
                "%.1f, NoC %.1f, approximator %.1f nJ)\n",
                r.energy.total() / 1e3, r.energy.l1, r.energy.l2,
                r.energy.dram, r.energy.noc, r.energy.approximator);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    usage();
}
