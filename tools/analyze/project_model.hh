/**
 * @file
 * lva_audit project model: one parsed view of the whole repository.
 *
 * lva_lint (tools/lint) judges files one at a time; every hazard it
 * hunts is visible inside a single translation unit.  The properties
 * that actually rot in this repo are *cross-file*: an eval header
 * leaking into src/mem, a stat path registered in C++ but missing
 * from docs/metrics.md, a fault site named in a CI script that no
 * faultPoint() call defines anymore, a getenv("LVA_*") knob that
 * bypasses util/env_knob.hh validation, or two mutexes acquired in
 * opposite orders by two different TUs.  Catching those needs one
 * model of the whole project, not a per-file scan.
 *
 * This header defines that model.  parseSource() lexes one file with
 * the same comment/string-stripping machinery lva_lint uses
 * (lint::stripComments) and extracts the five registries the audit
 * rules consume:
 *
 *   - quoted #include directives (resolved to repo-relative paths by
 *     buildModel, which also assigns layer numbers),
 *   - StatRegistry path literals (counter/gauge/histogram first
 *     arguments, joinPath leaves, `prefix + ".leaf"` concatenations,
 *     and EvalMetricDef initializer tables),
 *   - LVA_* knob literals plus whether each read flows through the
 *     validated env_knob.hh parsers,
 *   - fault-injection sites: faultPoint() definitions (exact or
 *     prefix) and `site=kind` spec references in any text,
 *   - mutex acquisition order: which locks are taken while which
 *     other locks are held, per function, with owner-qualified mutex
 *     identities so ServeStats::mutex_ and ServeLoop::mutex_ stay
 *     distinct.
 *
 * Suppressions use the lva_lint grammar under the "lva-audit" tag:
 * `// lva-audit: allow(<rule>)` on or above the line, or
 * begin-allow/end-allow fences.  The analyses themselves live in
 * audit.hh.
 */

#ifndef LVA_TOOLS_ANALYZE_PROJECT_MODEL_HH
#define LVA_TOOLS_ANALYZE_PROJECT_MODEL_HH

#include <string>
#include <vector>

#include "lint/lint_core.hh"

namespace lva::audit {

/** One quoted #include directive. */
struct Include
{
    std::string target;   ///< raw include text, e.g. "util/logging.hh"
    std::string resolved; ///< repo-relative path, empty if unresolved
    int line = 0;
};

/** One stat-path literal reaching a StatRegistry registration. */
struct StatLiteral
{
    std::string text; ///< the literal, e.g. "serve.requests" or "misses"
    int line = 0;
    /**
     * true when the literal is a path fragment (a joinPath() leaf or
     * a `+ ".leaf"` concatenation) that suffix-matches catalog rows
     * at segment boundaries; false for a complete dotted path.
     */
    bool fragment = false;
};

/** One LVA_* environment-knob literal in source. */
struct KnobUse
{
    std::string name; ///< e.g. "LVA_SEEDS"
    int line = 0;
    /** Literal is the direct argument of a getenv() call. */
    bool directGetenv = false;
};

/** One faultPoint() call: a defined fault site. */
struct FaultDef
{
    std::string site; ///< exact site, or prefix when prefix=true
    int line = 0;
    bool prefix = false; ///< site built as "lit." + runtime suffix
};

/** One `site=kind[:ms][@trigger]` fault-spec reference in any text. */
struct FaultRef
{
    std::string site; ///< without the trailing '*' for prefix refs
    int line = 0;
    bool prefix = false; ///< spec ended in '*'
};

/** One lock acquisition performed while another lock is held. */
struct LockEdge
{
    std::string held;     ///< owner-qualified mutex id already held
    std::string acquired; ///< owner-qualified mutex id being taken
    int line = 0;         ///< line of the acquisition
};

/** One condition_variable wait performed while other locks are held. */
struct CvWait
{
    std::string waited; ///< mutex id released by the wait
    std::string held;   ///< some *other* mutex id still held
    int line = 0;
};

/** Everything extracted from one C++ source file. */
struct SourceFile
{
    std::string path; ///< repo-relative, '/'-separated
    int layer = -1;   ///< from layerOf(); -1 = outside the layer map
    std::vector<Include> includes;
    std::vector<StatLiteral> stats;
    std::vector<KnobUse> knobs;
    std::vector<FaultDef> faultDefs;
    std::vector<FaultRef> faultRefs;
    std::vector<LockEdge> lockEdges;
    std::vector<CvWait> cvWaits;
    lint::Suppressions suppressions; ///< tag "lva-audit"
};

/** A non-C++ input (script, workflow, doc) scanned for references. */
struct TextFile
{
    std::string path;
    std::string content;
    std::vector<FaultRef> faultRefs;
};

/** The whole-project model the audit rules run against. */
struct Project
{
    std::vector<SourceFile> sources; ///< sorted by path
    std::vector<TextFile> texts;     ///< sorted by path
};

/**
 * Architectural layer of a repo-relative path (DESIGN.md §17):
 * 0 = src/util, 1 = the simulation core (core/cpu/mem/noc/sim/
 * prefetch/energy/workloads), 2 = src/eval, 3 = tools/bench/tests.
 * Returns -1 for paths outside the layered tree (docs, scripts).
 * Includes may only point sideways or *down* (toward 0).
 */
int layerOf(const std::string &path);

/** Parse one C++ file into its extracted registries. */
SourceFile parseSource(const std::string &relPath,
                       const std::string &content);

/** Scan one text file (script/doc) for fault-spec references. */
TextFile parseText(const std::string &relPath,
                   const std::string &content);

/**
 * Resolve include targets against the registered source set and sort
 * both file lists; call once after the last parseSource()/parseText().
 * Resolution tries, in order: src/<target>, tools/<target>, and
 * <including dir>/<target>.
 */
void finalizeModel(Project &project);

} // namespace lva::audit

#endif // LVA_TOOLS_ANALYZE_PROJECT_MODEL_HH
