/**
 * @file
 * Filesystem loader for the lva_audit project model: walks a repo
 * root into a Project so the lva_audit driver and audit_tool_test
 * (which points it at tests/audit_fixtures/<case>/ mini-trees) build
 * their models the exact same way.
 */

#ifndef LVA_TOOLS_ANALYZE_LOADER_HH
#define LVA_TOOLS_ANALYZE_LOADER_HH

#include <string>
#include <vector>

#include "analyze/project_model.hh"

namespace lva::audit {

struct LoadOptions
{
    /** Directories walked for C++ sources (repo-relative). */
    std::vector<std::string> sourceRoots = {"src", "tools", "bench",
                                            "tests", "examples"};
    /** Directories/files scanned as text (scripts, workflows, docs). */
    std::vector<std::string> textRoots = {"scripts", ".github", "docs",
                                          "README.md", "DESIGN.md"};
    /** Repo-relative path prefixes to drop. */
    std::vector<std::string> excludes = {"tests/lint_fixtures/",
                                         "tests/audit_fixtures/"};
    /** Extra absolute source files (e.g. from a compdb) to merge in. */
    std::vector<std::string> extraSources;
};

struct LoadResult
{
    Project project;
    std::vector<std::string> errors; ///< unreadable paths
};

/**
 * Walk @p root per @p opts, parse every file, and finalize the model
 * (include resolution + sorting).  Missing roots are skipped
 * silently so fixture mini-trees only provide what they exercise.
 */
LoadResult loadProject(const std::string &root,
                       const LoadOptions &opts = {});

} // namespace lva::audit

#endif // LVA_TOOLS_ANALYZE_LOADER_HH
