#include "analyze/project_model.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace lva::audit {
namespace {

// ---------------------------------------------------------------------
// Small lexical helpers over the stripped text.
// ---------------------------------------------------------------------

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/**
 * Starting at the '(' at @p open, return the offset one past the
 * matching ')' and fill @p firstArg with the text of the first
 * argument (up to the first comma at nesting depth 1).  Returns
 * std::string::npos when the parenthesis never closes.
 */
std::size_t
matchCall(const std::string &text, std::size_t open,
          std::string *firstArg)
{
    int depth = 0;
    std::size_t argEnd = std::string::npos;
    for (std::size_t i = open; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(') {
            ++depth;
        } else if (c == ')') {
            if (--depth == 0) {
                if (firstArg) {
                    const std::size_t end =
                        argEnd == std::string::npos ? i : argEnd;
                    *firstArg = text.substr(open + 1, end - open - 1);
                }
                return i + 1;
            }
        } else if (c == ',' && depth == 1 &&
                   argEnd == std::string::npos) {
            argEnd = i;
        }
    }
    return std::string::npos;
}

/** All double-quoted literals inside @p s (stripped of quotes). */
std::vector<std::string>
literalsIn(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = s.find('"', pos)) != std::string::npos) {
        const std::size_t end = s.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        out.push_back(s.substr(pos + 1, end - pos - 1));
        pos = end + 1;
    }
    return out;
}

int
lineAt(const std::vector<int> &lineOf, std::size_t offset)
{
    return lineOf[std::min(offset, lineOf.size() - 1)];
}

// ---------------------------------------------------------------------
// Includes.
// ---------------------------------------------------------------------

void
extractIncludes(const std::string &kept,
                const std::vector<int> &lineOf, SourceFile &out)
{
    // Quoted includes only: system headers carry no layering signal.
    // The keepStrings text blanks comments, so commented-out includes
    // do not register.
    static const std::regex re(
        R"re(^[ \t]*#[ \t]*include[ \t]*"([^"]+)")re");
    // std::regex has no multiline anchor pre-C++23; walk lines.
    std::size_t pos = 0;
    int line = 1;
    while (pos <= kept.size()) {
        std::size_t eol = kept.find('\n', pos);
        if (eol == std::string::npos)
            eol = kept.size();
        const std::string text = kept.substr(pos, eol - pos);
        std::smatch m;
        if (std::regex_search(text, m, re))
            out.includes.push_back({m[1].str(), "", line});
        if (eol == kept.size())
            break;
        pos = eol + 1;
        ++line;
    }
    (void)lineOf;
}

// ---------------------------------------------------------------------
// Stat-path literals.
// ---------------------------------------------------------------------

void
extractStats(const std::string &kept, const std::vector<int> &lineOf,
             SourceFile &out)
{
    // Registration calls: the first argument of .counter/.gauge/
    // .histogram is the dotted path (or an expression producing one).
    static const std::regex callRe(
        R"(\.\s*(counter|gauge|histogram)\s*\()");
    for (auto it = std::sregex_iterator(kept.begin(), kept.end(),
                                        callRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        std::string arg;
        if (matchCall(kept, open, &arg) == std::string::npos)
            continue;
        const int line = lineAt(lineOf, open);
        const std::string trimmed = trim(arg);
        const bool viaJoin = arg.find("joinPath") != std::string::npos;
        for (const std::string &lit : literalsIn(arg)) {
            if (lit.empty())
                continue;
            const bool whole = trimmed == "\"" + lit + "\"";
            const bool fragment = viaJoin || !whole;
            out.stats.push_back({lit, line, fragment});
        }
    }

    // EvalMetricDef initializer tables: rows of {"dotted.path", ...}.
    // These paths reach the registry via applyEvalDerived()-style
    // loops, so no .counter() literal exists for them.
    std::size_t pos = 0;
    while ((pos = kept.find("EvalMetricDef> defs = {", pos)) !=
           std::string::npos) {
        const std::size_t open = kept.find('{', pos);
        int depth = 0;
        std::size_t end = open;
        for (; end < kept.size(); ++end) {
            if (kept[end] == '{')
                ++depth;
            else if (kept[end] == '}' && --depth == 0)
                break;
        }
        static const std::regex rowRe(R"(\{\s*"([^"]+)\")");
        const std::string body = kept.substr(open, end - open);
        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            rowRe);
             it != std::sregex_iterator(); ++it) {
            const std::size_t at =
                open + static_cast<std::size_t>(it->position());
            out.stats.push_back(
                {(*it)[1].str(), lineAt(lineOf, at), false});
        }
        pos = end;
    }
}

// ---------------------------------------------------------------------
// LVA_* knob literals.
// ---------------------------------------------------------------------

void
extractKnobs(const std::string &kept, const std::vector<int> &lineOf,
             SourceFile &out)
{
    static const std::regex re(R"re("(LVA_[A-Z0-9_]+)")re");
    for (auto it = std::sregex_iterator(kept.begin(), kept.end(), re);
         it != std::sregex_iterator(); ++it) {
        const std::size_t at = static_cast<std::size_t>(it->position());
        // Is this literal the direct argument of getenv? Look back
        // past whitespace and the opening parenthesis for the call
        // name.
        std::size_t j = at;
        while (j > 0 && std::isspace(static_cast<unsigned char>(
                            kept[j - 1])))
            --j;
        bool direct = false;
        if (j > 0 && kept[j - 1] == '(') {
            --j;
            while (j > 0 && std::isspace(static_cast<unsigned char>(
                                kept[j - 1])))
                --j;
            static const std::string fn = "getenv";
            direct = j >= fn.size() &&
                     kept.compare(j - fn.size(), fn.size(), fn) == 0;
        }
        out.knobs.push_back(
            {(*it)[1].str(), lineAt(lineOf, at), direct});
    }
}

// ---------------------------------------------------------------------
// Fault sites: faultPoint() definitions and site=kind references.
// ---------------------------------------------------------------------

void
extractFaultDefs(const std::string &kept,
                 const std::vector<int> &lineOf, SourceFile &out)
{
    static const std::regex callRe(R"(\bfaultPoint\s*\()");
    static const std::regex identRe(R"(^[A-Za-z_][A-Za-z0-9_]*$)");
    for (auto it = std::sregex_iterator(kept.begin(), kept.end(),
                                        callRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        std::string arg;
        if (matchCall(kept, open, &arg) == std::string::npos)
            continue;
        const int line = lineAt(lineOf, open);
        std::string expr = trim(arg);

        // Identifier argument: chase the local `site = "..."` binding
        // backward (the sweep/service idiom).
        if (std::regex_match(expr, identRe)) {
            const std::regex bindRe("\\b" + expr +
                                    R"(\s*=\s*("[^"]*"[^;]*))");
            std::string best;
            for (auto b = std::sregex_iterator(kept.begin(),
                                               kept.end(), bindRe);
                 b != std::sregex_iterator(); ++b) {
                if (static_cast<std::size_t>(b->position()) < open)
                    best = (*b)[1].str();
            }
            if (best.empty())
                continue; // declaration/parameter, not a call site
            expr = best;
        }
        if (expr.empty() || expr[0] != '"')
            continue;
        const std::size_t close = expr.find('"', 1);
        if (close == std::string::npos)
            continue;
        const std::string lit = expr.substr(1, close - 1);
        const bool prefix =
            trim(expr.substr(close + 1)).rfind('+', 0) == 0;
        if (!lit.empty())
            out.faultDefs.push_back({lit, line, prefix});
    }
}

std::vector<FaultRef>
extractFaultRefs(const std::string &raw)
{
    // Spec grammar (util/fault.hh): site=kind[:ms][@trigger], where a
    // trailing '*' on the site makes it a prefix match.  Requiring at
    // least one '.' in the site keeps single-token test sites (p=throw
    // in fault_test.cc) and shell variable assignments out.
    static const std::regex re(
        R"(\b([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_*]+)+)=)"
        R"((?:throw|abort|allocfail|delay)\b)");
    std::vector<FaultRef> out;
    std::size_t pos = 0;
    int line = 1;
    while (pos <= raw.size()) {
        std::size_t eol = raw.find('\n', pos);
        if (eol == std::string::npos)
            eol = raw.size();
        const std::string text = raw.substr(pos, eol - pos);
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            re);
             it != std::sregex_iterator(); ++it) {
            std::string site = (*it)[1].str();
            bool prefix = false;
            if (!site.empty() && site.back() == '*') {
                prefix = true;
                site.pop_back();
            }
            out.push_back({site, line, prefix});
        }
        if (eol == raw.size())
            break;
        pos = eol + 1;
        ++line;
    }
    return out;
}

// ---------------------------------------------------------------------
// Lock-order extraction.
//
// A linear scan over the hazard-stripped text (strings blanked, so
// every brace is a real brace) tracks brace scopes, classifying each
// one as namespace / class / function-body / plain block from the
// text just before the '{'.  Guard declarations push onto a stack;
// acquiring while the stack is non-empty records held->acquired
// edges.  Mutex identity is owner-qualified: the enclosing method's
// class (from a Qualifier::method definition or the enclosing
// class/struct scope), else the file stem — so the two `mutex_`
// members in service.cc (ServeStats, ServeLoop) stay distinct nodes.
// ---------------------------------------------------------------------

struct Scope
{
    enum Kind { Block, Namespace, Class, Function } kind = Block;
    std::string name; ///< class name or function owner
};

/** Identifier (possibly ::qualified) ending at @p end, or "". */
std::string
identBefore(const std::string &text, std::size_t end)
{
    std::size_t b = end;
    auto isIdent = [&](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':' || c == '~';
    };
    while (b > 0 && isIdent(text[b - 1]))
        --b;
    return text.substr(b, end - b);
}

/** Skip whitespace backward from @p i (exclusive); 0 when none left. */
std::size_t
skipWsBack(const std::string &text, std::size_t i)
{
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(text[i - 1])))
        --i;
    return i;
}

/**
 * Classify the brace opening at @p at.  For function bodies, *owner
 * receives the defining class (empty for free functions).
 */
Scope::Kind
classifyBrace(const std::string &text, std::size_t at,
              std::string *owner)
{
    std::size_t i = skipWsBack(text, at);
    // Tail keywords between ')' and '{' (const, noexcept, override).
    for (;;) {
        const std::size_t end = i;
        const std::string id = identBefore(text, end);
        if (id == "const" || id == "noexcept" || id == "override" ||
            id == "final") {
            i = skipWsBack(text, end - id.size());
            continue;
        }
        break;
    }
    if (i > 0 && text[i - 1] == ')') {
        // Walk back over the parameter list to the '(' and read the
        // name in front of it.
        int depth = 0;
        std::size_t j = i;
        while (j > 0) {
            --j;
            if (text[j] == ')')
                ++depth;
            else if (text[j] == '(' && --depth == 0)
                break;
        }
        const std::size_t nameEnd = skipWsBack(text, j);
        const std::string name = identBefore(text, nameEnd);
        if (name.empty() || name == "if" || name == "for" ||
            name == "while" || name == "switch" || name == "catch" ||
            name == "return")
            return Scope::Block;
        const std::size_t q = name.rfind("::");
        if (owner)
            *owner = q == std::string::npos ? "" : name.substr(0, q);
        return Scope::Function;
    }
    // `class X ... {` / `struct X ... {` / `namespace N {`
    static const std::regex classRe(
        R"((class|struct)\s+([A-Za-z_][A-Za-z0-9_]*)[^;{}()]*$)");
    static const std::regex nsRe(
        R"(namespace\s+[A-Za-z_:][A-Za-z0-9_:]*\s*$|namespace\s*$)");
    const std::size_t from = at > 160 ? at - 160 : 0;
    const std::string before = text.substr(from, at - from);
    std::smatch m;
    if (std::regex_search(before, m, classRe)) {
        if (owner)
            *owner = m[2].str();
        return Scope::Class;
    }
    if (std::regex_search(before, m, nsRe))
        return Scope::Namespace;
    return Scope::Block;
}

/** Strip `std::`, `this->`, and whitespace from a mutex expression. */
std::string
cleanMutexExpr(std::string expr)
{
    std::string out;
    for (char c : expr)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out += c;
    auto drop = [&](const std::string &prefix) {
        if (out.rfind(prefix, 0) == 0)
            out = out.substr(prefix.size());
    };
    drop("this->");
    drop("std::");
    drop("*"); // unique_lock(*mutexPtr)
    return out;
}

struct GuardEvent
{
    enum Kind { Acquire, Unlock, Wait } kind;
    std::size_t at;
    std::string name;               ///< guard or cv variable name
    std::vector<std::string> exprs; ///< mutex exprs (Acquire)
    std::string guard;              ///< waited guard name (Wait)
};

void
extractLocks(const std::string &stripped, const std::string &stem,
             const std::vector<int> &lineOf, SourceFile &out)
{
    if (stripped.find("lock_guard") == std::string::npos &&
        stripped.find("unique_lock") == std::string::npos &&
        stripped.find("scoped_lock") == std::string::npos)
        return;

    // Collect guard/unlock/wait events with their offsets.
    std::vector<GuardEvent> events;
    static const std::regex guardRe(
        R"(\b(lock_guard|unique_lock|scoped_lock)\s*(?:<[^<>;]*>)?\s+)"
        R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), guardRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        std::string args;
        if (matchCall(stripped, open, nullptr) == std::string::npos)
            continue;
        // All arguments: scoped_lock can take several mutexes.
        int depth = 0;
        std::size_t end = open;
        for (; end < stripped.size(); ++end) {
            if (stripped[end] == '(')
                ++depth;
            else if (stripped[end] == ')' && --depth == 0)
                break;
        }
        args = stripped.substr(open + 1, end - open - 1);
        GuardEvent ev;
        ev.kind = GuardEvent::Acquire;
        ev.at = open;
        ev.name = (*it)[2].str();
        int d = 0;
        std::string cur;
        for (std::size_t i2 = 0; i2 <= args.size(); ++i2) {
            const char c = i2 < args.size() ? args[i2] : ',';
            if (c == '(' || c == '<')
                ++d;
            else if (c == ')' || c == '>')
                --d;
            if (c == ',' && d == 0) {
                const std::string e = cleanMutexExpr(cur);
                if (!e.empty() && e.find("defer_lock") ==
                                      std::string::npos &&
                    e.find("adopt_lock") == std::string::npos)
                    ev.exprs.push_back(e);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!ev.exprs.empty())
            events.push_back(std::move(ev));
    }
    static const std::regex unlockRe(
        R"(\b([A-Za-z_][A-Za-z0-9_]*)\.unlock\s*\()");
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), unlockRe);
         it != std::sregex_iterator(); ++it) {
        GuardEvent ev;
        ev.kind = GuardEvent::Unlock;
        ev.at = static_cast<std::size_t>(it->position());
        ev.name = (*it)[1].str();
        events.push_back(std::move(ev));
    }
    static const std::regex waitRe(
        R"(\b([A-Za-z_][A-Za-z0-9_]*)\.(?:wait|wait_for|wait_until)\s*)"
        R"(\(\s*([A-Za-z_][A-Za-z0-9_]*))");
    for (auto it = std::sregex_iterator(stripped.begin(),
                                        stripped.end(), waitRe);
         it != std::sregex_iterator(); ++it) {
        GuardEvent ev;
        ev.kind = GuardEvent::Wait;
        ev.at = static_cast<std::size_t>(it->position());
        ev.name = (*it)[1].str();
        ev.guard = (*it)[2].str();
        events.push_back(std::move(ev));
    }
    std::sort(events.begin(), events.end(),
              [](const GuardEvent &a, const GuardEvent &b) {
                  return a.at < b.at;
              });

    // Walk braces and events together.
    struct Held
    {
        std::string name;  ///< guard variable
        std::string mutex; ///< owner-qualified id
        int depth;         ///< brace depth at declaration
        bool released = false;
    };
    std::vector<Scope> scopes;
    std::vector<Held> stack;
    std::string classCtx;  ///< innermost class scope name
    std::string owner;     ///< current function's mutex owner
    int funcDepth = -1;    ///< brace depth of the current function body
    std::size_t ev = 0;
    int depth = 0;

    auto ownerFor = [&](const std::string &expr) {
        const std::string who = !owner.empty()
                                    ? owner
                                    : (!classCtx.empty() ? classCtx
                                                         : stem);
        // Expressions naming another object (pool_.mutex_) keep the
        // object spelled out; plain members get the owner qualifier.
        return who + "::" + expr;
    };

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        while (ev < events.size() && events[ev].at == i) {
            const GuardEvent &e = events[ev];
            if (funcDepth >= 0) {
                if (e.kind == GuardEvent::Acquire) {
                    for (const std::string &expr : e.exprs) {
                        const std::string id = ownerFor(expr);
                        for (const Held &h : stack)
                            if (!h.released && h.mutex != id)
                                out.lockEdges.push_back(
                                    {h.mutex, id,
                                     lineAt(lineOf, e.at)});
                        stack.push_back({e.name, id, depth, false});
                    }
                } else if (e.kind == GuardEvent::Unlock) {
                    for (Held &h : stack)
                        if (h.name == e.name)
                            h.released = true;
                } else if (e.kind == GuardEvent::Wait) {
                    std::string waited;
                    for (const Held &h : stack)
                        if (h.name == e.guard && !h.released)
                            waited = h.mutex;
                    if (!waited.empty()) {
                        for (const Held &h : stack)
                            if (!h.released && h.mutex != waited)
                                out.cvWaits.push_back(
                                    {waited, h.mutex,
                                     lineAt(lineOf, e.at)});
                    }
                }
            }
            ++ev;
        }
        const char c = stripped[i];
        if (c == '{') {
            Scope s;
            std::string name;
            s.kind = classifyBrace(stripped, i, &name);
            s.name = name;
            if (s.kind == Scope::Function && funcDepth < 0) {
                funcDepth = depth;
                owner = !name.empty() ? name : classCtx;
            } else if (s.kind == Scope::Class) {
                classCtx = name;
            }
            scopes.push_back(s);
            ++depth;
        } else if (c == '}') {
            --depth;
            if (!scopes.empty()) {
                const Scope s = scopes.back();
                scopes.pop_back();
                if (s.kind == Scope::Function && depth == funcDepth) {
                    funcDepth = -1;
                    owner.clear();
                    stack.clear();
                } else if (s.kind == Scope::Class) {
                    classCtx.clear();
                    for (auto it = scopes.rbegin();
                         it != scopes.rend(); ++it) {
                        if (it->kind == Scope::Class) {
                            classCtx = it->name;
                            break;
                        }
                    }
                }
            }
            while (!stack.empty() && stack.back().depth > depth)
                stack.pop_back();
        }
    }
}

} // namespace

int
layerOf(const std::string &path)
{
    static const std::pair<const char *, int> map[] = {
        {"src/util/", 0},      {"src/core/", 1},
        {"src/cpu/", 1},       {"src/mem/", 1},
        {"src/noc/", 1},       {"src/sim/", 1},
        {"src/prefetch/", 1},  {"src/energy/", 1},
        {"src/workloads/", 1}, {"src/eval/", 2},
        {"tools/", 3},         {"bench/", 3},
        {"tests/", 3},
    };
    for (const auto &[prefix, layer] : map)
        if (path.rfind(prefix, 0) == 0)
            return layer;
    return -1;
}

SourceFile
parseSource(const std::string &relPath, const std::string &content)
{
    SourceFile out;
    out.path = relPath;
    out.layer = layerOf(relPath);
    out.suppressions =
        lint::parseSuppressions(relPath, content, "lva-audit");

    const std::string kept =
        lint::stripComments(content, /*keepStrings=*/true);
    const std::string stripped =
        lint::stripComments(content, /*keepStrings=*/false);
    const std::vector<int> lineOf = lint::buildLineTable(content);

    extractIncludes(kept, lineOf, out);
    extractStats(kept, lineOf, out);
    extractKnobs(kept, lineOf, out);
    extractFaultDefs(kept, lineOf, out);
    // References may live in comments (doc examples arm real sites);
    // scan the raw text.
    out.faultRefs = extractFaultRefs(content);

    std::string stem = relPath;
    const std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos)
        stem = stem.substr(0, dot);
    extractLocks(stripped, stem, lineOf, out);
    return out;
}

TextFile
parseText(const std::string &relPath, const std::string &content)
{
    TextFile out;
    out.path = relPath;
    out.content = content;
    out.faultRefs = extractFaultRefs(content);
    return out;
}

void
finalizeModel(Project &project)
{
    std::set<std::string> known;
    for (const SourceFile &f : project.sources)
        known.insert(f.path);

    for (SourceFile &f : project.sources) {
        std::string dir;
        const std::size_t slash = f.path.find_last_of('/');
        if (slash != std::string::npos)
            dir = f.path.substr(0, slash + 1);
        for (Include &inc : f.includes) {
            for (const std::string &cand :
                 {"src/" + inc.target, "tools/" + inc.target,
                  dir + inc.target}) {
                if (known.count(cand)) {
                    inc.resolved = cand;
                    break;
                }
            }
        }
    }
    std::sort(project.sources.begin(), project.sources.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    std::sort(project.texts.begin(), project.texts.end(),
              [](const TextFile &a, const TextFile &b) {
                  return a.path < b.path;
              });
}

} // namespace lva::audit
