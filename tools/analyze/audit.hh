/**
 * @file
 * lva_audit rules: cross-file analyses over the project model.
 *
 * Five analysis families (DESIGN.md §17), each enforcing an invariant
 * that no single-file linter can see:
 *
 *   layering    include edges may only point sideways or toward
 *               lower layers (util -> sim core -> eval -> tools);
 *               back-edges and include cycles are findings
 *   stats       every StatRegistry path literal in src/ must match a
 *               docs/metrics.md catalog row, and every catalog row
 *               must be backed by a literal (the static mirror of
 *               scripts/check_docs.sh's runtime self-dump gate)
 *   faults      every `site=kind` fault spec in tests/scripts/docs
 *               must name a faultPoint() that exists, and every
 *               defined site must be exercised somewhere
 *   knobs       every LVA_* literal must appear in the README knob
 *               table (and vice versa), and getenv("LVA_*") outside
 *               util/env_knob.cc must be explicitly annotated
 *   locks       the cross-TU mutex acquisition graph must be acyclic,
 *               and no condition_variable wait may happen while a
 *               second mutex is held
 *
 * Findings reuse lint::Finding and the lva_lint ergonomics: stable
 * rule ids, `// lva-audit: allow(<rule>)` suppressions, and a
 * committed baseline file (rule<TAB>file<TAB>key per line) for
 * grandfathered hits — where stale entries are themselves findings,
 * so the baseline can only shrink.
 */

#ifndef LVA_TOOLS_ANALYZE_AUDIT_HH
#define LVA_TOOLS_ANALYZE_AUDIT_HH

#include <string>
#include <vector>

#include "analyze/project_model.hh"
#include "lint/lint_core.hh"

namespace lva::audit {

/** Rule ids (named constants so tests cannot typo them). */
inline constexpr char kLayerBackEdge[] = "layer-back-edge";
inline constexpr char kLayerCycle[] = "layer-cycle";
inline constexpr char kStatUndocumented[] = "stat-undocumented";
inline constexpr char kStatStaleDoc[] = "stat-stale-doc";
inline constexpr char kFaultUnknownSite[] = "fault-unknown-site";
inline constexpr char kFaultOrphanSite[] = "fault-orphan-site";
inline constexpr char kKnobUndocumented[] = "knob-undocumented";
inline constexpr char kKnobStaleDoc[] = "knob-stale-doc";
inline constexpr char kKnobUnvalidated[] = "knob-unvalidated";
inline constexpr char kLockCycle[] = "lock-cycle";
inline constexpr char kLockWaitHeld[] = "lock-wait-held";
inline constexpr char kStaleBaseline[] = "stale-baseline";

/** The audit rule catalog (includes lint's bad-allow-fence). */
const std::vector<lint::RuleInfo> &auditRuleCatalog();

/** One grandfathered finding: rule<TAB>file<TAB>key. */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    std::string key;
    int line = 0;      ///< line in the baseline file
    bool used = false; ///< matched at least one finding this run
};

struct Baseline
{
    std::string path; ///< repo-relative baseline file path
    std::vector<BaselineEntry> entries;
};

/** Parse a baseline file ('#' comments and blank lines ignored). */
Baseline parseBaseline(const std::string &relPath,
                       const std::string &content);

/**
 * Run every audit rule over @p project.  Findings suppressed by an
 * in-source `lva-audit: allow()` or matched by @p baseline are
 * dropped; unused baseline entries surface as stale-baseline
 * findings.  Results are sorted by (file, line, rule).
 */
std::vector<lint::Finding> runAudit(const Project &project,
                                    Baseline *baseline = nullptr);

} // namespace lva::audit

#endif // LVA_TOOLS_ANALYZE_AUDIT_HH
