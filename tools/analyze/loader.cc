#include "analyze/loader.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace fs = std::filesystem;

namespace lva::audit {
namespace {

bool
isCppSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h" || ext == ".hpp" || ext == ".cxx";
}

bool
isTextInput(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".sh" || ext == ".py" || ext == ".yml" ||
           ext == ".yaml" || ext == ".md" || ext == ".cmake" ||
           ext == ".txt";
}

std::string
readFile(const fs::path &p, bool &ok)
{
    std::ifstream in(p, std::ios::binary);
    ok = static_cast<bool>(in);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
relativize(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        rel = file;
    return rel.generic_string();
}

} // namespace

LoadResult
loadProject(const std::string &rootStr, const LoadOptions &opts)
{
    LoadResult out;
    const fs::path root = fs::absolute(rootStr);

    auto excluded = [&](const std::string &rel) {
        return std::any_of(opts.excludes.begin(), opts.excludes.end(),
                           [&](const std::string &e) {
                               return rel.compare(0, e.size(), e) == 0;
                           });
    };

    // Collect (rel, abs) pairs first so parse order — and therefore
    // every downstream report — is deterministic.
    std::map<std::string, std::string> sources, texts; // rel -> abs
    auto collect = [&](const std::vector<std::string> &roots,
                       bool cpp) {
        for (const std::string &r : roots) {
            const fs::path abs = root / r;
            std::error_code ec;
            if (fs::is_directory(abs, ec)) {
                for (fs::recursive_directory_iterator it(abs, ec),
                     end;
                     !ec && it != end; it.increment(ec)) {
                    if (!it->is_regular_file())
                        continue;
                    const bool want = cpp ? isCppSource(it->path())
                                          : isTextInput(it->path());
                    if (!want)
                        continue;
                    const std::string rel =
                        relativize(it->path(), root);
                    if (!excluded(rel))
                        (cpp ? sources : texts)
                            .emplace(rel, it->path().string());
                }
            } else if (fs::is_regular_file(abs, ec)) {
                const std::string rel = relativize(abs, root);
                if (!excluded(rel))
                    (cpp ? sources : texts)
                        .emplace(rel, abs.string());
            }
            // Missing roots are fine: fixture trees are sparse.
        }
    };
    collect(opts.sourceRoots, /*cpp=*/true);
    collect(opts.textRoots, /*cpp=*/false);
    for (const std::string &extra : opts.extraSources) {
        const fs::path abs = fs::absolute(extra);
        std::error_code ec;
        if (!fs::is_regular_file(abs, ec) || !isCppSource(abs))
            continue;
        const std::string rel = relativize(abs, root);
        // Only files inside the configured source roots: a compile
        // database also lists vendored dependencies under build/,
        // which are not ours to audit.
        const bool inRoots = std::any_of(
            opts.sourceRoots.begin(), opts.sourceRoots.end(),
            [&](const std::string &r) {
                return rel.rfind(r + "/", 0) == 0;
            });
        if (inRoots && !excluded(rel))
            sources.emplace(rel, abs.string());
    }

    for (const auto &[rel, abs] : sources) {
        bool ok = false;
        const std::string content = readFile(abs, ok);
        if (!ok) {
            out.errors.push_back(rel);
            continue;
        }
        out.project.sources.push_back(parseSource(rel, content));
    }
    for (const auto &[rel, abs] : texts) {
        bool ok = false;
        const std::string content = readFile(abs, ok);
        if (!ok) {
            out.errors.push_back(rel);
            continue;
        }
        out.project.texts.push_back(parseText(rel, content));
    }
    finalizeModel(out.project);
    return out;
}

} // namespace lva::audit
