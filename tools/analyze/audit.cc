#include "analyze/audit.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <regex>
#include <set>

namespace lva::audit {
namespace {

/** A finding plus its baseline key (stable across line churn). */
struct Hit
{
    lint::Finding finding;
    std::string key;
};

/**
 * Collector that resolves suppressions and baseline entries at emit
 * time, so individual rule passes stay simple.
 */
struct Sink
{
    const Project &project;
    Baseline *baseline;
    std::vector<lint::Finding> out;

    const SourceFile *
    sourceOf(const std::string &path) const
    {
        for (const SourceFile &f : project.sources)
            if (f.path == path)
                return &f;
        return nullptr;
    }

    void
    emit(const std::string &file, int line, const char *rule,
         const std::string &key, std::string message)
    {
        if (const SourceFile *src = sourceOf(file))
            if (src->suppressions.allows(line, rule))
                return;
        if (baseline) {
            for (BaselineEntry &e : baseline->entries) {
                if (e.rule == rule && e.file == file && e.key == key) {
                    e.used = true;
                    return;
                }
            }
        }
        out.push_back({file, line, rule, std::move(message)});
    }
};

// ---------------------------------------------------------------------
// Doc tables: metrics.md catalog rows and README knob rows.
// ---------------------------------------------------------------------

struct DocRow
{
    std::string text;
    int line = 0;
};

/**
 * First-cell `code` entries of table rows between the given marker
 * comments.  Empty when the file or the markers are absent.
 */
std::vector<DocRow>
tableRows(const Project &project, const std::string &pathSuffix,
          const std::string &beginMarker, std::string *docPath)
{
    std::vector<DocRow> rows;
    const std::string endMarker =
        beginMarker.substr(0, beginMarker.find(":begin")) + ":end";
    static const std::regex rowRe(R"(^\|\s*`([^`]+)`)");
    for (const TextFile &t : project.texts) {
        if (t.path.size() < pathSuffix.size() ||
            t.path.compare(t.path.size() - pathSuffix.size(),
                           pathSuffix.size(), pathSuffix) != 0)
            continue;
        if (docPath)
            *docPath = t.path;
        bool inTable = false;
        std::size_t pos = 0;
        int line = 1;
        while (pos <= t.content.size()) {
            std::size_t eol = t.content.find('\n', pos);
            if (eol == std::string::npos)
                eol = t.content.size();
            const std::string text = t.content.substr(pos, eol - pos);
            if (text.find(beginMarker) != std::string::npos)
                inTable = true;
            else if (text.find(endMarker) != std::string::npos)
                inTable = false;
            std::smatch m;
            if (inTable && std::regex_search(text, m, rowRe))
                rows.push_back({m[1].str(), line});
            if (eol == t.content.size())
                break;
            pos = eol + 1;
            ++line;
        }
        break;
    }
    return rows;
}

/** thread7 / core12 / bank3 -> thread<N> etc (the catalog's form). */
std::string
normalizeIndices(const std::string &path)
{
    static const std::regex re(R"((thread|core|bank|worker)[0-9]+)");
    return std::regex_replace(path, re, "$1<N>");
}

// ---------------------------------------------------------------------
// 1. Include layering.
// ---------------------------------------------------------------------

void
auditLayering(const Project &project, Sink &sink)
{
    static const char *layerName[] = {"src/util", "sim core",
                                      "src/eval", "tools/bench/tests"};
    // Back-edges: an include pointing at a strictly higher layer.
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < project.sources.size(); ++i)
        index[project.sources[i].path] = i;

    for (const SourceFile &f : project.sources) {
        if (f.layer < 0)
            continue;
        for (const Include &inc : f.includes) {
            if (inc.resolved.empty())
                continue;
            const int to = layerOf(inc.resolved);
            if (to > f.layer) {
                sink.emit(
                    f.path, inc.line, kLayerBackEdge, inc.resolved,
                    std::string("layering back-edge: ") +
                        layerName[f.layer] + " (layer " +
                        std::to_string(f.layer) + ") includes '" +
                        inc.resolved + "' from " + layerName[to] +
                        " (layer " + std::to_string(to) +
                        "); includes may only point sideways or "
                        "toward src/util");
            }
        }
    }

    // Include cycles at file granularity (iterative DFS over the
    // resolved include graph; guards make cycles compile, so only
    // this audit sees them).
    const std::size_t n = project.sources.size();
    std::vector<int> state(n, 0); // 0 new, 1 on stack, 2 done
    std::vector<std::size_t> stack, path;
    std::set<std::string> reported;
    for (std::size_t root = 0; root < n; ++root) {
        if (state[root])
            continue;
        // (node, next-edge) explicit DFS to avoid deep recursion.
        std::vector<std::pair<std::size_t, std::size_t>> work;
        work.push_back({root, 0});
        state[root] = 1;
        path.push_back(root);
        while (!work.empty()) {
            auto &[node, edge] = work.back();
            const SourceFile &f = project.sources[node];
            if (edge >= f.includes.size()) {
                state[node] = 2;
                path.pop_back();
                work.pop_back();
                continue;
            }
            const Include &inc = f.includes[edge++];
            if (inc.resolved.empty())
                continue;
            const auto it = index.find(inc.resolved);
            if (it == index.end())
                continue;
            const std::size_t to = it->second;
            if (state[to] == 1) {
                // Found a cycle: path from `to` to `node`.
                std::vector<std::string> members;
                bool in = false;
                for (std::size_t p : path) {
                    if (p == to)
                        in = true;
                    if (in)
                        members.push_back(project.sources[p].path);
                }
                std::string key;
                std::vector<std::string> sorted = members;
                std::sort(sorted.begin(), sorted.end());
                for (const std::string &m : sorted)
                    key += (key.empty() ? "" : "|") + m;
                if (reported.insert(key).second) {
                    std::string chain;
                    for (const std::string &m : members)
                        chain += (chain.empty() ? "" : " -> ") + m;
                    chain += " -> " + inc.resolved;
                    sink.emit(f.path, inc.line, kLayerCycle, key,
                              "include cycle: " + chain);
                }
            } else if (state[to] == 0) {
                state[to] = 1;
                path.push_back(to);
                work.push_back({to, 0});
            }
        }
    }
    (void)stack;
}

// ---------------------------------------------------------------------
// 2. Stat-path conformance.
// ---------------------------------------------------------------------

bool
statMatches(const std::string &row, const StatLiteral &lit)
{
    if (!lit.fragment)
        return row == normalizeIndices(lit.text);
    if (lit.text.empty())
        return false;
    if (lit.text[0] == '.') // "+ \".leaf\"" concatenation
        return row.size() > lit.text.size() &&
               row.compare(row.size() - lit.text.size(),
                           lit.text.size(), lit.text) == 0;
    // joinPath leaf: match a whole trailing segment (or the row).
    if (row == lit.text)
        return true;
    const std::string dotted = "." + lit.text;
    return row.size() > dotted.size() &&
           row.compare(row.size() - dotted.size(), dotted.size(),
                       dotted) == 0;
}

void
auditStats(const Project &project, Sink &sink)
{
    std::string docPath;
    const std::vector<DocRow> rows = tableRows(
        project, "docs/metrics.md", "<!-- catalog:begin -->",
        &docPath);
    if (rows.empty())
        return; // no catalog to audit against (e.g. bare fixture)

    std::vector<bool> rowUsed(rows.size(), false);
    for (const SourceFile &f : project.sources) {
        if (f.path.rfind("src/", 0) != 0)
            continue;
        for (const StatLiteral &lit : f.stats) {
            bool matched = false;
            for (std::size_t i = 0; i < rows.size(); ++i) {
                if (statMatches(rows[i].text, lit)) {
                    rowUsed[i] = true;
                    matched = true;
                }
            }
            if (!matched) {
                sink.emit(f.path, lit.line, kStatUndocumented,
                          lit.text,
                          "stat path " +
                              std::string(lit.fragment ? "fragment '"
                                                       : "'") +
                              lit.text +
                              "' matches no row of the metric "
                              "catalog in " +
                              docPath +
                              "; document it (and re-run "
                              "scripts/check_docs.sh)");
            }
        }
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!rowUsed[i])
            sink.emit(docPath, rows[i].line, kStatStaleDoc,
                      rows[i].text,
                      "catalog row '" + rows[i].text +
                          "' is backed by no stat registration "
                          "literal in src/; stale documentation");
    }
}

// ---------------------------------------------------------------------
// 3. Fault-site registry.
// ---------------------------------------------------------------------

bool
faultMatches(const FaultDef &def, const FaultRef &ref)
{
    if (!def.prefix && !ref.prefix)
        return def.site == ref.site;
    if (def.prefix && !ref.prefix)
        return ref.site.rfind(def.site, 0) == 0;
    if (!def.prefix && ref.prefix)
        return def.site.rfind(ref.site, 0) == 0;
    return def.site.rfind(ref.site, 0) == 0 ||
           ref.site.rfind(def.site, 0) == 0;
}

void
auditFaults(const Project &project, Sink &sink)
{
    struct DefAt
    {
        const SourceFile *file;
        const FaultDef *def;
        bool used = false;
    };
    struct RefAt
    {
        std::string path;
        const FaultRef *ref;
        bool known = false;
    };
    std::vector<DefAt> defs;
    std::vector<RefAt> refs;
    for (const SourceFile &f : project.sources) {
        // Tests define throwaway sites (faultPoint("p")) to exercise
        // the injection machinery itself; only production definitions
        // need an external consumer.
        if (f.path.rfind("tests/", 0) != 0)
            for (const FaultDef &d : f.faultDefs)
                defs.push_back({&f, &d});
        for (const FaultRef &r : f.faultRefs)
            refs.push_back({f.path, &r});
    }
    for (const TextFile &t : project.texts)
        for (const FaultRef &r : t.faultRefs)
            refs.push_back({t.path, &r});

    for (RefAt &r : refs)
        for (DefAt &d : defs)
            if (faultMatches(*d.def, *r.ref)) {
                r.known = true;
                d.used = true;
            }

    for (const RefAt &r : refs) {
        if (r.known)
            continue;
        const std::string spec =
            r.ref->site + (r.ref->prefix ? "*" : "");
        sink.emit(r.path, r.ref->line, kFaultUnknownSite, spec,
                  "fault spec arms site '" + spec +
                      "' but no faultPoint() defines it; the "
                      "injection would silently never fire");
    }
    for (const DefAt &d : defs) {
        if (d.used)
            continue;
        sink.emit(d.file->path, d.def->line, kFaultOrphanSite,
                  d.def->site,
                  "fault site '" + d.def->site +
                      (d.def->prefix ? "...'" : "'") +
                      " is defined here but no test, script or doc "
                      "ever arms it; dead injection point");
    }
}

// ---------------------------------------------------------------------
// 4. Knob audit.
// ---------------------------------------------------------------------

bool
knobScope(const std::string &path)
{
    return path.rfind("src/", 0) == 0 ||
           path.rfind("tools/", 0) == 0 ||
           path.rfind("bench/", 0) == 0;
}

void
auditKnobs(const Project &project, Sink &sink)
{
    std::string docPath;
    const std::vector<DocRow> rows = tableRows(
        project, "README.md", "<!-- knobs:begin -->", &docPath);

    std::set<std::string> documented;
    for (const DocRow &r : rows)
        documented.insert(r.text);

    std::set<std::string> mentioned;
    for (const SourceFile &f : project.sources) {
        if (!knobScope(f.path))
            continue;
        for (const KnobUse &k : f.knobs) {
            mentioned.insert(k.name);
            if (!rows.empty() && !documented.count(k.name)) {
                sink.emit(f.path, k.line, kKnobUndocumented, k.name,
                          "environment knob " + k.name +
                              " is read here but missing from the "
                              "README knob table");
            }
            if (k.directGetenv &&
                f.path != "src/util/env_knob.cc") {
                sink.emit(
                    f.path, k.line, kKnobUnvalidated, k.name,
                    "direct getenv(\"" + k.name +
                        "\") bypasses util/env_knob.hh validation; "
                        "use envKnobU64/envKnobF64, or annotate a "
                        "string-valued knob with lva-audit: "
                        "allow(knob-unvalidated)");
            }
        }
    }
    for (const DocRow &r : rows) {
        if (!mentioned.count(r.text))
            sink.emit(docPath, r.line, kKnobStaleDoc, r.text,
                      "README documents knob " + r.text +
                          " but nothing under src/, tools/ or bench/ "
                          "references it; stale documentation");
    }
}

// ---------------------------------------------------------------------
// 5. Lock-order graph.
// ---------------------------------------------------------------------

void
auditLocks(const Project &project, Sink &sink)
{
    struct Edge
    {
        std::string file;
        int line;
    };
    // (held -> acquired) with the first site that created the edge.
    std::map<std::pair<std::string, std::string>, Edge> edges;
    for (const SourceFile &f : project.sources) {
        for (const LockEdge &e : f.lockEdges)
            edges.emplace(std::make_pair(e.held, e.acquired),
                          Edge{f.path, e.line});
        for (const CvWait &w : f.cvWaits) {
            sink.emit(f.path, w.line, kLockWaitHeld,
                      w.waited + "<-" + w.held,
                      "condition_variable wait on " + w.waited +
                          " while still holding " + w.held +
                          "; the notifier can deadlock against this "
                          "thread");
        }
    }

    // Cycle detection over the mutex graph (DFS with colors).
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto &[pair, at] : edges)
        adj[pair.first].push_back(pair.second);
    std::map<std::string, int> color;
    std::set<std::string> reported;

    std::vector<std::string> path;
    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            color[node] = 1;
            path.push_back(node);
            for (const std::string &next : adj[node]) {
                if (color[next] == 1) {
                    std::vector<std::string> members;
                    bool in = false;
                    for (const std::string &p : path) {
                        if (p == next)
                            in = true;
                        if (in)
                            members.push_back(p);
                    }
                    std::vector<std::string> sorted = members;
                    std::sort(sorted.begin(), sorted.end());
                    std::string key;
                    for (const std::string &m : sorted)
                        key += (key.empty() ? "" : "|") + m;
                    if (reported.insert(key).second) {
                        std::string chain;
                        for (const std::string &m : members)
                            chain += (chain.empty() ? "" : " -> ") + m;
                        chain += " -> " + next;
                        const Edge &at =
                            edges.at({path.back(), next});
                        sink.emit(at.file, at.line, kLockCycle, key,
                                  "lock-order cycle: " + chain +
                                      "; two threads taking these "
                                      "in opposite order deadlock");
                    }
                } else if (color[next] == 0) {
                    dfs(next);
                }
            }
            path.pop_back();
            color[node] = 2;
        };
    for (const auto &[node, _] : adj)
        if (color[node] == 0)
            dfs(node);
}

// ---------------------------------------------------------------------
// Suppression-fence hygiene from the per-file parse.
// ---------------------------------------------------------------------

void
auditFences(const Project &project, Sink &sink)
{
    for (const SourceFile &f : project.sources)
        for (const lint::Finding &fence :
             f.suppressions.fenceFindings)
            sink.emit(fence.file, fence.line, lint::kBadAllowFence,
                      "fence", fence.message);
}

} // namespace

const std::vector<lint::RuleInfo> &
auditRuleCatalog()
{
    static const std::vector<lint::RuleInfo> catalog = {
        {kLayerBackEdge, "src/, tools/, bench/, tests/",
         "include edges may only point sideways or toward lower "
         "layers (util -> sim core -> eval -> tools/bench/tests)"},
        {kLayerCycle, "src/, tools/, bench/, tests/",
         "the quoted-include graph must be acyclic at file "
         "granularity"},
        {kStatUndocumented, "src/",
         "every StatRegistry path literal must match a row of the "
         "docs/metrics.md catalog"},
        {kStatStaleDoc, "docs/metrics.md",
         "every catalog row must be backed by a registration literal "
         "in src/"},
        {kFaultUnknownSite, "everywhere + scripts/docs",
         "every site=kind fault spec must name a site some "
         "faultPoint() call defines"},
        {kFaultOrphanSite, "everywhere",
         "every faultPoint() site must be armed by at least one "
         "test, script or doc"},
        {kKnobUndocumented, "src/, tools/, bench/",
         "every \"LVA_*\" literal must appear in the README knob "
         "table"},
        {kKnobStaleDoc, "README.md",
         "every README knob row must be referenced under src/, "
         "tools/ or bench/"},
        {kKnobUnvalidated, "src/, tools/, bench/",
         "getenv(\"LVA_*\") outside util/env_knob.cc must use the "
         "validated envKnobU64/envKnobF64 parsers or carry an "
         "explicit allow annotation"},
        {kLockCycle, "everywhere",
         "the cross-TU mutex acquisition graph (held -> acquired "
         "edges) must be acyclic"},
        {kLockWaitHeld, "everywhere",
         "no condition_variable wait while holding a second mutex"},
        {lint::kBadAllowFence, "everywhere",
         "unbalanced lva-audit begin-allow/end-allow fences"},
        {kStaleBaseline, "the baseline file",
         "every baseline entry must still match a live finding; "
         "fixed findings must be removed from the baseline"},
    };
    return catalog;
}

Baseline
parseBaseline(const std::string &relPath, const std::string &content)
{
    Baseline out;
    out.path = relPath;
    std::size_t pos = 0;
    int line = 1;
    while (pos <= content.size()) {
        std::size_t eol = content.find('\n', pos);
        if (eol == std::string::npos)
            eol = content.size();
        const std::string text = content.substr(pos, eol - pos);
        if (!text.empty() && text[0] != '#') {
            const std::size_t t1 = text.find('\t');
            const std::size_t t2 =
                t1 == std::string::npos ? t1 : text.find('\t', t1 + 1);
            if (t2 != std::string::npos) {
                out.entries.push_back(
                    {text.substr(0, t1),
                     text.substr(t1 + 1, t2 - t1 - 1),
                     text.substr(t2 + 1), line, false});
            }
        }
        if (eol == content.size())
            break;
        pos = eol + 1;
        ++line;
    }
    return out;
}

std::vector<lint::Finding>
runAudit(const Project &project, Baseline *baseline)
{
    Sink sink{project, baseline, {}};
    auditLayering(project, sink);
    auditStats(project, sink);
    auditFaults(project, sink);
    auditKnobs(project, sink);
    auditLocks(project, sink);
    auditFences(project, sink);

    if (baseline) {
        for (const BaselineEntry &e : baseline->entries) {
            if (!e.used)
                sink.out.push_back(
                    {baseline->path, e.line, kStaleBaseline,
                     "baseline entry '" + e.rule + "\\t" + e.file +
                         "\\t" + e.key +
                         "' matches no live finding; remove it"});
        }
    }

    std::sort(sink.out.begin(), sink.out.end(),
              [](const lint::Finding &a, const lint::Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return sink.out;
}

} // namespace lva::audit
