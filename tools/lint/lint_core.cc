#include "lint/lint_core.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>

namespace lva::lint {

std::string
stripComments(const std::string &src, bool keepStrings)
{
    std::string out = src;
    enum class State { Code, LineComment, BlockComment, Str, Char, RawStr };
    State state = State::Code;
    std::string rawDelim; // ")delim" terminator of the active raw string
    const std::size_t n = src.size();

    auto blank = [&](std::size_t i) {
        if (out[i] != '\n')
            out[i] = ' ';
    };
    // Literal bytes are preserved in keepStrings mode (registry
    // extraction) and blanked in hazard-scan mode.
    auto blankLit = [&](std::size_t i) {
        if (!keepStrings)
            blank(i);
    };

    for (std::size_t i = 0; i < n; ++i) {
        const char c = src[i];
        const char next = i + 1 < n ? src[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                blank(i);
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                blank(i);
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || (!std::isalnum(
                                       static_cast<unsigned char>(src[i - 1])) &&
                                   src[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t open = src.find('(', i + 2);
                if (open != std::string::npos) {
                    rawDelim = ")" + src.substr(i + 2, open - i - 2) + "\"";
                    state = State::RawStr;
                    blankLit(i);
                }
            } else if (c == '"') {
                state = State::Str;
                blankLit(i);
            } else if (c == '\'' &&
                       (i == 0 || (!std::isalnum(
                                       static_cast<unsigned char>(src[i - 1])) &&
                                   src[i - 1] != '_' && src[i - 1] != '\''))) {
                // Char literal; the guard keeps digit separators (1'000)
                // and nested quotes out of the literal state machine.
                state = State::Char;
                blankLit(i);
            }
            break;
        case State::LineComment:
            blank(i);
            if (c == '\n')
                state = State::Code;
            break;
        case State::BlockComment:
            blank(i);
            if (c == '*' && next == '/') {
                blank(i + 1);
                ++i;
                state = State::Code;
            }
            break;
        case State::Str:
            blankLit(i);
            if (c == '\\' && next != '\0') {
                blankLit(i + 1);
                ++i;
            } else if (c == '"') {
                state = State::Code;
            }
            break;
        case State::Char:
            blankLit(i);
            if (c == '\\' && next != '\0') {
                blankLit(i + 1);
                ++i;
            } else if (c == '\'') {
                state = State::Code;
            }
            break;
        case State::RawStr:
            blankLit(i);
            if (c == rawDelim[0] && src.compare(i, rawDelim.size(),
                                                rawDelim) == 0) {
                for (std::size_t j = 0; j < rawDelim.size(); ++j)
                    blankLit(i + j);
                i += rawDelim.size() - 1;
                state = State::Code;
            }
            break;
        }
    }
    return out;
}

std::vector<int>
buildLineTable(const std::string &src)
{
    std::vector<int> lineOf(src.size() + 1);
    int line = 1;
    for (std::size_t i = 0; i < src.size(); ++i) {
        lineOf[i] = line;
        if (src[i] == '\n')
            ++line;
    }
    lineOf[src.size()] = line;
    return lineOf;
}

bool
Suppressions::allows(int line, const std::string &rule) const
{
    // The inline form covers its own line and the one below it (the
    // "annotation above the offender" idiom); fences cover exactly
    // the lines between begin and end.
    for (int l : {line, line - 1}) {
        auto it = inlineAllow.find(l);
        if (it != inlineAllow.end() &&
            (it->second.count(rule) || it->second.count("all")))
            return true;
    }
    auto it = fenceAllow.find(line);
    return it != fenceAllow.end() &&
           (it->second.count(rule) || it->second.count("all"));
}

Suppressions
parseSuppressions(const std::string &relPath, const std::string &src,
                  const std::string &tag)
{
    Suppressions out;
    // The allow comments live inside comments, which the stripped
    // text has blanked — so this parses the *raw* source, line by
    // line.
    const std::regex inlineRe(
        tag + R"(:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
    const std::regex beginRe(
        tag + R"(:\s*begin-allow\(([A-Za-z0-9_,\- ]+)\))");
    const std::regex endRe(tag + R"(:\s*end-allow\b)");

    auto parseList = [](const std::string &list) {
        std::set<std::string> rules;
        std::string item;
        for (std::size_t i = 0; i <= list.size(); ++i) {
            if (i == list.size() || list[i] == ',') {
                const auto b = item.find_first_not_of(" \t");
                const auto e = item.find_last_not_of(" \t");
                if (b != std::string::npos)
                    rules.insert(item.substr(b, e - b + 1));
                item.clear();
            } else {
                item += list[i];
            }
        }
        return rules;
    };

    // Open fences: (begin line, rule set).
    std::vector<std::pair<int, std::set<std::string>>> open;
    int line = 1;
    std::size_t pos = 0;
    while (pos < src.size()) {
        std::size_t eol = src.find('\n', pos);
        if (eol == std::string::npos)
            eol = src.size();
        const std::string text = src.substr(pos, eol - pos);
        std::smatch m;
        if (std::regex_search(text, m, beginRe)) {
            open.emplace_back(line, parseList(m[1].str()));
        } else if (std::regex_search(text, m, endRe)) {
            if (open.empty()) {
                out.fenceFindings.push_back(
                    {relPath, line, kBadAllowFence,
                     "end-allow without a matching begin-allow"});
            } else {
                for (int l = open.back().first; l <= line; ++l)
                    out.fenceAllow[l].insert(
                        open.back().second.begin(),
                        open.back().second.end());
                open.pop_back();
            }
        } else if (std::regex_search(text, m, inlineRe)) {
            const auto rules = parseList(m[1].str());
            out.inlineAllow[line].insert(rules.begin(), rules.end());
        }
        pos = eol + 1;
        ++line;
    }
    for (const auto &[beginLine, rules] : open) {
        (void)rules;
        out.fenceFindings.push_back(
            {relPath, beginLine, kBadAllowFence,
             "begin-allow fence still open at end of file (add "
             "end-allow)"});
    }
    return out;
}

namespace {

bool
pathHasPrefix(const std::string &path, const std::vector<std::string> &prefixes)
{
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string &p) {
                           return path.compare(0, p.size(), p) == 0;
                       });
}

/** Context shared by the individual rule passes. */
struct FileCtx
{
    const std::string &relPath;
    const std::string &stripped;
    const std::vector<int> &lineOf;
    const Suppressions &allow;
    std::vector<Finding> &findings;

    bool
    suppressed(int line, const std::string &rule) const
    {
        return allow.allows(line, rule);
    }

    void
    emit(std::size_t offset, const char *rule, std::string message)
    {
        const int line = lineOf[std::min(offset, stripped.size())];
        if (!suppressed(line, rule))
            findings.push_back({relPath, line, rule, std::move(message)});
    }
};

/** Run @p re over the stripped text, emitting one finding per match. */
void
regexRule(FileCtx &ctx, const std::regex &re, const char *rule,
          const std::string &messagePrefix)
{
    for (auto it = std::sregex_iterator(ctx.stripped.begin(),
                                        ctx.stripped.end(), re);
         it != std::sregex_iterator(); ++it) {
        ctx.emit(static_cast<std::size_t>(it->position()), rule,
                 messagePrefix + " '" + it->str() + "'");
    }
}

// ---------------------------------------------------------------------
// no-rand / no-wall-clock / no-pointer-keyed-ordered: plain patterns.
// ---------------------------------------------------------------------

void
checkRand(FileCtx &ctx)
{
    static const std::regex re(
        R"(\b(?:std::)?(?:rand|srand)\s*\(|\brandom_device\b)");
    regexRule(ctx, re, kNoRand,
              "nondeterministic RNG API (seed a util/random.hh Rng "
              "instead):");
}

void
checkWallClock(FileCtx &ctx)
{
    // steady_clock is intentionally NOT flagged: util/bench_timer.hh
    // uses it for wall-clock *reporting*, which never feeds results.
    static const std::regex re(
        R"(\b(?:std::)?time\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b)");
    regexRule(ctx, re, kNoWallClock,
              "wall-clock read breaks run-to-run reproducibility (use "
              "simulated ticks, or util/bench_timer for reporting):");
}

void
checkPointerKeyedOrdered(FileCtx &ctx)
{
    // std::map<T*, ...> / std::set<T*>: ordered by pointer value, so
    // iteration order depends on allocation addresses (ASLR, allocator
    // state) and is not reproducible across runs.
    static const std::regex re(
        R"(\b(?:std::)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*[,>])");
    regexRule(ctx, re, kNoPointerKeyedOrdered,
              "pointer-keyed ordered container iterates in allocation-"
              "address order (key by a stable id instead):");
}

// ---------------------------------------------------------------------
// no-unordered-iteration: two passes — find names declared with an
// unordered container type, then flag range-for / begin()-family uses.
// ---------------------------------------------------------------------

std::vector<std::string>
unorderedDeclNames(const std::string &stripped)
{
    std::vector<std::string> names;
    static const std::regex decl(R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                        decl);
         it != std::sregex_iterator(); ++it) {
        // Balance the template angle brackets, then read the declared
        // identifier (if any) that follows.
        std::size_t i =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (i < stripped.size() && depth > 0) {
            if (stripped[i] == '<')
                ++depth;
            else if (stripped[i] == '>')
                --depth;
            ++i;
        }
        while (i < stripped.size() &&
               (std::isspace(static_cast<unsigned char>(stripped[i])) ||
                stripped[i] == '&' || stripped[i] == '*'))
            ++i;
        std::string name;
        while (i < stripped.size() &&
               (std::isalnum(static_cast<unsigned char>(stripped[i])) ||
                stripped[i] == '_'))
            name += stripped[i++];
        if (!name.empty())
            names.push_back(name);
    }
    return names;
}

void
checkUnorderedIteration(FileCtx &ctx, const Options &opts)
{
    if (!pathHasPrefix(ctx.relPath, opts.exportPaths))
        return;
    for (const std::string &name : unorderedDeclNames(ctx.stripped)) {
        // Range-for where the range expression ends in the container
        // (optionally behind member access), and explicit iterator
        // walks via the begin() family.  end() alone is NOT flagged:
        // the find()/end() point-lookup idiom never iterates.
        const std::regex uses(
            "for\\s*\\([^()]*:\\s*(?:[A-Za-z_]\\w*\\s*(?:\\.|->|::)\\s*)*" +
                name + "\\s*\\)|\\b" + name +
                "\\s*(?:\\.|->)\\s*c?r?begin\\s*\\(",
            std::regex::ECMAScript);
        for (auto it = std::sregex_iterator(ctx.stripped.begin(),
                                            ctx.stripped.end(), uses);
             it != std::sregex_iterator(); ++it) {
            ctx.emit(static_cast<std::size_t>(it->position()),
                     kNoUnorderedIteration,
                     "iteration over unordered container '" + name +
                         "' can leak hash-order into exported results "
                         "(sort keys first, or use a std::map/vector):");
        }
    }
}

// ---------------------------------------------------------------------
// no-mutable-global: `static` data declarations (namespace scope,
// function-local, or class member) that are not const/constexpr.
// ---------------------------------------------------------------------

void
checkMutableGlobal(FileCtx &ctx, const Options &opts)
{
    if (pathHasPrefix(ctx.relPath, opts.mutableStateAllowedPaths))
        return;
    static const std::regex kw(R"(\bstatic\b)");
    const std::string &s = ctx.stripped;
    for (auto it = std::sregex_iterator(s.begin(), s.end(), kw);
         it != std::sregex_iterator(); ++it) {
        const auto start = static_cast<std::size_t>(it->position());
        // Scan forward: '(' first means a function declaration (the
        // parameter list); ';', '=' or '{' first means a data
        // declaration.  const/constexpr anywhere in between makes the
        // data immutable and therefore fine.
        std::size_t i = start + 6; // past "static"
        bool isConst = false;
        bool isData = false;
        int angleDepth = 0;
        std::string token;
        auto flushToken = [&] {
            if (token == "const" || token == "constexpr" ||
                token == "consteval" || token == "constinit")
                isConst = true;
            token.clear();
        };
        for (; i < s.size(); ++i) {
            const char c = s[i];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
                token += c;
                continue;
            }
            flushToken();
            if (c == '<') {
                ++angleDepth;
            } else if (c == '>') {
                if (angleDepth > 0)
                    --angleDepth;
            } else if (angleDepth == 0) {
                if (c == '(')
                    break; // function
                if (c == ';' || c == '=' || c == '{') {
                    isData = true;
                    break;
                }
            }
        }
        if (isData && !isConst) {
            ctx.emit(start, kNoMutableGlobal,
                     "mutable static/global state is shared across "
                     "sweep points and threads; make it const, pass it "
                     "explicitly, or move it under src/util/ with "
                     "documented synchronisation");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-alloc: allocation-prone constructs inside lva-hot-path
// fences.  The fence markers live in comments, so they are parsed
// from the raw source; the token scan runs over the stripped text.
// ---------------------------------------------------------------------

/**
 * 1-based line membership of `// lva-hot-path: begin` ... `end`
 * fences.  Only whole-line comments count as markers (so the marker
 * text inside string literals — this file's own tests, say — does
 * not open a fence).  An unmatched begin extends to end of file; an
 * unmatched end is ignored.
 */
std::vector<bool>
hotPathFenceLines(const std::string &source, int lastLine)
{
    std::vector<bool> fenced(static_cast<std::size_t>(lastLine) + 2,
                             false);
    static const std::regex marker(
        R"(^\s*//.*lva-hot-path:\s*(begin|end))");
    int line = 1;
    int openAt = 0; // 0 = not inside a fence
    std::size_t pos = 0;
    while (pos <= source.size()) {
        std::size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        const std::string text = source.substr(pos, eol - pos);
        std::smatch m;
        if (std::regex_search(text, m, marker)) {
            if (m[1] == "begin") {
                if (openAt == 0)
                    openAt = line;
            } else if (openAt != 0) {
                for (int l = openAt; l <= line; ++l)
                    fenced[static_cast<std::size_t>(l)] = true;
                openAt = 0;
            }
        }
        if (eol == source.size())
            break;
        pos = eol + 1;
        ++line;
    }
    if (openAt != 0)
        for (int l = openAt; l <= lastLine; ++l)
            fenced[static_cast<std::size_t>(l)] = true;
    return fenced;
}

void
checkHotPathAlloc(FileCtx &ctx, const std::string &source)
{
    if (source.find("lva-hot-path:") == std::string::npos)
        return;
    const std::vector<bool> fenced = hotPathFenceLines(
        source, ctx.lineOf.empty() ? 1 : ctx.lineOf.back());

    // Allocation-prone constructs: container growth, the allocating
    // snapshot() copy, node containers, string building, smart-pointer
    // factories and raw new.  The per-load fast paths use fixed rings
    // and in-place indexed reads instead (docs/performance.md).
    static const std::regex re(
        R"(\b(?:push_back|emplace_back|emplace|push_front|snapshot|resize|reserve|to_string)\s*\(|\bstd\s*::\s*(?:deque|list|string|ostringstream|stringstream|function)\b|\bmake_unique\b|\bmake_shared\b|\bnew\s+[A-Za-z_(])");
    for (auto it = std::sregex_iterator(ctx.stripped.begin(),
                                        ctx.stripped.end(), re);
         it != std::sregex_iterator(); ++it) {
        const auto off = static_cast<std::size_t>(it->position());
        const int line = ctx.lineOf[std::min(off, ctx.stripped.size())];
        if (fenced[static_cast<std::size_t>(line)])
            ctx.emit(off, kHotPathAlloc,
                     "allocation-prone construct inside an "
                     "lva-hot-path fence (use fixed rings / in-place "
                     "reads; docs/performance.md):" +
                         (" '" + it->str() + "'"));
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {kNoRand, "everywhere",
         "bans rand()/srand()/std::random_device; all randomness must "
         "flow through the seeded util/random.hh Rng"},
        {kNoWallClock, "everywhere",
         "bans time()/system_clock/high_resolution_clock/gettimeofday/"
         "clock_gettime/localtime/gmtime reads (steady_clock reporting "
         "is fine)"},
        {kNoUnorderedIteration, "src/eval/, src/util/stat*, tools/",
         "bans iterating std::unordered_{map,set} on export-reachable "
         "paths where hash order could leak into CSV/JSON artifacts"},
        {kNoPointerKeyedOrdered, "everywhere",
         "bans std::map/std::set keyed by pointers, whose iteration "
         "order follows allocation addresses"},
        {kNoMutableGlobal, "everywhere except src/util/",
         "bans non-const static/global data; sweep workers share the "
         "process, so hidden mutable state breaks jobs-count "
         "independence"},
        {kHotPathAlloc, "inside lva-hot-path fences",
         "bans allocation-prone constructs (push_back/emplace/"
         "snapshot()/std::deque/std::string/make_unique/new/...) "
         "between lva-hot-path begin/end markers; the per-load paths "
         "must stay allocation-free (docs/performance.md)"},
        {kBadAllowFence, "everywhere",
         "flags unbalanced suppression fences: an end-allow without a "
         "matching begin-allow, or a begin-allow still open at end of "
         "file; fence hygiene errors cannot themselves be suppressed"},
    };
    return catalog;
}

std::vector<Finding>
lintSource(const std::string &relPath, const std::string &source,
           const Options &opts)
{
    const std::string stripped =
        stripComments(source, /*keepStrings=*/false);
    const std::vector<int> lineOf = buildLineTable(stripped);
    const Suppressions allow =
        parseSuppressions(relPath, source, "lva-lint");

    std::vector<Finding> findings;
    FileCtx ctx{relPath, stripped, lineOf, allow, findings};

    checkRand(ctx);
    checkWallClock(ctx);
    checkPointerKeyedOrdered(ctx);
    checkUnorderedIteration(ctx, opts);
    checkMutableGlobal(ctx, opts);
    checkHotPathAlloc(ctx, source);

    findings.insert(findings.end(), allow.fenceFindings.begin(),
                    allow.fenceFindings.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.rule < b.rule;
              });
    return findings;
}

} // namespace lva::lint
