/**
 * @file
 * lva-lint: determinism & safety static-analysis core.
 *
 * The whole evaluation pipeline promises byte-identical sweep results
 * for any LVA_JOBS (DESIGN.md §10-11).  That guarantee is easy to break
 * silently: one rand() in a workload, one wall-clock read folded into a
 * stat, one range-for over an unordered_map feeding a CSV, and the
 * "deterministic" exports start drifting between runs or hosts.  This
 * library implements a small, dependency-free lint pass over C++ source
 * text that flags exactly those hazard classes, so the invariant is
 * enforced by tooling instead of by convention.
 *
 * The analysis is deliberately lexical (comment/string-stripped token
 * scanning, not a full AST): it runs in milliseconds over the whole
 * tree, needs no compiler integration, and the hazard patterns it hunts
 * are syntactically shallow.  Findings can be suppressed per line with
 *
 *     // lva-lint: allow(<rule>[, <rule>...])
 *
 * placed on the offending line or on the line directly above it, or
 * for a whole region with
 *
 *     // lva-lint: begin-allow(no-rand)
 *     ...
 *     // lva-lint: end-allow
 *
 * (unbalanced fences are themselves findings); `allow(all)`
 * suppresses every rule.  clang-tidy (scripts/lint.sh) remains the
 * deep-semantics companion pass where available.
 *
 * Performance fences: regions bracketed by `// lva-hot-path: begin`
 * and `// lva-hot-path: end` comments (docs/performance.md) are
 * additionally checked for allocation-prone constructs — the per-load
 * paths must stay allocation-free.
 */

#ifndef LVA_TOOLS_LINT_LINT_CORE_HH
#define LVA_TOOLS_LINT_LINT_CORE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lva::lint {

/** One lint hit: where, which rule, and a human-readable reason. */
struct Finding
{
    std::string file;    ///< path as given to lintSource (repo-relative)
    int line = 0;        ///< 1-based source line
    std::string rule;    ///< rule id from ruleCatalog()
    std::string message; ///< what was matched and what to use instead
};

/** Catalog entry describing one rule. */
struct RuleInfo
{
    std::string id;      ///< stable id used in findings and allow()
    std::string scope;   ///< path scoping summary ("everywhere", ...)
    std::string summary; ///< one-line description for --rules output
};

/** Rule ids (kept as named constants so tests can't typo them). */
inline constexpr char kNoRand[] = "no-rand";
inline constexpr char kNoWallClock[] = "no-wall-clock";
inline constexpr char kNoUnorderedIteration[] = "no-unordered-iteration";
inline constexpr char kNoPointerKeyedOrdered[] = "no-pointer-keyed-ordered";
inline constexpr char kNoMutableGlobal[] = "no-mutable-global";
inline constexpr char kHotPathAlloc[] = "hot-path-alloc";
inline constexpr char kBadAllowFence[] = "bad-allow-fence";

/** The full rule catalog, in stable display order. */
const std::vector<RuleInfo> &ruleCatalog();

// ---------------------------------------------------------------------
// Lexing + suppression primitives, shared with tools/analyze (the
// whole-project lva_audit model reuses exactly this comment/string
// stripping and the same allow() grammar under its own "lva-audit"
// tag).
// ---------------------------------------------------------------------

/**
 * Blank comments (and, unless @p keepStrings, string/char literals)
 * with spaces, preserving length and newlines so byte offsets keep
 * mapping to the same lines.  Handles //, block comments, escape
 * sequences and R"delim(...)delim" raw strings.  keepStrings=true is
 * the registry-extraction mode: literals survive, comments do not.
 */
std::string stripComments(const std::string &source, bool keepStrings);

/** 1-based line number for every byte offset of @p source. */
std::vector<int> buildLineTable(const std::string &source);

/**
 * Per-file suppression state parsed from the raw source under a
 * given comment tag ("lva-lint" or "lva-audit"):
 *
 *   // <tag>: allow(<rule>[, <rule>...])      same or previous line
 *   // <tag>: begin-allow(<rule>[, ...])      block fence open
 *   // <tag>: end-allow                       block fence close
 *
 * `allow(all)` (in either form) suppresses every rule.  Fences nest;
 * an end-allow without a matching begin, or a begin-allow still open
 * at end of file, is itself a finding (kBadAllowFence) — fence
 * hygiene errors can never be suppressed.
 */
struct Suppressions
{
    /** allow() sets, keyed by line (applies to that line + the next). */
    std::map<int, std::set<std::string>> inlineAllow;
    /** begin/end-allow sets, expanded per fenced line. */
    std::map<int, std::set<std::string>> fenceAllow;
    /** Unbalanced-fence findings (rule kBadAllowFence). */
    std::vector<Finding> fenceFindings;

    /** Is @p rule suppressed on @p line? */
    bool allows(int line, const std::string &rule) const;
};

Suppressions parseSuppressions(const std::string &relPath,
                               const std::string &source,
                               const std::string &tag);

/** Path scoping knobs; defaults mirror the repository layout. */
struct Options
{
    /**
     * Repo-relative path prefixes where iterating an unordered
     * container is forbidden because the iteration order can reach an
     * exported artifact (CSV, JSON stats, catalog dumps).
     */
    std::vector<std::string> exportPaths = {
        "src/eval/",
        "src/util/stat",  // stat_registry / stat_dump / stats_json
        "tools/",
    };

    /**
     * Repo-relative path prefixes where mutable static/global state is
     * tolerated (utility plumbing that is documented thread-safe).
     */
    std::vector<std::string> mutableStateAllowedPaths = {
        "src/util/",
    };
};

/**
 * Lint one translation unit.
 *
 * @param relPath repo-relative path ('/' separated) — used both for
 *                reporting and for the path-scoped rules
 * @param source  full file contents
 * @param opts    path scoping (default matches this repository)
 * @return        findings in source order; empty means the file is clean
 */
std::vector<Finding> lintSource(const std::string &relPath,
                                const std::string &source,
                                const Options &opts = {});

} // namespace lva::lint

#endif // LVA_TOOLS_LINT_LINT_CORE_HH
