/**
 * @file
 * lva-lint driver: walks sources (or a compile_commands.json file
 * list), runs the determinism/safety rules from lint/lint_core.hh and
 * reports findings gcc-style.  Exit status: 0 clean, 1 findings, 2
 * usage/IO error.
 *
 * Usage:
 *   lva_lint [--root DIR] [--compdb FILE] [--exclude PREFIX]...
 *            [--rules] [PATH]...
 *
 *   PATHs (files or directories, default: src bench tests tools
 *   examples under --root) are walked recursively for C++ sources.
 *   --compdb lints exactly the files listed in a compilation database
 *   instead.  --exclude drops files whose repo-relative path starts
 *   with PREFIX (e.g. tests/lint_fixtures/).  --rules prints the rule
 *   catalog and exits.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_core.hh"

namespace fs = std::filesystem;

namespace {

struct Args
{
    std::string root = ".";
    std::string compdb;
    std::vector<std::string> excludes;
    std::vector<std::string> paths;
    bool rules = false;
};

bool
isCppSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h" ||
           ext == ".hpp" || ext == ".cxx";
}

std::string
readFile(const fs::path &p, bool &ok)
{
    std::ifstream in(p, std::ios::binary);
    ok = static_cast<bool>(in);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Repo-relative, '/'-separated path for scoping and reporting. */
std::string
relativize(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        rel = file;
    return rel.generic_string();
}

/** Pull the "file" entries out of a compile_commands.json. */
std::vector<fs::path>
compdbFiles(const std::string &dbPath, bool &ok)
{
    std::string text = readFile(dbPath, ok);
    std::vector<fs::path> files;
    if (!ok)
        return files;
    static const std::regex entry(
        R"re("file"\s*:\s*"((?:[^"\\]|\\.)*)")re");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
         it != std::sregex_iterator(); ++it) {
        std::string f = (*it)[1].str();
        // Unescape the two sequences cmake actually emits in paths.
        std::string clean;
        for (std::size_t i = 0; i < f.size(); ++i) {
            if (f[i] == '\\' && i + 1 < f.size())
                ++i;
            clean += f[i];
        }
        files.emplace_back(clean);
    }
    return files;
}

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--root DIR] [--compdb FILE] [--exclude PREFIX]..."
                 " [--rules] [PATH]...\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "lva_lint: " << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--rules") {
            args.rules = true;
        } else if (a == "--root") {
            const char *v = value("--root");
            if (!v)
                return 2;
            args.root = v;
        } else if (a == "--compdb") {
            const char *v = value("--compdb");
            if (!v)
                return 2;
            args.compdb = v;
        } else if (a == "--exclude") {
            const char *v = value("--exclude");
            if (!v)
                return 2;
            args.excludes.push_back(v);
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "lva_lint: unknown flag " << a << "\n";
            return usage(argv[0]);
        } else {
            args.paths.push_back(a);
        }
    }

    if (args.rules) {
        std::cout << "lva-lint rules (suppress with"
                     " // lva-lint: allow(<rule>)):\n";
        for (const auto &r : lva::lint::ruleCatalog()) {
            std::cout << "  " << r.id << "\n    scope: " << r.scope
                      << "\n    " << r.summary << "\n";
        }
        return 0;
    }

    const fs::path root = fs::absolute(args.root);

    // Collect the file list: compilation database, else path walk.
    std::vector<fs::path> files;
    if (!args.compdb.empty()) {
        bool ok = false;
        files = compdbFiles(args.compdb, ok);
        if (!ok) {
            std::cerr << "lva_lint: cannot read " << args.compdb << "\n";
            return 2;
        }
    } else {
        if (args.paths.empty())
            args.paths = {"src", "bench", "tests", "tools", "examples"};
        for (const std::string &p : args.paths) {
            fs::path abs = fs::path(p).is_absolute() ? fs::path(p)
                                                     : root / p;
            std::error_code ec;
            if (fs::is_directory(abs, ec)) {
                for (fs::recursive_directory_iterator it(abs, ec), end;
                     !ec && it != end; it.increment(ec)) {
                    if (it->is_regular_file() && isCppSource(it->path()))
                        files.push_back(it->path());
                }
            } else if (fs::is_regular_file(abs, ec)) {
                files.push_back(abs);
            } else {
                std::cerr << "lva_lint: no such path: " << p << "\n";
                return 2;
            }
        }
    }

    // Deterministic report order regardless of directory enumeration.
    std::vector<std::pair<std::string, fs::path>> work;
    for (const fs::path &f : files)
        work.emplace_back(relativize(f, root), f);
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());

    const lva::lint::Options opts;
    std::size_t findingCount = 0;
    std::size_t fileCount = 0;
    for (const auto &[rel, abs] : work) {
        const bool excluded =
            std::any_of(args.excludes.begin(), args.excludes.end(),
                        [&](const std::string &e) {
                            return rel.compare(0, e.size(), e) == 0;
                        });
        if (excluded)
            continue;
        bool ok = false;
        const std::string source = readFile(abs, ok);
        if (!ok) {
            std::cerr << "lva_lint: cannot read " << abs << "\n";
            return 2;
        }
        ++fileCount;
        for (const auto &f : lva::lint::lintSource(rel, source, opts)) {
            std::cout << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message << "\n";
            ++findingCount;
        }
    }

    if (findingCount == 0) {
        std::cout << "lva-lint: " << fileCount << " files clean\n";
        return 0;
    }
    std::cout << "lva-lint: " << findingCount << " finding(s) in "
              << fileCount << " files (suppress intentional uses with"
                 " // lva-lint: allow(<rule>))\n";
    return 1;
}
