/**
 * @file
 * lva_client — command-line client for the lva_served daemon
 * (docs/serving.md).
 *
 *   lva_client --port 7777 ping
 *   lva_client --port 7777 eval --workload canneal \
 *       --config '{"ghb":2}'
 *   lva_client --port 7777 sweep --driver fig5_ghb_error \
 *       --points points.json --out stats.json
 *   lva_client --port 7777 stats
 *   lva_client --port 7777 shutdown
 *
 * Options:
 *   --port N        daemon port (required, or LVA_SERVE_PORT)
 *   --timeout-ms N  wire deadline per frame [600000]
 *   --workload NAME (eval) benchmark to evaluate
 *   --config JSON   (eval) inline config object
 *   --driver NAME   (sweep) export driver tag
 *   --points FILE   (sweep) JSON array of sweep points; "-" = stdin
 *   --out FILE      (sweep) write the lva-stats-v1 export here
 *                   instead of stdout
 *   --machine FILE  (eval/sweep) lva-machine-v1 topology file
 *                   (docs/topology.md), embedded in the request
 *
 * Busy handling: a `busy` response carries `retryAfterMs`; the client
 * honors it with deterministic (jitter-free) doubling backoff, capped
 * per wait and bounded to LVA_CLIENT_BUSY_RETRIES extra attempts
 * (default 5) before the refusal becomes exit code 1.
 *
 * Exit codes follow the driver convention (README): 0 success, 1
 * request refused or failed by the server, 2 usage error, 3 sweep
 * completed with isolated point failures (the export still carries
 * every completed point plus a failures section).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "eval/service.hh"
#include "sim/machine_config.hh"
#include "util/env_knob.hh"
#include "util/logging.hh"
#include "util/net.hh"
#include "util/stats_json.hh"

using namespace lva;

namespace {

struct Options
{
    u16 port = 0;
    u64 timeoutMs = 600000;
    std::string op;
    std::string workload;
    std::string configJson;
    std::string driver;
    std::string pointsFile;
    std::string outFile;
    std::string machineFile;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--timeout-ms N] OP [op options]\n"
        "  OP: ping | stats | shutdown\n"
        "      eval --workload NAME [--config JSON] [--machine FILE]\n"
        "      sweep --driver NAME --points FILE|- [--out FILE]\n"
        "            [--machine FILE]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    opt.port =
        static_cast<u16>(envKnobU64("LVA_SERVE_PORT", 0, 0, 65535));
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port") {
            opt.port = static_cast<u16>(std::atoi(need(i)));
        } else if (arg == "--timeout-ms") {
            opt.timeoutMs = static_cast<u64>(std::atoll(need(i)));
        } else if (arg == "--workload") {
            opt.workload = need(i);
        } else if (arg == "--config") {
            opt.configJson = need(i);
        } else if (arg == "--driver") {
            opt.driver = need(i);
        } else if (arg == "--points") {
            opt.pointsFile = need(i);
        } else if (arg == "--out") {
            opt.outFile = need(i);
        } else if (arg == "--machine") {
            opt.machineFile = need(i);
        } else if (arg == "ping" || arg == "stats" ||
                   arg == "shutdown" || arg == "eval" ||
                   arg == "sweep") {
            if (!opt.op.empty())
                usage(argv[0]);
            opt.op = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.op.empty() || opt.port == 0)
        usage(argv[0]);
    if (opt.op == "eval" && opt.workload.empty())
        usage(argv[0]);
    if (opt.op == "sweep" &&
        (opt.driver.empty() || opt.pointsFile.empty()))
        usage(argv[0]);
    return opt;
}

std::string
readAll(const std::string &file)
{
    if (file == "-") {
        std::ostringstream out;
        out << std::cin.rdbuf();
        return out.str();
    }
    std::ifstream in(file, std::ios::binary);
    if (!in)
        lva_fatal("cannot read points file '%s'", file.c_str());
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * The "machine" request member for --machine: parsed and validated
 * locally (fail fast, before any connection), then re-rendered in
 * canonical form so every client sends byte-identical machine JSON
 * for the same topology.
 */
std::string
machineMember(const Options &opt)
{
    if (opt.machineFile.empty())
        return "";
    try {
        return ",\"machine\":" +
               renderMachineJson(machineFromFile(opt.machineFile));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lva_client: %s\n", e.what());
        std::exit(2);
    }
}

/** Build the request payload for the parsed command line. */
std::string
buildRequest(const Options &opt)
{
    std::string req = std::string("{\"schema\":") +
                      jsonQuote(rpcSchema()) +
                      ",\"op\":" + jsonQuote(opt.op);
    if (opt.op == "eval") {
        req += ",\"workload\":" + jsonQuote(opt.workload);
        if (!opt.configJson.empty())
            req += ",\"config\":" + opt.configJson;
        req += machineMember(opt);
    } else if (opt.op == "sweep") {
        // The points file is spliced in verbatim; the server parses
        // and validates it, so a malformed file is reported with the
        // server's diagnostics rather than duplicated client checks.
        req += ",\"driver\":" + jsonQuote(opt.driver) +
               machineMember(opt) +
               ",\"points\":" + readAll(opt.pointsFile);
    }
    return req + "}";
}

int
handleSweepResponse(const Options &opt, const JsonValue &resp)
{
    const std::string &exported = resp.at("export").asString();
    if (opt.outFile.empty()) {
        std::fwrite(exported.data(), 1, exported.size(), stdout);
    } else {
        std::ofstream out(opt.outFile, std::ios::binary);
        if (!out)
            lva_fatal("cannot write '%s'", opt.outFile.c_str());
        out.write(exported.data(),
                  static_cast<std::streamsize>(exported.size()));
        if (!out.flush())
            lva_fatal("short write to '%s'", opt.outFile.c_str());
    }
    const u64 failures = resp.at("failures").asU64();
    std::fprintf(stderr,
                 "lva_client: sweep %s: %llu points, %llu failures"
                 "%s%s\n",
                 opt.driver.c_str(),
                 static_cast<unsigned long long>(
                     resp.at("points").asU64()),
                 static_cast<unsigned long long>(failures),
                 opt.outFile.empty() ? "" : ", export -> ",
                 opt.outFile.c_str());
    return failures == 0 ? 0 : 3;
}

/** Extra attempts after a busy refusal (LVA_CLIENT_BUSY_RETRIES). */
u32
busyRetryBudget()
{
    // Strict parse: garbage or out-of-range budgets warn and keep
    // the default 5 instead of silently becoming 0 (= no retries).
    return static_cast<u32>(
        envKnobU64("LVA_CLIENT_BUSY_RETRIES", 5, 0, 1000));
}

/** True when @p resp is a shed request ("busy":true). */
bool
isBusy(const JsonValue &resp)
{
    const JsonValue *busy = resp.find("busy");
    return busy && busy->type == JsonValue::Type::Bool &&
           busy->boolean;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    const std::string request = buildRequest(opt);

    // Each attempt is a fresh connection: the server closes a shed
    // connection after the busy frame, so there is nothing to reuse.
    const u32 busyBudget = busyRetryBudget();
    std::string payload;
    JsonValue resp;
    for (u32 attempt = 0;; ++attempt) {
        try {
            TcpStream conn = TcpStream::connectTo("127.0.0.1", opt.port,
                                                  opt.timeoutMs);
            writeFrame(conn, request, opt.timeoutMs);
            if (!readFrame(conn, payload, opt.timeoutMs))
                lva_fatal("server closed the connection without a "
                          "response");
        } catch (const NetError &e) {
            std::fprintf(stderr, "lva_client: %s\n", e.what());
            return 1;
        }

        try {
            resp = parseJson(payload);
            if (!resp.isObject())
                throw std::runtime_error("response is not an object");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "lva_client: bad response: %s\n",
                         e.what());
            return 1;
        }

        if (!isBusy(resp) || attempt >= busyBudget)
            break;

        // Deterministic backoff: honor the server's retryAfterMs,
        // doubled per attempt, capped at 2 s per wait. No jitter —
        // reproducibility beats thundering-herd lore at this scale.
        u64 delayMs = 100;
        if (const JsonValue *ra = resp.find("retryAfterMs"))
            delayMs = ra->asU64();
        delayMs = std::min<u64>(delayMs << std::min<u32>(attempt, 10),
                                2000);
        std::fprintf(stderr,
                     "lva_client: busy, retrying in %llu ms "
                     "(attempt %u/%u)\n",
                     static_cast<unsigned long long>(delayMs),
                     attempt + 1, busyBudget);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
    }

    const JsonValue *ok = resp.find("ok");
    if (!ok || ok->type != JsonValue::Type::Bool || !ok->boolean) {
        const JsonValue *err = resp.find("error");
        std::fprintf(stderr, "lva_client: server: %s\n",
                     err ? err->asString().c_str() : "request failed");
        return 1;
    }

    if (opt.op == "sweep")
        return handleSweepResponse(opt, resp);

    // ping / stats / shutdown / eval: the response payload is the
    // useful output; print it as-is.
    std::printf("%s\n", payload.c_str());
    return 0;
}
