/**
 * @file
 * lva_explore — command-line design-space exploration.
 *
 * Runs any workload under any approximator configuration and prints
 * the phase-1 metrics, so new configurations can be explored without
 * writing code:
 *
 *   lva_explore --workload canneal --degree 4 --window 0.2
 *   lva_explore --workload ferret --mode lvp --ghb 2
 *   lva_explore --workload all --estimator stride --seeds 3
 *   lva_explore --machine examples/machine-2core.json \
 *       --machine examples/machine-hetero.json --degree 4
 *
 * Options (defaults = paper baseline):
 *   --workload NAME|all     benchmark to run          [all]
 *   --mode lva|lvp|prefetch|precise                   [lva]
 *   --ghb N                 global history entries    [0]
 *   --lhb N                 local history entries     [4]
 *   --table N               approximator table size   [512]
 *   --window F              confidence window (inf ok)[0.10]
 *   --conf-ints             apply confidence to ints  [off]
 *   --no-conf               disable confidence        [off]
 *   --proportional          proportional conf updates [off]
 *   --degree N              approximation degree      [0]
 *   --delay N               value delay (loads)       [4]
 *   --mantissa-drop N       FP hash mantissa bits cut [0]
 *   --estimator average|last|stride                   [average]
 *   --prefetch-degree N     (prefetch mode)           [4]
 *   --seeds N               averaging runs            [5]
 *   --scale F               working-set scale         [1.0]
 *   --machine FILE          lva-machine-v1 topology file
 *                           (docs/topology.md; also LVA_MACHINE)
 *
 * Topology axis: --machine is repeatable. Each file contributes one
 * sweep axis labeled "explore@<name>", and the approximator flags are
 * recorded as edits replayed on top of every machine's phase-1 base —
 * so `--machine a.json --machine b.json --degree 4` compares the same
 * configuration across topologies in a single run. Flag overrides
 * apply to every per-core variant a heterogeneous machine carries
 * (the same semantics as RPC config overrides, src/eval/service.cc).
 *
 * Robustness (DESIGN.md section 13):
 *   --checkpoint            record completed points in a manifest
 *   --resume                skip points already in the manifest
 *   --retries N             re-attempt a failed point up to N times
 *   --timeout-ms N          per-point deadline (needs LVA_JOBS >= 2)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace lva;

namespace {

struct Options
{
    std::string workload = "all";
    /** Flag handlers, replayed on top of every machine base. */
    std::vector<std::function<void(ApproxMemory::Config &)>> edits;
    std::vector<std::string> machineFiles;
    u32 seeds = 0;
    double scale = 0.0;
    SweepOptions sweep;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|all] [--mode "
                 "lva|lvp|prefetch|precise]\n"
                 "  [--ghb N] [--lhb N] [--table N] [--window F|inf]\n"
                 "  [--conf-ints] [--no-conf] [--proportional]\n"
                 "  [--degree N] [--delay N] [--mantissa-drop N]\n"
                 "  [--estimator average|last|stride]\n"
                 "  [--prefetch-degree N] [--seeds N] [--scale F]\n"
                 "  [--machine FILE]...\n"
                 "  [--checkpoint] [--resume] [--retries N]\n"
                 "  [--timeout-ms N]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    // Approximator-field edits touch the base approximator and every
    // per-core variant of a heterogeneous machine, so an explicit
    // flag overrides all of them (mirrors the RPC semantics).
    auto approxEdit = [&opt](auto fn) {
        opt.edits.push_back(
            [fn](ApproxMemory::Config &cfg) { cfg.editApprox(fn); });
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload") {
            opt.workload = need(i);
        } else if (arg == "--mode") {
            const std::string m = need(i);
            MemMode mode;
            if (m == "lva")
                mode = MemMode::Lva;
            else if (m == "lvp")
                mode = MemMode::Lvp;
            else if (m == "prefetch")
                mode = MemMode::Prefetch;
            else if (m == "precise")
                mode = MemMode::Precise;
            else
                usage(argv[0]);
            opt.edits.push_back(
                [mode](ApproxMemory::Config &cfg) { cfg.mode = mode; });
        } else if (arg == "--ghb") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.ghbEntries = v; });
        } else if (arg == "--lhb") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.lhbEntries = v; });
        } else if (arg == "--table") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.tableEntries = v; });
        } else if (arg == "--window") {
            const std::string w = need(i);
            const double v =
                (w == "inf") ? std::numeric_limits<double>::infinity()
                             : std::atof(w.c_str());
            approxEdit(
                [v](ApproximatorConfig &a) { a.confidenceWindow = v; });
        } else if (arg == "--conf-ints") {
            approxEdit(
                [](ApproximatorConfig &a) { a.confidenceForInts = true; });
        } else if (arg == "--no-conf") {
            approxEdit([](ApproximatorConfig &a) {
                a.confidenceDisabled = true;
            });
        } else if (arg == "--proportional") {
            approxEdit([](ApproximatorConfig &a) {
                a.proportionalConfidence = true;
            });
        } else if (arg == "--degree") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.approxDegree = v; });
        } else if (arg == "--delay") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.valueDelay = v; });
        } else if (arg == "--mantissa-drop") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            approxEdit(
                [v](ApproximatorConfig &a) { a.mantissaDropBits = v; });
        } else if (arg == "--estimator") {
            const std::string e = need(i);
            Estimator est;
            if (e == "average")
                est = Estimator::Average;
            else if (e == "last")
                est = Estimator::Last;
            else if (e == "stride")
                est = Estimator::Stride;
            else
                usage(argv[0]);
            approxEdit(
                [est](ApproximatorConfig &a) { a.estimator = est; });
        } else if (arg == "--prefetch-degree") {
            const u32 v = static_cast<u32>(std::atoi(need(i)));
            opt.edits.push_back([v](ApproxMemory::Config &cfg) {
                cfg.prefetch.degree = v;
            });
        } else if (arg == "--machine") {
            opt.machineFiles.push_back(need(i));
        } else if (arg == "--seeds") {
            opt.seeds = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--scale") {
            opt.scale = std::atof(need(i));
        } else if (arg == "--checkpoint") {
            opt.sweep.checkpoint = true;
        } else if (arg == "--resume") {
            opt.sweep.resume = true;
        } else if (arg == "--retries") {
            opt.sweep.maxAttempts =
                static_cast<u32>(std::atoi(need(i))) + 1;
        } else if (arg == "--timeout-ms") {
            opt.sweep.timeoutMs = static_cast<u64>(std::atoll(need(i)));
        } else {
            usage(argv[0]);
        }
    }
    opt.sweep.driver = "lva_explore";
    return opt;
}

/** One topology axis: a point label and the edited base config. */
struct Axis
{
    std::string label;
    ApproxMemory::Config cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);
    Evaluator eval(opt.seeds, opt.scale);

    // Resolve LVA_MACHINE (and the robustness knobs) up front: the
    // topology axis must be known before points are built.
    opt.sweep = resolveSweepOptions(opt.sweep);

    const std::string prefix = "explore@";
    std::vector<Axis> axes;
    if (!opt.machineFiles.empty()) {
        for (const std::string &file : opt.machineFiles) {
            try {
                auto m = std::make_shared<const MachineConfig>(
                    machineFromFile(file));
                axes.push_back({prefix + m->name, m->phase1Lva()});
                // A single explicit machine also scopes the sweep
                // manifest (the flag wins over LVA_MACHINE).
                if (opt.machineFiles.size() == 1)
                    opt.sweep.machine = m;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "lva_explore: %s\n", e.what());
                return 2;
            }
        }
        for (std::size_t i = 1; i < axes.size(); ++i)
            for (std::size_t j = 0; j < i; ++j)
                if (axes[i].label == axes[j].label) {
                    std::fprintf(stderr,
                                 "lva_explore: duplicate machine name "
                                 "'%s' -- give each --machine file a "
                                 "distinct \"name\"\n",
                                 axes[i].label.c_str() + prefix.size());
                    return 2;
                }
    } else if (opt.sweep.machine) {
        axes.push_back({prefix + opt.sweep.machine->name,
                        opt.sweep.machine->phase1Lva()});
    } else {
        axes.push_back({"explore", Evaluator::baselineLva()});
    }
    for (Axis &axis : axes)
        for (const auto &edit : opt.edits)
            edit(axis.cfg);

    std::vector<std::string> names;
    if (opt.workload == "all")
        names = allWorkloadNames();
    else
        names.push_back(opt.workload);

    const ApproxMemory::Config &shown = axes.front().cfg;
    std::printf("lva_explore: mode=%s ghb=%u lhb=%u table=%u "
                "window=%.3g degree=%u delay=%u estimator=%s "
                "seeds=%u scale=%.2f\n",
                memModeName(shown.mode), shown.approx.ghbEntries,
                shown.approx.lhbEntries, shown.approx.tableEntries,
                shown.approx.confidenceWindow, shown.approx.approxDegree,
                shown.approx.valueDelay,
                estimatorName(shown.approx.estimator), eval.seeds(),
                eval.scale());
    if (axes.front().label != "explore") {
        std::string joined;
        for (const Axis &axis : axes) {
            if (!joined.empty())
                joined += ",";
            joined += axis.label.substr(prefix.size());
        }
        std::printf("lva_explore: machines=%s\n", joined.c_str());
    }

    Table table({"benchmark", "MPKI", "norm MPKI", "norm fetches",
                 "coverage", "output error"});

    std::vector<SweepPoint> points;
    std::vector<std::string> rows;
    for (const Axis &axis : axes)
        for (const auto &name : names) {
            points.push_back({axis.label, name, axis.cfg});
            rows.push_back(axes.size() == 1
                               ? name
                               : name + "@" +
                                     axis.label.substr(prefix.size()));
        }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opt.sweep);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const EvalResult &r = outcome.results[i];
        table.addRow(
            {rows[i], fmtDouble(r.stats.valueOf("eval.mpki"), 3),
             fmtDouble(r.stats.valueOf("eval.normMpki"), 3),
             fmtDouble(r.stats.valueOf("eval.normFetches"), 3),
             fmtPercent(r.stats.valueOf("eval.coverage"), 1),
             fmtPercent(r.stats.valueOf("eval.outputError"), 1)});
    }
    table.print("results");
    std::printf(
        "wrote %s\n",
        exportSweepStats("lva_explore", points, outcome).c_str());
    return reportSweepFailures(outcome);
}
