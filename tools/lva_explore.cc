/**
 * @file
 * lva_explore — command-line design-space exploration.
 *
 * Runs any workload under any approximator configuration and prints
 * the phase-1 metrics, so new configurations can be explored without
 * writing code:
 *
 *   lva_explore --workload canneal --degree 4 --window 0.2
 *   lva_explore --workload ferret --mode lvp --ghb 2
 *   lva_explore --workload all --estimator stride --seeds 3
 *
 * Options (defaults = paper baseline):
 *   --workload NAME|all     benchmark to run          [all]
 *   --mode lva|lvp|prefetch|precise                   [lva]
 *   --ghb N                 global history entries    [0]
 *   --lhb N                 local history entries     [4]
 *   --table N               approximator table size   [512]
 *   --window F              confidence window (inf ok)[0.10]
 *   --conf-ints             apply confidence to ints  [off]
 *   --no-conf               disable confidence        [off]
 *   --proportional          proportional conf updates [off]
 *   --degree N              approximation degree      [0]
 *   --delay N               value delay (loads)       [4]
 *   --mantissa-drop N       FP hash mantissa bits cut [0]
 *   --estimator average|last|stride                   [average]
 *   --prefetch-degree N     (prefetch mode)           [4]
 *   --seeds N               averaging runs            [5]
 *   --scale F               working-set scale         [1.0]
 *
 * Robustness (DESIGN.md section 13):
 *   --checkpoint            record completed points in a manifest
 *   --resume                skip points already in the manifest
 *   --retries N             re-attempt a failed point up to N times
 *   --timeout-ms N          per-point deadline (needs LVA_JOBS >= 2)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "eval/sweep.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace lva;

namespace {

struct Options
{
    std::string workload = "all";
    ApproxMemory::Config cfg = Evaluator::baselineLva();
    u32 seeds = 0;
    double scale = 0.0;
    SweepOptions sweep;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|all] [--mode "
                 "lva|lvp|prefetch|precise]\n"
                 "  [--ghb N] [--lhb N] [--table N] [--window F|inf]\n"
                 "  [--conf-ints] [--no-conf] [--proportional]\n"
                 "  [--degree N] [--delay N] [--mantissa-drop N]\n"
                 "  [--estimator average|last|stride]\n"
                 "  [--prefetch-degree N] [--seeds N] [--scale F]\n"
                 "  [--checkpoint] [--resume] [--retries N]\n"
                 "  [--timeout-ms N]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload") {
            opt.workload = need(i);
        } else if (arg == "--mode") {
            const std::string m = need(i);
            if (m == "lva")
                opt.cfg.mode = MemMode::Lva;
            else if (m == "lvp")
                opt.cfg.mode = MemMode::Lvp;
            else if (m == "prefetch")
                opt.cfg.mode = MemMode::Prefetch;
            else if (m == "precise")
                opt.cfg.mode = MemMode::Precise;
            else
                usage(argv[0]);
        } else if (arg == "--ghb") {
            opt.cfg.approx.ghbEntries =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--lhb") {
            opt.cfg.approx.lhbEntries =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--table") {
            opt.cfg.approx.tableEntries =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--window") {
            const std::string w = need(i);
            opt.cfg.approx.confidenceWindow =
                (w == "inf")
                    ? std::numeric_limits<double>::infinity()
                    : std::atof(w.c_str());
        } else if (arg == "--conf-ints") {
            opt.cfg.approx.confidenceForInts = true;
        } else if (arg == "--no-conf") {
            opt.cfg.approx.confidenceDisabled = true;
        } else if (arg == "--proportional") {
            opt.cfg.approx.proportionalConfidence = true;
        } else if (arg == "--degree") {
            opt.cfg.approx.approxDegree =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--delay") {
            opt.cfg.approx.valueDelay =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--mantissa-drop") {
            opt.cfg.approx.mantissaDropBits =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--estimator") {
            const std::string e = need(i);
            if (e == "average")
                opt.cfg.approx.estimator = Estimator::Average;
            else if (e == "last")
                opt.cfg.approx.estimator = Estimator::Last;
            else if (e == "stride")
                opt.cfg.approx.estimator = Estimator::Stride;
            else
                usage(argv[0]);
        } else if (arg == "--prefetch-degree") {
            opt.cfg.prefetch.degree =
                static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--seeds") {
            opt.seeds = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--scale") {
            opt.scale = std::atof(need(i));
        } else if (arg == "--checkpoint") {
            opt.sweep.checkpoint = true;
        } else if (arg == "--resume") {
            opt.sweep.resume = true;
        } else if (arg == "--retries") {
            opt.sweep.maxAttempts =
                static_cast<u32>(std::atoi(need(i))) + 1;
        } else if (arg == "--timeout-ms") {
            opt.sweep.timeoutMs =
                static_cast<u64>(std::atoll(need(i)));
        } else {
            usage(argv[0]);
        }
    }
    opt.sweep.driver = "lva_explore";
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    Evaluator eval(opt.seeds, opt.scale);

    std::vector<std::string> names;
    if (opt.workload == "all")
        names = allWorkloadNames();
    else
        names.push_back(opt.workload);

    std::printf("lva_explore: mode=%s ghb=%u lhb=%u table=%u "
                "window=%.3g degree=%u delay=%u estimator=%s "
                "seeds=%u scale=%.2f\n",
                memModeName(opt.cfg.mode), opt.cfg.approx.ghbEntries,
                opt.cfg.approx.lhbEntries,
                opt.cfg.approx.tableEntries,
                opt.cfg.approx.confidenceWindow,
                opt.cfg.approx.approxDegree,
                opt.cfg.approx.valueDelay,
                estimatorName(opt.cfg.approx.estimator), eval.seeds(),
                eval.scale());

    Table table({"benchmark", "MPKI", "norm MPKI", "norm fetches",
                 "coverage", "output error"});

    std::vector<SweepPoint> points;
    for (const auto &name : names)
        points.push_back({"explore", name, opt.cfg});

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opt.sweep);

    for (std::size_t i = 0; i < names.size(); ++i) {
        const EvalResult &r = outcome.results[i];
        table.addRow(
            {names[i], fmtDouble(r.stats.valueOf("eval.mpki"), 3),
             fmtDouble(r.stats.valueOf("eval.normMpki"), 3),
             fmtDouble(r.stats.valueOf("eval.normFetches"), 3),
             fmtPercent(r.stats.valueOf("eval.coverage"), 1),
             fmtPercent(r.stats.valueOf("eval.outputError"), 1)});
    }
    table.print("results");
    std::printf("wrote %s\n",
                exportSweepStats("lva_explore", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
