/**
 * @file
 * lva_fleet — accept-and-dispatch frontend for a fleet of lva_served
 * workers (docs/serving.md, "The fleet").
 *
 * The frontend binds one localhost port, spawns N lva_served workers
 * on ephemeral ports, and forwards each lva-rpc-v1 frame to the
 * worker chosen by a rendezvous hash of the request's routing key
 * (the workload set for eval/sweep, the op name for control ops) —
 * so every request needing a given workload's golden runs lands on
 * the shard whose cache already holds them. Responses are relayed
 * byte-for-byte: a fleet of any size answers exactly what one
 * lva_served would, which is what serve_smoke.sh pins.
 *
 *   lva_fleet --fleet 3                      # 3 workers, printed port
 *   lva_fleet --fleet 3 --cache 2 --jobs 2   # worker pass-through
 *
 * Options (defaults from the LVA_FLEET_* / LVA_SERVE_* knobs):
 *   --fleet N        worker processes (LVA_FLEET_SIZE)     [2]
 *   --port N         frontend port; 0 = ephemeral          [0]
 *   --served PATH    worker binary (LVA_FLEET_SERVED)
 *                    [lva_served next to this binary]
 *   --workers, --queue, --deadline-ms, --retries, --jobs,
 *   --cache, --seeds, --scale: forwarded to every worker.
 *
 * Supervision: a worker that dies (e.g. an LVA_FAULT abort) is
 * detected on the next request routed to it, respawned on a fresh
 * port, and the request is retried there — the caller just sees a
 * slightly slower, byte-identical response. LVA_FLEET_FAULT arms
 * LVA_FAULT in a worker's *first* incarnation only ("<idx|*>:<spec>"),
 * so an injected kill cannot re-fire in the respawned process.
 *
 * SIGTERM / SIGINT / a `shutdown` request drain: stop accepting,
 * finish in-flight relays, shut every worker down, reap them, exit 0.
 */

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/service.hh"
#include "util/env_knob.hh"
#include "util/logging.hh"
#include "util/net.hh"

using namespace lva;

namespace {

/** Signal flag: the accept loop polls it (one relaxed load per tick). */
std::atomic<bool> g_stop{false}; // lva-lint: allow(no-mutable-global)

extern "C" void
onStopSignal(int)
{
    g_stop.store(true);
}

struct Options
{
    u32 fleet = 0;       ///< worker count (0 = LVA_FLEET_SIZE, then 2)
    u16 port = 0;        ///< frontend port (0 = ephemeral)
    std::string served;  ///< worker binary path
    /** Flags forwarded verbatim to every worker. */
    std::vector<std::string> passThrough;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--fleet N] [--port N] [--served PATH]\n"
                 "  [--workers N] [--queue N] [--deadline-ms N]\n"
                 "  [--retries N] [--jobs N] [--cache N] [--seeds N]\n"
                 "  [--scale F]\n",
                 argv0);
    std::exit(2);
}

std::string
defaultServedPath()
{
    // String-valued binary path. lva-audit: allow(knob-unvalidated)
    if (const char *env = std::getenv("LVA_FLEET_SERVED"))
        return env;
    // Sibling of this binary: build/tools/lva_fleet -> .../lva_served.
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string self(buf);
        const std::size_t slash = self.rfind('/');
        if (slash != std::string::npos)
            return self.substr(0, slash + 1) + "lva_served";
    }
    return "lva_served";
}

Options
parse(int argc, char **argv)
{
    Options opt;
    // Strict parse (util/env_knob.hh): "2x" or "-1" warn and keep the
    // default instead of silently becoming 2 or wrapping.
    opt.fleet = static_cast<u32>(envKnobU64("LVA_FLEET_SIZE", 0, 1, 64));
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fleet") {
            opt.fleet = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--port") {
            opt.port = static_cast<u16>(std::atoi(need(i)));
        } else if (arg == "--served") {
            opt.served = need(i);
        } else if (arg == "--workers" || arg == "--queue" ||
                   arg == "--deadline-ms" || arg == "--retries" ||
                   arg == "--jobs" || arg == "--cache" ||
                   arg == "--seeds" || arg == "--scale") {
            opt.passThrough.push_back(arg);
            opt.passThrough.push_back(need(i));
        } else {
            usage(argv[0]);
        }
    }
    if (opt.fleet == 0)
        opt.fleet = 2;
    if (opt.served.empty())
        opt.served = defaultServedPath();
    return opt;
}

/**
 * The fault armed for one worker's first incarnation, from
 * LVA_FLEET_FAULT="<idx|*>:<spec>" ("" = none). Respawns never
 * inherit it — that is the whole point of routing the injection
 * through the frontend instead of plain LVA_FAULT.
 */
std::string
firstIncarnationFault(u32 index)
{
    // String-valued fault routing spec, validated right below.
    // lva-audit: allow(knob-unvalidated)
    const char *env = std::getenv("LVA_FLEET_FAULT");
    if (!env || !*env)
        return "";
    const std::string spec(env);
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        lva_warn("ignoring malformed LVA_FLEET_FAULT=\"%s\"", env);
        return "";
    }
    const std::string target = spec.substr(0, colon);
    if (target != "*" && target != std::to_string(index))
        return "";
    return spec.substr(colon + 1);
}

/** One supervised lva_served process. */
struct Worker
{
    pid_t pid = -1;
    u16 port = 0;
    int pipeFd = -1;      ///< read end of the worker's stdout
    u32 incarnation = 0;  ///< 0 = first spawn, >0 = respawn
};

/**
 * Wait for the worker's "listening on 127.0.0.1:<port>" line on
 * @p fd (its stdout pipe) and return the port; 0 on timeout/EOF.
 */
u16
readWorkerPort(int fd, u64 timeoutMs)
{
    std::string buf;
    for (;;) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int r = ::poll(&pfd, 1, static_cast<int>(timeoutMs));
        if (r <= 0)
            return 0;
        char chunk[256];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            return 0;
        buf.append(chunk, static_cast<std::size_t>(n));
        const std::size_t at = buf.find("127.0.0.1:");
        if (at != std::string::npos) {
            const std::size_t digits = at + std::strlen("127.0.0.1:");
            if (buf.find('\n', digits) == std::string::npos)
                continue; // port digits may still be in flight
            return static_cast<u16>(
                std::atoi(buf.c_str() + digits));
        }
    }
}

/** The supervised fleet: spawn, route, respawn, drain. */
class Fleet
{
  public:
    explicit Fleet(const Options &opt) : opt_(opt), workers_(opt.fleet) {}

    ~Fleet()
    {
        for (Worker &w : workers_) {
            if (w.pipeFd >= 0)
                ::close(w.pipeFd);
        }
    }

    void
    spawnAll()
    {
        for (u32 i = 0; i < workers_.size(); ++i)
            spawn(i);
    }

    /**
     * Forward @p request to the worker owning @p shard and return the
     * response verbatim. Detects a dead worker (connect refused +
     * waitpid says exited), respawns it, and retries there — bounded,
     * so a permanently broken worker binary still fails loudly.
     */
    std::string
    forward(u32 shard, const std::string &request, u64 timeoutMs)
    {
        std::string lastError;
        for (u32 attempt = 0; attempt < 10; ++attempt) {
            u16 port;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                reapAndRespawnLocked(shard);
                port = workers_[shard].port;
            }
            try {
                TcpStream conn =
                    TcpStream::connectTo("127.0.0.1", port, timeoutMs);
                writeFrame(conn, request, timeoutMs);
                std::string response;
                if (readFrame(conn, response, timeoutMs))
                    return response;
                lastError = "worker closed without a response";
            } catch (const NetError &e) {
                lastError = e.what();
            }
            // Either the worker died mid-request (respawned on the
            // next iteration) or it is still booting; a short fixed
            // pause keeps the retry loop polite and deterministic.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        throw NetError("worker " + std::to_string(shard) +
                       " unreachable: " + lastError);
    }

    /** Send @p request to every worker; returns the last response. */
    std::string
    broadcast(const std::string &request, u64 timeoutMs)
    {
        std::string response;
        for (u32 i = 0; i < workers_.size(); ++i) {
            try {
                response = forward(i, request, timeoutMs);
            } catch (const std::exception &e) {
                lva_warn("fleet: broadcast to worker %u: %s", i,
                         e.what());
            }
        }
        return response;
    }

    /** Reap every worker (after shutdown frames were sent). */
    void
    reapAll()
    {
        for (Worker &w : workers_) {
            if (w.pid > 0) {
                int st = 0;
                ::waitpid(w.pid, &st, 0);
                w.pid = -1;
            }
        }
    }

    u32 size() const { return static_cast<u32>(workers_.size()); }

  private:
    /**
     * Fork+exec worker @p index on an ephemeral port; its stdout
     * becomes a pipe the frontend parses the port from (and keeps
     * open for the worker's lifetime — the worker writes its drain
     * line there at exit and must not take SIGPIPE).
     */
    void
    spawn(u32 index)
    {
        Worker &w = workers_[index];
        if (w.pipeFd >= 0) {
            ::close(w.pipeFd);
            w.pipeFd = -1;
        }

        int fds[2];
        if (::pipe(fds) != 0)
            lva_fatal("fleet: pipe: %s", std::strerror(errno));

        const std::string fault =
            w.incarnation == 0 ? firstIncarnationFault(index) : "";

        const pid_t pid = ::fork();
        if (pid < 0)
            lva_fatal("fleet: fork: %s", std::strerror(errno));
        if (pid == 0) {
            ::close(fds[0]);
            ::dup2(fds[1], STDOUT_FILENO);
            ::close(fds[1]);
            if (!fault.empty())
                ::setenv("LVA_FAULT", fault.c_str(), 1);
            else
                ::unsetenv("LVA_FAULT");
            // The frontend owns fleet policy; a worker must never
            // recurse into fleet spawning via inherited knobs.
            ::unsetenv("LVA_FLEET_FAULT");
            ::unsetenv("LVA_SERVE_PORT");

            std::vector<const char *> args;
            args.push_back(opt_.served.c_str());
            args.push_back("--port");
            args.push_back("0");
            for (const std::string &a : opt_.passThrough)
                args.push_back(a.c_str());
            args.push_back(nullptr);
            ::execv(opt_.served.c_str(),
                    const_cast<char *const *>(args.data()));
            std::fprintf(stderr, "fleet: exec %s: %s\n",
                         opt_.served.c_str(), std::strerror(errno));
            ::_Exit(127);
        }

        ::close(fds[1]);
        w.pid = pid;
        w.pipeFd = fds[0];
        w.port = readWorkerPort(fds[0], 30000);
        if (w.port == 0)
            lva_fatal("fleet: worker %u did not announce a port",
                      index);
        std::fprintf(stderr,
                     "lva_fleet: worker %u (incarnation %u) pid %d "
                     "on 127.0.0.1:%u\n",
                     index, w.incarnation, static_cast<int>(pid),
                     static_cast<unsigned>(w.port));
        ++w.incarnation;
    }

    /** If worker @p index exited, log and respawn it. Lock held. */
    void
    reapAndRespawnLocked(u32 index)
    {
        Worker &w = workers_[index];
        if (w.pid <= 0)
            return;
        int st = 0;
        if (::waitpid(w.pid, &st, WNOHANG) == w.pid) {
            lva_warn("fleet: worker %u (pid %d) exited with status "
                     "%d; respawning",
                     index, static_cast<int>(w.pid),
                     WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st));
            w.pid = -1;
            spawn(index);
        }
    }

    Options opt_;
    std::mutex mutex_; ///< guards the worker table across relays
    std::vector<Worker> workers_;
};

/** Relay every frame on @p conn to its routed worker. */
void
serveConnection(Fleet &fleet, TcpStream conn, u64 timeoutMs,
                std::atomic<bool> &shutdownSeen)
{
    try {
        std::string request;
        while (readFrame(conn, request, timeoutMs)) {
            const std::string key = fleetRouteKey(request);
            std::string response;
            if (key == "op:shutdown") {
                response = fleet.broadcast(request, timeoutMs);
                if (response.empty())
                    response = busyResponse();
                shutdownSeen.store(true);
                g_stop.store(true);
            } else {
                response = fleet.forward(
                    fleetShard(key, fleet.size()), request, timeoutMs);
            }
            writeFrame(conn, response, timeoutMs);
            if (g_stop.load())
                break;
        }
    } catch (const std::exception &e) {
        lva_warn("fleet: connection: %s", e.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    Fleet fleet(opt);
    fleet.spawnAll();

    TcpListener listener(opt.port);

    // Scripts parse this line for the (possibly ephemeral) port, so
    // it must land before the accept loop starts; same contract as
    // lva_served.
    std::printf("lva_fleet: listening on 127.0.0.1:%u (fleet=%u)\n",
                static_cast<unsigned>(listener.port()), fleet.size());
    std::fflush(stdout);

    const u64 kRelayTimeoutMs = 600000;
    std::atomic<bool> shutdownSeen{false};
    std::vector<std::thread> relays;
    while (!g_stop.load()) {
        TcpStream conn;
        try {
            // Short poll so stop signals are observed promptly.
            conn = listener.acceptOne(200);
        } catch (const std::exception &e) {
            lva_warn("fleet: accept: %s", e.what());
            continue;
        }
        if (!conn.valid())
            continue;
        relays.emplace_back([&fleet, &shutdownSeen,
                             c = std::move(conn)]() mutable {
            serveConnection(fleet, std::move(c), kRelayTimeoutMs,
                            shutdownSeen);
        });
    }

    for (std::thread &t : relays)
        t.join();

    // Drain the workers: a relayed `shutdown` already reached them
    // all; a signal-initiated stop still owes them the frame.
    if (!shutdownSeen.load()) {
        const std::string req =
            std::string("{\"schema\":\"lva-rpc-v1\","
                        "\"op\":\"shutdown\"}");
        fleet.broadcast(req, 10000);
    }
    fleet.reapAll();

    std::printf("lva_fleet: drained, exiting\n");
    return 0;
}
