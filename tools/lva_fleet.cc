/**
 * @file
 * lva_fleet — accept-and-dispatch frontend for a fleet of lva_served
 * workers (docs/serving.md, "The fleet").
 *
 * The frontend binds one localhost port, spawns N lva_served workers
 * on ephemeral ports, and forwards each lva-rpc-v1 frame to the
 * worker chosen by a rendezvous hash of the request's routing key
 * (the workload set for eval/sweep, the op name for control ops) —
 * so every request needing a given workload's golden runs lands on
 * the shard whose cache already holds them. Responses are relayed
 * byte-for-byte: a fleet of any size answers exactly what one
 * lva_served would, which is what serve_smoke.sh pins.
 *
 *   lva_fleet --fleet 3                      # 3 workers, printed port
 *   lva_fleet --fleet 3 --cache 2 --jobs 2   # worker pass-through
 *
 * Options (defaults from the LVA_FLEET_* / LVA_SERVE_* knobs):
 *   --fleet N        worker processes (LVA_FLEET_SIZE)     [2]
 *   --port N         frontend port; 0 = ephemeral          [0]
 *   --served PATH    worker binary (LVA_FLEET_SERVED)
 *                    [lva_served next to this binary]
 *   --workers, --queue, --deadline-ms, --retries, --jobs,
 *   --cache, --seeds, --scale: forwarded to every worker.
 *
 * Supervision: a worker that dies (e.g. an LVA_FAULT abort) is
 * detected on the next request routed to it, respawned on a fresh
 * port, and the request is retried there — the caller just sees a
 * slightly slower, byte-identical response. LVA_FLEET_FAULT arms
 * LVA_FAULT in a worker's *first* incarnation only ("<idx|*>:<spec>"),
 * so an injected kill cannot re-fire in the respawned process.
 *
 * SIGTERM / SIGINT / a `shutdown` request drain: stop accepting,
 * finish in-flight relays, shut every worker down, reap them with a
 * bounded wait (a wedged worker is SIGKILLed after a deadline rather
 * than hanging the drain), exit 0.
 */

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/service.hh"
#include "fleet_common.hh"
#include "util/env_knob.hh"
#include "util/logging.hh"
#include "util/net.hh"

using namespace lva;

namespace {

/** Signal flag: the accept loop polls it (one relaxed load per tick). */
std::atomic<bool> g_stop{false}; // lva-lint: allow(no-mutable-global)

extern "C" void
onStopSignal(int)
{
    g_stop.store(true);
}

struct Options
{
    u32 fleet = 0;       ///< worker count (0 = LVA_FLEET_SIZE, then 2)
    u16 port = 0;        ///< frontend port (0 = ephemeral)
    std::string served;  ///< worker binary path
    /** Flags forwarded verbatim to every worker. */
    std::vector<std::string> passThrough;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--fleet N] [--port N] [--served PATH]\n"
                 "  [--workers N] [--queue N] [--deadline-ms N]\n"
                 "  [--retries N] [--jobs N] [--cache N] [--seeds N]\n"
                 "  [--scale F]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    // Strict parse (util/env_knob.hh): "2x" or "-1" warn and keep the
    // default instead of silently becoming 2 or wrapping.
    opt.fleet = static_cast<u32>(envKnobU64("LVA_FLEET_SIZE", 0, 1, 64));
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fleet") {
            opt.fleet = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--port") {
            opt.port = static_cast<u16>(std::atoi(need(i)));
        } else if (arg == "--served") {
            opt.served = need(i);
        } else if (arg == "--workers" || arg == "--queue" ||
                   arg == "--deadline-ms" || arg == "--retries" ||
                   arg == "--jobs" || arg == "--cache" ||
                   arg == "--seeds" || arg == "--scale") {
            opt.passThrough.push_back(arg);
            opt.passThrough.push_back(need(i));
        } else {
            usage(argv[0]);
        }
    }
    if (opt.fleet == 0)
        opt.fleet = 2;
    if (opt.served.empty())
        opt.served = fleet::defaultServedPath();
    return opt;
}

using fleet::Worker;

/** The supervised fleet: spawn, route, respawn, drain. */
class Fleet
{
  public:
    explicit Fleet(const Options &opt) : opt_(opt), workers_(opt.fleet) {}

    ~Fleet()
    {
        for (Worker &w : workers_) {
            if (w.pipeFd >= 0)
                ::close(w.pipeFd);
        }
    }

    void
    spawnAll()
    {
        for (u32 i = 0; i < workers_.size(); ++i)
            spawn(i);
    }

    /**
     * Forward @p request to the worker owning @p shard and return the
     * response verbatim. Detects a dead worker (connect refused +
     * waitpid says exited), respawns it, and retries there — bounded,
     * so a permanently broken worker binary still fails loudly.
     */
    std::string
    forward(u32 shard, const std::string &request, u64 timeoutMs)
    {
        std::string lastError;
        for (u32 attempt = 0; attempt < 10; ++attempt) {
            u16 port;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                reapAndRespawnLocked(shard);
                port = workers_[shard].port;
            }
            try {
                TcpStream conn =
                    TcpStream::connectTo("127.0.0.1", port, timeoutMs);
                writeFrame(conn, request, timeoutMs);
                std::string response;
                if (readFrame(conn, response, timeoutMs))
                    return response;
                lastError = "worker closed without a response";
            } catch (const NetError &e) {
                lastError = e.what();
            }
            // Either the worker died mid-request (respawned on the
            // next iteration) or it is still booting; a short fixed
            // pause keeps the retry loop polite and deterministic.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        throw NetError("worker " + std::to_string(shard) +
                       " unreachable: " + lastError);
    }

    /** Send @p request to every worker; returns the last response. */
    std::string
    broadcast(const std::string &request, u64 timeoutMs)
    {
        std::string response;
        for (u32 i = 0; i < workers_.size(); ++i) {
            try {
                response = forward(i, request, timeoutMs);
            } catch (const std::exception &e) {
                lva_warn("fleet: broadcast to worker %u: %s", i,
                         e.what());
            }
        }
        return response;
    }

    /**
     * Drain every worker: one best-effort shutdown frame each (when
     * @p sendShutdown; a wedged worker just times the frame out),
     * then a bounded reap that escalates to SIGKILL after
     * @p reapDeadlineMs — so SIGTERM drain always terminates even
     * with a hung worker.
     */
    void
    drainAll(bool sendShutdown, u64 frameTimeoutMs, u64 reapDeadlineMs)
    {
        if (sendShutdown) {
            const std::string req = "{\"schema\":\"lva-rpc-v1\","
                                    "\"op\":\"shutdown\"}";
            for (u32 i = 0; i < workers_.size(); ++i) {
                Worker &w = workers_[i];
                if (w.pid <= 0)
                    continue;
                try {
                    TcpStream conn = TcpStream::connectTo(
                        "127.0.0.1", w.port, frameTimeoutMs);
                    writeFrame(conn, req, frameTimeoutMs);
                    std::string response;
                    readFrame(conn, response, frameTimeoutMs);
                } catch (const std::exception &e) {
                    // Dead or wedged either way; the bounded reap
                    // below settles it.
                    lva_warn("fleet: shutdown frame to worker %u: %s",
                             i, e.what());
                }
            }
        }
        for (u32 i = 0; i < workers_.size(); ++i) {
            Worker &w = workers_[i];
            if (w.pid <= 0)
                continue;
            fleet::reapBounded(w.pid, reapDeadlineMs,
                               "fleet: worker " + std::to_string(i) +
                                   " (pid " +
                                   std::to_string(w.pid) + ")");
            w.pid = -1;
        }
    }

    u32 size() const { return static_cast<u32>(workers_.size()); }

  private:
    /** Spawn worker @p index via the shared fleet helper. */
    void
    spawn(u32 index)
    {
        fleet::spawnWorker(opt_.served, opt_.passThrough, index,
                           workers_[index], "lva_fleet");
    }

    /** If worker @p index exited, log and respawn it. Lock held. */
    void
    reapAndRespawnLocked(u32 index)
    {
        Worker &w = workers_[index];
        if (w.pid <= 0)
            return;
        int st = 0;
        if (::waitpid(w.pid, &st, WNOHANG) == w.pid) {
            lva_warn("fleet: worker %u (pid %d) exited with status "
                     "%d; respawning",
                     index, static_cast<int>(w.pid),
                     WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st));
            w.pid = -1;
            spawn(index);
        }
    }

    Options opt_;
    std::mutex mutex_; ///< guards the worker table across relays
    std::vector<Worker> workers_;
};

/** Relay every frame on @p conn to its routed worker. */
void
serveConnection(Fleet &fleet, TcpStream conn, u64 timeoutMs,
                std::atomic<bool> &shutdownSeen)
{
    try {
        std::string request;
        while (readFrame(conn, request, timeoutMs)) {
            const std::string key = fleetRouteKey(request);
            std::string response;
            if (key == "op:shutdown") {
                response = fleet.broadcast(request, timeoutMs);
                if (response.empty())
                    response = busyResponse();
                shutdownSeen.store(true);
                g_stop.store(true);
            } else {
                response = fleet.forward(
                    fleetShard(key, fleet.size()), request, timeoutMs);
            }
            writeFrame(conn, response, timeoutMs);
            if (g_stop.load())
                break;
        }
    } catch (const std::exception &e) {
        lva_warn("fleet: connection: %s", e.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    Fleet fleet(opt);
    fleet.spawnAll();

    TcpListener listener(opt.port);

    // Scripts parse this line for the (possibly ephemeral) port, so
    // it must land before the accept loop starts; same contract as
    // lva_served.
    std::printf("lva_fleet: listening on 127.0.0.1:%u (fleet=%u)\n",
                static_cast<unsigned>(listener.port()), fleet.size());
    std::fflush(stdout);

    const u64 kRelayTimeoutMs = 600000;
    std::atomic<bool> shutdownSeen{false};
    std::vector<std::thread> relays;
    while (!g_stop.load()) {
        TcpStream conn;
        try {
            // Short poll so stop signals are observed promptly.
            conn = listener.acceptOne(200);
        } catch (const std::exception &e) {
            lva_warn("fleet: accept: %s", e.what());
            continue;
        }
        if (!conn.valid())
            continue;
        relays.emplace_back([&fleet, &shutdownSeen,
                             c = std::move(conn)]() mutable {
            serveConnection(fleet, std::move(c), kRelayTimeoutMs,
                            shutdownSeen);
        });
    }

    for (std::thread &t : relays)
        t.join();

    // Drain the workers: a relayed `shutdown` already reached them
    // all; a signal-initiated stop still owes them the frame. Either
    // way the reap is bounded, so a wedged worker is SIGKILLed
    // instead of hanging the drain.
    fleet.drainAll(!shutdownSeen.load(), 2000, 2000);

    std::printf("lva_fleet: drained, exiting\n");
    return 0;
}
