/**
 * @file
 * lva-audit driver: builds one project model of the whole repository
 * (tools/analyze) and runs the cross-file analyses — include
 * layering, stat/knob/fault-site registries, lock-order graph — that
 * the per-file lva_lint pass cannot see.  Findings print gcc-style;
 * exit status: 0 clean, 1 findings, 2 usage/IO error.
 *
 * Usage:
 *   lva_audit [--root DIR] [--compdb FILE] [--baseline FILE]
 *             [--exclude PREFIX]... [--rules]
 *
 *   The model is built from src/ tools/ bench/ tests/ (C++ sources)
 *   plus scripts/ .github/ docs/ README.md DESIGN.md (reference
 *   scans) under --root.  --compdb additionally merges the file list
 *   of a compilation database (CI parity with lva_lint).  --baseline
 *   defaults to tools/analyze/audit_baseline.txt under the root when
 *   present; stale entries are findings, so the baseline only ever
 *   shrinks.  Suppress intentional hits in source with
 *   // lva-audit: allow(<rule>) or begin-allow/end-allow fences.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/audit.hh"
#include "analyze/loader.hh"

namespace fs = std::filesystem;

namespace {

struct Args
{
    std::string root = ".";
    std::string compdb;
    std::string baseline;
    std::vector<std::string> excludes;
    bool rules = false;
};

std::string
readFile(const fs::path &p, bool &ok)
{
    std::ifstream in(p, std::ios::binary);
    ok = static_cast<bool>(in);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Pull the "file" entries out of a compile_commands.json. */
std::vector<std::string>
compdbFiles(const std::string &dbPath, bool &ok)
{
    std::string text = readFile(dbPath, ok);
    std::vector<std::string> files;
    if (!ok)
        return files;
    static const std::regex entry(
        R"re("file"\s*:\s*"((?:[^"\\]|\\.)*)")re");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        entry);
         it != std::sregex_iterator(); ++it) {
        std::string f = (*it)[1].str();
        std::string clean;
        for (std::size_t i = 0; i < f.size(); ++i) {
            if (f[i] == '\\' && i + 1 < f.size())
                ++i;
            clean += f[i];
        }
        files.push_back(clean);
    }
    return files;
}

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--root DIR] [--compdb FILE] [--baseline FILE]"
                 " [--exclude PREFIX]... [--rules]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "lva_audit: " << flag
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--rules") {
            args.rules = true;
        } else if (a == "--root") {
            const char *v = value("--root");
            if (!v)
                return 2;
            args.root = v;
        } else if (a == "--compdb") {
            const char *v = value("--compdb");
            if (!v)
                return 2;
            args.compdb = v;
        } else if (a == "--baseline") {
            const char *v = value("--baseline");
            if (!v)
                return 2;
            args.baseline = v;
        } else if (a == "--exclude") {
            const char *v = value("--exclude");
            if (!v)
                return 2;
            args.excludes.push_back(v);
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "lva_audit: unknown argument " << a << "\n";
            return usage(argv[0]);
        }
    }

    if (args.rules) {
        std::cout << "lva-audit rules (suppress with"
                     " // lva-audit: allow(<rule>)):\n";
        for (const auto &r : lva::audit::auditRuleCatalog()) {
            std::cout << "  " << r.id << "\n    scope: " << r.scope
                      << "\n    " << r.summary << "\n";
        }
        return 0;
    }

    lva::audit::LoadOptions opts;
    for (const std::string &e : args.excludes)
        opts.excludes.push_back(e);
    if (!args.compdb.empty()) {
        bool ok = false;
        opts.extraSources = compdbFiles(args.compdb, ok);
        if (!ok) {
            std::cerr << "lva_audit: cannot read " << args.compdb
                      << "\n";
            return 2;
        }
    }

    lva::audit::LoadResult loaded =
        lva::audit::loadProject(args.root, opts);
    for (const std::string &e : loaded.errors)
        std::cerr << "lva_audit: cannot read " << e << "\n";
    if (!loaded.errors.empty())
        return 2;
    if (loaded.project.sources.empty()) {
        std::cerr << "lva_audit: no sources under " << args.root
                  << "\n";
        return 2;
    }

    // Baseline: explicit flag, else the committed default when present.
    lva::audit::Baseline baseline;
    bool haveBaseline = false;
    std::string baselinePath = args.baseline;
    if (baselinePath.empty()) {
        const fs::path def = fs::path(args.root) /
                             "tools/analyze/audit_baseline.txt";
        std::error_code ec;
        if (fs::is_regular_file(def, ec))
            baselinePath = def.string();
    }
    if (!baselinePath.empty()) {
        bool ok = false;
        const std::string content = readFile(baselinePath, ok);
        if (!ok) {
            std::cerr << "lva_audit: cannot read " << baselinePath
                      << "\n";
            return 2;
        }
        baseline = lva::audit::parseBaseline(
            "tools/analyze/audit_baseline.txt", content);
        haveBaseline = true;
    }

    const std::vector<lva::lint::Finding> findings =
        lva::audit::runAudit(loaded.project,
                             haveBaseline ? &baseline : nullptr);
    for (const auto &f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";

    const std::size_t files = loaded.project.sources.size() +
                              loaded.project.texts.size();
    if (findings.empty()) {
        std::cout << "lva-audit: " << files << " files clean\n";
        return 0;
    }
    std::cout << "lva-audit: " << findings.size()
              << " finding(s) across " << files
              << " files (suppress intentional hits with"
                 " // lva-audit: allow(<rule>))\n";
    return 1;
}
