/**
 * @file
 * lva_served — the long-lived evaluation daemon (docs/serving.md).
 *
 * Binds a localhost TCP port, speaks the length-prefixed lva-rpc-v1
 * protocol, and serves eval/sweep requests from one shared Evaluator +
 * SweepRunner, so golden (precise) baseline runs are paid once per
 * (workload, seed) across every request instead of once per bench
 * invocation:
 *
 *   lva_served --port 7777
 *   lva_served --port 0 --workers 4        # ephemeral port, printed
 *   LVA_SEEDS=1 LVA_SCALE=0.05 lva_served  # quick smoke daemon
 *
 * Options (defaults from the LVA_SERVE_* knobs, see README):
 *   --port N         TCP port on 127.0.0.1; 0 = ephemeral [0]
 *   --workers N      connection-handler threads           [2]
 *   --queue N        waiting connections before `busy`    [16]
 *   --deadline-ms N  per-connection wire deadline         [10000]
 *   --retries N      extra isolated attempts per request  [0]
 *   --jobs N         sweep worker threads (0 = LVA_JOBS)  [0]
 *   --cache N        golden-cache entries (0 = unbounded) [0]
 *   --seeds N        evaluator seeds (0 = LVA_SEEDS)      [0]
 *   --scale F        workload scale (0 = LVA_SCALE)       [0]
 *
 * SIGTERM / SIGINT drain: the daemon stops accepting, finishes every
 * in-flight request, and exits 0. A `shutdown` request does the same.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/service.hh"
#include "util/logging.hh"

using namespace lva;

namespace {

/**
 * The loop the signal handler must reach. A mutable global is the
 * only channel into a signal handler; requestStop() is one lock-free
 * atomic store, so the handler stays async-signal-safe.
 */
ServeLoop *g_loop = nullptr; // lva-lint: allow(no-mutable-global)

extern "C" void
onStopSignal(int)
{
    if (g_loop)
        g_loop->requestStop();
}

struct Options
{
    ServeOptions serve;
    u32 seeds = 0;
    double scale = 0.0;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--port N] [--workers N] [--queue N]\n"
                 "  [--deadline-ms N] [--retries N] [--jobs N]\n"
                 "  [--cache N] [--seeds N] [--scale F]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port") {
            opt.serve.port = static_cast<u16>(std::atoi(need(i)));
        } else if (arg == "--workers") {
            opt.serve.workers = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--queue") {
            opt.serve.queueCap = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--deadline-ms") {
            opt.serve.deadlineMs =
                static_cast<u64>(std::atoll(need(i)));
        } else if (arg == "--retries") {
            opt.serve.maxAttempts =
                static_cast<u32>(std::atoi(need(i))) + 1;
        } else if (arg == "--jobs") {
            opt.serve.jobs = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--cache") {
            opt.serve.cacheCap =
                static_cast<u64>(std::atoll(need(i)));
        } else if (arg == "--seeds") {
            opt.seeds = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--scale") {
            opt.scale = std::atof(need(i));
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    EvalService service(opt.seeds, opt.scale, opt.serve);
    ServeLoop loop(service, opt.serve);
    g_loop = &loop;

    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    // Scripts parse this line for the (possibly ephemeral) port, so
    // it must land before the blocking serve loop starts.
    std::printf("lva_served: listening on 127.0.0.1:%u "
                "(jobs=%u seeds=%u scale=%.2f)\n",
                static_cast<unsigned>(loop.port()), service.jobs(),
                service.evaluator().seeds(),
                service.evaluator().scale());
    std::fflush(stdout);

    loop.run();
    g_loop = nullptr;

    std::printf("lva_served: drained, exiting\n");
    return 0;
}
