/**
 * @file
 * lva_stats_catalog — registry self-dump for the metric catalog.
 *
 * Instantiates every registry-backed component (ApproxMemory in all
 * four modes, the full-system simulator with and without LVA and the
 * heterogeneous NoC) plus the derived-metric catalogs, and prints one
 * line per distinct stat path:
 *
 *   <path>\t<type>\t<unit>\t<description>
 *
 * Per-instance indices are normalized to placeholders (thread0 ->
 * thread<N>, core2 -> core<N>, l2.bank1 -> l2.bank<N>) so the dump is
 * independent of the configured core/thread/bank counts.
 *
 * scripts/check_docs.sh diffs this output against docs/metrics.md in
 * both directions: every documented path must exist in a registry and
 * every registered path must be documented.
 *
 * --machine-schema switches to a second catalog: one line per
 * lva-machine-v1 configuration key (src/sim/machine_config.cc), which
 * the same script diffs against the key table in docs/topology.md.
 */

#include <algorithm>
#include <cstdio>
#include <regex>
#include <string>
#include <vector>

#include <cstring>

#include "core/approx_memory.hh"
#include "eval/coord.hh"
#include "eval/evaluator.hh"
#include "eval/service.hh"
#include "eval/sweep.hh"
#include "sim/full_system.hh"
#include "sim/machine_config.hh"
#include "util/stat_registry.hh"

using namespace lva;

namespace {

struct CatalogRow
{
    std::string path;
    std::string type;
    std::string unit;
    std::string desc;

    bool operator<(const CatalogRow &o) const { return path < o.path; }
    bool operator==(const CatalogRow &o) const { return path == o.path; }
};

std::string
normalize(const std::string &path)
{
    static const std::regex idx("\\b(thread|core|bank)[0-9]+\\b");
    return std::regex_replace(path, idx, "$1<N>");
}

void
appendSnapshot(std::vector<CatalogRow> &rows, const StatSnapshot &snap)
{
    for (const SnapEntry &e : snap.entries)
        rows.push_back({normalize(e.path), statTypeName(e.type),
                        e.unit, e.desc});
}

void
appendDefs(std::vector<CatalogRow> &rows,
           const std::vector<EvalMetricDef> &defs)
{
    for (const EvalMetricDef &d : defs)
        rows.push_back({d.path, statTypeName(StatType::Gauge), d.unit,
                        d.desc});
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--machine-schema") == 0) {
        // The machine-schema catalog: one dotted key per line, in the
        // parser's own order. docs/topology.md must list exactly this
        // set (gated two-way by scripts/check_docs.sh).
        for (const std::string &key : machineSchemaKeys())
            std::printf("%s\n", key.c_str());
        return 0;
    }
    if (argc != 1) {
        std::fprintf(stderr, "usage: %s [--machine-schema]\n", argv[0]);
        return 2;
    }

    std::vector<CatalogRow> rows;

    // Phase-1 memory model: each mode registers a different component
    // set ("thread<N>.{l1,mem,lva,lvp,prefetch}.*").
    for (const MemMode mode :
         {MemMode::Lva, MemMode::Lvp, MemMode::Prefetch,
          MemMode::Precise}) {
        ApproxMemory::Config cfg;
        cfg.threads = 1;
        cfg.mode = mode;
        const ApproxMemory mem(cfg);
        appendSnapshot(rows, mem.snapshot());
    }

    // Phase-2 timing model: "core<N>.*", "l2.*", "energy.*",
    // "system.*". The baseline and the LVA/hetero-NoC configurations
    // register the same schema today, but take the union anyway so a
    // config-gated stat added later still shows up.
    {
        const FullSystemSim base(FullSystemConfig::baseline());
        appendSnapshot(rows, base.registry().snapshot());

        FullSystemConfig lva_cfg = FullSystemConfig::lva(4);
        lva_cfg.heteroNoc = true;
        const FullSystemSim lva_sim(lva_cfg);
        appendSnapshot(rows, lva_sim.registry().snapshot());
    }

    // The evaluation daemon's process-wide serving subtree
    // ("serve.*", exported by the lva-rpc-v1 `stats` op).
    appendSnapshot(rows, ServeStats().snapshot());

    // The sweep coordinator's supervision subtree ("coord.*",
    // dumped by lva_sweep_coord --print-stats).
    appendSnapshot(rows, CoordStats().snapshot());

    // Derived gauges folded into exported snapshots by the evaluator
    // ("eval.*"), the static-workload census ("workload.*") and the
    // checked sweep runtime ("eval.retries.*", "eval.failures.*").
    appendDefs(rows, evalMetricDefs());
    appendDefs(rows, workloadStaticDefs());
    appendDefs(rows, sweepRuntimeDefs());

    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

    for (const CatalogRow &r : rows)
        std::printf("%s\t%s\t%s\t%s\n", r.path.c_str(),
                    r.type.c_str(), r.unit.c_str(), r.desc.c_str());
    return 0;
}
