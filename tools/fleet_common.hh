/**
 * @file
 * Shared lva_served worker supervision for the fleet-shaped tools
 * (lva_fleet, lva_sweep_coord): spawn a worker on an ephemeral port,
 * parse the announced port from its stdout pipe, arm a first-
 * incarnation fault from LVA_FLEET_FAULT, and reap it with a bounded
 * wait that escalates to SIGKILL — so a wedged worker can never hang
 * a drain forever (docs/serving.md, "The fleet").
 */

#ifndef LVA_TOOLS_FLEET_COMMON_HH
#define LVA_TOOLS_FLEET_COMMON_HH

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace lva::fleet {

/** One supervised lva_served process. */
struct Worker
{
    pid_t pid = -1;
    u16 port = 0;
    int pipeFd = -1;     ///< read end of the worker's stdout
    u32 incarnation = 0; ///< 0 = first spawn, >0 = respawn
};

/** Worker binary path: LVA_FLEET_SERVED, else a sibling lva_served. */
inline std::string
defaultServedPath()
{
    // String-valued binary path. lva-audit: allow(knob-unvalidated)
    if (const char *env = std::getenv("LVA_FLEET_SERVED"))
        return env;
    // Sibling of this binary: build/tools/lva_fleet -> .../lva_served.
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string self(buf);
        const std::size_t slash = self.rfind('/');
        if (slash != std::string::npos)
            return self.substr(0, slash + 1) + "lva_served";
    }
    return "lva_served";
}

/**
 * The fault armed for one worker's first incarnation, from
 * LVA_FLEET_FAULT="<idx|*>:<spec>" ("" = none). Respawns never
 * inherit it — that is the whole point of routing the injection
 * through the supervisor instead of plain LVA_FAULT.
 */
inline std::string
firstIncarnationFault(u32 index)
{
    // String-valued fault routing spec, validated right below.
    // lva-audit: allow(knob-unvalidated)
    const char *env = std::getenv("LVA_FLEET_FAULT");
    if (!env || !*env)
        return "";
    const std::string spec(env);
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        lva_warn("ignoring malformed LVA_FLEET_FAULT=\"%s\"", env);
        return "";
    }
    const std::string target = spec.substr(0, colon);
    if (target != "*" && target != std::to_string(index))
        return "";
    return spec.substr(colon + 1);
}

/**
 * Wait for the worker's "listening on 127.0.0.1:<port>" line on
 * @p fd (its stdout pipe) and return the port; 0 on timeout/EOF.
 */
inline u16
readWorkerPort(int fd, u64 timeoutMs)
{
    std::string buf;
    for (;;) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int r = ::poll(&pfd, 1, static_cast<int>(timeoutMs));
        if (r <= 0)
            return 0;
        char chunk[256];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            return 0;
        buf.append(chunk, static_cast<std::size_t>(n));
        const std::size_t at = buf.find("127.0.0.1:");
        if (at != std::string::npos) {
            const std::size_t digits = at + std::strlen("127.0.0.1:");
            if (buf.find('\n', digits) == std::string::npos)
                continue; // port digits may still be in flight
            return static_cast<u16>(std::atoi(buf.c_str() + digits));
        }
    }
}

/**
 * Fork+exec @p served for worker @p index on an ephemeral port; its
 * stdout becomes a pipe the supervisor parses the port from (and
 * keeps open for the worker's lifetime — the worker writes its drain
 * line there at exit and must not take SIGPIPE). @p passThrough
 * flags are forwarded verbatim; @p tag prefixes the announce line
 * ("<tag>: worker ..."). Fatal if the worker never announces.
 */
inline void
spawnWorker(const std::string &served,
            const std::vector<std::string> &passThrough, u32 index,
            Worker &w, const char *tag)
{
    if (w.pipeFd >= 0) {
        ::close(w.pipeFd);
        w.pipeFd = -1;
    }

    int fds[2];
    if (::pipe(fds) != 0)
        lva_fatal("%s: pipe: %s", tag, std::strerror(errno));

    const std::string fault =
        w.incarnation == 0 ? firstIncarnationFault(index) : "";

    const pid_t pid = ::fork();
    if (pid < 0)
        lva_fatal("%s: fork: %s", tag, std::strerror(errno));
    if (pid == 0) {
        ::close(fds[0]);
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[1]);
        if (!fault.empty())
            ::setenv("LVA_FAULT", fault.c_str(), 1);
        else
            ::unsetenv("LVA_FAULT");
        // The supervisor owns fleet policy; a worker must never
        // recurse into fleet spawning via inherited knobs.
        ::unsetenv("LVA_FLEET_FAULT");
        ::unsetenv("LVA_SERVE_PORT");

        std::vector<const char *> args;
        args.push_back(served.c_str());
        args.push_back("--port");
        args.push_back("0");
        for (const std::string &a : passThrough)
            args.push_back(a.c_str());
        args.push_back(nullptr);
        ::execv(served.c_str(),
                const_cast<char *const *>(args.data()));
        std::fprintf(stderr, "%s: exec %s: %s\n", tag, served.c_str(),
                     std::strerror(errno));
        ::_Exit(127);
    }

    ::close(fds[1]);
    w.pid = pid;
    w.pipeFd = fds[0];
    w.port = readWorkerPort(fds[0], 30000);
    if (w.port == 0)
        lva_fatal("%s: worker %u did not announce a port", tag, index);
    std::fprintf(stderr,
                 "%s: worker %u (incarnation %u) pid %d "
                 "on 127.0.0.1:%u\n",
                 tag, index, w.incarnation, static_cast<int>(pid),
                 static_cast<unsigned>(w.port));
    ++w.incarnation;
}

/**
 * Reap @p pid with a bounded wait: WNOHANG-poll until it exits or
 * @p deadlineMs elapses, then SIGKILL it and wait for real — so a
 * wedged (e.g. SIGSTOP'd) worker cannot hang a SIGTERM drain.
 * Returns true when the process exited on its own, false when it
 * had to be killed (logged with @p what as the subject).
 */
inline bool
reapBounded(pid_t pid, u64 deadlineMs, const std::string &what)
{
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        int st = 0;
        const pid_t r = ::waitpid(pid, &st, WNOHANG);
        if (r == pid || (r < 0 && errno == ECHILD))
            return true;
        const u64 elapsed = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (elapsed >= deadlineMs)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    lva_warn("%s did not exit within %llu ms; sending SIGKILL",
             what.c_str(),
             static_cast<unsigned long long>(deadlineMs));
    ::kill(pid, SIGKILL);
    int st = 0;
    ::waitpid(pid, &st, 0); // SIGKILL cannot be blocked; returns fast
    return false;
}

} // namespace lva::fleet

#endif // LVA_TOOLS_FLEET_COMMON_HH
