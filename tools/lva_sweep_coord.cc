/**
 * @file
 * lva_sweep_coord — sweep-sharding coordinator for a fleet of
 * lva_served workers (docs/serving.md, "The sweep coordinator").
 *
 * The coordinator reads one sweep (a points file, same format as
 * `lva_client sweep --points`), partitions it into shards by
 * rendezvous hash of each point's workload (eval/coord.hh), spawns a
 * fleet of lva_served workers, scatters each non-empty shard as an
 * `lva-rpc-v1` sweep request with `"shard": <i>, "detail": true`,
 * and merges the shard results into one `lva-stats-v1` export that
 * is byte-identical to a single-process run — for any shard count,
 * fleet size, or kill schedule.
 *
 *   lva_sweep_coord --driver fig5 --points p.json --out stats.json \
 *       --fleet 3 --shards 3
 *
 * Options (defaults from the LVA_COORD_* / LVA_FLEET_* knobs):
 *   --driver NAME    export driver name (required)
 *   --points FILE    JSON points array (required)
 *   --out FILE       write the merged export here (default: stdout)
 *   --fleet N        worker processes (LVA_FLEET_SIZE)       [2]
 *   --shards N       shard count (LVA_COORD_SHARDS)          [fleet]
 *   --served PATH    worker binary (LVA_FLEET_SERVED)
 *                    [lva_served next to this binary]
 *   --resume         skip shards recorded in the checkpoint manifest
 *   --timeout-ms N   per-shard RPC deadline (LVA_COORD_TIMEOUT_MS)
 *                    [600000]
 *   --print-stats    dump the coord.* snapshot to stderr at exit
 *   --workers, --queue, --deadline-ms, --retries, --jobs,
 *   --cache, --seeds, --scale: forwarded to every worker.
 *
 * Durability: every completed shard is appended (EINTR-safe, fsync'd)
 * to the manifest at "<resultsDir>/checkpoints/<driver>.coord.jsonl",
 * keyed by a digest of the shard's points and bound to a context key
 * covering seeds, scale, export schema and shard count — so a killed
 * coordinator rerun with --resume re-runs only unfinished shards.
 *
 * Supervision: shard -> worker placement is the rendezvous rank of
 * the shard's route key (coordWorkerRank). A worker that dies
 * mid-shard (e.g. an LVA_FLEET_FAULT abort) is detected by waitpid
 * and the shard is *stolen* to the next-ranked live worker; when
 * every worker is dead, the dead ones are respawned (respawns never
 * inherit the first-incarnation fault). Teardown sends each worker a
 * shutdown frame and reaps it with the shared bounded helper —
 * SIGKILL after a deadline, never an unbounded hang.
 *
 * Fault sites (LVA_FAULT grammar): "coord.scatter.<shard>" before a
 * shard request is sent, "coord.gather.<shard>" after its response
 * is validated but before the manifest append — so a kill at gather
 * loses the shard and a resume re-runs exactly it.
 *
 * Exit codes: 0 clean; 1 a shard could not be completed; 2 usage;
 * 3 merged export contains point failures; 53 injected abort.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/coord.hh"
#include "eval/service.hh"
#include "eval/sweep.hh"
#include "fleet_common.hh"
#include "sim/machine_config.hh"
#include "util/checkpoint.hh"
#include "util/env_knob.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/net.hh"
#include "util/results_dir.hh"
#include "util/stats_json.hh"

using namespace lva;

namespace {

struct Options
{
    std::string driver;
    std::string pointsFile;
    std::string out;        ///< merged export path ("" = stdout)
    u32 fleet = 0;          ///< worker count (0 = LVA_FLEET_SIZE, 2)
    u32 shards = 0;         ///< shard count (0 = LVA_COORD_SHARDS, fleet)
    std::string served;     ///< worker binary path
    bool resume = false;
    bool printStats = false;
    u64 timeoutMs = 0;      ///< per-shard RPC deadline
    u32 seeds = 0;          ///< for the manifest context key
    double scale = 0.0;     ///< for the manifest context key
    /** Machine topology (--machine/LVA_MACHINE); null = Table II.
     *  Embedded in every scatter request so all workers simulate the
     *  same CMP, and folded into the manifest context key. */
    std::shared_ptr<const MachineConfig> machine;
    /** Flags forwarded verbatim to every worker. */
    std::vector<std::string> passThrough;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --driver NAME --points FILE [--out FILE]\n"
                 "  [--fleet N] [--shards N] [--served PATH]\n"
                 "  [--machine FILE] [--resume] [--timeout-ms N]\n"
                 "  [--print-stats]\n"
                 "  [--workers N] [--queue N] [--deadline-ms N]\n"
                 "  [--retries N] [--jobs N] [--cache N] [--seeds N]\n"
                 "  [--scale F]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    std::string machineFile;
    // Strict parse (util/env_knob.hh): junk, signs and out-of-range
    // values warn and keep the default instead of being coerced.
    opt.fleet = static_cast<u32>(envKnobU64("LVA_FLEET_SIZE", 0, 1, 64));
    opt.shards =
        static_cast<u32>(envKnobU64("LVA_COORD_SHARDS", 0, 1, 4096));
    opt.timeoutMs =
        envKnobU64("LVA_COORD_TIMEOUT_MS", 0, 1, 86400000);
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--driver") {
            opt.driver = need(i);
        } else if (arg == "--points") {
            opt.pointsFile = need(i);
        } else if (arg == "--out") {
            opt.out = need(i);
        } else if (arg == "--fleet") {
            opt.fleet = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--shards") {
            opt.shards = static_cast<u32>(std::atoi(need(i)));
        } else if (arg == "--served") {
            opt.served = need(i);
        } else if (arg == "--machine") {
            machineFile = need(i);
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--print-stats") {
            opt.printStats = true;
        } else if (arg == "--timeout-ms") {
            opt.timeoutMs = static_cast<u64>(std::atoll(need(i)));
        } else if (arg == "--seeds") {
            const char *v = need(i);
            opt.seeds = static_cast<u32>(std::atoi(v));
            opt.passThrough.push_back(arg);
            opt.passThrough.push_back(v);
        } else if (arg == "--scale") {
            const char *v = need(i);
            opt.scale = std::strtod(v, nullptr);
            opt.passThrough.push_back(arg);
            opt.passThrough.push_back(v);
        } else if (arg == "--workers" || arg == "--queue" ||
                   arg == "--deadline-ms" || arg == "--retries" ||
                   arg == "--jobs" || arg == "--cache") {
            opt.passThrough.push_back(arg);
            opt.passThrough.push_back(need(i));
        } else {
            usage(argv[0]);
        }
    }
    if (opt.driver.empty() || opt.pointsFile.empty())
        usage(argv[0]);
    if (opt.fleet == 0)
        opt.fleet = 2;
    if (opt.shards == 0)
        opt.shards = opt.fleet;
    if (opt.timeoutMs == 0)
        opt.timeoutMs = 600000;
    if (opt.served.empty())
        opt.served = fleet::defaultServedPath();
    if (machineFile.empty()) {
        // String-valued config path; validated by the parser it feeds.
        // lva-audit: allow(knob-unvalidated)
        const char *env = std::getenv("LVA_MACHINE");
        if (env != nullptr && *env != '\0')
            machineFile = env;
    }
    if (!machineFile.empty()) {
        try {
            opt.machine = std::make_shared<MachineConfig>(
                machineFromFile(machineFile));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "lva_sweep_coord: %s\n", e.what());
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Re-render a parsed JSON value as compact one-line JSON. The worker
 * re-parses the request, so normalized string escapes cannot affect
 * the merged bytes; numbers keep their source text exactly.
 */
std::string
renderJson(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return v.boolean ? "true" : "false";
      case JsonValue::Type::Number:
        return v.text;
      case JsonValue::Type::String:
        return jsonQuote(v.text);
      case JsonValue::Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i > 0)
                out += ',';
            out += renderJson(v.items[i]);
        }
        return out + "]";
      }
      case JsonValue::Type::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i > 0)
                out += ',';
            out += jsonQuote(v.members[i].first) + ":" +
                   renderJson(v.members[i].second);
        }
        return out + "}";
      }
    }
    return "null"; // unreachable
}

/** The worker fleet shared by the scatter threads. */
class CoordFleet
{
  public:
    CoordFleet(const Options &opt, CoordStats &stats)
        : opt_(opt), stats_(stats), workers_(opt.fleet)
    {
    }

    ~CoordFleet()
    {
        for (fleet::Worker &w : workers_) {
            if (w.pipeFd >= 0)
                ::close(w.pipeFd);
        }
    }

    void
    spawnAll()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (u32 i = 0; i < workers_.size(); ++i)
            fleet::spawnWorker(opt_.served, opt_.passThrough, i,
                               workers_[i], "lva_sweep_coord");
    }

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /**
     * The preferred live worker for @p rank: the first ranked entry
     * whose process is alive; when every worker is dead, the dead
     * ones are respawned (without the first-incarnation fault) and
     * the top-ranked one is returned. Returns (index, port).
     */
    std::pair<u32, u16>
    pickWorker(const std::vector<u32> &rank)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const u32 r : rank) {
            if (workers_[r].pid > 0)
                return {r, workers_[r].port};
        }
        for (u32 i = 0; i < workers_.size(); ++i) {
            if (workers_[i].pid > 0)
                continue;
            fleet::spawnWorker(opt_.served, opt_.passThrough, i,
                               workers_[i], "lva_sweep_coord");
            stats_.onRespawn();
        }
        return {rank[0], workers_[rank[0]].port};
    }

    /**
     * After a failed exchange with worker @p index: reap it if it
     * exited (so the next pick steals the shard elsewhere). Returns
     * true when the worker was found dead.
     */
    bool
    noteFailure(u32 index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fleet::Worker &w = workers_[index];
        if (w.pid <= 0)
            return true; // another shard already reaped it
        int st = 0;
        if (::waitpid(w.pid, &st, WNOHANG) == w.pid) {
            lva_warn("lva_sweep_coord: worker %u (pid %d) exited "
                     "with status %d",
                     index, static_cast<int>(w.pid),
                     WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st));
            w.pid = -1;
            return true;
        }
        return false;
    }

    /**
     * Teardown: one best-effort shutdown frame per live worker, then
     * the shared bounded reap — a wedged worker is SIGKILLed after
     * the deadline instead of hanging the exit.
     */
    void
    drainAll(u64 frameTimeoutMs, u64 reapDeadlineMs)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::string req = "{\"schema\":\"lva-rpc-v1\","
                                "\"op\":\"shutdown\"}";
        for (u32 i = 0; i < workers_.size(); ++i) {
            fleet::Worker &w = workers_[i];
            if (w.pid <= 0)
                continue;
            try {
                TcpStream conn = TcpStream::connectTo(
                    "127.0.0.1", w.port, frameTimeoutMs);
                writeFrame(conn, req, frameTimeoutMs);
                std::string response;
                readFrame(conn, response, frameTimeoutMs);
            } catch (const std::exception &e) {
                lva_warn("lva_sweep_coord: shutdown frame to worker "
                         "%u: %s",
                         i, e.what());
            }
        }
        for (u32 i = 0; i < workers_.size(); ++i) {
            fleet::Worker &w = workers_[i];
            if (w.pid <= 0)
                continue;
            fleet::reapBounded(w.pid, reapDeadlineMs,
                               "lva_sweep_coord: worker " +
                                   std::to_string(i) + " (pid " +
                                   std::to_string(w.pid) + ")");
            w.pid = -1;
        }
    }

  private:
    Options opt_;
    CoordStats &stats_;
    std::mutex mutex_; ///< guards the worker table across shards
    std::vector<fleet::Worker> workers_;
};

/**
 * Scatter one shard: rendezvous-pick a worker, send the shard's
 * sweep request, validate the detailed response, hit the gather
 * fault site, and durably record the shard. Steals the shard to the
 * next-ranked live worker when the current one dies mid-request.
 */
ShardRecord
runShard(const Options &opt, CoordFleet &workers, CoordStats &stats,
         const ShardPlan &plan, u32 shard, const std::string &request,
         std::size_t pointCount, CheckpointManifest &manifest,
         const std::string &digest)
{
    faultPoint("coord.scatter." + std::to_string(shard));

    const std::vector<u32> rank =
        coordWorkerRank(plan.keys[shard], workers.size());
    std::string lastError;
    int lastWorker = -1;
    for (u32 attempt = 0; attempt < 10; ++attempt) {
        const auto [index, port] = workers.pickWorker(rank);
        if (lastWorker >= 0 && static_cast<u32>(index) !=
                                   static_cast<u32>(lastWorker)) {
            stats.onStolen();
            lva_warn("lva_sweep_coord: stealing shard %u from dead "
                     "worker %d to worker %u",
                     shard, lastWorker, index);
        }
        lastWorker = static_cast<int>(index);
        try {
            stats.onScatter();
            TcpStream conn = TcpStream::connectTo("127.0.0.1", port,
                                                  opt.timeoutMs);
            writeFrame(conn, request, opt.timeoutMs);
            std::string response;
            if (!readFrame(conn, response, opt.timeoutMs))
                throw NetError("worker closed without a response");
            ShardRecord record = shardRecordFromResponse(
                parseJson(response), shard, pointCount);
            faultPoint("coord.gather." + std::to_string(shard));
            manifest.append(digest, encodeShardRecord(record));
            stats.onGather();
            return record;
        } catch (const FaultInjected &) {
            throw; // an injected coordinator fault is not retryable
        } catch (const std::exception &e) {
            lastError = e.what();
            if (!workers.noteFailure(index)) {
                // The worker is alive; the exchange itself failed
                // (deadline, malformed response). Brief pause, retry.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        }
    }
    throw std::runtime_error("shard " + std::to_string(shard) +
                             " unrecoverable: " + lastError);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    std::signal(SIGPIPE, SIG_IGN);

    // Parse and validate the sweep once, up front: the same points
    // vector drives the shard plan, the digests and the final merge.
    std::ifstream in(opt.pointsFile, std::ios::binary);
    if (!in.is_open()) {
        std::fprintf(stderr, "lva_sweep_coord: cannot read %s\n",
                     opt.pointsFile.c_str());
        return 2;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    JsonValue pointsJson;
    std::vector<SweepPoint> points;
    try {
        pointsJson = parseJson(raw.str());
        // The same machine base the workers will decode from the
        // embedded "machine" member, so the local plan/digest/merge
        // view of each point matches the worker's exactly.
        points = sweepPointsFromJson(
            pointsJson, opt.machine ? opt.machine->phase1Lva()
                                    : Evaluator::baselineLva());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lva_sweep_coord: bad points file %s: %s\n",
                     opt.pointsFile.c_str(), e.what());
        return 2;
    }
    if (points.empty()) {
        std::fprintf(stderr, "lva_sweep_coord: no points\n");
        return 2;
    }

    const ShardPlan plan = planShards(points, opt.shards);
    std::vector<std::string> digests(opt.shards);
    for (u32 s = 0; s < opt.shards; ++s)
        digests[s] = shardDigest(plan, points, s);

    CoordStats stats;
    stats.onPlan(opt.shards, points.size(), opt.fleet);

    // The context key binds the manifest to everything that would
    // invalidate a recorded shard: seeds, scale, export schema, and
    // the shard plan itself.
    const Evaluator eval(opt.seeds, opt.scale);
    std::string context = coordContextKey(eval, opt.shards);
    // Same machine-binding rule as sweepContextKey(eval, opts): a
    // manifest written under one topology is never resumed under
    // another, and the no-machine key stays byte-identical.
    if (opt.machine)
        context += ";machine=" +
                   hexU64(fnv1a64(renderMachineJson(*opt.machine)));
    CheckpointManifest manifest(
        resultsPath("checkpoints/" + opt.driver + ".coord.jsonl"),
        opt.driver, context, opt.resume);

    std::vector<ShardRecord> records;
    std::vector<u8> done(opt.shards, 0);
    if (opt.resume) {
        for (u32 s = 0; s < opt.shards; ++s) {
            if (plan.members[s].empty())
                continue;
            const std::string *payload = manifest.find(digests[s]);
            if (!payload)
                continue;
            try {
                ShardRecord record =
                    decodeShardRecord(parseJson(*payload));
                if (record.shard != s ||
                    record.results.size() != plan.members[s].size())
                    throw std::runtime_error(
                        "record does not match the shard plan");
                records.push_back(std::move(record));
                done[s] = 1;
                stats.onResumed();
            } catch (const std::exception &e) {
                lva_warn("lva_sweep_coord: manifest record for shard "
                         "%u unusable (%s); re-running it",
                         s, e.what());
            }
        }
        if (!records.empty())
            lva_inform("lva_sweep_coord: resumed %zu shards from %s",
                       records.size(), manifest.path().c_str());
    }

    CoordFleet workers(opt, stats);
    workers.spawnAll();

    // Scatter every remaining shard concurrently — one thread per
    // non-empty shard; results land keyed by global point index, so
    // completion order cannot affect the merged bytes.
    std::vector<std::thread> scatter;
    std::mutex recordsMutex;
    std::vector<std::string> shardErrors;
    for (u32 s = 0; s < opt.shards; ++s) {
        if (done[s] || plan.members[s].empty())
            continue;
        std::string joined;
        for (const u64 g : plan.members[s]) {
            if (!joined.empty())
                joined += ',';
            joined += renderJson(pointsJson.items[g]);
        }
        std::string request =
            std::string("{\"schema\":\"lva-rpc-v1\",\"op\":\"sweep\"") +
            ",\"driver\":" + jsonQuote(opt.driver) +
            ",\"shard\":" + std::to_string(s) +
            ",\"detail\":true";
        if (opt.machine)
            request += ",\"machine\":" + renderMachineJson(*opt.machine);
        request += ",\"points\":[" + joined + "]}";
        scatter.emplace_back([&, s, request] {
            try {
                ShardRecord record = runShard(
                    opt, workers, stats, plan, s, request,
                    plan.members[s].size(), manifest, digests[s]);
                std::lock_guard<std::mutex> lock(recordsMutex);
                records.push_back(std::move(record));
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(recordsMutex);
                shardErrors.push_back("shard " + std::to_string(s) +
                                      ": " + e.what());
            }
        });
    }
    for (std::thread &t : scatter)
        t.join();

    workers.drainAll(2000, 2000);

    if (!shardErrors.empty()) {
        for (const std::string &e : shardErrors)
            std::fprintf(stderr, "lva_sweep_coord: %s\n", e.c_str());
        std::fprintf(stderr,
                     "lva_sweep_coord: %zu shards incomplete; rerun "
                     "with --resume to finish\n",
                     shardErrors.size());
        return 1;
    }

    SweepOutcome outcome;
    try {
        outcome = mergeShards(plan, points.size(), records);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lva_sweep_coord: merge failed: %s\n",
                     e.what());
        return 1;
    }
    stats.onPointFailures(outcome.failures.size());

    const std::string rendered =
        renderSweepStats(opt.driver, points, outcome);
    if (opt.out.empty()) {
        std::fwrite(rendered.data(), 1, rendered.size(), stdout);
        std::fflush(stdout);
    } else {
        std::ofstream outFile(opt.out,
                              std::ios::binary | std::ios::trunc);
        if (!outFile.is_open()) {
            std::fprintf(stderr, "lva_sweep_coord: cannot write %s\n",
                         opt.out.c_str());
            return 1;
        }
        outFile.write(rendered.data(),
                      static_cast<std::streamsize>(rendered.size()));
        outFile.close();
        if (!outFile) {
            std::fprintf(stderr, "lva_sweep_coord: write to %s "
                         "failed\n", opt.out.c_str());
            return 1;
        }
    }

    std::fprintf(stderr,
                 "lva_sweep_coord: merged %zu points across %u shards "
                 "(fleet=%u)\n",
                 points.size(), opt.shards, opt.fleet);
    if (opt.printStats)
        std::fprintf(stderr, "%s\n",
                     snapshotToJson(stats.snapshot()).c_str());

    return reportSweepFailures(outcome);
}
