/**
 * @file
 * Unit tests for the XOR(PC, GHB) context hash and its index/tag split.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/context_hash.hh"

namespace lva {
namespace {

TEST(ContextHash, StableForSameInputs)
{
    HistoryBuffer ghb(2);
    ghb.push(Value::fromFloat(1.5f));
    ghb.push(Value::fromFloat(2.5f));
    EXPECT_EQ(contextHash(0x400, ghb, 0), contextHash(0x400, ghb, 0));
}

TEST(ContextHash, PcSensitive)
{
    HistoryBuffer ghb(0);
    EXPECT_NE(contextHash(0x400, ghb, 0), contextHash(0x404, ghb, 0));
}

TEST(ContextHash, HistorySensitive)
{
    HistoryBuffer a(2);
    HistoryBuffer b(2);
    a.push(Value::fromInt(1));
    b.push(Value::fromInt(2));
    EXPECT_NE(contextHash(0x400, a, 0), contextHash(0x400, b, 0));
}

TEST(ContextHash, MantissaTruncationMergesCloseFloats)
{
    HistoryBuffer a(1);
    HistoryBuffer b(1);
    a.push(Value::fromFloat(1.0f));
    b.push(Value::fromFloat(std::nextafterf(1.0f, 2.0f)));
    EXPECT_NE(contextHash(0x400, a, 0), contextHash(0x400, b, 0));
    EXPECT_EQ(contextHash(0x400, a, 8), contextHash(0x400, b, 8));
}

TEST(SplitHash, IndexWithinTable)
{
    for (u64 h = 0; h < 10000; h += 7) {
        const HashSplit s = splitHash(mix64(h), 512, 21);
        EXPECT_LT(s.index, 512u);
        EXPECT_LT(s.tag, u64(1) << 21);
    }
}

TEST(SplitHash, TagDisambiguatesSameIndex)
{
    // Two hashes landing in the same index should usually differ in
    // tag; verify at least that distinct tags occur.
    std::set<u64> tags;
    for (u64 h = 0; h < 512 * 64; ++h) {
        const HashSplit s = splitHash(mix64(h), 512, 21);
        if (s.index == 0)
            tags.insert(s.tag);
    }
    EXPECT_GT(tags.size(), 10u);
}

TEST(SplitHash, FullWidthTagMask)
{
    const HashSplit s = splitHash(~u64(0), 512, 64);
    EXPECT_EQ(s.tag, (~u64(0)) / 512);
}

TEST(ContextHash, IndexDistributionRoughlyUniform)
{
    // Hash consecutive PCs into 512 entries: no entry should be
    // grossly overloaded (mix64 avalanche property).
    std::vector<int> counts(512, 0);
    HistoryBuffer ghb(0);
    for (u32 pc = 0; pc < 512 * 16; pc += 4)
        ++counts[splitHash(contextHash(pc, ghb, 0), 512, 21).index];
    for (int c : counts)
        EXPECT_LT(c, 24); // mean is 4
}

} // namespace
} // namespace lva
