/**
 * @file
 * Unit tests for the deterministic PRNG (xoshiro256** seeded via
 * SplitMix64) — the reproducibility of every experiment rests on it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"

namespace lva {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(13);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.below(8)];
    for (int r = 0; r < 8; ++r)
        EXPECT_GT(seen[r], 700) << "residue " << r;
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const i64 v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsSane)
{
    Rng rng(23);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Mix64, StatelessAndStable)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
    EXPECT_NE(mix64(0), 0u); // avalanche from zero
}

TEST(SplitMix64, AdvancesState)
{
    u64 s = 99;
    const u64 a = splitMix64(s);
    const u64 b = splitMix64(s);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace lva
