/**
 * @file
 * Unit and property tests for the set-associative LRU cache model,
 * including a randomized cross-check against a naive reference LRU.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "util/random.hh"

namespace lva {
namespace {

TEST(CacheConfig, Geometry)
{
    const CacheConfig cfg = CacheConfig::pinL1();
    EXPECT_EQ(cfg.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.assoc, 8u);
    EXPECT_EQ(cfg.numSets(), 128u);
    EXPECT_EQ(CacheConfig::fullSystemL1().numSets(), 32u);
}

TEST(Cache, MissThenInsertThenHit)
{
    Cache cache({1024, 2, 64});
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_EQ(cache.stats().misses.value(), 1u);
    cache.insert(0x100);
    EXPECT_EQ(cache.stats().fetches.value(), 1u);
    EXPECT_TRUE(cache.access(0x13f)); // same 64B block
    EXPECT_EQ(cache.stats().hits.value(), 1u);
}

TEST(Cache, AccessDoesNotAllocate)
{
    Cache cache({1024, 2, 64});
    cache.access(0x100);
    cache.access(0x100);
    EXPECT_EQ(cache.stats().misses.value(), 2u);
    EXPECT_EQ(cache.residentBlocks(), 0u);
}

TEST(Cache, LruEviction)
{
    // 2-way, set-picking: 8 sets of 64B blocks => addresses 0x000,
    // 0x200, 0x400 share set 0.
    Cache cache({1024, 2, 64});
    cache.insert(0x000);
    cache.insert(0x200);
    cache.access(0x000); // make 0x200 the LRU way
    const Addr evicted = cache.insert(0x400);
    EXPECT_EQ(evicted, 0x200u);
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_TRUE(cache.contains(0x400));
    EXPECT_FALSE(cache.contains(0x200));
}

TEST(Cache, InsertExistingRefreshesWithoutFetch)
{
    Cache cache({1024, 2, 64});
    cache.insert(0x000);
    cache.insert(0x200);
    EXPECT_EQ(cache.insert(0x000), invalidAddr); // refresh, not fetch
    EXPECT_EQ(cache.stats().fetches.value(), 2u);
    // 0x200 is now LRU despite being inserted later.
    EXPECT_EQ(cache.insert(0x400), 0x200u);
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache cache({1024, 2, 64});
    cache.insert(0x100);
    EXPECT_TRUE(cache.invalidate(0x100));
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_FALSE(cache.invalidate(0x100)); // already gone
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache cache({1024, 2, 64});
    cache.insert(0x000, /*is_write=*/true);
    cache.insert(0x200);
    cache.insert(0x400); // evicts dirty 0x000
    EXPECT_EQ(cache.stats().writebacks.value(), 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache({1024, 2, 64});
    cache.insert(0x000);
    EXPECT_TRUE(cache.access(0x000, /*is_write=*/true));
    EXPECT_TRUE(cache.invalidate(0x000));
    EXPECT_EQ(cache.stats().writebacks.value(), 1u);
}

TEST(Cache, FlushDropsEverythingKeepsStats)
{
    Cache cache({1024, 2, 64});
    cache.insert(0x000);
    cache.insert(0x100);
    cache.flush();
    EXPECT_EQ(cache.residentBlocks(), 0u);
    EXPECT_EQ(cache.stats().fetches.value(), 2u);
}

TEST(Cache, MpkiHelper)
{
    EXPECT_DOUBLE_EQ(Cache::mpki(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(Cache::mpki(5, 0), 0.0);
}

TEST(Cache, ResidencyNeverExceedsCapacity)
{
    Cache cache({2048, 4, 64}); // 32 blocks
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        cache.insert(rng.below(1 << 20) * 64);
    EXPECT_LE(cache.residentBlocks(), 32u);
}

/**
 * Reference model: per-set LRU lists, checked against the Cache under
 * random traffic across several geometries.
 */
struct RefLru
{
    explicit RefLru(const CacheConfig &cfg) : cfg(cfg) {}

    u64 setOf(Addr block) const
    {
        return (block / cfg.blockBytes) % cfg.numSets();
    }

    bool
    contains(Addr block) const
    {
        const auto it = sets.find(setOf(block));
        if (it == sets.end())
            return false;
        for (Addr b : it->second)
            if (b == block)
                return true;
        return false;
    }

    void
    touch(Addr block)
    {
        auto &set = sets[setOf(block)];
        set.remove(block);
        set.push_front(block);
    }

    void
    insert(Addr block)
    {
        auto &set = sets[setOf(block)];
        set.remove(block);
        set.push_front(block);
        if (set.size() > cfg.assoc)
            set.pop_back();
    }

    CacheConfig cfg;
    std::unordered_map<u64, std::list<Addr>> sets;
};

class CacheVsReference
    : public ::testing::TestWithParam<std::tuple<u64, u32>>
{
};

TEST_P(CacheVsReference, RandomTrafficAgrees)
{
    const auto [size, assoc] = GetParam();
    const CacheConfig cfg{size, assoc, 64};
    Cache cache(cfg);
    RefLru ref(cfg);
    Rng rng(size * 31 + assoc);

    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(512) * 64 + rng.below(64);
        const Addr block = cache.blockAlign(addr);
        const bool expect_hit = ref.contains(block);
        ASSERT_EQ(cache.access(addr), expect_hit) << "iteration " << i;
        if (expect_hit) {
            ref.touch(block);
        } else if (rng.chance(0.8)) {
            // Mirror the decoupled fetch policy: only some misses
            // actually bring the block in.
            cache.insert(addr);
            ref.insert(block);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(std::make_tuple(u64(1024), 1u),
                      std::make_tuple(u64(1024), 2u),
                      std::make_tuple(u64(4096), 4u),
                      std::make_tuple(u64(16384), 8u),
                      std::make_tuple(u64(2048), 16u),
                      std::make_tuple(u64(65536), 8u)));

} // namespace
} // namespace lva
