/**
 * @file
 * Rejection tests for the shared strict env-knob parse
 * (util/env_knob.hh) and its resolveServeOptions consumers.  Each
 * malformed value must warn and fall back to the documented default
 * — never be silently coerced the way the old atoi/strtol readers
 * coerced "2x" to 2 or wrapped "-1" to a huge unsigned.
 *
 * The knob names used below are the production ones (LVA_FLEET_SIZE,
 * LVA_SERVE_CACHE, LVA_SERVE_QUEUE, LVA_CLIENT_BUSY_RETRIES) so the
 * exact knob/range pairs the binaries pass are what gets exercised.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "eval/service.hh"
#include "util/env_knob.hh"

namespace {

using lva::envKnobF64;
using lva::envKnobU64;

/** setenv-for-the-test-body helper; unsets on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

TEST(EnvKnobU64, UnsetAndEmptyReturnFallbackSilently)
{
    ::unsetenv("LVA_FLEET_SIZE");
    EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
    ScopedEnv env("LVA_FLEET_SIZE", "");
    EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
}

TEST(EnvKnobU64, PureDecimalInRangeIsAccepted)
{
    ScopedEnv env("LVA_FLEET_SIZE", "8");
    EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 8u);
}

TEST(EnvKnobU64, TrailingJunkIsRejectedNotTruncated)
{
    // The pre-PR-8 reader turned "2x" into 2.
    ScopedEnv env("LVA_FLEET_SIZE", "2x");
    EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
}

TEST(EnvKnobU64, SignsAreRejectedNotWrapped)
{
    // strtoull would wrap "-1" to 2^64-1; the knob must not.
    {
        ScopedEnv env("LVA_CLIENT_BUSY_RETRIES", "-1");
        EXPECT_EQ(envKnobU64("LVA_CLIENT_BUSY_RETRIES", 5, 0, 1000),
                  5u);
    }
    {
        ScopedEnv env("LVA_CLIENT_BUSY_RETRIES", "+3");
        EXPECT_EQ(envKnobU64("LVA_CLIENT_BUSY_RETRIES", 5, 0, 1000),
                  5u);
    }
}

TEST(EnvKnobU64, HexWhitespaceAndWordsAreRejected)
{
    {
        ScopedEnv env("LVA_SERVE_CACHE", "0x10");
        EXPECT_EQ(envKnobU64("LVA_SERVE_CACHE", 0, 0, 1000000), 0u);
    }
    {
        ScopedEnv env("LVA_SERVE_CACHE", " 7");
        EXPECT_EQ(envKnobU64("LVA_SERVE_CACHE", 0, 0, 1000000), 0u);
    }
    {
        ScopedEnv env("LVA_SERVE_CACHE", "unbounded");
        EXPECT_EQ(envKnobU64("LVA_SERVE_CACHE", 0, 0, 1000000), 0u);
    }
}

TEST(EnvKnobU64, OutOfRangeFallsBackInsteadOfClamping)
{
    {
        ScopedEnv env("LVA_FLEET_SIZE", "65");
        EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
    }
    {
        ScopedEnv env("LVA_FLEET_SIZE", "0");
        EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
    }
    {
        // Past 2^64: strtoull saturates with ERANGE; still rejected.
        ScopedEnv env("LVA_FLEET_SIZE", "99999999999999999999999");
        EXPECT_EQ(envKnobU64("LVA_FLEET_SIZE", 4, 1, 64), 4u);
    }
}

TEST(EnvKnobF64, StrictFloatParseAndRange)
{
    {
        ScopedEnv env("LVA_FIX_F", "0.25");
        EXPECT_DOUBLE_EQ(envKnobF64("LVA_FIX_F", 1.0, 0.0, 2.0),
                         0.25);
    }
    {
        ScopedEnv env("LVA_FIX_F", "0.25x");
        EXPECT_DOUBLE_EQ(envKnobF64("LVA_FIX_F", 1.0, 0.0, 2.0), 1.0);
    }
    {
        ScopedEnv env("LVA_FIX_F", "nan");
        EXPECT_DOUBLE_EQ(envKnobF64("LVA_FIX_F", 1.0, 0.0, 2.0), 1.0);
    }
    {
        ScopedEnv env("LVA_FIX_F", "3.5");
        EXPECT_DOUBLE_EQ(envKnobF64("LVA_FIX_F", 1.0, 0.0, 2.0), 1.0);
    }
}

TEST(ServeOptions, MalformedQueueAndCacheKnobsFallBackToDefaults)
{
    ScopedEnv queue("LVA_SERVE_QUEUE", "-1");
    ScopedEnv cache("LVA_SERVE_CACHE", "lots");
    const lva::ServeOptions opts =
        lva::resolveServeOptions(lva::ServeOptions{});
    EXPECT_EQ(opts.queueCap, 16u);  // documented default
    EXPECT_EQ(opts.cacheCap, 0u);   // unbounded default
}

TEST(ServeOptions, ValidKnobsResolveAndExplicitFieldsWin)
{
    ScopedEnv queue("LVA_SERVE_QUEUE", "32");
    ScopedEnv cache("LVA_SERVE_CACHE", "128");
    lva::ServeOptions opts = lva::resolveServeOptions(lva::ServeOptions{});
    EXPECT_EQ(opts.queueCap, 32u);
    EXPECT_EQ(opts.cacheCap, 128u);

    lva::ServeOptions forced;
    forced.queueCap = 3;
    forced.cacheCap = 9;
    opts = lva::resolveServeOptions(forced);
    EXPECT_EQ(opts.queueCap, 3u);
    EXPECT_EQ(opts.cacheCap, 9u);
}

} // namespace
