/**
 * @file
 * Unit tests for the dynamic-energy model.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace lva {
namespace {

TEST(EnergyModel, ZeroEventsZeroEnergy)
{
    const EnergyBreakdown e = computeEnergy(EnergyEvents{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
    EXPECT_DOUBLE_EQ(e.missServicing(), 0.0);
}

TEST(EnergyModel, LinearInEventCounts)
{
    EnergyEvents ev;
    ev.l1Accesses = 10;
    ev.dramAccesses = 2;
    const EnergyBreakdown once = computeEnergy(ev);
    ev.l1Accesses = 20;
    ev.dramAccesses = 4;
    const EnergyBreakdown twice = computeEnergy(ev);
    EXPECT_DOUBLE_EQ(twice.total(), 2.0 * once.total());
}

TEST(EnergyModel, BreakdownMatchesParams)
{
    EnergyParams p;
    EnergyEvents ev;
    ev.l1Accesses = 3;
    ev.l2Accesses = 5;
    ev.dramAccesses = 7;
    ev.nocFlitHops = 11;
    ev.approxLookups = 13;
    ev.approxTrains = 17;
    const EnergyBreakdown e = computeEnergy(ev, p);
    EXPECT_DOUBLE_EQ(e.l1, 3 * p.l1Access);
    EXPECT_DOUBLE_EQ(e.l2, 5 * p.l2Access);
    EXPECT_DOUBLE_EQ(e.dram, 7 * p.dramAccess);
    EXPECT_DOUBLE_EQ(e.noc, 11 * p.nocFlitHop);
    EXPECT_DOUBLE_EQ(e.approximator,
                     13 * p.approxLookup + 17 * p.approxTrain);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.l1 + e.l2 + e.dram + e.noc + e.approximator);
}

TEST(EnergyModel, MissServicingExcludesL1AndApproximator)
{
    EnergyEvents ev;
    ev.l1Accesses = 100;
    ev.l2Accesses = 10;
    ev.dramAccesses = 1;
    ev.nocFlitHops = 50;
    ev.approxLookups = 100;
    const EnergyBreakdown e = computeEnergy(ev);
    EXPECT_DOUBLE_EQ(e.missServicing(), e.l2 + e.dram + e.noc);
}

TEST(EnergyModel, DramDominatesPerAccess)
{
    // Sanity on the constants: the hierarchy ordering the paper's
    // energy argument rests on (DRAM >> L2 > L1 > approximator).
    const EnergyParams p;
    EXPECT_GT(p.dramAccess, p.l2Access);
    EXPECT_GT(p.l2Access, p.l1Access);
    EXPECT_GT(p.l1Access, p.approxLookup);
}

} // namespace
} // namespace lva
