/**
 * @file
 * Tests for the phase-1 design-space evaluator.
 */

#include <gtest/gtest.h>

#include "eval/evaluator.hh"

namespace lva {
namespace {

TEST(Evaluator, PreciseBaselineIsUnity)
{
    Evaluator eval(1, 0.05);
    const EvalResult r = eval.evaluatePrecise("canneal");
    EXPECT_DOUBLE_EQ(r.normMpki, 1.0);
    EXPECT_DOUBLE_EQ(r.normFetches, 1.0);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_GT(r.instructions, 0.0);
}

TEST(Evaluator, PreciseConfigEvaluatesToUnity)
{
    Evaluator eval(1, 0.05);
    const EvalResult r =
        eval.evaluate("canneal", Evaluator::preciseConfig());
    EXPECT_NEAR(r.normMpki, 1.0, 1e-9);
    EXPECT_NEAR(r.normFetches, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.outputError, 0.0);
    EXPECT_DOUBLE_EQ(r.instrVariation, 0.0);
}

TEST(Evaluator, LvaReducesEffectiveMpkiOnIntegerData)
{
    Evaluator eval(1, 0.05);
    const EvalResult r =
        eval.evaluate("canneal", Evaluator::baselineLva());
    EXPECT_LT(r.normMpki, 0.9);
    EXPECT_GT(r.coverage, 0.0);
}

TEST(Evaluator, GoldenRunsAreCachedAcrossCalls)
{
    Evaluator eval(1, 0.05);
    const EvalResult a = eval.evaluatePrecise("x264");
    const EvalResult b = eval.evaluatePrecise("x264");
    EXPECT_DOUBLE_EQ(a.mpki, b.mpki);
    EXPECT_DOUBLE_EQ(a.instructions, b.instructions);
}

TEST(Evaluator, SeedAveragingIsDeterministic)
{
    Evaluator a(2, 0.05);
    Evaluator b(2, 0.05);
    const EvalResult ra =
        a.evaluate("blackscholes", Evaluator::baselineLva());
    const EvalResult rb =
        b.evaluate("blackscholes", Evaluator::baselineLva());
    EXPECT_DOUBLE_EQ(ra.normMpki, rb.normMpki);
    EXPECT_DOUBLE_EQ(ra.outputError, rb.outputError);
}

TEST(Evaluator, DegreeReducesFetches)
{
    Evaluator eval(1, 0.05);
    ApproxMemory::Config deg0 = Evaluator::baselineLva();
    ApproxMemory::Config deg8 = Evaluator::baselineLva();
    deg8.approx.approxDegree = 8;
    const EvalResult r0 = eval.evaluate("canneal", deg0);
    const EvalResult r8 = eval.evaluate("canneal", deg8);
    EXPECT_LT(r8.normFetches, r0.normFetches);
}

TEST(Evaluator, BaselineConfigsMatchPaper)
{
    const ApproxMemory::Config lva = Evaluator::baselineLva();
    EXPECT_EQ(lva.mode, MemMode::Lva);
    EXPECT_EQ(lva.cache.sizeBytes, 64u * 1024);
    EXPECT_EQ(lva.approx.tableEntries, 512u);
    EXPECT_EQ(lva.approx.lhbEntries, 4u);
    EXPECT_EQ(lva.approx.ghbEntries, 0u);
    EXPECT_EQ(lva.approx.valueDelay, 4u);
    EXPECT_EQ(lva.approx.approxDegree, 0u);
    EXPECT_DOUBLE_EQ(lva.approx.confidenceWindow, 0.10);
    EXPECT_FALSE(lva.approx.confidenceForInts);
}

} // namespace
} // namespace lva
