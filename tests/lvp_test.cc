/**
 * @file
 * Unit tests for the idealized load value predictor baseline.
 */

#include <gtest/gtest.h>

#include "core/lvp.hh"

namespace lva {
namespace {

ApproximatorConfig
testConfig()
{
    ApproximatorConfig cfg;
    cfg.ghbEntries = 0;
    cfg.valueDelay = 0;
    return cfg;
}

TEST(IdealizedLvp, ColdMissIsNotPredicted)
{
    IdealizedLvp lvp(testConfig());
    EXPECT_FALSE(lvp.onMiss(0x400, Value::fromInt(5)));
    EXPECT_EQ(lvp.stats().cold.value(), 1u);
}

TEST(IdealizedLvp, OracleMatchesAnyLhbValue)
{
    IdealizedLvp lvp(testConfig());
    lvp.onMiss(0x400, Value::fromInt(10));
    lvp.onMiss(0x400, Value::fromInt(20));
    lvp.onMiss(0x400, Value::fromInt(30));
    // 10, 20 and 30 are all in the LHB: any of them predicts.
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(20)));
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(10)));
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(30)));
    EXPECT_EQ(lvp.stats().correct.value(), 3u);
}

TEST(IdealizedLvp, ExactMatchRequired)
{
    IdealizedLvp lvp(testConfig());
    lvp.onMiss(0x400, Value::fromFloat(1.0f));
    // 1.0001 is approximately 1.0 but NOT an exact match: traditional
    // value prediction must roll back.
    EXPECT_FALSE(lvp.onMiss(0x400, Value::fromFloat(1.0001f)));
    EXPECT_EQ(lvp.stats().incorrect.value(), 1u);
}

TEST(IdealizedLvp, LhbCapacityEvictsOldValues)
{
    auto cfg = testConfig();
    cfg.lhbEntries = 2;
    IdealizedLvp lvp(cfg);
    lvp.onMiss(0x400, Value::fromInt(1));
    lvp.onMiss(0x400, Value::fromInt(2));
    lvp.onMiss(0x400, Value::fromInt(3)); // evicts 1
    EXPECT_FALSE(lvp.onMiss(0x400, Value::fromInt(1)));
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(3)));
}

TEST(IdealizedLvp, ValueDelayDefersTraining)
{
    auto cfg = testConfig();
    cfg.valueDelay = 2;
    IdealizedLvp lvp(cfg);
    lvp.onMiss(0x400, Value::fromInt(5));
    // The value has not arrived yet: still cold.
    EXPECT_FALSE(lvp.onMiss(0x400, Value::fromInt(5)));
    lvp.onHit(0x500, Value::fromInt(0));
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(5)));
}

TEST(IdealizedLvp, DistinctPcsIsolated)
{
    IdealizedLvp lvp(testConfig());
    lvp.onMiss(0x400, Value::fromInt(10));
    EXPECT_FALSE(lvp.onMiss(0x500, Value::fromInt(10)));
}

TEST(IdealizedLvp, DrainPendingTrains)
{
    auto cfg = testConfig();
    cfg.valueDelay = 99;
    IdealizedLvp lvp(cfg);
    lvp.onMiss(0x400, Value::fromInt(4));
    lvp.drainPending();
    EXPECT_TRUE(lvp.onMiss(0x400, Value::fromInt(4)));
}

} // namespace
} // namespace lva
