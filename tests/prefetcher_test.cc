/**
 * @file
 * Unit tests for the GHB prefetcher baseline (delta correlation +
 * next-line fallback).
 */

#include <gtest/gtest.h>

#include "prefetch/ghb_prefetcher.hh"

namespace lva {
namespace {

GhbPrefetcherConfig
testConfig(u32 degree)
{
    GhbPrefetcherConfig cfg;
    cfg.degree = degree;
    return cfg;
}

TEST(GhbPrefetcher, NextLineFallbackOnColdStream)
{
    GhbPrefetcher pf(testConfig(4));
    const auto out = pf.onMiss(0x400, 0x10000);
    ASSERT_EQ(out.size(), 1u); // fallback: a single next-line block
    EXPECT_EQ(out[0], 0x10040u);
    EXPECT_EQ(pf.stats().nextLine.value(), 1u);
}

TEST(GhbPrefetcher, DetectsConstantStride)
{
    GhbPrefetcher pf(testConfig(4));
    std::vector<Addr> out;
    // Stride of 2 blocks (128 B).
    for (Addr a = 0x10000; a <= 0x10000 + 128 * 12; a += 128)
        out = pf.onMiss(0x400, a);
    ASSERT_EQ(out.size(), 4u);
    const Addr last = 0x10000 + 128 * 12;
    EXPECT_EQ(out[0], last + 128);
    EXPECT_EQ(out[1], last + 256);
    EXPECT_EQ(out[2], last + 384);
    EXPECT_EQ(out[3], last + 512);
    EXPECT_GT(pf.stats().deltaPredicts.value(), 0u);
}

TEST(GhbPrefetcher, DetectsAlternatingDeltaPattern)
{
    GhbPrefetcher pf(testConfig(2));
    // Pattern: +1 block, +3 blocks, +1, +3, ... repeated.
    Addr a = 0x20000;
    std::vector<Addr> out;
    for (int i = 0; i < 16; ++i) {
        out = pf.onMiss(0x400, a);
        a += (i % 2 == 0) ? 64 : 192;
    }
    // After an even count of deltas, the last two deltas were
    // (+192, +64); the pattern predicts +192 then +64 next... the
    // prediction must follow the recorded delta sequence exactly.
    ASSERT_EQ(out.size(), 2u);
    // Last miss was at a - 192 (i=15 added 192 after the call)...
    // verify the predictions are block-aligned and strictly ahead.
    for (const Addr p : out) {
        EXPECT_EQ(p % 64, 0u);
        EXPECT_GT(p, a - 192);
    }
    EXPECT_GT(pf.stats().deltaPredicts.value(), 0u);
}

TEST(GhbPrefetcher, PerPcLocalization)
{
    GhbPrefetcher pf(testConfig(2));
    // Interleave two streams with different strides on different PCs;
    // each should be predicted from its own history.
    std::vector<Addr> out_a;
    std::vector<Addr> out_b;
    Addr a = 0x100000;
    Addr b = 0x900000;
    for (int i = 0; i < 12; ++i) {
        out_a = pf.onMiss(0x400, a);
        out_b = pf.onMiss(0x800, b);
        a += 64;
        b += 256;
    }
    ASSERT_FALSE(out_a.empty());
    ASSERT_FALSE(out_b.empty());
    EXPECT_EQ(out_a[0], (a - 64) + 64);
    EXPECT_EQ(out_b[0], (b - 256) + 256);
}

TEST(GhbPrefetcher, DegreeBoundsPredictions)
{
    for (u32 degree : {1u, 2u, 8u, 16u}) {
        GhbPrefetcher pf(testConfig(degree));
        std::vector<Addr> out;
        for (Addr a = 0; a < 64 * 64; a += 64)
            out = pf.onMiss(0x400, a);
        EXPECT_LE(out.size(), degree);
        EXPECT_GE(out.size(), 1u);
    }
}

TEST(GhbPrefetcher, DegreeZeroPredictsNothing)
{
    GhbPrefetcher pf(testConfig(0));
    EXPECT_TRUE(pf.onMiss(0x400, 0x1000).empty());
    EXPECT_TRUE(pf.onMiss(0x400, 0x1040).empty());
}

TEST(GhbPrefetcher, StatsCountIssued)
{
    GhbPrefetcher pf(testConfig(2));
    pf.onMiss(0x400, 0x1000);
    pf.onMiss(0x400, 0x2000);
    EXPECT_EQ(pf.stats().misses.value(), 2u);
    EXPECT_EQ(pf.stats().issued.value(), 2u); // 1 fallback each
}

TEST(GhbPrefetcher, SurvivesGhbWraparound)
{
    GhbPrefetcherConfig cfg;
    cfg.ghbEntries = 16; // tiny GHB: links go stale quickly
    cfg.indexEntries = 16;
    cfg.degree = 2;
    GhbPrefetcher pf(cfg);
    // Many PCs thrash the tiny tables; must not crash or mispredict
    // into garbage (only block-aligned addresses).
    for (u32 i = 0; i < 1000; ++i) {
        const auto out =
            pf.onMiss(0x400 + (i % 7) * 4, 0x1000 + i * 64);
        for (const Addr p : out)
            EXPECT_EQ(p % 64, 0u);
    }
}

} // namespace
} // namespace lva
