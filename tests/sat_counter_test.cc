/**
 * @file
 * Unit tests for saturating counters: the signed confidence counter
 * and the approximation-degree down-counter.
 */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

namespace lva {
namespace {

TEST(SignedSatCounter, FromBitsRange)
{
    const auto c = SignedSatCounter::fromBits(4);
    EXPECT_EQ(c.min(), -8);
    EXPECT_EQ(c.max(), 7);
    EXPECT_EQ(c.value(), 0);
}

TEST(SignedSatCounter, SaturatesHigh)
{
    auto c = SignedSatCounter::fromBits(4);
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 7);
    EXPECT_TRUE(c.saturatedHigh());
    c.increment();
    EXPECT_EQ(c.value(), 7);
}

TEST(SignedSatCounter, SaturatesLow)
{
    auto c = SignedSatCounter::fromBits(4);
    for (int i = 0; i < 100; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), -8);
    EXPECT_TRUE(c.saturatedLow());
    c.decrement();
    EXPECT_EQ(c.value(), -8);
}

TEST(SignedSatCounter, IncrementDecrementSymmetric)
{
    auto c = SignedSatCounter::fromBits(4);
    c.increment(3);
    EXPECT_EQ(c.value(), 3);
    c.decrement(5);
    EXPECT_EQ(c.value(), -2);
}

TEST(SignedSatCounter, MultiStepSaturatesAtBoundary)
{
    auto c = SignedSatCounter::fromBits(4, 5);
    c.increment(10);
    EXPECT_EQ(c.value(), 7);
    c.decrement(100);
    EXPECT_EQ(c.value(), -8);
}

TEST(SignedSatCounter, ResetClamps)
{
    auto c = SignedSatCounter::fromBits(4);
    c.reset(100);
    EXPECT_EQ(c.value(), 7);
    c.reset(-100);
    EXPECT_EQ(c.value(), -8);
    c.reset(3);
    EXPECT_EQ(c.value(), 3);
}

TEST(SignedSatCounter, NegativeStepSaturatesAtTheOppositeRail)
{
    // Regression: increment(negative) used to move the clamp test's
    // rail the wrong way (and could overflow), letting the value
    // escape [min, max]. Both directions must clamp exactly.
    auto c = SignedSatCounter::fromBits(4, 5);
    c.increment(-20);
    EXPECT_EQ(c.value(), -8);
    c.decrement(-20); // decrement by a negative: step up
    EXPECT_EQ(c.value(), 7);
}

TEST(SignedSatCounter, ExtremeStepsCannotOverflow)
{
    // i32 extremes from an i32 starting value: the i64 arithmetic in
    // the counter must clamp, not wrap.
    SignedSatCounter c(-2147483647 - 1, 2147483647, 0);
    c.increment(2147483647);
    EXPECT_EQ(c.value(), 2147483647);
    c.increment(2147483647);
    EXPECT_EQ(c.value(), 2147483647);
    c.decrement(2147483647);
    c.decrement(2147483647);
    c.decrement(2147483647);
    EXPECT_EQ(c.value(), -2147483647 - 1);
    c.increment(-2147483647);
    EXPECT_EQ(c.value(), -2147483647 - 1);
}

TEST(SignedSatCounter, NegativeStepWithinRangeIsExact)
{
    auto c = SignedSatCounter::fromBits(4);
    c.increment(-3);
    EXPECT_EQ(c.value(), -3);
    c.decrement(-5);
    EXPECT_EQ(c.value(), 2);
}

TEST(SignedSatCounter, ExplicitRange)
{
    SignedSatCounter c(-2, 2, 0);
    c.increment(5);
    EXPECT_EQ(c.value(), 2);
    c.decrement(9);
    EXPECT_EQ(c.value(), -2);
}

TEST(DegreeCounter, DegreeZeroAlwaysFetches)
{
    DegreeCounter d(0);
    EXPECT_TRUE(d.atZero());
    EXPECT_TRUE(d.consume());
    EXPECT_TRUE(d.atZero());
}

TEST(DegreeCounter, CountsDownThenDemandsFetch)
{
    DegreeCounter d(3);
    EXPECT_FALSE(d.atZero());
    EXPECT_FALSE(d.consume()); // 3 -> 2
    EXPECT_FALSE(d.consume()); // 2 -> 1
    EXPECT_FALSE(d.consume()); // 1 -> 0
    EXPECT_TRUE(d.atZero());
    EXPECT_TRUE(d.consume()); // at zero: fetch is due
}

TEST(DegreeCounter, ResetRearms)
{
    DegreeCounter d(2);
    d.consume();
    d.consume();
    EXPECT_TRUE(d.atZero());
    d.reset();
    EXPECT_EQ(d.value(), 2u);
    EXPECT_FALSE(d.atZero());
}

TEST(DegreeCounter, SetMaxDegreeResets)
{
    DegreeCounter d(1);
    d.consume();
    d.setMaxDegree(5);
    EXPECT_EQ(d.maxDegree(), 5u);
    EXPECT_EQ(d.value(), 5u);
}

/**
 * Property: for degree D, a full consume/reset cycle serves exactly
 * D+1 misses per fetch — the 1:(D+1) fetch-to-miss ratio the paper
 * derives (section III-C).
 */
class DegreeRatio : public ::testing::TestWithParam<u32>
{
};

TEST_P(DegreeRatio, FetchToMissRatio)
{
    const u32 degree = GetParam();
    DegreeCounter d(degree);
    u64 misses = 0;
    u64 fetches = 0;
    for (u64 i = 0; i < 10 * (degree + 1); ++i) {
        ++misses;
        if (d.atZero()) {
            ++fetches;
            d.reset();
        } else {
            d.consume();
        }
    }
    EXPECT_EQ(misses, fetches * (degree + 1));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeRatio,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace lva
