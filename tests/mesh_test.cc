/**
 * @file
 * Unit tests for the 2x2 mesh NoC timing model.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace lva {
namespace {

MeshConfig
mesh2x2()
{
    return MeshConfig{}; // 2x2, 3-cycle routers, 16 B flits
}

TEST(MeshConfig, FlitMath)
{
    const MeshConfig cfg = mesh2x2();
    EXPECT_EQ(cfg.nodes(), 4u);
    EXPECT_EQ(cfg.flitsFor(MessageBytes::control), 1u);
    EXPECT_EQ(cfg.flitsFor(MessageBytes::data), 5u);
    EXPECT_EQ(cfg.flitsFor(1), 1u);
    EXPECT_EQ(cfg.flitsFor(16), 1u);
    EXPECT_EQ(cfg.flitsFor(17), 2u);
}

TEST(Mesh, LocalDeliveryPaysOneRouter)
{
    Mesh mesh(mesh2x2());
    EXPECT_DOUBLE_EQ(mesh.deliver(0, 0, 8, 10.0), 13.0);
}

TEST(Mesh, OneHopZeroLoadLatency)
{
    Mesh mesh(mesh2x2());
    // Node 0 -> node 1 is one hop: router (3) + 1 flit.
    EXPECT_DOUBLE_EQ(mesh.deliver(0, 1, 8, 0.0), 4.0);
}

TEST(Mesh, DiagonalIsTwoHops)
{
    Mesh mesh(mesh2x2());
    // Node 0 (0,0) -> node 3 (1,1): two hops, data message (5 flits).
    EXPECT_DOUBLE_EQ(mesh.deliver(0, 3, 72, 0.0), 16.0);
}

TEST(Mesh, FlitHopsAccumulate)
{
    Mesh mesh(mesh2x2());
    mesh.deliver(0, 1, 72, 0.0); // 5 flits * 1 hop
    mesh.deliver(0, 3, 72, 0.0); // 5 flits * 2 hops
    EXPECT_EQ(mesh.stats().flitHops.value(), 15u);
    EXPECT_EQ(mesh.stats().messages.value(), 2u);
}

TEST(Mesh, ContentionSerializesSameLink)
{
    Mesh mesh(mesh2x2());
    const double first = mesh.deliver(0, 1, 72, 0.0);
    const double second = mesh.deliver(0, 1, 72, 0.0);
    EXPECT_GT(second, first); // queued behind the first 5 flits
    EXPECT_GT(mesh.stats().queueWait, 0.0);
}

TEST(Mesh, DisjointLinksDoNotContend)
{
    Mesh mesh(mesh2x2());
    const double a = mesh.deliver(0, 1, 72, 0.0);
    const double b = mesh.deliver(3, 2, 72, 0.0);
    EXPECT_DOUBLE_EQ(a, b); // opposite edge, no shared link
}

TEST(Mesh, XyRoutingIsDeterministicLatency)
{
    Mesh mesh(mesh2x2());
    // All 1-hop pairs have identical zero-load latency.
    Mesh m2(mesh2x2());
    EXPECT_DOUBLE_EQ(mesh.deliver(1, 0, 8, 0.0),
                     m2.deliver(2, 3, 8, 0.0));
}

TEST(Mesh, ClearOccupancyResetsContention)
{
    Mesh mesh(mesh2x2());
    mesh.deliver(0, 1, 72, 0.0);
    mesh.clearOccupancy();
    EXPECT_DOUBLE_EQ(mesh.deliver(0, 1, 72, 0.0), 8.0);
}

TEST(Mesh, LargerMeshMultiHop)
{
    MeshConfig cfg;
    cfg.cols = 4;
    cfg.rows = 4;
    Mesh mesh(cfg);
    // Node 0 (0,0) -> node 15 (3,3): 6 hops.
    EXPECT_DOUBLE_EQ(mesh.deliver(0, 15, 8, 0.0), 6.0 * 4.0);
}

TEST(Mesh, ThroughputOnHotLink)
{
    Mesh mesh(mesh2x2());
    double last = 0.0;
    for (int i = 0; i < 100; ++i)
        last = mesh.deliver(0, 1, 72, 0.0);
    // 100 x 5 flits over a 1-flit/cycle link: at least ~500 cycles.
    EXPECT_GE(last, 400.0);
}

} // namespace
} // namespace lva
