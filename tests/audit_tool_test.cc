/**
 * @file
 * lva-audit tests: every cross-file rule fires line-exactly on its
 * mini-tree under tests/audit_fixtures/, the clean tree comes back
 * empty (the binary's exit-0 path), suppressions and the baseline
 * remove findings, and stale baseline entries are themselves
 * findings.  Fixture trees mirror the real repo layout (src/, docs/,
 * scripts/, README.md) and load through the same loader the lva_audit
 * binary uses.
 */

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/audit.hh"
#include "analyze/loader.hh"
#include "analyze/project_model.hh"

namespace {

using lva::audit::Baseline;
using lva::audit::loadProject;
using lva::audit::Project;
using lva::audit::runAudit;
using lva::lint::Finding;

Project
fixtureProject(const std::string &name)
{
    lva::audit::LoadResult loaded =
        loadProject(std::string(LVA_AUDIT_FIXTURE_DIR) + "/" + name);
    EXPECT_TRUE(loaded.errors.empty());
    EXPECT_FALSE(loaded.project.sources.empty())
        << "fixture tree " << name << " has no sources";
    return std::move(loaded.project);
}

/** (file, line, rule) triplets for line-exact whole-tree asserts. */
std::multiset<std::tuple<std::string, int, std::string>>
hits(const std::vector<Finding> &findings)
{
    std::multiset<std::tuple<std::string, int, std::string>> out;
    for (const Finding &f : findings)
        out.insert({f.file, f.line, f.rule});
    return out;
}

TEST(AuditCatalog, ListsEveryRuleExactlyOnce)
{
    std::set<std::string> ids;
    for (const auto &r : lva::audit::auditRuleCatalog()) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate " << r.id;
        EXPECT_FALSE(r.summary.empty());
        EXPECT_FALSE(r.scope.empty());
    }
    const std::set<std::string> expected = {
        lva::audit::kLayerBackEdge,    lva::audit::kLayerCycle,
        lva::audit::kStatUndocumented, lva::audit::kStatStaleDoc,
        lva::audit::kFaultUnknownSite, lva::audit::kFaultOrphanSite,
        lva::audit::kKnobUndocumented, lva::audit::kKnobStaleDoc,
        lva::audit::kKnobUnvalidated,  lva::audit::kLockCycle,
        lva::audit::kLockWaitHeld,     lva::audit::kStaleBaseline,
        lva::lint::kBadAllowFence};
    EXPECT_EQ(ids, expected);
}

TEST(AuditClean, CleanTreeHasNoFindings)
{
    // The clean tree exercises every extractor (stats, knobs with an
    // allow(knob-unvalidated) annotation, a fault site armed from
    // scripts/) and must come back empty — the binary's exit-0 path.
    const auto findings = runAudit(fixtureProject("clean"));
    EXPECT_TRUE(findings.empty())
        << findings.size() << " findings, first: " << findings[0].file
        << ":" << findings[0].line << " [" << findings[0].rule << "]";
}

TEST(AuditLayering, BackEdgeAndCycleFireLineExactly)
{
    const auto findings = runAudit(fixtureProject("layering"));
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            {"src/util/helper.hh", 5, lva::audit::kLayerBackEdge},
            // The cycle is reported once, on the include that closes
            // it (DFS order: a.hh discovered first, so b.hh's include
            // of a.hh closes the loop).
            {"src/core/b.hh", 4, lva::audit::kLayerCycle},
        };
    EXPECT_EQ(hits(findings), expected);
}

TEST(AuditStats, UndocumentedLiteralAndStaleRowFire)
{
    const auto findings = runAudit(fixtureProject("stats"));
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            {"src/core/engine.cc", 16, lva::audit::kStatUndocumented},
            {"docs/metrics.md", 9, lva::audit::kStatStaleDoc},
        };
    EXPECT_EQ(hits(findings), expected);
    // The documented full literal and the joinPath fragment backing
    // engine.pipe.stalls produce no findings — only the rogue one.
}

TEST(AuditFaults, OrphanDefAndUnknownRefFire)
{
    const auto findings = runAudit(fixtureProject("faults"));
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            {"src/core/worker.cc", 12, lva::audit::kFaultOrphanSite},
            {"scripts/chaos.sh", 4, lva::audit::kFaultUnknownSite},
        };
    EXPECT_EQ(hits(findings), expected);
}

TEST(AuditKnobs, UnvalidatedUndocumentedStaleAndFenceFire)
{
    const auto findings = runAudit(fixtureProject("knobs"));
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            {"src/core/knobs.cc", 12, lva::audit::kKnobUndocumented},
            {"src/core/knobs.cc", 12, lva::audit::kKnobUnvalidated},
            {"README.md", 8, lva::audit::kKnobStaleDoc},
            {"src/core/fence.cc", 2, lva::lint::kBadAllowFence},
        };
    EXPECT_EQ(hits(findings), expected);
}

TEST(AuditLocks, OrderingCycleAndWaitWhileHoldingFire)
{
    const auto findings = runAudit(fixtureProject("locks"));
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            // Reported on the edge that closes the cycle: backward()
            // acquiring a_ while holding b_.
            {"src/core/pipeline.cc", 33, lva::audit::kLockCycle},
            {"src/core/pipeline.cc", 42, lva::audit::kLockWaitHeld},
        };
    EXPECT_EQ(hits(findings), expected);
}

TEST(AuditSuppression, InlineAllowRemovesTheFinding)
{
    // Same content as the knobs fixture's offending line, but with an
    // allow annotation above it: the knob-unvalidated finding
    // disappears while knob-undocumented (not suppressed) stays.
    Project project = fixtureProject("knobs");
    for (lva::audit::SourceFile &f : project.sources) {
        if (f.path == "src/core/knobs.cc")
            f.suppressions.inlineAllow[12].insert(
                lva::audit::kKnobUnvalidated);
    }
    const auto findings = runAudit(project);
    for (const Finding &f : findings)
        EXPECT_NE(f.rule, std::string(lva::audit::kKnobUnvalidated));
    EXPECT_EQ(findings.size(), 3u);
}

TEST(AuditBaseline, EntriesSwallowFindingsAndStaleEntriesSurface)
{
    // Grandfather both knob findings on line 12; leave the stale-doc
    // row and the fence finding live, and add one entry that matches
    // nothing — it must surface as stale-baseline.
    const std::string text =
        "# comment\n"
        "knob-unvalidated\tsrc/core/knobs.cc\tLVA_FIX_RAW\n"
        "knob-undocumented\tsrc/core/knobs.cc\tLVA_FIX_RAW\n"
        "layer-back-edge\tsrc/util/gone.hh\tsrc/eval/gone.hh\n";
    Baseline baseline = lva::audit::parseBaseline(
        "tools/analyze/audit_baseline.txt", text);
    ASSERT_EQ(baseline.entries.size(), 3u);

    const auto findings =
        runAudit(fixtureProject("knobs"), &baseline);
    const std::multiset<std::tuple<std::string, int, std::string>>
        expected = {
            {"README.md", 8, lva::audit::kKnobStaleDoc},
            {"src/core/fence.cc", 2, lva::lint::kBadAllowFence},
            // The unmatched grandfather entry, at its baseline line.
            {"tools/analyze/audit_baseline.txt", 4,
             lva::audit::kStaleBaseline},
        };
    EXPECT_EQ(hits(findings), expected);
}

TEST(AuditModel, ExtractionDetails)
{
    using lva::audit::parseSource;

    // Fragment vs full stat literals.
    const lva::audit::SourceFile stats = parseSource(
        "src/core/s.cc",
        "void f(R &reg, const std::string &p) {\n"
        "    reg.counter(\"a.b\", \"d\", \"u\");\n"
        "    reg.gauge(SR::joinPath(p, \"leaf\"), \"d\", \"u\");\n"
        "    reg.histogram(p + \".tail\", 0.0, 1.0, 4, \"d\");\n"
        "}\n");
    ASSERT_EQ(stats.stats.size(), 3u);
    EXPECT_FALSE(stats.stats[0].fragment);
    EXPECT_EQ(stats.stats[0].text, "a.b");
    EXPECT_TRUE(stats.stats[1].fragment);
    EXPECT_EQ(stats.stats[1].text, "leaf");
    EXPECT_TRUE(stats.stats[2].fragment);
    EXPECT_EQ(stats.stats[2].text, ".tail");

    // Prefix fault definition through a local binding, and spec refs
    // in comments count as references.
    const lva::audit::SourceFile faults = parseSource(
        "src/core/f.cc",
        // The spec is split so this test file's own bytes don't
        // register as a fault reference when the audit scans tests/.
        "// arm with x.step.2=th" "row to test\n"
        "void g(int i) {\n"
        "    const std::string site = \"x.step.\" + str(i);\n"
        "    faultPoint(site);\n"
        "}\n");
    ASSERT_EQ(faults.faultDefs.size(), 1u);
    EXPECT_EQ(faults.faultDefs[0].site, "x.step.");
    EXPECT_TRUE(faults.faultDefs[0].prefix);
    ASSERT_EQ(faults.faultRefs.size(), 1u);
    EXPECT_EQ(faults.faultRefs[0].site, "x.step.2");

    // Owner-qualified mutexes: two classes in one file with the same
    // member name stay distinct (no false cycle).
    const lva::audit::SourceFile locks = parseSource(
        "src/eval/two.cc",
        "void A::f() {\n"
        "    std::lock_guard<std::mutex> l(mutex_);\n"
        "    std::lock_guard<std::mutex> m(other_);\n"
        "}\n"
        "void B::g() {\n"
        "    std::lock_guard<std::mutex> l(mutex_);\n"
        "}\n");
    ASSERT_EQ(locks.lockEdges.size(), 1u);
    EXPECT_EQ(locks.lockEdges[0].held, "A::mutex_");
    EXPECT_EQ(locks.lockEdges[0].acquired, "A::other_");

    // Layer map sanity.
    EXPECT_EQ(lva::audit::layerOf("src/util/x.hh"), 0);
    EXPECT_EQ(lva::audit::layerOf("src/mem/x.hh"), 1);
    EXPECT_EQ(lva::audit::layerOf("src/eval/x.hh"), 2);
    EXPECT_EQ(lva::audit::layerOf("tools/x.cc"), 3);
    EXPECT_EQ(lva::audit::layerOf("docs/metrics.md"), -1);
}

} // namespace
