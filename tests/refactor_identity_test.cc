/**
 * @file
 * Byte-identity pins for the hot-path refactor (stats-exactness).
 *
 * The repo's core invariant is that `lva-stats-v1` exports are
 * byte-identical for any LVA_JOBS and across internal refactors. These
 * tests pin the exact export bytes (as an FNV-1a digest) of the fig5
 * (phase-1 sweep) and fig10 (phase-2 full-system sweep) grids at a
 * fixed seed count and scale, for both the serial path (jobs=1) and a
 * pooled run (jobs=4). The digests were captured from the pre-refactor
 * (PR 5) tree, so any allocation/SoA/devirtualization rework of the
 * per-load hot path that drifts a single exported byte fails here —
 * the refactor must be value-exact, not merely plausible.
 *
 * If a FUTURE PR changes simulation semantics on purpose (new stat,
 * different estimator arithmetic), re-capture the digests by running
 * with LVA_PRINT_GOLDEN=1 and updating the constants — and say so in
 * the PR, because every historical figure shifts with them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/checkpoint.hh"

namespace lva {
namespace {

// Captured from the pre-refactor tree at seeds=1, scale=0.05.
constexpr char kFig5GoldenDigest[] = "53df6e8b533dd4e5";
constexpr char kFig10GoldenDigest[] = "036da5fdd7d27b1f";

constexpr u32 kSeeds = 1;
constexpr double kScale = 0.05;

/** Print the digest when re-capturing goldens (LVA_PRINT_GOLDEN=1). */
void
maybePrintGolden(const char *what, const std::string &digest)
{
    if (std::getenv("LVA_PRINT_GOLDEN") != nullptr)
        std::printf("GOLDEN %s = %s\n", what, digest.c_str());
}

/** The exact fig5_ghb_error sweep grid (bench/fig5_ghb_error.cc),
 *  built from @p base — Evaluator::baselineLva() or a machine's
 *  phase-1 projection. */
std::vector<SweepPoint>
fig5Points(const ApproxMemory::Config &base)
{
    const u32 ghb_sizes[] = {0, 1, 2, 4};
    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 ghb : ghb_sizes) {
            ApproxMemory::Config cfg = base;
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.ghbEntries = ghb; });
            points.push_back({"ghb-" + std::to_string(ghb), name, cfg});
        }
    }
    return points;
}

std::string
fig5ExportDigest(u32 jobs,
                 const ApproxMemory::Config &base =
                     Evaluator::baselineLva())
{
    Evaluator eval(kSeeds, kScale);
    SweepRunner runner(eval, jobs);
    const std::vector<SweepPoint> points = fig5Points(base);
    const std::vector<EvalResult> results = runner.run(points);
    return hexU64(
        fnv1a64(renderSweepStats("fig5_ghb_error", points, results)));
}

TEST(RefactorIdentity, Fig5ExportBytesMatchPreRefactorSerial)
{
    const std::string digest = fig5ExportDigest(1);
    maybePrintGolden("fig5", digest);
    EXPECT_EQ(digest, kFig5GoldenDigest);
}

TEST(RefactorIdentity, Fig5ExportBytesMatchPreRefactorJobs4)
{
    const std::string digest = fig5ExportDigest(4);
    maybePrintGolden("fig5", digest);
    EXPECT_EQ(digest, kFig5GoldenDigest);
}

/** The exact fig10_fullsystem grid (bench/fig10_fullsystem.cc).
 *  @p machine as in runFullSystemSweep: null = built-in Table II. */
std::string
fig10ExportDigest(u32 jobs, const MachineConfig *machine = nullptr)
{
    const std::vector<u32> degrees = {0, 2, 4, 8, 16};
    const auto &names = allWorkloadNames();
    SweepRunner runner(jobs);
    const auto sweeps = runner.map(names.size(), [&](u64 i) {
        return runFullSystemSweep(names[i], degrees, /*seed=*/1, kScale,
                                  machine);
    });
    return hexU64(fnv1a64(renderStatsJson(
        "fig10_fullsystem", fsSweepSnapshots(sweeps), {})));
}

TEST(RefactorIdentity, Fig10ExportBytesMatchPreRefactorSerial)
{
    const std::string digest = fig10ExportDigest(1);
    maybePrintGolden("fig10", digest);
    EXPECT_EQ(digest, kFig10GoldenDigest);
}

TEST(RefactorIdentity, Fig10ExportBytesMatchPreRefactorJobs4)
{
    const std::string digest = fig10ExportDigest(4);
    maybePrintGolden("fig10", digest);
    EXPECT_EQ(digest, kFig10GoldenDigest);
}

// PR 10: passing the built-in machine *explicitly* — as a parsed
// config object, the way --machine/LVA_MACHINE do — must reproduce
// the same pre-config golden bytes as no machine at all, at any job
// count. This is the file-less/default-file equivalence the topology
// docs promise.

TEST(RefactorIdentity, Fig5ExplicitDefaultMachineMatchesGoldenSerial)
{
    EXPECT_EQ(fig5ExportDigest(1, defaultMachine().phase1Lva()),
              kFig5GoldenDigest);
}

TEST(RefactorIdentity, Fig5ExplicitDefaultMachineMatchesGoldenJobs4)
{
    EXPECT_EQ(fig5ExportDigest(4, defaultMachine().phase1Lva()),
              kFig5GoldenDigest);
}

TEST(RefactorIdentity, Fig5ParsedMinimalMachineMatchesGolden)
{
    // A machine that only says "schema" is the Table II machine.
    const MachineConfig m =
        machineFromJson(parseJson("{\"schema\":\"lva-machine-v1\"}"));
    EXPECT_EQ(fig5ExportDigest(1, m.phase1Lva()), kFig5GoldenDigest);
}

TEST(RefactorIdentity, Fig10ExplicitDefaultMachineMatchesGoldenSerial)
{
    EXPECT_EQ(fig10ExportDigest(1, &defaultMachine()),
              kFig10GoldenDigest);
}

TEST(RefactorIdentity, Fig10ExplicitDefaultMachineMatchesGoldenJobs4)
{
    EXPECT_EQ(fig10ExportDigest(4, &defaultMachine()),
              kFig10GoldenDigest);
}

} // namespace
} // namespace lva
