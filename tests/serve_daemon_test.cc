/**
 * @file
 * Cross-process acceptance tests for the lva_served daemon and the
 * lva_client CLI: real processes, real signals. Pins the ISSUE's
 * serving criteria — SIGTERM drains in-flight requests and exits 0,
 * an injected serve.accept fault never takes the daemon down, and a
 * `shutdown` request ends the process cleanly.
 *
 * Binary paths arrive via the LVA_SERVED_BINARY / LVA_CLIENT_BINARY
 * compile definitions; knobs and fault specs travel through the
 * child environment.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "util/net.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Exit status of `env prefix + command`; -1 on abnormal exit. */
int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

class ServeDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("lva_served_" +
                std::to_string(static_cast<long>(getpid())) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        log_ = dir_ / "served.log";
    }

    void
    TearDown() override
    {
        if (pid_ > 0) { // a test failed before reaping: clean up
            kill(pid_, SIGKILL);
            int status = 0;
            waitpid(pid_, &status, 0);
        }
        fs::remove_all(dir_);
    }

    /** Fork+exec the daemon; stdout/stderr land in log_. */
    void
    startDaemon(const std::string &fault = "")
    {
        pid_ = fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            FILE *log = std::fopen(log_.string().c_str(), "w");
            if (log) {
                dup2(fileno(log), STDOUT_FILENO);
                dup2(fileno(log), STDERR_FILENO);
            }
            setenv("LVA_SEEDS", "1", 1);
            setenv("LVA_SCALE", "0.02", 1);
            setenv("LVA_JOBS", "1", 1);
            if (!fault.empty())
                setenv("LVA_FAULT", fault.c_str(), 1);
            execl(LVA_SERVED_BINARY, "lva_served", "--port", "0",
                  "--workers", "2", static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        port_ = waitForPort();
        ASSERT_GT(port_, 0) << slurp(log_);
    }

    /** Parse the announced port out of the log (retries ~10s). */
    int
    waitForPort() const
    {
        for (int tries = 0; tries < 200; ++tries) {
            const std::string log = slurp(log_);
            const std::size_t at = log.find("127.0.0.1:");
            if (at != std::string::npos) {
                const std::size_t nl = log.find(' ', at);
                return std::atoi(
                    log.substr(at + 10, nl - at - 10).c_str());
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        return 0;
    }

    int
    client(const std::string &args) const
    {
        return runCommand(std::string("'") + LVA_CLIENT_BINARY +
                          "' --port " + std::to_string(port_) + " " +
                          args + " >> '" +
                          (dir_ / "client.log").string() + "' 2>&1");
    }

    /** Reap the daemon; returns its exit code (-1 = abnormal). */
    int
    reap()
    {
        int status = 0;
        waitpid(pid_, &status, 0);
        pid_ = -1;
        if (!WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    fs::path dir_;
    fs::path log_;
    pid_t pid_ = -1;
    int port_ = 0;
};

TEST_F(ServeDaemonTest, SigtermDrainsAndExitsZero)
{
    startDaemon();
    EXPECT_EQ(client("ping"), 0) << slurp(dir_ / "client.log");
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
    EXPECT_NE(slurp(log_).find("drained, exiting"),
              std::string::npos);
}

TEST_F(ServeDaemonTest, SigtermFinishesAnInFlightRequest)
{
    // Delay request 0 by 800 ms, SIGTERM the daemon mid-request: the
    // client must still receive its complete response (exit 0) and
    // the daemon must exit 0 after the drain.
    startDaemon("serve.request.0=delay:800");
    int client_exit = -2;
    std::thread inflight(
        [&] { client_exit = client("ping"); });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    kill(pid_, SIGTERM);
    inflight.join();
    EXPECT_EQ(client_exit, 0) << slurp(dir_ / "client.log");
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(ServeDaemonTest, InjectedAcceptFaultDoesNotKillTheDaemon)
{
    startDaemon("serve.accept=throw@first1");
    EXPECT_EQ(client("ping"), 0) << slurp(dir_ / "client.log");
    EXPECT_NE(slurp(log_).find("serve: accept"), std::string::npos);
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(ServeDaemonTest, InjectedRequestFaultDoesNotKillTheDaemon)
{
    startDaemon("serve.request.0=throw");
    EXPECT_EQ(client("ping"), 1); // request 0 fails...
    EXPECT_EQ(client("ping"), 0); // ...the daemon keeps serving
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(ServeDaemonTest, ShutdownRequestEndsTheProcessCleanly)
{
    startDaemon();
    EXPECT_EQ(client("shutdown"), 0) << slurp(dir_ / "client.log");
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(ServeDaemonTest, ClientUsageErrorsExitTwo)
{
    startDaemon();
    EXPECT_EQ(client("frobnicate"), 2);
    EXPECT_EQ(client("eval"), 2); // --workload is required
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0);
}

/**
 * A stub daemon for the client's busy handling: answers `busy` (with
 * retryAfterMs) for the first @p busyCount connections, then a clean
 * ping response. Counts connections so the test can assert exactly
 * how many attempts the client made.
 */
class BusyStubServer
{
  public:
    explicit BusyStubServer(int busyCount)
        : busyCount_(busyCount), listener_(0), thread_([this] {
              serve();
          })
    {
    }

    ~BusyStubServer()
    {
        done_.store(true);
        thread_.join();
    }

    u16 port() const { return listener_.port(); }
    int connections() const { return connections_.load(); }

  private:
    void
    serve()
    {
        while (!done_.load()) {
            TcpStream conn = listener_.acceptOne(200);
            if (!conn.valid())
                continue;
            const int n = ++connections_;
            try {
                std::string req;
                if (!readFrame(conn, req, 5000))
                    continue;
                if (n <= busyCount_)
                    writeFrame(conn,
                               "{\"schema\":\"lva-rpc-v1\","
                               "\"ok\":false,\"busy\":true,"
                               "\"retryAfterMs\":50,"
                               "\"error\":\"server at capacity\"}",
                               5000);
                else
                    writeFrame(conn,
                               "{\"schema\":\"lva-rpc-v1\","
                               "\"ok\":true,\"op\":\"ping\"}",
                               5000);
            } catch (const std::exception &) {
                // A dropped stub connection only ends that attempt.
            }
        }
    }

    int busyCount_;
    TcpListener listener_;
    std::atomic<int> connections_{0};
    std::atomic<bool> done_{false};
    std::thread thread_;
};

TEST(ClientBusyBackoff, HonorsRetryAfterUntilTheServerYields)
{
    BusyStubServer server(2);
    const int rc = runCommand(
        std::string("'") + LVA_CLIENT_BINARY + "' --port " +
        std::to_string(server.port()) + " ping > /dev/null 2>&1");
    EXPECT_EQ(rc, 0);
    // busy, busy, ok: the retry-after backoff made exactly 3 attempts.
    EXPECT_EQ(server.connections(), 3);
}

TEST(ClientBusyBackoff, BackoffIsBoundedByTheRetryBudget)
{
    BusyStubServer server(100); // never yields
    const int rc = runCommand(
        std::string("LVA_CLIENT_BUSY_RETRIES=1 '") +
        LVA_CLIENT_BINARY + "' --port " +
        std::to_string(server.port()) + " ping > /dev/null 2>&1");
    EXPECT_EQ(rc, 1);
    // One initial attempt plus the single budgeted retry, then the
    // busy refusal is surfaced as a failure.
    EXPECT_EQ(server.connections(), 2);
}

} // namespace
} // namespace lva
