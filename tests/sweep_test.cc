/**
 * @file
 * Tests for the parallel sweep engine: parallel evaluation must be
 * bit-identical to the serial path, results must come back in
 * submission order, and the shared golden-run cache must hold under
 * concurrency.
 */

#include <gtest/gtest.h>

#include <vector>

#include "eval/sweep.hh"

namespace lva {
namespace {

/** Every EvalResult field, bit-for-bit. */
void
expectIdentical(const EvalResult &a, const EvalResult &b)
{
    EXPECT_EQ(a.preciseMpki, b.preciseMpki);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.normMpki, b.normMpki);
    EXPECT_EQ(a.preciseFetches, b.preciseFetches);
    EXPECT_EQ(a.fetches, b.fetches);
    EXPECT_EQ(a.normFetches, b.normFetches);
    EXPECT_EQ(a.outputError, b.outputError);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.instrVariation, b.instrVariation);
    EXPECT_EQ(a.instructions, b.instructions);
}

std::vector<SweepPoint>
allWorkloadPoints()
{
    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        points.push_back({"lva", name, Evaluator::baselineLva()});

        ApproxMemory::Config deg8 = Evaluator::baselineLva();
        deg8.approx.approxDegree = 8;
        points.push_back({"deg8", name, deg8});
    }
    return points;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit)
{
    const std::vector<SweepPoint> points = allWorkloadPoints();

    Evaluator serial_eval(2, 0.05);
    SweepRunner serial(serial_eval, 1);
    const std::vector<EvalResult> expect = serial.run(points);

    Evaluator parallel_eval(2, 0.05);
    SweepRunner parallel(parallel_eval, 4);
    const std::vector<EvalResult> got = parallel.run(points);

    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        SCOPED_TRACE(points[i].workload + "/" + points[i].label);
        expectIdentical(expect[i], got[i]);
    }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Unequal task costs: a late cheap task finishing first must not
    // displace earlier results.
    SweepRunner runner(4);
    const auto out = runner.map(32, [](u64 i) {
        volatile double sink = 0.0;
        for (u64 k = 0; k < (i % 3) * 100000; ++k)
            sink = sink + static_cast<double>(k);
        return static_cast<int>(i);
    });
    ASSERT_EQ(out.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SweepRunner, ConcurrentPointsShareOneGoldenRun)
{
    // 8 concurrent points on the same workload: the golden (precise)
    // baseline must be built exactly once per seed, and every point
    // must see the identical baseline numbers.
    Evaluator eval(1, 0.05);
    std::vector<SweepPoint> points;
    for (int i = 0; i < 8; ++i)
        points.push_back({"lva", "canneal", Evaluator::baselineLva()});

    SweepRunner runner(eval, 4);
    const std::vector<EvalResult> results = runner.run(points);
    for (const EvalResult &r : results) {
        EXPECT_EQ(r.preciseMpki, results[0].preciseMpki);
        EXPECT_EQ(r.preciseFetches, results[0].preciseFetches);
    }
}

TEST(SweepRunner, SerialRunnerUsesNoPool)
{
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    EXPECT_EQ(runner.jobs(), 1u);
    const auto out =
        runner.run({{"precise", "x264", Evaluator::preciseConfig()}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].normMpki, 1.0, 1e-9);
}

TEST(SweepRunner, MapExceptionPropagates)
{
    SweepRunner runner(2);
    EXPECT_THROW(runner.map(4,
                            [](u64 i) -> int {
                                if (i == 2)
                                    throw std::runtime_error("bad");
                                return 0;
                            }),
                 std::runtime_error);
}

} // namespace
} // namespace lva
