/**
 * @file
 * Tests for the parallel sweep engine: parallel evaluation must be
 * bit-identical to the serial path, results must come back in
 * submission order, and the shared golden-run cache must hold under
 * concurrency.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "eval/sweep.hh"

namespace lva {
namespace {

/** Every EvalResult field, bit-for-bit — stats snapshot included. */
void
expectIdentical(const EvalResult &a, const EvalResult &b)
{
    EXPECT_EQ(a.preciseMpki, b.preciseMpki);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.normMpki, b.normMpki);
    EXPECT_EQ(a.preciseFetches, b.preciseFetches);
    EXPECT_EQ(a.fetches, b.fetches);
    EXPECT_EQ(a.normFetches, b.normFetches);
    EXPECT_EQ(a.outputError, b.outputError);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.instrVariation, b.instrVariation);
    EXPECT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.stats.entries.size(), b.stats.entries.size());
    for (std::size_t i = 0; i < a.stats.entries.size(); ++i) {
        const SnapEntry &ea = a.stats.entries[i];
        const SnapEntry &eb = b.stats.entries[i];
        EXPECT_EQ(ea.path, eb.path);
        EXPECT_EQ(ea.count, eb.count);
        EXPECT_EQ(ea.gauge, eb.gauge);
        EXPECT_EQ(ea.histBuckets, eb.histBuckets);
    }
}

std::vector<SweepPoint>
allWorkloadPoints()
{
    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        points.push_back({"lva", name, Evaluator::baselineLva()});

        ApproxMemory::Config deg8 = Evaluator::baselineLva();
        deg8.approx.approxDegree = 8;
        points.push_back({"deg8", name, deg8});
    }
    return points;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit)
{
    const std::vector<SweepPoint> points = allWorkloadPoints();

    Evaluator serial_eval(2, 0.05);
    SweepRunner serial(serial_eval, 1);
    const std::vector<EvalResult> expect = serial.run(points);

    Evaluator parallel_eval(2, 0.05);
    SweepRunner parallel(parallel_eval, 4);
    const std::vector<EvalResult> got = parallel.run(points);

    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        SCOPED_TRACE(points[i].workload + "/" + points[i].label);
        expectIdentical(expect[i], got[i]);
    }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Unequal task costs: a late cheap task finishing first must not
    // displace earlier results.
    SweepRunner runner(4);
    const auto out = runner.map(32, [](u64 i) {
        volatile double sink = 0.0;
        for (u64 k = 0; k < (i % 3) * 100000; ++k)
            sink = sink + static_cast<double>(k);
        return static_cast<int>(i);
    });
    ASSERT_EQ(out.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SweepRunner, ConcurrentPointsShareOneGoldenRun)
{
    // 8 concurrent points on the same workload: the golden (precise)
    // baseline must be built exactly once per seed, and every point
    // must see the identical baseline numbers.
    Evaluator eval(1, 0.05);
    std::vector<SweepPoint> points;
    for (int i = 0; i < 8; ++i)
        points.push_back({"lva", "canneal", Evaluator::baselineLva()});

    SweepRunner runner(eval, 4);
    const std::vector<EvalResult> results = runner.run(points);
    for (const EvalResult &r : results) {
        EXPECT_EQ(r.preciseMpki, results[0].preciseMpki);
        EXPECT_EQ(r.preciseFetches, results[0].preciseFetches);
    }
}

TEST(SweepRunner, SerialRunnerUsesNoPool)
{
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    EXPECT_EQ(runner.jobs(), 1u);
    const auto out =
        runner.run({{"precise", "x264", Evaluator::preciseConfig()}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].normMpki, 1.0, 1e-9);
}

TEST(SweepRunner, ExplicitJobsOverrideTheEnvironment)
{
    // Pinned precedence (DESIGN.md section 10): an explicit nonzero
    // jobs count always wins. jobs=1 is the exact serial path — no
    // pool is built even when LVA_JOBS demands more — so a driver can
    // guarantee the historical serial behavior programmatically.
    ::setenv("LVA_JOBS", "8", 1);
    Evaluator eval(1, 0.05);
    SweepRunner serial(eval, 1);
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_TRUE(serial.serial());

    SweepRunner two(eval, 2);
    EXPECT_EQ(two.jobs(), 2u);
    EXPECT_FALSE(two.serial());

    // Only jobs=0 defers to the environment.
    SweepRunner deferred(eval, 0);
    EXPECT_EQ(deferred.jobs(), 8u);
    ::unsetenv("LVA_JOBS");
}

TEST(SweepRunner, StatsJsonExportIsJobCountInvariant)
{
    // The acceptance bar for the registry refactor: the versioned
    // JSON export must be byte-identical between the serial path and
    // a 4-worker pool.
    namespace fs = std::filesystem;
    std::vector<SweepPoint> points;
    for (const auto &name : {"canneal", "x264"}) {
        points.push_back({"lva", name, Evaluator::baselineLva()});
        ApproxMemory::Config deg4 = Evaluator::baselineLva();
        deg4.approx.approxDegree = 4;
        points.push_back({"deg4", name, deg4});
    }

    auto runAndExport = [&](unsigned jobs, const fs::path &dir) {
        fs::remove_all(dir);
        setenv("LVA_RESULTS_DIR", dir.c_str(), 1);
        Evaluator eval(2, 0.05);
        SweepRunner runner(eval, jobs);
        const std::vector<EvalResult> results = runner.run(points);
        const std::string written =
            exportSweepStats("sweep_json_test", points, results);
        unsetenv("LVA_RESULTS_DIR");
        std::ifstream in(written);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    const fs::path base = fs::temp_directory_path();
    const std::string serial =
        runAndExport(1, base / "lva_sweep_json_serial");
    const std::string parallel =
        runAndExport(4, base / "lva_sweep_json_parallel");

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);

    fs::remove_all(base / "lva_sweep_json_serial");
    fs::remove_all(base / "lva_sweep_json_parallel");
}

TEST(SweepRunner, MapExceptionPropagates)
{
    SweepRunner runner(2);
    EXPECT_THROW(runner.map(4,
                            [](u64 i) -> int {
                                if (i == 2)
                                    throw std::runtime_error("bad");
                                return 0;
                            }),
                 std::runtime_error);
}

} // namespace
} // namespace lva
