/**
 * @file
 * Randomized stress tests: drive the approximator, the LVP baseline
 * and the phase-1 memory front-end with random configurations and
 * value streams and check the structural invariants that must hold
 * regardless of configuration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/approx_memory.hh"
#include "util/random.hh"

namespace lva {
namespace {

ApproximatorConfig
randomConfig(Rng &rng)
{
    ApproximatorConfig cfg;
    const u32 table_choices[] = {16, 64, 256, 512};
    cfg.tableEntries = table_choices[rng.below(4)];
    const u32 assoc_choices[] = {1, 2, 4};
    cfg.tableAssoc = assoc_choices[rng.below(3)];
    cfg.ghbEntries = static_cast<u32>(rng.below(5));
    cfg.lhbEntries = 1 + static_cast<u32>(rng.below(8));
    cfg.tagBits = 8 + static_cast<u32>(rng.below(24));
    cfg.valueDelay = static_cast<u32>(rng.below(16));
    cfg.approxDegree = static_cast<u32>(rng.below(20));
    cfg.confidenceWindow = rng.chance(0.2)
                               ? ApproximatorConfig::infiniteWindow
                               : rng.uniform(0.0, 0.5);
    cfg.confidenceForInts = rng.chance(0.5);
    cfg.confidenceDisabled = rng.chance(0.2);
    cfg.proportionalConfidence = rng.chance(0.5);
    cfg.estimator = static_cast<Estimator>(rng.below(3));
    cfg.mantissaDropBits = static_cast<u32>(rng.below(24));
    return cfg;
}

Value
randomValue(Rng &rng)
{
    switch (rng.below(3)) {
      case 0:
        return Value::fromInt(rng.range(-1000, 1000));
      case 1:
        return Value::fromFloat(
            static_cast<float>(rng.uniform(-100.0, 100.0)));
      default:
        return Value::fromDouble(rng.uniform(-1e6, 1e6));
    }
}

class ApproximatorFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(ApproximatorFuzz, InvariantsHoldUnderRandomTraffic)
{
    Rng rng(GetParam() * 77 + 5);
    LoadValueApproximator lva(randomConfig(rng));

    u64 fetched = 0;
    for (int i = 0; i < 20000; ++i) {
        const LoadSiteId pc =
            0x400 + static_cast<LoadSiteId>(rng.below(64)) * 4;
        if (rng.chance(0.3)) {
            lva.onHit(pc, randomValue(rng));
            continue;
        }
        const MissResponse resp = lva.onMiss(pc, randomValue(rng));
        fetched += resp.fetch;
        // A non-approximated miss always fetches (demand).
        if (!resp.approximated) {
            EXPECT_TRUE(resp.fetch);
        }
        // A generated value must be a finite or at least well-typed
        // scalar (averaging finite inputs stays finite).
        if (resp.approximated) {
            EXPECT_TRUE(std::isfinite(resp.value.toReal()));
        }
    }
    lva.drainPending();

    const ApproximatorStats &s = lva.stats();
    // Conservation: every miss is approximated, cold, confidence-
    // rejected or an allocation.
    EXPECT_EQ(s.lookups.value(),
              s.approximations.value() + s.allocations.value() +
                  s.coldRejects.value() + s.confRejects.value());
    // Skipped fetches are a subset of approximations.
    EXPECT_LE(s.fetchesSkipped.value(), s.approximations.value());
    // Every fetch enqueues exactly one training; all drained.
    EXPECT_EQ(s.trainings.value(),
              s.lookups.value() - s.fetchesSkipped.value());
    EXPECT_EQ(fetched, s.lookups.value() - s.fetchesSkipped.value());
    // Coverage is a fraction.
    EXPECT_GE(lva.coverage(), 0.0);
    EXPECT_LE(lva.coverage(), 1.0);
    // The table never reports more valid entries than it has.
    EXPECT_LE(lva.validEntries(), 512u);
}

TEST_P(ApproximatorFuzz, MemoryFrontEndConservation)
{
    Rng rng(GetParam() * 131 + 7);
    ApproxMemory::Config cfg;
    cfg.threads = 1 + static_cast<u32>(rng.below(4));
    cfg.cache = CacheConfig{
        u64(1024) << rng.below(4), // 1-8 KB
        u32(1) << rng.below(3), 64};
    cfg.mode = rng.chance(0.5) ? MemMode::Lva : MemMode::Lvp;
    cfg.approx = randomConfig(rng);
    ApproxMemory mem(cfg);

    for (int i = 0; i < 20000; ++i) {
        const ThreadId tid =
            static_cast<ThreadId>(rng.below(cfg.threads));
        const Addr addr = rng.below(1 << 14) * 8;
        if (rng.chance(0.2)) {
            mem.store(tid, 0x900, addr);
        } else {
            mem.load(tid, 0x400 + static_cast<LoadSiteId>(
                                       rng.below(16)) * 4,
                     addr, randomValue(rng), rng.chance(0.6));
        }
        if (rng.chance(0.01))
            mem.tickInstructions(tid, rng.below(100));
    }
    mem.finish();

    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.loadMisses, m.effectiveMisses + m.approxLoads);
    EXPECT_LE(m.approxLoads, m.approximableLoads);
    EXPECT_LE(m.effectiveMisses, m.loadMisses);
    EXPECT_GE(m.instructions, m.loads + m.stores);
    EXPECT_GE(m.rawMpki(), m.mpki());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximatorFuzz,
                         ::testing::Range<u64>(1, 13));

} // namespace
} // namespace lva
