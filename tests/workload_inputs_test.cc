/**
 * @file
 * Property tests for the synthetic input generators: the statistical
 * properties the paper's analysis depends on (input redundancy,
 * clustered feature spaces, smooth trajectories) and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/approx_memory.hh"
#include "workloads/blackscholes.hh"
#include "workloads/bodytrack.hh"
#include "workloads/canneal.hh"
#include "workloads/swaptions.hh"
#include "workloads/workload.hh"

namespace lva {
namespace {

WorkloadParams
params(u64 seed = 1, double scale = 0.2)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = scale;
    return p;
}

TEST(BlackscholesInputs, SpotPriceRedundancyMatchesPaper)
{
    // "An underlying asset's current price takes on four possible
    // values, two of which occur over 98% of the time."
    BlackscholesWorkload w(params(1, 1.0));
    w.generate();
    // Probe the distribution through a metrics-free precise run: the
    // spot values live in the region; inspect via prices' inputs is
    // indirect, so instead run and count distinct spot values by
    // loading them through a NullBackend-equivalent: use run() and
    // examine the generated prices domain instead. Simpler: rerun
    // generate on a twin and inspect through load() calls.
    NullBackend null;
    w.run(null);

    // Distinct spot values are bounded and heavily skewed: infer via
    // the input pools by re-generating with the same seed and using
    // the documented pool. (The pool itself is private; verify the
    // observable: many identical option prices.)
    std::map<float, u64> price_counts;
    for (float p : w.prices())
        ++price_counts[p];
    // With pooled inputs the number of distinct prices is far below
    // the option count: strong value redundancy.
    EXPECT_LT(price_counts.size(), w.prices().size() / 8);

    // And the most common price covers a large fraction (dominant
    // input combinations recur).
    u64 max_count = 0;
    for (const auto &[price, count] : price_counts)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count, w.prices().size() / 100);
}

TEST(GeneratorDeterminism, SameSeedSameInputsDifferentSeedDiffers)
{
    for (const auto &name : allWorkloadNames()) {
        auto a = makeWorkload(name, params(3));
        auto b = makeWorkload(name, params(3));
        auto c = makeWorkload(name, params(4));
        a->generate();
        b->generate();
        c->generate();
        NullBackend null;
        a->run(null);
        b->run(null);
        c->run(null);
        EXPECT_DOUBLE_EQ(a->outputErrorVs(*b), 0.0) << name;
        // Different seeds must change the computation for benchmarks
        // with seed-driven inputs (canneal is the clearest signal).
    }
    CannealWorkload x(params(5));
    CannealWorkload y(params(6));
    x.generate();
    y.generate();
    NullBackend null;
    x.run(null);
    y.run(null);
    EXPECT_GT(x.outputErrorVs(y), 0.0);
}

TEST(BodytrackInputs, TruthTrajectoryStaysInFrame)
{
    BodytrackWorkload w(params());
    w.generate();
    for (u32 f = 0; f < 64; ++f) {
        const auto [x, y] = w.truthAt(f);
        EXPECT_GT(x, 30.0);
        EXPECT_LT(x, 226.0);
        EXPECT_GT(y, 30.0);
        EXPECT_LT(y, 226.0);
    }
}

TEST(BodytrackInputs, TrajectoryIsSmooth)
{
    BodytrackWorkload w(params());
    w.generate();
    for (u32 f = 0; f + 1 < 32; ++f) {
        const auto [x0, y0] = w.truthAt(f);
        const auto [x1, y1] = w.truthAt(f + 1);
        const double step =
            std::sqrt((x1 - x0) * (x1 - x0) + (y1 - y0) * (y1 - y0));
        EXPECT_LT(step, 30.0) << "frame " << f; // trackable motion
    }
}

TEST(SwaptionsInputs, PricesArePositiveAndSmall)
{
    SwaptionsWorkload w(params(1, 1.0));
    w.generate();
    NullBackend null;
    w.run(null);
    for (double p : w.prices()) {
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0); // payer swaption on rates in [2%, 5%]
    }
}

TEST(InstructionCounts, ScaleRoughlyMatchesTableOne)
{
    // At full scale the precise MPKI ordering of Table I must hold:
    // canneal >> bodytrack > ferret > fluidanimate ~ blackscholes >
    // x264 >> swaptions. Run at reduced scale and verify the strict
    // extremes, which are scale-robust.
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Precise;

    std::map<std::string, double> mpki;
    for (const auto &name : {"canneal", "swaptions", "bodytrack"}) {
        auto w = makeWorkload(name, params(1, 0.5));
        w->generate();
        ApproxMemory mem(cfg);
        w->run(mem);
        mpki[name] = mem.metrics().mpki();
    }
    EXPECT_GT(mpki["canneal"], mpki["bodytrack"]);
    EXPECT_GT(mpki["bodytrack"], mpki["swaptions"]);
    EXPECT_LT(mpki["swaptions"], 0.1);
}

} // namespace
} // namespace lva
