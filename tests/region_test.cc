/**
 * @file
 * Unit tests for Region<T>: the annotated-array bridge between host
 * data and the simulated memory system.
 */

#include <gtest/gtest.h>

#include "core/approx_memory.hh"
#include "util/arena.hh"
#include "workloads/region.hh"

namespace lva {
namespace {

TEST(Region, AddressesAreContiguousTypedElements)
{
    VirtualArena arena;
    Region<float> r;
    r.init(arena, 32, true);
    EXPECT_EQ(r.size(), 32u);
    EXPECT_EQ(r.addrOf(1) - r.addrOf(0), sizeof(float));
    EXPECT_EQ(r.addrOf(0) % 64, 0u); // block aligned base
    EXPECT_TRUE(r.approximable());
}

TEST(Region, SeparateRegionsDoNotOverlap)
{
    VirtualArena arena;
    Region<i32> a;
    Region<i32> b;
    a.init(arena, 10, false);
    b.init(arena, 10, false);
    EXPECT_GE(b.addrOf(0), a.addrOf(9) + sizeof(i32));
}

TEST(Region, LoadRoutesThroughBackendAndCanClobber)
{
    VirtualArena arena;
    Region<i64> r;
    r.init(arena, 64, /*approximable=*/true);
    for (std::size_t i = 0; i < 64; ++i)
        r.raw(i) = 1000;

    // A backend that always returns 7 for approximable loads.
    class ClobberBackend : public MemoryBackend
    {
      public:
        Value
        loadVirtual(ThreadId, LoadSiteId, Addr, const Value &precise,
                    bool approximable, bool) override
        {
            return approximable ? Value::fromInt(7) : precise;
        }
        void store(ThreadId, LoadSiteId, Addr) override {}
        void tickInstructions(ThreadId, u64) override {}
    } backend;

    EXPECT_EQ(r.load(backend, 0, 0x400, 3), 7);
    EXPECT_EQ(r.loadPrecise(backend, 0, 0x400, 3), 1000);
    EXPECT_EQ(r.raw(3), 1000); // host data untouched by clobbering
}

TEST(Region, StoreUpdatesHostAndIssuesAccess)
{
    VirtualArena arena;
    Region<float> r;
    r.init(arena, 16, false);

    ApproxMemory::Config cfg;
    cfg.threads = 1;
    cfg.mode = MemMode::Precise;
    ApproxMemory mem(cfg);
    r.store(mem, 0, 0x500, 5, 2.5f);
    EXPECT_FLOAT_EQ(r.raw(5), 2.5f);
    EXPECT_EQ(mem.metrics().stores, 1u);
}

TEST(Region, KindsMatchElementTypes)
{
    VirtualArena arena;
    Region<float> f;
    Region<double> d;
    Region<i32> i;
    f.init(arena, 4, true);
    d.init(arena, 4, true);
    i.init(arena, 4, true);

    // Verify via the backend-visible Value kinds.
    class KindProbe : public MemoryBackend
    {
      public:
        Value
        loadVirtual(ThreadId, LoadSiteId, Addr, const Value &precise,
                    bool, bool) override
        {
            lastKind = precise.kind();
            return precise;
        }
        void store(ThreadId, LoadSiteId, Addr) override {}
        void tickInstructions(ThreadId, u64) override {}
        ValueKind lastKind = ValueKind::Int64;
    } probe;

    f.load(probe, 0, 0, 0);
    EXPECT_EQ(probe.lastKind, ValueKind::Float32);
    d.load(probe, 0, 0, 0);
    EXPECT_EQ(probe.lastKind, ValueKind::Float64);
    i.load(probe, 0, 0, 0);
    EXPECT_EQ(probe.lastKind, ValueKind::Int64);
}

TEST(Region, DependentFlagReachesBackend)
{
    VirtualArena arena;
    Region<i32> r;
    r.init(arena, 4, false);

    class DepProbe : public MemoryBackend
    {
      public:
        Value
        loadVirtual(ThreadId, LoadSiteId, Addr, const Value &precise,
                    bool, bool dependent) override
        {
            sawDependent = dependent;
            return precise;
        }
        void store(ThreadId, LoadSiteId, Addr) override {}
        void tickInstructions(ThreadId, u64) override {}
        bool sawDependent = false;
    } probe;

    r.load(probe, 0, 0, 0);
    EXPECT_FALSE(probe.sawDependent);
    r.load(probe, 0, 0, 0, /*dependent=*/true);
    EXPECT_TRUE(probe.sawDependent);
    r.loadPrecise(probe, 0, 0, 0, /*dependent=*/true);
    EXPECT_TRUE(probe.sawDependent);
}

TEST(NullBackend, TouchLoadConvenience)
{
    NullBackend null;
    null.touchLoad(0, 0x400, 0x1000); // must be a safe no-op
}

} // namespace
} // namespace lva
