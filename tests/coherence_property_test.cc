/**
 * @file
 * Randomized property tests for MSI coherence in the full-system
 * simulator: after any interleaving of loads and stores from four
 * cores over a small block pool, the directory and the L1 tag arrays
 * must agree, and the single-writer invariant must hold.
 *
 * The invariants are checked *through observable behaviour*: a core
 * that wrote a block last reads its own value's timing class (hit);
 * a core whose copy must have been invalidated re-misses.
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/trace.hh"
#include "sim/full_system.hh"
#include "util/random.hh"

namespace lva {
namespace {

/** Build a random 4-thread trace over a small set of shared blocks. */
std::vector<ThreadTrace>
randomSharedTraffic(u64 seed, u32 events_per_thread, u32 blocks)
{
    Rng rng(seed);
    std::vector<ThreadTrace> traces(4);
    for (u32 t = 0; t < 4; ++t) {
        for (u32 i = 0; i < events_per_thread; ++i) {
            TraceEvent ev;
            ev.addr = 0x100000 + rng.below(blocks) * 64;
            ev.value = Value::fromInt(static_cast<i64>(rng.below(100)));
            ev.pc = 0x400 + static_cast<LoadSiteId>(rng.below(8)) * 4;
            ev.instrBefore = static_cast<u32>(rng.below(20));
            ev.isLoad = rng.chance(0.7);
            ev.approximable = false;
            traces[t].push_back(ev);
        }
    }
    return traces;
}

class CoherenceProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(CoherenceProperty, RandomTrafficCompletesAndConserves)
{
    const auto traces = randomSharedTraffic(GetParam(), 400, 16);
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(traces);

    // Conservation: every instruction retires exactly once.
    u64 expect_instr = 0;
    for (const auto &trace : traces) {
        expect_instr += trace.size();
        for (const auto &ev : trace)
            expect_instr += ev.instrBefore;
    }
    EXPECT_EQ(r.instructions, expect_instr);

    // All misses are demand misses (no approximator configured).
    EXPECT_EQ(r.demandMisses, r.l1Misses);
    EXPECT_EQ(r.approxMisses, 0u);

    // Monotone, finite time.
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_TRUE(std::isfinite(r.cycles));

    // Write sharing must generate coherence traffic: with 16 hot
    // blocks and 30% stores, invalidations are inevitable, and every
    // L1 miss costs at least one L2 access.
    EXPECT_GE(r.l2Accesses, r.l1Misses);
}

TEST_P(CoherenceProperty, LvaOnSharedTrafficStaysSane)
{
    auto traces = randomSharedTraffic(GetParam() ^ 0xabcd, 400, 16);
    // Make half of the loads approximable.
    Rng rng(GetParam());
    for (auto &trace : traces)
        for (auto &ev : trace)
            if (ev.isLoad && rng.chance(0.5))
                ev.approximable = true;

    FullSystemSim base(FullSystemConfig::baseline());
    const FullSystemResult rb = base.run(traces);
    FullSystemSim lva(FullSystemConfig::lva(4));
    const FullSystemResult rl = lva.run(traces);

    EXPECT_EQ(rb.instructions, rl.instructions);
    EXPECT_EQ(rl.l1Misses, rl.demandMisses + rl.approxMisses);
    // Approximation can only reduce the blended miss latency.
    EXPECT_LE(rl.avgL1MissLatency, rb.avgL1MissLatency * 1.05);
    // Cancelled fetches cannot exceed approximated misses.
    EXPECT_LE(rl.fetchesSkipped, rl.approxMisses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 11u,
                                           23u, 47u));

TEST(Coherence, PingPongWriteSharing)
{
    // Two cores alternately write one block: every write after the
    // first must invalidate the other core's copy, so every access
    // misses and forwards traffic flows each time.
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < 20; ++i) {
        TraceEvent ev;
        ev.addr = 0x100000;
        ev.isLoad = false;
        ev.instrBefore = 200; // keep the cores roughly in lockstep
        traces[i % 2].push_back(ev);
    }
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(traces);
    // At most the first access per core can be a cold miss; all the
    // rest are coherence misses: with 20 ping-ponged writes, nearly
    // all accesses miss. Store misses are background, so check via
    // traffic: each write-allocate touches the L2 bank.
    EXPECT_GE(r.l2Accesses, 15u);
}

TEST(Coherence, ReadSharingIsPeaceful)
{
    // Four cores repeatedly read one block: after each core's first
    // (cold) miss there are no further misses.
    std::vector<ThreadTrace> traces(4);
    for (u32 t = 0; t < 4; ++t) {
        for (u32 i = 0; i < 50; ++i) {
            TraceEvent ev;
            ev.addr = 0x100000;
            ev.isLoad = true;
            ev.instrBefore = 10;
            traces[t].push_back(ev);
        }
    }
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.l1Misses, 4u);
    EXPECT_EQ(r.dramAccesses, 1u); // one fill serves everyone via L2
}

} // namespace
} // namespace lva
