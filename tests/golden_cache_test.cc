/**
 * @file
 * The golden-cache lifecycle (eval/evaluator): cost-aware LRU victim
 * policy, bounded capacity with eviction counting, single-flight
 * coalescing under real concurrency, failed-build recovery, and the
 * invariant everything else leans on — exports are byte-identical for
 * any capacity and eviction schedule (docs/serving.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "eval/evaluator.hh"
#include "eval/sweep.hh"
#include "util/fault.hh"

namespace lva {
namespace {

/** Tiny-but-real evaluator settings so tests stay fast. */
constexpr u32 kSeeds = 1;
constexpr double kScale = 0.02;

TEST(GoldenEvictionPolicy, SingleCandidateIsTheVictim)
{
    EXPECT_EQ(goldenEvictionVictim({{7, 100}}), 0u);
}

TEST(GoldenEvictionPolicy, EqualCostsFallBackToStrictLru)
{
    // Window of ceil(4/4) = 1: only the least-recently-used entry is
    // considered, whatever the costs look like.
    const std::vector<GoldenEvictionCandidate> candidates = {
        {40, 1}, {10, 999}, {30, 1}, {20, 500}};
    EXPECT_EQ(goldenEvictionVictim(candidates), 1u);
}

TEST(GoldenEvictionPolicy, CheapestRebuildWinsInsideTheWindow)
{
    // 8 candidates -> window of 2: the two LRU entries are lastUse 10
    // (cost 900) and 20 (cost 3); the cheap one is evicted even
    // though it is the more recently used of the pair.
    const std::vector<GoldenEvictionCandidate> candidates = {
        {10, 900}, {20, 3},  {30, 1}, {40, 1},
        {50, 1},   {60, 1},  {70, 1}, {80, 1}};
    EXPECT_EQ(goldenEvictionVictim(candidates), 1u);
}

TEST(GoldenEvictionPolicy, CostTiesKeepTheOlderEntry)
{
    const std::vector<GoldenEvictionCandidate> candidates = {
        {10, 5}, {20, 5}, {30, 1}, {40, 1},
        {50, 1}, {60, 1}, {70, 1}, {80, 1}};
    EXPECT_EQ(goldenEvictionVictim(candidates), 0u);
}

TEST(GoldenEvictionPolicy, MostRecentlyUsedIsNeverTheVictim)
{
    // For every size >= 2 the ceil(n/4) LRU window excludes the MRU
    // entry, so the hottest golden always survives an eviction.
    for (std::size_t n = 2; n <= 12; ++n) {
        std::vector<GoldenEvictionCandidate> candidates;
        for (std::size_t i = 0; i < n; ++i)
            candidates.push_back({10 * (i + 1), 1});
        EXPECT_NE(goldenEvictionVictim(candidates), n - 1) << n;
    }
}

TEST(GoldenCache, CountsHitsMissesAndBuilds)
{
    Evaluator eval(kSeeds, kScale);
    (void)eval.evaluatePrecise("swaptions");
    GoldenCacheCounters c = eval.goldenCacheCounters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.builds, 1u);
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.size, 1u);
    EXPECT_EQ(c.capacity, 0u); // unbounded by default

    (void)eval.evaluatePrecise("swaptions");
    c = eval.goldenCacheCounters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.builds, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.evictions, 0u);
}

TEST(GoldenCache, CapacityBoundsResidencyAndCountsEvictions)
{
    Evaluator eval(kSeeds, kScale);
    eval.setGoldenCacheCapacity(1);
    (void)eval.evaluatePrecise("swaptions");
    (void)eval.evaluatePrecise("blackscholes");

    const GoldenCacheCounters c = eval.goldenCacheCounters();
    EXPECT_EQ(c.builds, 2u);
    EXPECT_EQ(c.evictions, 1u);
    EXPECT_EQ(c.size, 1u);
    EXPECT_EQ(c.capacity, 1u);

    // The survivor is the most recently used golden.
    const auto keys = eval.goldenResidentKeys();
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].first, "blackscholes");
}

TEST(GoldenCache, ShrinkingCapacityEvictsImmediately)
{
    Evaluator eval(kSeeds, kScale);
    (void)eval.evaluatePrecise("swaptions");
    (void)eval.evaluatePrecise("blackscholes");
    EXPECT_EQ(eval.goldenCacheCounters().size, 2u);

    eval.setGoldenCacheCapacity(1);
    const GoldenCacheCounters c = eval.goldenCacheCounters();
    EXPECT_EQ(c.size, 1u);
    EXPECT_EQ(c.evictions, 1u);
}

TEST(GoldenCache, SingleFlightCoalescesConcurrentBuilders)
{
    Evaluator eval(kSeeds, kScale);

    // K threads race into the same golden; exactly one precise run
    // may happen (the acceptance criterion of ISSUE 7).
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&eval] { (void)eval.evaluatePrecise("swaptions"); });
    for (auto &t : threads)
        t.join();

    const GoldenCacheCounters c = eval.goldenCacheCounters();
    EXPECT_EQ(c.builds, 1u);
    EXPECT_EQ(c.misses, 1u);
    // Every other acquisition resolved from the one build, whether it
    // waited on the in-flight run (coalesced, then a hit) or arrived
    // after it completed (a plain hit).
    EXPECT_EQ(c.hits, kThreads - 1);
    EXPECT_LE(c.coalesced, kThreads - 1);
}

TEST(GoldenCache, FailedBuildStepsBackToEmptyAndRebuilds)
{
    setFaultSpecForTest("eval.golden.swaptions=throw@first1");
    Evaluator eval(kSeeds, kScale);
    EXPECT_THROW((void)eval.evaluatePrecise("swaptions"),
                 FaultInjected);

    // The failed slot must not latch: the retry rebuilds it.
    const EvalResult r = eval.evaluatePrecise("swaptions");
    setFaultSpecForTest("");
    EXPECT_GT(r.instructions, 0.0);

    const GoldenCacheCounters c = eval.goldenCacheCounters();
    EXPECT_EQ(c.misses, 2u); // both acquisitions started a build
    EXPECT_EQ(c.builds, 1u); // only the second completed
    EXPECT_EQ(c.size, 1u);
}

/** A small 2-workload sweep rendered through the full export path. */
std::string
sweepExport(Evaluator &eval)
{
    std::vector<SweepPoint> points;
    for (const char *name : {"swaptions", "blackscholes"}) {
        for (u32 ghb : {0u, 2u}) {
            ApproxMemory::Config cfg = Evaluator::baselineLva();
            cfg.approx.ghbEntries = ghb;
            points.push_back(
                {"ghb-" + std::to_string(ghb), name, cfg});
        }
    }
    SweepRunner runner(eval, 2);
    SweepOptions opts;
    opts.driver = "golden_cache_test";
    const SweepOutcome outcome = runner.runChecked(points, opts);
    EXPECT_TRUE(outcome.ok());
    return renderSweepStats("golden_cache_test", points, outcome);
}

TEST(GoldenCache, EvictionThenRefillIsByteIdentical)
{
    // Unbounded reference run vs a capacity-1 cache that must evict
    // and rebuild goldens mid-sweep: the exported bytes must match
    // exactly — eviction schedules can cost time, never results.
    Evaluator unbounded(kSeeds, kScale);
    const std::string reference = sweepExport(unbounded);

    Evaluator squeezed(kSeeds, kScale);
    squeezed.setGoldenCacheCapacity(1);
    const std::string squeezedExport = sweepExport(squeezed);
    EXPECT_GE(squeezedExport.size(), 1u);
    EXPECT_EQ(squeezedExport, reference);

    // Re-running against the squeezed evaluator refills evicted
    // entries and still matches.
    EXPECT_EQ(sweepExport(squeezed), reference);
    EXPECT_GT(squeezed.goldenCacheCounters().evictions, 0u);
}

} // namespace
} // namespace lva
