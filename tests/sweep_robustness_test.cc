/**
 * @file
 * Tests for the sweep robustness layer: per-point failure isolation,
 * bounded retry with the runtime gauges, per-point deadlines,
 * checkpoint/resume through the manifest, and the partial-result
 * export. Crash (abort) recovery across processes lives in
 * sweep_resume_test; here every fault is survivable in-process.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "eval/stat_report.hh"
#include "eval/sweep.hh"
#include "util/fault.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<SweepPoint>
threeCannealPoints()
{
    std::vector<SweepPoint> points;
    points.push_back({"lva", "canneal", Evaluator::baselineLva()});
    ApproxMemory::Config deg4 = Evaluator::baselineLva();
    deg4.approx.approxDegree = 4;
    points.push_back({"deg4", "canneal", deg4});
    ApproxMemory::Config deg8 = Evaluator::baselineLva();
    deg8.approx.approxDegree = 8;
    points.push_back({"deg8", "canneal", deg8});
    return points;
}

/** Explicit policy: no env influence, no checkpoint, single attempt. */
SweepOptions
plainOptions(u32 max_attempts = 1)
{
    SweepOptions opts;
    opts.maxAttempts = max_attempts;
    opts.backoffBaseMs = 1; // keep retry tests fast
    opts.backoffCapMs = 2;
    return opts;
}

/** Disarm any injected faults on the way out of every test. */
class RobustSweepTest : public ::testing::Test
{
  protected:
    void TearDown() override { setFaultSpecForTest(""); }
};

TEST_F(RobustSweepTest, IsolatedFailureLeavesOtherPointsComplete)
{
    setFaultSpecForTest("sweep.point.1=throw");
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    const SweepOutcome outcome =
        runner.runChecked(threeCannealPoints(), plainOptions());

    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), 3u);
    ASSERT_EQ(outcome.failures.size(), 1u);

    const PointFailure &f = outcome.failures[0];
    EXPECT_EQ(f.index, 1u);
    EXPECT_EQ(f.label, "deg4");
    EXPECT_EQ(f.workload, "canneal");
    EXPECT_EQ(f.attempts, 1u);
    EXPECT_FALSE(f.timedOut);
    EXPECT_NE(f.error.find("injected fault"), std::string::npos);

    // The failed slot is an honest NaN placeholder, not a number.
    EXPECT_TRUE(outcome.results[1].failed);
    EXPECT_TRUE(std::isnan(outcome.results[1].mpki));
    // The other two points completed normally.
    EXPECT_FALSE(outcome.results[0].failed);
    EXPECT_FALSE(outcome.results[2].failed);
    EXPECT_GT(outcome.results[0].instructions, 0u);
}

TEST_F(RobustSweepTest, PoolPathIsolatesFailuresToo)
{
    setFaultSpecForTest("sweep.point.0=throw");
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 2);
    const SweepOutcome outcome =
        runner.runChecked(threeCannealPoints(), plainOptions());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 0u);
    EXPECT_FALSE(outcome.results[1].failed);
    EXPECT_FALSE(outcome.results[2].failed);
}

TEST_F(RobustSweepTest, RetryRecoversTransientFaultAndCountsAttempts)
{
    setFaultSpecForTest("sweep.point.0=throw@first2");
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    const SweepOutcome outcome = runner.runChecked(
        {{"lva", "canneal", Evaluator::baselineLva()}},
        plainOptions(3));

    EXPECT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), 1u);
    const StatSnapshot &stats = outcome.results[0].stats;
    EXPECT_EQ(stats.valueOf("eval.retries.attempts"), 3.0);
    EXPECT_EQ(stats.valueOf("eval.failures.transient"), 2.0);
}

TEST_F(RobustSweepTest, CleanPointReportsOneAttempt)
{
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    const SweepOutcome outcome = runner.runChecked(
        {{"lva", "canneal", Evaluator::baselineLva()}},
        plainOptions());
    ASSERT_TRUE(outcome.ok());
    const StatSnapshot &stats = outcome.results[0].stats;
    EXPECT_EQ(stats.valueOf("eval.retries.attempts"), 1.0);
    EXPECT_EQ(stats.valueOf("eval.failures.transient"), 0.0);
}

TEST_F(RobustSweepTest, RetryExhaustionReportsAttemptsConsumed)
{
    setFaultSpecForTest("sweep.point.0=throw");
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval, 1);
    const SweepOutcome outcome = runner.runChecked(
        {{"lva", "canneal", Evaluator::baselineLva()}},
        plainOptions(2));
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].attempts, 2u);
    EXPECT_TRUE(outcome.results[0].failed);
}

TEST_F(RobustSweepTest, MapCheckedIsolatesPanic)
{
    // lva_panic would normally abort the process; under the per-point
    // isolation it becomes a structured failure.
    SweepRunner runner(1);
    const auto outcome = runner.mapChecked(
        2,
        [](u64 i) {
            if (i == 1)
                lva_panic("deliberate test panic %d", 42);
            return static_cast<int>(i);
        },
        plainOptions(),
        [](u64 i) { return "task" + std::to_string(i); });

    ASSERT_EQ(outcome.results.size(), 2u);
    ASSERT_TRUE(outcome.results[0].has_value());
    EXPECT_EQ(*outcome.results[0], 0);
    EXPECT_FALSE(outcome.results[1].has_value());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].label, "task1");
    EXPECT_NE(outcome.failures[0].error.find("deliberate test panic"),
              std::string::npos);
}

TEST_F(RobustSweepTest, AllocationFailureIsIsolated)
{
    setFaultSpecForTest("sweep.point.0=allocfail");
    SweepRunner runner(1);
    const auto outcome =
        runner.mapChecked(1, [](u64) { return 1; }, plainOptions());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_NE(outcome.failures[0].error.find("bad_alloc"),
              std::string::npos);
}

TEST_F(RobustSweepTest, DeadlineAbandonsHungPoint)
{
    SweepRunner runner(2);
    SweepOptions opts = plainOptions();
    opts.timeoutMs = 50;
    const auto outcome = runner.mapChecked(
        2,
        [](u64 i) {
            if (i == 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(400));
            return static_cast<int>(i);
        },
        opts);

    ASSERT_TRUE(outcome.results[0].has_value());
    EXPECT_FALSE(outcome.results[1].has_value());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 1u);
    EXPECT_TRUE(outcome.failures[0].timedOut);
    EXPECT_NE(outcome.failures[0].error.find("deadline"),
              std::string::npos);
}

TEST_F(RobustSweepTest, EvalResultEncodingRoundTripsExactly)
{
    Evaluator eval(1, 0.05);
    const EvalResult r =
        eval.evaluate("canneal", Evaluator::baselineLva());

    const std::string encoded = encodeEvalResult(r);
    const EvalResult back = decodeEvalResult(parseJson(encoded));

    // Scalars survive bit-for-bit (%.17g round-trip).
    EXPECT_EQ(back.mpki, r.mpki);
    EXPECT_EQ(back.preciseMpki, r.preciseMpki);
    EXPECT_EQ(back.normMpki, r.normMpki);
    EXPECT_EQ(back.fetches, r.fetches);
    EXPECT_EQ(back.preciseFetches, r.preciseFetches);
    EXPECT_EQ(back.normFetches, r.normFetches);
    EXPECT_EQ(back.outputError, r.outputError);
    EXPECT_EQ(back.coverage, r.coverage);
    EXPECT_EQ(back.instrVariation, r.instrVariation);
    EXPECT_EQ(back.instructions, r.instructions);

    // Re-encoding the decoded result reproduces the same bytes, so a
    // resumed point's manifest line is stable across generations.
    EXPECT_EQ(encodeEvalResult(back), encoded);

    // And the stats JSON rendering — the user-visible artifact — is
    // byte-identical whether the snapshot came from the run or the
    // manifest.
    const std::string direct = renderStatsJson(
        "roundtrip", {{"lva", "canneal", r.stats}});
    const std::string resumed = renderStatsJson(
        "roundtrip", {{"lva", "canneal", back.stats}});
    EXPECT_EQ(direct, resumed);
}

TEST_F(RobustSweepTest, FailuresSectionRendersAndEmptyIsByteCompatible)
{
    Evaluator eval(1, 0.05);
    const EvalResult r =
        eval.evaluate("canneal", Evaluator::baselineLva());
    const std::vector<NamedSnapshot> snaps = {
        {"lva", "canneal", r.stats}};

    // Empty failures: exactly the historical bytes.
    EXPECT_EQ(renderStatsJson("d", snaps),
              renderStatsJson("d", snaps, {}));

    PointFailure f;
    f.index = 2;
    f.label = "deg8";
    f.workload = "canneal";
    f.error = "injected fault at sweep.point.2";
    f.attempts = 3;
    const std::string out = renderStatsJson("d", snaps, {f});
    EXPECT_NE(out.find("\"failures\": ["), std::string::npos);
    EXPECT_NE(out.find("\"index\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"label\": \"deg8\""), std::string::npos);
    EXPECT_NE(out.find("\"workload\": \"canneal\""),
              std::string::npos);
    EXPECT_NE(out.find("injected fault at sweep.point.2"),
              std::string::npos);
    EXPECT_NE(out.find("\"attempts\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"timedOut\": false"), std::string::npos);
}

/** Checkpoint/resume tests need a scratch results directory. */
class CheckpointSweepTest : public RobustSweepTest
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: parallel ctest processes would
        // otherwise race on a shared scratch directory.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("lva_robust_ckpt_") + info->name());
        fs::remove_all(dir_);
        ::setenv("LVA_RESULTS_DIR", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        RobustSweepTest::TearDown();
        ::unsetenv("LVA_RESULTS_DIR");
        fs::remove_all(dir_);
    }

    fs::path dir_;
};

TEST_F(CheckpointSweepTest, ResumeSkipsCompletedPointsByteIdentically)
{
    const std::vector<SweepPoint> points = threeCannealPoints();
    SweepOptions opts = plainOptions();
    opts.driver = "robust_ckpt";
    opts.checkpoint = true;

    // Reference: an uninterrupted checkpointed run.
    Evaluator eval1(1, 0.05);
    SweepRunner runner1(eval1, 1);
    const SweepOutcome first = runner1.runChecked(points, opts);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.resumed, 0u);
    const std::string ref =
        slurp(exportSweepStats("robust_ckpt", points, first));

    // Second process generation: every point restores from the
    // manifest, nothing re-runs, and the export bytes are identical.
    opts.resume = true;
    Evaluator eval2(1, 0.05);
    SweepRunner runner2(eval2, 1);
    const SweepOutcome second = runner2.runChecked(points, opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.resumed, 3u);
    EXPECT_EQ(slurp(exportSweepStats("robust_ckpt", points, second)),
              ref);
}

TEST_F(CheckpointSweepTest, ResumeRerunsOnlyTheFailedPoint)
{
    const std::vector<SweepPoint> points = threeCannealPoints();
    SweepOptions opts = plainOptions();
    opts.driver = "robust_partial";
    opts.checkpoint = true;

    // First generation: point 1 fails, the other two checkpoint.
    setFaultSpecForTest("sweep.point.1=throw");
    Evaluator eval1(1, 0.05);
    SweepRunner runner1(eval1, 1);
    const SweepOutcome broken = runner1.runChecked(points, opts);
    ASSERT_EQ(broken.failures.size(), 1u);

    // Second generation (fault gone): resumes 2, re-runs 1, and the
    // export matches a never-interrupted run byte for byte.
    setFaultSpecForTest("");
    opts.resume = true;
    Evaluator eval2(1, 0.05);
    SweepRunner runner2(eval2, 1);
    const SweepOutcome fixed = runner2.runChecked(points, opts);
    ASSERT_TRUE(fixed.ok());
    EXPECT_EQ(fixed.resumed, 2u);
    const std::string resumed_export =
        slurp(exportSweepStats("robust_partial", points, fixed));

    fs::remove_all(dir_ / "checkpoints");
    SweepOptions clean_opts = plainOptions();
    clean_opts.driver = "robust_partial";
    Evaluator eval3(1, 0.05);
    SweepRunner runner3(eval3, 1);
    const SweepOutcome clean = runner3.runChecked(points, clean_opts);
    ASSERT_TRUE(clean.ok());
    EXPECT_EQ(
        slurp(exportSweepStats("robust_partial", points, clean)),
        resumed_export);
}

TEST_F(CheckpointSweepTest, ResumeIgnoresManifestFromOtherContext)
{
    const std::vector<SweepPoint> points = {
        {"lva", "canneal", Evaluator::baselineLva()}};
    SweepOptions opts = plainOptions();
    opts.driver = "robust_ctx";
    opts.checkpoint = true;

    Evaluator eval1(1, 0.05);
    SweepRunner runner1(eval1, 1);
    ASSERT_TRUE(runner1.runChecked(points, opts).ok());

    // Different seed count => different context key: the stale
    // manifest must not be resumed.
    opts.resume = true;
    Evaluator eval2(2, 0.05);
    SweepRunner runner2(eval2, 1);
    const SweepOutcome outcome = runner2.runChecked(points, opts);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.resumed, 0u);
}

TEST_F(CheckpointSweepTest, CheckedExportIsJobCountInvariant)
{
    const std::vector<SweepPoint> points = threeCannealPoints();

    auto runAndExport = [&](u32 jobs) {
        Evaluator eval(1, 0.05);
        SweepRunner runner(eval, jobs);
        const SweepOutcome outcome =
            runner.runChecked(points, plainOptions());
        return slurp(exportSweepStats("robust_jobs", points, outcome));
    };

    const std::string serial = runAndExport(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, runAndExport(3));
}

} // namespace
} // namespace lva
