/**
 * @file
 * Unit tests for the ROB-occupancy OoO core timing model.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"

namespace lva {
namespace {

CoreConfig
core4x32()
{
    return CoreConfig{4, 32};
}

TEST(OoOCore, BandwidthLimitedRetirement)
{
    OoOCore core(core4x32());
    core.executeInstructions(400);
    EXPECT_DOUBLE_EQ(core.now(), 100.0);
    EXPECT_EQ(core.instructionsRetired(), 400u);
}

TEST(OoOCore, HitsAreJustInstructions)
{
    OoOCore core(core4x32());
    for (int i = 0; i < 8; ++i)
        core.loadHit();
    EXPECT_DOUBLE_EQ(core.now(), 2.0);
}

TEST(OoOCore, MissOverlapsWithRobWorthOfWork)
{
    OoOCore core(core4x32());
    // Miss completing at cycle 100; 31 instructions fit in the ROB
    // behind it (7.75 cycles of work), then the core stalls.
    core.demandMiss(100.0);
    core.executeInstructions(31);
    EXPECT_LT(core.now(), 9.0);
    core.executeInstructions(1); // 33rd instruction: ROB full
    EXPECT_GE(core.now(), 100.0);
    EXPECT_LT(core.now(), 101.0);
}

TEST(OoOCore, CompletedMissDoesNotStall)
{
    OoOCore core(core4x32());
    core.demandMiss(1.0); // effectively already done
    core.executeInstructions(1000);
    EXPECT_DOUBLE_EQ(core.now(), 250.25);
}

TEST(OoOCore, MemoryLevelParallelism)
{
    // Two misses inside one ROB window both complete at ~t=100: the
    // total stall is one epoch, not two.
    OoOCore core(core4x32());
    core.demandMiss(100.0);
    core.executeInstructions(4);
    core.demandMiss(101.0);
    core.executeInstructions(200);
    EXPECT_LT(core.now(), 160.0);
}

TEST(OoOCore, SerializedMissesPayFullLatencyEach)
{
    OoOCore core(core4x32());
    core.demandMiss(100.0);
    core.executeInstructions(100); // stalls at ~100
    const double after_first = core.now();
    EXPECT_GE(after_first, 100.0);
    core.demandMiss(after_first + 100.0);
    core.executeInstructions(100);
    EXPECT_GE(core.now(), after_first + 100.0);
}

TEST(OoOCore, DrainAllWaitsForOutstanding)
{
    OoOCore core(core4x32());
    core.demandMiss(500.0);
    EXPECT_LT(core.now(), 2.0);
    core.drainAll();
    EXPECT_GE(core.now(), 500.0);
}

TEST(OoOCore, AdvanceToIsMonotone)
{
    OoOCore core(core4x32());
    core.advanceTo(50.0);
    EXPECT_DOUBLE_EQ(core.now(), 50.0);
    core.advanceTo(10.0); // no backwards travel
    EXPECT_DOUBLE_EQ(core.now(), 50.0);
}

TEST(OoOCore, MissLatencyAccounting)
{
    OoOCore core(core4x32());
    core.demandMiss(40.0);
    EXPECT_EQ(core.demandMisses(), 1u);
    EXPECT_NEAR(core.missLatencySum(), 40.0, 1.0);
}

TEST(OoOCore, StoresNeverStall)
{
    OoOCore core(core4x32());
    for (int i = 0; i < 100; ++i)
        core.storeAccess();
    EXPECT_DOUBLE_EQ(core.now(), 25.0);
}

/** Property: wider cores retire the same work in proportionally
 *  fewer cycles. */
class WidthSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(WidthSweep, ComputeScalesWithWidth)
{
    const u32 width = GetParam();
    OoOCore core(CoreConfig{width, 32});
    core.executeInstructions(1200);
    EXPECT_DOUBLE_EQ(core.now(), 1200.0 / width);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace lva
