/**
 * @file
 * Integration tests for the full-system timing simulator on small
 * synthetic traces: hit/miss timing, approximation behaviour,
 * coherence traffic and conservation properties.
 */

#include <gtest/gtest.h>

#include "sim/full_system.hh"

namespace lva {
namespace {

TraceEvent
loadEv(Addr addr, u32 instr_before = 0, bool approximable = false,
       i64 value = 0, LoadSiteId pc = 0x400)
{
    TraceEvent ev;
    ev.addr = addr;
    ev.value = Value::fromInt(value);
    ev.pc = pc;
    ev.instrBefore = instr_before;
    ev.isLoad = true;
    ev.approximable = approximable;
    return ev;
}

TraceEvent
storeEv(Addr addr, u32 instr_before = 0)
{
    TraceEvent ev;
    ev.addr = addr;
    ev.instrBefore = instr_before;
    ev.isLoad = false;
    return ev;
}

std::vector<ThreadTrace>
fourTraces(ThreadTrace t0 = {}, ThreadTrace t1 = {},
           ThreadTrace t2 = {}, ThreadTrace t3 = {})
{
    return {std::move(t0), std::move(t1), std::move(t2),
            std::move(t3)};
}

TEST(FullSystem, EmptyTracesFinish)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(fourTraces());
    EXPECT_DOUBLE_EQ(r.cycles, 0.0);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(FullSystem, SingleMissPaysMemoryLatency)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    ThreadTrace t0 = {loadEv(0x100000), loadEv(0x100000, 0)};
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    // First load: L2 miss -> DRAM (160) + NoC + L2; second load hits.
    EXPECT_EQ(r.l1Misses, 1u);
    EXPECT_EQ(r.demandMisses, 1u);
    EXPECT_EQ(r.dramAccesses, 1u);
    EXPECT_GT(r.cycles, 160.0);
    EXPECT_LT(r.cycles, 260.0);
    EXPECT_GT(r.avgL1MissLatency, 160.0);
}

TEST(FullSystem, L2HitIsMuchFaster)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    // Two cores read the same block: the second finds it in L2.
    ThreadTrace t0 = {loadEv(0x100000)};
    ThreadTrace t1 = {loadEv(0x100000, 400)}; // issue later
    const FullSystemResult r =
        sim.run(fourTraces(std::move(t0), std::move(t1)));
    EXPECT_EQ(r.dramAccesses, 1u); // only the first pays DRAM
    EXPECT_EQ(r.l1Misses, 2u);
}

TEST(FullSystem, ApproximatedMissDoesNotStall)
{
    FullSystemConfig cfg = FullSystemConfig::lva(0);
    FullSystemSim sim(cfg);
    // Train the context once, then miss on fresh blocks repeatedly:
    // every approximated miss retires without waiting for DRAM.
    ThreadTrace t0;
    for (u32 i = 0; i < 20; ++i)
        t0.push_back(
            loadEv(0x100000 + i * 0x10000, 4, true, 7, 0x400));
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    EXPECT_GT(r.approxMisses, 15u);
    // 20 loads + 80 instructions of work: far below one DRAM trip
    // each; allow generous slack for the cold demand miss + drain.
    EXPECT_LT(r.cycles, 20 * 160.0 * 0.5);
    EXPECT_LT(r.avgL1MissLatency, 30.0);
}

TEST(FullSystem, DegreeSkipsFetchesInTiming)
{
    FullSystemSim sim(FullSystemConfig::lva(4));
    ThreadTrace t0;
    for (u32 i = 0; i < 41; ++i)
        t0.push_back(
            loadEv(0x100000 + i * 0x10000, 4, true, 7, 0x400));
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    EXPECT_GT(r.fetchesSkipped, 25u);
    // Conservation: every L1 miss is demand, approx-fetched or
    // approx-skipped; skipped ones are a subset of approxMisses.
    EXPECT_EQ(r.l1Misses, r.demandMisses + r.approxMisses);
    EXPECT_LE(r.fetchesSkipped, r.approxMisses);
}

TEST(FullSystem, StoresDoNotStallTheCore)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    ThreadTrace t0;
    for (u32 i = 0; i < 8; ++i)
        t0.push_back(storeEv(0x200000 + i * 0x10000, 4));
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    // 8 store misses at 160+ cycles each would be >1280 if serialized
    // on the critical path; the store buffer hides them.
    EXPECT_LT(r.cycles, 600.0);
    EXPECT_EQ(r.dramAccesses, 8u);
}

TEST(FullSystem, WriteInvalidatesRemoteCopy)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    // Core 0 reads a block; core 1 writes it (much later); core 0
    // reads it again and must re-miss (its copy was invalidated).
    ThreadTrace t0 = {loadEv(0x300000), loadEv(0x300000, 4000)};
    ThreadTrace t1 = {storeEv(0x300000, 1000)};
    const FullSystemResult r =
        sim.run(fourTraces(std::move(t0), std::move(t1)));
    EXPECT_EQ(r.l1Misses, 2u); // both of core 0's reads miss
}

TEST(FullSystem, ReadAfterRemoteWriteForwardsDirtyData)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    // Core 1 writes a block (becomes M); core 0 then reads it: the
    // directory forwards from core 1's L1, not DRAM.
    ThreadTrace t0 = {loadEv(0x300000, 3000)};
    ThreadTrace t1 = {storeEv(0x300000, 0)};
    const FullSystemResult r =
        sim.run(fourTraces(std::move(t0), std::move(t1)));
    EXPECT_EQ(r.dramAccesses, 1u); // only the store's write-allocate
}

TEST(FullSystem, DependentLoadSerializesBehindProducer)
{
    FullSystemConfig cfg = FullSystemConfig::baseline();
    FullSystemSim sim(cfg);
    ThreadTrace t0;
    TraceEvent producer = loadEv(0x100000);
    TraceEvent consumer = loadEv(0x500000, 0);
    consumer.dependsOnPrev = true;
    t0.push_back(producer);
    t0.push_back(consumer);
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));

    FullSystemSim sim2(cfg);
    ThreadTrace u0 = {loadEv(0x100000), loadEv(0x500000, 0)};
    const FullSystemResult r2 = sim2.run(fourTraces(std::move(u0)));
    // With the dependency the two DRAM trips serialize; without it
    // they overlap in the ROB window.
    EXPECT_GT(r.cycles, r2.cycles + 100.0);
}

TEST(FullSystem, InstructionsAreConserved)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    ThreadTrace t0 = {loadEv(0x100000, 10), storeEv(0x200000, 20)};
    ThreadTrace t1 = {loadEv(0x110000, 5)};
    const FullSystemResult r =
        sim.run(fourTraces(std::move(t0), std::move(t1)));
    EXPECT_EQ(r.instructions, 10u + 1 + 20 + 1 + 5 + 1);
}

TEST(FullSystem, EnergyEventsPopulated)
{
    FullSystemSim sim(FullSystemConfig::lva(0));
    ThreadTrace t0;
    // Spread across L2 banks so some requests cross mesh links.
    for (u32 i = 0; i < 10; ++i)
        t0.push_back(loadEv(0x100000 + i * 0x10040, 4, true, 7));
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    EXPECT_GT(r.events.l1Accesses, 0u);
    EXPECT_GT(r.events.l2Accesses, 0u);
    EXPECT_GT(r.events.approxLookups, 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.flitHops, 0u);
}

TEST(FullSystem, BaselineNeverApproximates)
{
    FullSystemSim sim(FullSystemConfig::baseline());
    ThreadTrace t0 = {loadEv(0x100000, 0, true, 7),
                      loadEv(0x110000, 0, true, 7)};
    const FullSystemResult r = sim.run(fourTraces(std::move(t0)));
    EXPECT_EQ(r.approxMisses, 0u);
    EXPECT_EQ(r.demandMisses, r.l1Misses);
}

} // namespace
} // namespace lva
