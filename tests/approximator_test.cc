/**
 * @file
 * Unit tests for the load value approximator: allocation, training,
 * confidence gating, relaxed windows, approximation degree and value
 * delay — the semantics of paper sections III-A through III-C.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/approximator.hh"
#include "util/checkpoint.hh"
#include "util/random.hh"

namespace lva {
namespace {

ApproximatorConfig
testConfig()
{
    ApproximatorConfig cfg; // paper baseline
    cfg.ghbEntries = 0;     // context = PC only: deterministic tests
    cfg.valueDelay = 0;     // training visible on the next load
    return cfg;
}

TEST(Approximator, FirstMissAllocatesAndFetches)
{
    LoadValueApproximator lva(testConfig());
    const MissResponse r = lva.onMiss(0x400, Value::fromInt(5));
    EXPECT_FALSE(r.approximated);
    EXPECT_TRUE(r.fetch);
    EXPECT_EQ(lva.stats().allocations.value(), 1u);
    EXPECT_EQ(lva.validEntries(), 1u);
}

TEST(Approximator, ApproximatesAfterTraining)
{
    LoadValueApproximator lva(testConfig());
    lva.onMiss(0x400, Value::fromInt(10)); // allocate + train
    const MissResponse r = lva.onMiss(0x400, Value::fromInt(12));
    EXPECT_TRUE(r.approximated);
    EXPECT_EQ(r.value.asInt(), 10); // LHB = {10}
    EXPECT_TRUE(r.fetch);           // degree 0: always fetch
}

TEST(Approximator, AverageOverLhb)
{
    LoadValueApproximator lva(testConfig());
    lva.onMiss(0x400, Value::fromInt(10));
    lva.onMiss(0x400, Value::fromInt(20));
    lva.onMiss(0x400, Value::fromInt(30));
    const MissResponse r = lva.onMiss(0x400, Value::fromInt(0));
    EXPECT_TRUE(r.approximated);
    EXPECT_EQ(r.value.asInt(), 20); // avg(10, 20, 30)
}

TEST(Approximator, LhbCapacityRollsForward)
{
    auto cfg = testConfig();
    cfg.lhbEntries = 2;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(100)); // dropped later
    lva.onMiss(0x400, Value::fromInt(10));
    lva.onMiss(0x400, Value::fromInt(20));
    const MissResponse r = lva.onMiss(0x400, Value::fromInt(0));
    EXPECT_EQ(r.value.asInt(), 15); // avg of last two only
}

TEST(Approximator, IntegersBypassConfidenceByDefault)
{
    LoadValueApproximator lva(testConfig());
    // Wildly varying integers would tank any confidence estimator;
    // the baseline does not employ confidence for integer data.
    lva.onMiss(0x400, Value::fromInt(0));
    for (int i = 1; i < 20; ++i) {
        const MissResponse r =
            lva.onMiss(0x400, Value::fromInt(i * 1000));
        EXPECT_TRUE(r.approximated) << "iteration " << i;
    }
    EXPECT_EQ(lva.stats().confRejects.value(), 0u);
}

TEST(Approximator, FloatConfidenceGateRejectsAfterBadStreak)
{
    LoadValueApproximator lva(testConfig());
    // Alternate wildly different FP values: estimates are never
    // within +/-10%, so confidence sinks below zero and the gate
    // closes.
    lva.onMiss(0x400, Value::fromFloat(1.0f));
    bool saw_reject = false;
    for (int i = 0; i < 30; ++i) {
        const float actual = (i % 2 == 0) ? 1000.0f : 0.001f;
        const MissResponse r =
            lva.onMiss(0x400, Value::fromFloat(actual));
        if (!r.approximated)
            saw_reject = true;
    }
    EXPECT_TRUE(saw_reject);
    EXPECT_GT(lva.stats().confRejects.value(), 0u);
}

TEST(Approximator, FloatConfidenceRecovers)
{
    LoadValueApproximator lva(testConfig());
    // Sink confidence with erratic values...
    lva.onMiss(0x400, Value::fromFloat(1.0f));
    for (int i = 0; i < 20; ++i)
        lva.onMiss(0x400,
                   Value::fromFloat((i % 2 == 0) ? 900.0f : 0.01f));
    // ...then feed a long stable stream: the would-be estimates are
    // validated on every fetch, so confidence climbs back.
    bool recovered = false;
    for (int i = 0; i < 40; ++i) {
        const MissResponse r =
            lva.onMiss(0x400, Value::fromFloat(5.0f));
        if (r.approximated)
            recovered = true;
    }
    EXPECT_TRUE(recovered);
}

TEST(Approximator, StableFloatsStayConfident)
{
    LoadValueApproximator lva(testConfig());
    lva.onMiss(0x400, Value::fromFloat(4.0f));
    u64 approximated = 0;
    for (int i = 0; i < 50; ++i) {
        const float v = 4.0f + 0.01f * static_cast<float>(i % 3);
        if (lva.onMiss(0x400, Value::fromFloat(v)).approximated)
            ++approximated;
    }
    EXPECT_GE(approximated, 49u);
}

TEST(Approximator, InfiniteWindowNeverLosesConfidence)
{
    auto cfg = testConfig();
    cfg.confidenceWindow = ApproximatorConfig::infiniteWindow;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromFloat(1.0f));
    for (int i = 0; i < 30; ++i) {
        const MissResponse r = lva.onMiss(
            0x400, Value::fromFloat((i % 2 == 0) ? 1e6f : 1e-6f));
        EXPECT_TRUE(r.approximated) << "iteration " << i;
    }
    EXPECT_EQ(lva.stats().confRejects.value(), 0u);
}

TEST(Approximator, ConfidenceDisabledAlwaysApproximates)
{
    auto cfg = testConfig();
    cfg.confidenceDisabled = true;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromFloat(1.0f));
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(lva.onMiss(0x400, Value::fromFloat(i * 100.0f))
                        .approximated);
    }
}

TEST(Approximator, DegreeSkipsFetches)
{
    auto cfg = testConfig();
    cfg.approxDegree = 3;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(8)); // allocate (fetch)

    u64 fetches = 0;
    const int misses = 40;
    for (int i = 0; i < misses; ++i) {
        const MissResponse r = lva.onMiss(0x400, Value::fromInt(8));
        EXPECT_TRUE(r.approximated);
        if (r.fetch)
            ++fetches;
    }
    // 1:(degree+1) fetch-to-miss ratio for approximated misses.
    EXPECT_EQ(fetches, static_cast<u64>(misses) / 4);
    EXPECT_EQ(lva.stats().fetchesSkipped.value(),
              static_cast<u64>(misses) - fetches);
}

TEST(Approximator, DegreeReusesSameValue)
{
    auto cfg = testConfig();
    cfg.approxDegree = 4;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(10));
    // While no fetch occurs, the LHB is untouched, so the generated
    // value repeats (paper: "the next approximation from this entry
    // will return the same value").
    const MissResponse first = lva.onMiss(0x400, Value::fromInt(99));
    for (int i = 0; i < 3; ++i) {
        const MissResponse r = lva.onMiss(0x400, Value::fromInt(77));
        EXPECT_FALSE(r.fetch);
        EXPECT_EQ(r.value.asInt(), first.value.asInt());
    }
}

TEST(Approximator, ValueDelayDefersTraining)
{
    auto cfg = testConfig();
    cfg.valueDelay = 3;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(50)); // training in flight

    // Until 3 more loads issue, the entry has no history.
    const MissResponse r1 = lva.onMiss(0x400, Value::fromInt(50));
    EXPECT_FALSE(r1.approximated);
    lva.onHit(0x500, Value::fromInt(1));
    lva.onHit(0x500, Value::fromInt(2));
    // 4 loads have now issued since the first miss: trained.
    const MissResponse r2 = lva.onMiss(0x400, Value::fromInt(50));
    EXPECT_TRUE(r2.approximated);
    EXPECT_EQ(r2.value.asInt(), 50);
}

TEST(Approximator, DrainPendingFlushesTraining)
{
    auto cfg = testConfig();
    cfg.valueDelay = 100;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(7));
    lva.drainPending();
    EXPECT_EQ(lva.stats().trainings.value(), 1u);
    const MissResponse r = lva.onMiss(0x400, Value::fromInt(7));
    EXPECT_TRUE(r.approximated);
}

TEST(Approximator, StaleTrainingDropped)
{
    auto cfg = testConfig();
    cfg.tableEntries = 1; // force aliasing
    cfg.valueDelay = 10;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(1)); // train in flight for PC A
    lva.onMiss(0x999, Value::fromInt(2)); // re-allocates the entry
    lva.drainPending();
    EXPECT_GE(lva.stats().staleDrops.value(), 1u);
}

TEST(Approximator, DistinctContextsIsolated)
{
    LoadValueApproximator lva(testConfig());
    lva.onMiss(0x400, Value::fromInt(100));
    lva.onMiss(0x500, Value::fromInt(-100));
    EXPECT_EQ(lva.onMiss(0x400, Value::fromInt(0)).value.asInt(), 100);
    EXPECT_EQ(lva.onMiss(0x500, Value::fromInt(0)).value.asInt(),
              -100);
}

TEST(Approximator, GhbChangesContext)
{
    auto cfg = testConfig();
    cfg.ghbEntries = 2;
    LoadValueApproximator lva(cfg);
    // Same PC but different global history => different table entry;
    // with a fresh history pattern there is no LHB to estimate from.
    lva.onMiss(0x400, Value::fromInt(10));
    lva.onHit(0x500, Value::fromInt(1));
    const MissResponse r1 = lva.onMiss(0x400, Value::fromInt(10));
    lva.onHit(0x500, Value::fromInt(2));
    const MissResponse r2 = lva.onMiss(0x400, Value::fromInt(10));
    // At least one of these hits a new context and cannot approximate.
    EXPECT_TRUE(!r1.approximated || !r2.approximated);
    EXPECT_GE(lva.stats().allocations.value(), 2u);
}

TEST(Approximator, CoverageStatistic)
{
    LoadValueApproximator lva(testConfig());
    lva.onMiss(0x400, Value::fromInt(1)); // not approximated
    lva.onMiss(0x400, Value::fromInt(1)); // approximated
    lva.onMiss(0x400, Value::fromInt(1)); // approximated
    EXPECT_NEAR(lva.coverage(), 2.0 / 3.0, 1e-12);
}

TEST(Approximator, EstimatorLast)
{
    auto cfg = testConfig();
    cfg.estimator = Estimator::Last;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(10));
    lva.onMiss(0x400, Value::fromInt(30));
    EXPECT_EQ(lva.onMiss(0x400, Value::fromInt(0)).value.asInt(), 30);
}

TEST(Approximator, EstimatorStride)
{
    auto cfg = testConfig();
    cfg.estimator = Estimator::Stride;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(10));
    lva.onMiss(0x400, Value::fromInt(20));
    lva.onMiss(0x400, Value::fromInt(30));
    EXPECT_EQ(lva.onMiss(0x400, Value::fromInt(0)).value.asInt(), 40);
}

TEST(Approximator, AssociativityResolvesAliasing)
{
    // Force two contexts into one set: a 1-way (direct-mapped) table
    // of a single entry thrashes between them, while a 2-way table of
    // the same total size keeps both trained.
    auto direct = testConfig();
    direct.tableEntries = 2;
    direct.tableAssoc = 1;
    auto assoc = testConfig();
    assoc.tableEntries = 2;
    assoc.tableAssoc = 2; // one set, two ways

    auto run = [](const ApproximatorConfig &cfg) {
        LoadValueApproximator lva(cfg);
        // Find two PCs mapping to the same direct-mapped entry.
        // With 2 entries, PCs hashing to the same parity collide;
        // just scan for a colliding pair behaviourally by using many
        // alternating PCs in a 1-set (assoc) vs 2-set (direct) table.
        u64 approximations = 0;
        for (int i = 0; i < 200; ++i) {
            const LoadSiteId pc = (i % 2 == 0) ? 0x400 : 0x404;
            approximations +=
                lva.onMiss(pc, Value::fromInt(7)).approximated;
        }
        return approximations;
    };

    // In the 2-way table both contexts always coexist; the
    // direct-mapped table can do no better and thrashes whenever the
    // two PCs alias.
    EXPECT_GE(run(assoc), run(direct));
    EXPECT_GT(run(assoc), 150u);
}

TEST(Approximator, LruWithinSet)
{
    // 2-way single set: touch A, B, then C — C must evict A (the
    // least recently used), so B remains trained.
    auto cfg = testConfig();
    cfg.tableEntries = 2;
    cfg.tableAssoc = 2;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0xA00, Value::fromInt(1)); // A allocates
    lva.onMiss(0xB00, Value::fromInt(2)); // B allocates
    lva.onMiss(0xA00, Value::fromInt(1)); // A trained + MRU
    lva.onMiss(0xB00, Value::fromInt(2)); // B trained + MRU
    lva.onMiss(0xC00, Value::fromInt(3)); // C evicts A
    EXPECT_TRUE(lva.onMiss(0xB00, Value::fromInt(2)).approximated);
    // A was evicted: re-allocation, no approximation.
    EXPECT_FALSE(lva.onMiss(0xA00, Value::fromInt(1)).approximated);
}

TEST(ApproximatorConfig, StorageWithinHardwareBudget)
{
    // Paper section VII-A: ~18 KB for 64-bit values, ~10 KB for
    // 32-bit values with the baseline geometry.
    const ApproximatorConfig cfg;
    EXPECT_NEAR(static_cast<double>(cfg.storageBytes(8)), 18.0 * 1024,
                2.0 * 1024);
    EXPECT_NEAR(static_cast<double>(cfg.storageBytes(4)), 10.0 * 1024,
                2.0 * 1024);
}

/** Degree sweep property: fetch fraction of approximated misses is
 *  exactly 1/(degree+1) on a stable context. */
class DegreeSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(DegreeSweep, FetchFraction)
{
    auto cfg = testConfig();
    cfg.approxDegree = GetParam();
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(3));
    u64 fetches = 0;
    const u64 n = 100 * (GetParam() + 1);
    for (u64 i = 0; i < n; ++i)
        fetches += lva.onMiss(0x400, Value::fromInt(3)).fetch ? 1 : 0;
    EXPECT_EQ(fetches, n / (GetParam() + 1));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u));

/**
 * Value-exact golden: the complete decision/estimate sequence for a
 * fixed seeded load stream under a deliberately awkward configuration
 * (GHB context, value delay, degree skipping, tiny aliasing-prone
 * table, mixed Int64/Float64 kinds, relaxed float window). Every
 * MissResponse — approximated flag, fetch flag, and the exact bit
 * pattern plus kind of every generated value — folds into one FNV-1a
 * digest pinned from the pre-SoA-refactor implementation. The stats
 * pins cross-check the same run through the counter plane.
 *
 * This is stronger than the export-level pins in
 * refactor_identity_test.cc: a refactor that reorders float summation
 * or perturbs ring-buffer ages changes a value bit here even if the
 * aggregated error metrics happen to survive. Recapture (only for an
 * intentional semantics change) by printing `digest` below.
 */
TEST(Approximator, GoldenDecisionSequencePinned)
{
    ApproximatorConfig cfg;
    cfg.tableEntries = 32; // force index conflicts
    cfg.tableAssoc = 2;    // exercise set LRU
    cfg.tagBits = 8;       // allow tag aliasing
    cfg.ghbEntries = 2;    // context hash uses value history
    cfg.lhbEntries = 4;
    cfg.confidenceBits = 3;
    cfg.confidenceWindow = 0.25;
    cfg.valueDelay = 3;  // trainings land 3 loads late
    cfg.approxDegree = 2; // fetch skipping on confident entries
    LoadValueApproximator lva(cfg);

    Rng rng(0xd0'5e'ca'11ULL);
    u64 digest_state = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    auto fold = [&digest_state](u64 word) {
        for (int i = 0; i < 8; ++i) {
            digest_state ^= (word >> (8 * i)) & 0xff;
            digest_state *= 0x100000001b3ULL;
        }
    };

    for (u32 i = 0; i < 4000; ++i) {
        // 8 load sites; values random-walk per site so AVERAGE over
        // the LHB is meaningful but never exact.
        const LoadSiteId pc = 0x400000 + 4 * (rng.next() % 8);
        const bool isFloat = (pc / 4) % 2 == 0;
        const i64 step = static_cast<i64>(rng.below(200)) - 100;
        const Value precise =
            isFloat ? Value::fromDouble(
                          static_cast<double>(step) / 7.0 + 50.0)
                    : Value::fromInt(1000 + step);
        if (rng.below(8) == 0) { // occasional hit path
            lva.onHit(pc, precise);
            fold(0x4u); // hit marker, disjoint from miss codes 0-3
        } else {
            const MissResponse r = lva.onMiss(pc, precise);
            fold((r.approximated ? 2u : 0u) | (r.fetch ? 1u : 0u));
            if (r.approximated) {
                fold(r.value.bits());
                fold(static_cast<u64>(r.value.kind()));
            }
        }
    }
    lva.drainPending();

    fold(lva.stats().lookups.value());
    fold(lva.stats().approximations.value());
    fold(lva.stats().fetchesSkipped.value());
    fold(lva.stats().trainings.value());
    fold(lva.stats().allocations.value());
    fold(lva.stats().confRejects.value());
    fold(lva.stats().coldRejects.value());
    fold(lva.stats().staleDrops.value());
    fold(static_cast<u64>(lva.validEntries()));

    EXPECT_EQ(hexU64(digest_state), "a518fb6a1f4d967c");
}

} // namespace
} // namespace lva
