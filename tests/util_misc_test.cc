/**
 * @file
 * Tests for remaining utility corners: printf-style formatting,
 * Value::toString, estimator/mode/kind names, evaluator environment
 * handling, and the approximator storage model.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/approximator_config.hh"
#include "eval/evaluator.hh"
#include "util/logging.hh"
#include "util/value.hh"

namespace lva {
namespace {

TEST(Logging, VformatBasics)
{
    EXPECT_EQ(detail::vformat("plain"), "plain");
    EXPECT_EQ(detail::vformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(detail::vformat("%.2f", 2.5), "2.50");
    EXPECT_EQ(detail::vformat("%s", ""), "");
}

TEST(Logging, VformatLongStrings)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(detail::vformat("%s!", big.c_str()), big + "!");
}

TEST(Value, ToStringReflectsKind)
{
    EXPECT_EQ(Value::fromInt(-3).toString(), "-3");
    EXPECT_NE(Value::fromFloat(1.5f).toString().find("1.5"),
              std::string::npos);
    EXPECT_NE(Value::fromDouble(2.25).toString().find("2.25"),
              std::string::npos);
}

TEST(Names, EnumToString)
{
    EXPECT_STREQ(valueKindName(ValueKind::Int64), "Int64");
    EXPECT_STREQ(valueKindName(ValueKind::Float32), "Float32");
    EXPECT_STREQ(valueKindName(ValueKind::Float64), "Float64");
    EXPECT_STREQ(estimatorName(Estimator::Average), "AVERAGE");
    EXPECT_STREQ(estimatorName(Estimator::Last), "LAST");
    EXPECT_STREQ(estimatorName(Estimator::Stride), "STRIDE");
}

TEST(EvaluatorEnv, ExplicitArgumentsOverrideEnvironment)
{
    setenv("LVA_SEEDS", "9", 1);
    setenv("LVA_SCALE", "0.7", 1);
    Evaluator eval(2, 0.1);
    EXPECT_EQ(eval.seeds(), 2u);
    EXPECT_DOUBLE_EQ(eval.scale(), 0.1);
    unsetenv("LVA_SEEDS");
    unsetenv("LVA_SCALE");
}

TEST(EvaluatorEnv, EnvironmentUsedWhenDefaulted)
{
    setenv("LVA_SEEDS", "3", 1);
    setenv("LVA_SCALE", "0.25", 1);
    Evaluator eval;
    EXPECT_EQ(eval.seeds(), 3u);
    EXPECT_DOUBLE_EQ(eval.scale(), 0.25);
    unsetenv("LVA_SEEDS");
    unsetenv("LVA_SCALE");
}

TEST(EvaluatorEnv, GarbageEnvironmentFallsBackToDefaults)
{
    setenv("LVA_SEEDS", "-4", 1);
    setenv("LVA_SCALE", "999", 1);
    Evaluator eval;
    EXPECT_EQ(eval.seeds(), 5u);     // paper default
    EXPECT_DOUBLE_EQ(eval.scale(), 1.0);
    unsetenv("LVA_SEEDS");
    unsetenv("LVA_SCALE");
}

TEST(StorageModel, ScalesWithGeometry)
{
    ApproximatorConfig small;
    small.tableEntries = 128;
    ApproximatorConfig big;
    big.tableEntries = 1024;
    EXPECT_LT(small.storageBytes(), big.storageBytes());

    ApproximatorConfig deep;
    deep.lhbEntries = 8;
    ApproximatorConfig shallow;
    shallow.lhbEntries = 2;
    EXPECT_GT(deep.storageBytes(), shallow.storageBytes());

    // 32-bit LHB values halve the dominant term.
    const ApproximatorConfig base;
    EXPECT_LT(base.storageBytes(4), base.storageBytes(8));
}

} // namespace
} // namespace lva
