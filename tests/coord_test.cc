/**
 * @file
 * Tests for the sweep-sharding coordinator layer (eval/coord) and the
 * lva_sweep_coord binary.
 *
 * The in-process half pins the tentpole property on the pure pieces:
 * for shard counts {1, 3, 7}, scattering a sweep through
 * EvalService::handle (shard-scoped detail requests) and merging the
 * shard records yields renderSweepStats bytes identical to a direct
 * single-process runChecked — including when points fail. Plus the
 * plan/rank invariants, record round-trips, and merge validation.
 *
 * The cross-process half forks the real lva_sweep_coord binary over a
 * real worker fleet and asserts the acceptance criterion: a worker
 * killed mid-shard and a coordinator killed mid-run (resumed with
 * --resume) still produce a byte-identical export.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "eval/coord.hh"
#include "eval/service.hh"
#include "eval/sweep.hh"
#include "util/fault.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

constexpr u32 kSeeds = 1;
constexpr double kScale = 0.02;

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A small multi-workload grid (workloads chosen for no particular
 *  hash property: the tests derive shard placement, never assume it). */
std::vector<SweepPoint>
testPoints(bool includeBadWorkload = false)
{
    std::vector<SweepPoint> points;
    for (const char *name :
         {"swaptions", "blackscholes", "fluidanimate", "bodytrack"}) {
        for (u32 ghb : {0u, 2u}) {
            ApproxMemory::Config cfg = Evaluator::baselineLva();
            cfg.approx.ghbEntries = ghb;
            points.push_back({"ghb-" + std::to_string(ghb), name, cfg});
        }
    }
    if (includeBadWorkload) {
        // An unknown workload fails in isolation on whatever process
        // evaluates it — the honest-failure path, no fault injection
        // needed.
        points.push_back(
            {"bad", "no-such-workload", Evaluator::baselineLva()});
    }
    return points;
}

/** The same JSON a client would put in the request "points" array. */
std::string
pointsJson(const std::vector<SweepPoint> &points,
           const std::vector<u64> &members)
{
    std::string out = "[";
    for (std::size_t i = 0; i < members.size(); ++i) {
        const SweepPoint &p = points[members[i]];
        if (i > 0)
            out += ',';
        out += "{\"label\":\"" + p.label + "\",\"workload\":\"" +
               p.workload + "\",\"config\":{\"ghb\":" +
               std::to_string(p.config.approx.ghbEntries) + "}}";
    }
    return out + "]";
}

/** Direct single-process reference export for @p points. */
std::string
directExport(const std::vector<SweepPoint> &points)
{
    Evaluator eval(kSeeds, kScale);
    SweepRunner runner(eval, 1);
    SweepOptions opts;
    opts.driver = "coord_test";
    const SweepOutcome outcome = runner.runChecked(points, opts);
    return renderSweepStats("coord_test", points, outcome);
}

ServeOptions
testOptions()
{
    ServeOptions opts;
    opts.workers = 2;
    opts.queueCap = 4;
    opts.deadlineMs = 5000;
    opts.maxAttempts = 1;
    opts.jobs = 1;
    return opts;
}

/** Scatter @p points through @p service per @p plan and merge. */
std::string
shardedExport(EvalService &service, const ShardPlan &plan,
              const std::vector<SweepPoint> &points)
{
    std::vector<ShardRecord> records;
    for (u32 s = 0; s < plan.shards; ++s) {
        if (plan.members[s].empty())
            continue;
        const std::string request =
            std::string("{\"schema\":\"lva-rpc-v1\",\"op\":\"sweep\"") +
            ",\"driver\":\"coord_test\",\"shard\":" +
            std::to_string(s) + ",\"detail\":true,\"points\":" +
            pointsJson(points, plan.members[s]) + "}";
        const JsonValue response = parseJson(service.handle(request));
        records.push_back(shardRecordFromResponse(
            response, s, plan.members[s].size()));
    }
    const SweepOutcome outcome =
        mergeShards(plan, points.size(), records);
    return renderSweepStats("coord_test", points, outcome);
}

// ---------------------------------------------------------------------
// Plan and rank invariants
// ---------------------------------------------------------------------

TEST(CoordPlan, EveryPointInExactlyOneShard)
{
    const std::vector<SweepPoint> points = testPoints();
    for (u32 shards : {1u, 2u, 3u, 7u, 16u}) {
        const ShardPlan plan = planShards(points, shards);
        ASSERT_EQ(plan.members.size(), shards);
        std::vector<int> seen(points.size(), 0);
        for (u32 s = 0; s < shards; ++s) {
            for (const u64 g : plan.members[s]) {
                ASSERT_LT(g, points.size());
                ++seen[g];
                // Placement is the fleet's rendezvous rule.
                EXPECT_EQ(s, fleetShard(points[g].workload, shards));
            }
        }
        for (const int n : seen)
            EXPECT_EQ(n, 1);
    }
}

TEST(CoordPlan, MembersKeepSubmissionOrder)
{
    const std::vector<SweepPoint> points = testPoints();
    const ShardPlan plan = planShards(points, 3);
    for (u32 s = 0; s < plan.shards; ++s)
        for (std::size_t i = 1; i < plan.members[s].size(); ++i)
            EXPECT_LT(plan.members[s][i - 1], plan.members[s][i]);
}

TEST(CoordPlan, KeyMatchesTheShardRequestsRouteKey)
{
    // What the coordinator ranks workers by must equal what an
    // lva_fleet frontend would compute for the shard's actual request
    // — one placement rule, two implementations.
    const std::vector<SweepPoint> points = testPoints();
    const ShardPlan plan = planShards(points, 3);
    for (u32 s = 0; s < plan.shards; ++s) {
        if (plan.members[s].empty())
            continue;
        const std::string request =
            std::string("{\"schema\":\"lva-rpc-v1\",\"op\":\"sweep\"") +
            ",\"driver\":\"coord_test\",\"shard\":" +
            std::to_string(s) + ",\"detail\":true,\"points\":" +
            pointsJson(points, plan.members[s]) + "}";
        EXPECT_EQ(plan.keys[s], fleetRouteKey(request));
    }
}

TEST(CoordPlan, WorkerRankLeadsWithTheFleetShard)
{
    const std::vector<SweepPoint> points = testPoints();
    const ShardPlan plan = planShards(points, 3);
    for (u32 workers : {1u, 2u, 3u, 5u}) {
        const std::vector<u32> rank =
            coordWorkerRank(plan.keys[0], workers);
        ASSERT_EQ(rank.size(), workers);
        EXPECT_EQ(rank[0], fleetShard(plan.keys[0], workers));
        std::vector<int> seen(workers, 0);
        for (const u32 r : rank)
            ++seen[r];
        for (const int n : seen)
            EXPECT_EQ(n, 1); // a permutation, no repeats
    }
}

TEST(CoordPlan, DigestTracksShardContents)
{
    const std::vector<SweepPoint> points = testPoints();
    const ShardPlan plan3 = planShards(points, 3);
    const ShardPlan plan7 = planShards(points, 7);
    EXPECT_EQ(shardDigest(plan3, points, 0),
              shardDigest(plan3, points, 0));
    // Different shard index -> different digest even when empty.
    EXPECT_NE(shardDigest(plan3, points, 0),
              shardDigest(plan3, points, 1));
    // The context key carries the shard count; together they keep a
    // manifest written under another plan from resuming.
    const Evaluator eval(kSeeds, kScale);
    EXPECT_NE(coordContextKey(eval, 3), coordContextKey(eval, 7));
    (void)plan7;
}

// ---------------------------------------------------------------------
// Record round-trip and merge validation
// ---------------------------------------------------------------------

ShardRecord
sampleRecord()
{
    ShardRecord record;
    record.shard = 2;
    record.results.push_back(failedPointPlaceholder());
    EvalResult ok;
    ok.outputError = 0.25;
    record.results.push_back(ok);
    PointFailure f;
    f.index = 0;
    f.label = "bad";
    f.workload = "no-such-workload";
    f.error = "unknown workload";
    f.attempts = 2;
    f.timedOut = false;
    record.failures.push_back(f);
    return record;
}

TEST(CoordRecord, EncodeDecodeRoundTrip)
{
    const ShardRecord record = sampleRecord();
    const ShardRecord back =
        decodeShardRecord(parseJson(encodeShardRecord(record)));
    EXPECT_EQ(back.shard, 2u);
    ASSERT_EQ(back.results.size(), 2u);
    EXPECT_TRUE(back.results[0].failed);
    EXPECT_FALSE(back.results[1].failed);
    EXPECT_EQ(back.results[1].outputError, 0.25);
    ASSERT_EQ(back.failures.size(), 1u);
    EXPECT_EQ(back.failures[0].label, "bad");
    EXPECT_EQ(back.failures[0].workload, "no-such-workload");
    EXPECT_EQ(back.failures[0].error, "unknown workload");
    EXPECT_EQ(back.failures[0].attempts, 2u);
    EXPECT_FALSE(back.failures[0].timedOut);
}

TEST(CoordRecord, DecodeRejectsMalformedPayloads)
{
    // Out-of-range failure index.
    EXPECT_THROW(
        decodeShardRecord(parseJson(
            R"({"shard":0,"results":[null],"failures":[{"index":5,)"
            R"("label":"","workload":"","error":"x","attempts":1,)"
            R"("timedOut":false}]})")),
        std::runtime_error);
    // Non-bool timedOut.
    EXPECT_THROW(
        decodeShardRecord(parseJson(
            R"({"shard":0,"results":[null],"failures":[{"index":0,)"
            R"("label":"","workload":"","error":"x","attempts":1,)"
            R"("timedOut":1}]})")),
        std::runtime_error);
    // Missing results member.
    EXPECT_THROW(decodeShardRecord(parseJson(R"({"shard":0})")),
                 std::runtime_error);
}

TEST(CoordMerge, RejectsDuplicateMissingAndMisshapenRecords)
{
    const std::vector<SweepPoint> points = testPoints();
    const ShardPlan plan = planShards(points, 3);
    std::vector<ShardRecord> records;
    for (u32 s = 0; s < plan.shards; ++s) {
        if (plan.members[s].empty())
            continue;
        ShardRecord r;
        r.shard = s;
        r.results.resize(plan.members[s].size());
        records.push_back(std::move(r));
    }
    // Well-formed merges cleanly.
    EXPECT_NO_THROW(mergeShards(plan, points.size(), records));

    // A record for every shard twice: double coverage.
    std::vector<ShardRecord> doubled = records;
    doubled.insert(doubled.end(), records.begin(), records.end());
    EXPECT_THROW(mergeShards(plan, points.size(), doubled),
                 std::runtime_error);

    // A missing shard: uncovered points.
    std::vector<ShardRecord> partial(records.begin(),
                                     records.end() - 1);
    EXPECT_THROW(mergeShards(plan, points.size(), partial),
                 std::runtime_error);

    // A record whose result count disagrees with the plan.
    std::vector<ShardRecord> misshapen = records;
    misshapen[0].results.pop_back();
    EXPECT_THROW(mergeShards(plan, points.size(), misshapen),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// The tentpole: sharded bytes == direct bytes
// ---------------------------------------------------------------------

TEST(CoordIdentity, ShardedExportMatchesDirectForAnyShardCount)
{
    const std::vector<SweepPoint> points = testPoints();
    const std::string direct = directExport(points);
    EvalService service(kSeeds, kScale, testOptions());
    for (u32 shards : {1u, 3u, 7u}) {
        const ShardPlan plan = planShards(points, shards);
        EXPECT_EQ(shardedExport(service, plan, points), direct)
            << "shards=" << shards;
    }
}

TEST(CoordIdentity, FailedPointsRenderIdenticallyThroughTheMerge)
{
    // A point that fails on the worker must come back through the
    // shard record as the same placeholder + failures-section bytes
    // the local engine would have produced.
    const std::vector<SweepPoint> points = testPoints(true);
    const std::string direct = directExport(points);
    ASSERT_NE(direct.find("\"failures\""), std::string::npos);
    EvalService service(kSeeds, kScale, testOptions());
    for (u32 shards : {1u, 3u}) {
        const ShardPlan plan = planShards(points, shards);
        EXPECT_EQ(shardedExport(service, plan, points), direct)
            << "shards=" << shards;
    }
}

TEST(CoordIdentity, RecordsRestoredFromManifestBytesMatchToo)
{
    // Resume path: shard records that took a detour through their
    // manifest encoding still merge to the same bytes.
    const std::vector<SweepPoint> points = testPoints(true);
    const std::string direct = directExport(points);
    EvalService service(kSeeds, kScale, testOptions());
    const ShardPlan plan = planShards(points, 3);
    std::vector<ShardRecord> records;
    for (u32 s = 0; s < plan.shards; ++s) {
        if (plan.members[s].empty())
            continue;
        const std::string request =
            std::string("{\"schema\":\"lva-rpc-v1\",\"op\":\"sweep\"") +
            ",\"driver\":\"coord_test\",\"shard\":" +
            std::to_string(s) + ",\"detail\":true,\"points\":" +
            pointsJson(points, plan.members[s]) + "}";
        const ShardRecord fresh = shardRecordFromResponse(
            parseJson(service.handle(request)), s,
            plan.members[s].size());
        records.push_back(
            decodeShardRecord(parseJson(encodeShardRecord(fresh))));
    }
    const SweepOutcome outcome =
        mergeShards(plan, points.size(), records);
    EXPECT_EQ(renderSweepStats("coord_test", points, outcome), direct);
}

// ---------------------------------------------------------------------
// Cross-process acceptance: the real binary, real kills
// ---------------------------------------------------------------------

class CoordBinaryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("lva_coord_" +
                std::to_string(static_cast<long>(getpid())) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        points_ = testPoints();
        std::ofstream(dir_ / "points.json")
            << pointsJson(points_, allIndices());
    }

    void
    TearDown() override
    {
        // A killed coordinator never tears its workers down (that is
        // the point of the kill test); reap the strays by the pids it
        // announced before dying.
        const std::string log = slurp(dir_ / "coord.log");
        const std::string needle = ") pid ";
        for (std::size_t at = log.find(needle);
             at != std::string::npos;
             at = log.find(needle, at + 1)) {
            const pid_t pid =
                std::atoi(log.c_str() + at + needle.size());
            if (pid > 1)
                kill(pid, SIGKILL);
        }
        fs::remove_all(dir_);
    }

    std::vector<u64>
    allIndices() const
    {
        std::vector<u64> all(points_.size());
        for (u64 i = 0; i < all.size(); ++i)
            all[i] = i;
        return all;
    }

    /**
     * Run the coordinator to completion; returns its exit code
     * (-signal when killed). @p fault / @p fleetFault arm LVA_FAULT /
     * LVA_FLEET_FAULT in the child.
     */
    int
    runCoord(const std::string &out, bool resume,
             const std::string &fault = "",
             const std::string &fleetFault = "")
    {
        const pid_t pid = fork();
        if (pid == 0) {
            FILE *log = std::fopen((dir_ / "coord.log").c_str(), "a");
            if (log) {
                dup2(fileno(log), STDOUT_FILENO);
                dup2(fileno(log), STDERR_FILENO);
            }
            setenv("LVA_SEEDS", "1", 1);
            setenv("LVA_SCALE", "0.02", 1);
            setenv("LVA_JOBS", "1", 1);
            setenv("LVA_RESULTS_DIR", (dir_ / "results").c_str(), 1);
            unsetenv("LVA_FAULT");
            unsetenv("LVA_FLEET_FAULT");
            if (!fault.empty())
                setenv("LVA_FAULT", fault.c_str(), 1);
            if (!fleetFault.empty())
                setenv("LVA_FLEET_FAULT", fleetFault.c_str(), 1);
            const std::string pts = (dir_ / "points.json").string();
            const std::string outPath = (dir_ / out).string();
            if (resume)
                execl(LVA_COORD_BINARY, "lva_sweep_coord", "--driver",
                      "coord_test", "--points", pts.c_str(), "--out",
                      outPath.c_str(), "--fleet", "3", "--shards",
                      "3", "--resume", static_cast<char *>(nullptr));
            else
                execl(LVA_COORD_BINARY, "lva_sweep_coord", "--driver",
                      "coord_test", "--points", pts.c_str(), "--out",
                      outPath.c_str(), "--fleet", "3", "--shards",
                      "3", static_cast<char *>(nullptr));
            _exit(127);
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (WIFSIGNALED(status))
            return -WTERMSIG(status);
        return WEXITSTATUS(status);
    }

    fs::path dir_;
    std::vector<SweepPoint> points_;
};

TEST_F(CoordBinaryTest, WorkerKillMidShardStillMatchesDirectBytes)
{
    // Every worker's first incarnation aborts on its first request:
    // each shard's first exchange dies mid-flight and the coordinator
    // must steal/respawn its way to a complete, identical export.
    const int rc =
        runCoord("out.json", false, "", "*:serve.request.0=abort");
    EXPECT_EQ(rc, 0) << slurp(dir_ / "coord.log");
    EXPECT_EQ(slurp(dir_ / "out.json"), directExport(points_));
}

TEST_F(CoordBinaryTest, CoordinatorKillThenResumeMatchesDirectBytes)
{
    // Kill the coordinator at the gather of a shard that provably has
    // points (derived from the plan, not assumed): the manifest holds
    // whatever completed first; --resume finishes the rest and the
    // bytes still match. The same schedule also proves a *scatter*
    // kill resumes, since unscattered shards are simply absent.
    const ShardPlan plan = planShards(points_, 3);
    u32 victim = 0;
    for (u32 s = 0; s < plan.shards; ++s)
        if (!plan.members[s].empty())
            victim = s;
    const int rc = runCoord(
        "dead.json", false,
        "coord.gather." + std::to_string(victim) + "=abort");
    EXPECT_EQ(rc, faultExitCode()) << slurp(dir_ / "coord.log");
    EXPECT_FALSE(fs::exists(dir_ / "dead.json"));

    const int rc2 = runCoord("out.json", true);
    EXPECT_EQ(rc2, 0) << slurp(dir_ / "coord.log");
    EXPECT_EQ(slurp(dir_ / "out.json"), directExport(points_));
}

} // namespace
} // namespace lva
