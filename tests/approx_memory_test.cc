/**
 * @file
 * Unit tests for the phase-1 ApproxMemory front-end: hit/miss flow,
 * MPKI accounting (approximated misses count as hits), fetch
 * accounting, per-thread isolation and the baseline modes.
 */

#include <gtest/gtest.h>

#include "core/approx_memory.hh"

namespace lva {
namespace {

ApproxMemory::Config
lvaConfig()
{
    ApproxMemory::Config cfg;
    cfg.threads = 2;
    cfg.cache = CacheConfig{1024, 2, 64};
    cfg.mode = MemMode::Lva;
    cfg.approx.ghbEntries = 0;
    cfg.approx.valueDelay = 0;
    return cfg;
}

TEST(ApproxMemory, PreciseModeCountsMissesAndFetches)
{
    auto cfg = lvaConfig();
    cfg.mode = MemMode::Precise;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x1000, Value::fromInt(1), true);
    mem.load(0, 0x400, 0x1000, Value::fromInt(1), true);
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.loads, 2u);
    EXPECT_EQ(m.loadMisses, 1u);
    EXPECT_EQ(m.effectiveMisses, 1u);
    EXPECT_EQ(m.fetches, 1u);
    EXPECT_EQ(m.approxLoads, 0u);
}

TEST(ApproxMemory, ApproximatedMissCountsAsHit)
{
    ApproxMemory mem(lvaConfig());
    // Train once (cold miss, fetch), then evict nothing: touch a new
    // block address each time so every access misses.
    mem.load(0, 0x400, 0x10000, Value::fromInt(42), true);
    const Value got =
        mem.load(0, 0x400, 0x20000, Value::fromInt(999), true);
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.loadMisses, 2u);
    EXPECT_EQ(m.effectiveMisses, 1u); // second miss approximated
    EXPECT_EQ(m.approxLoads, 1u);
    EXPECT_EQ(got.asInt(), 42); // clobbered with the estimate
}

TEST(ApproxMemory, NonApproximableLoadsAreNeverClobbered)
{
    ApproxMemory mem(lvaConfig());
    mem.load(0, 0x400, 0x10000, Value::fromInt(42), true);
    const Value got =
        mem.load(0, 0x500, 0x20000, Value::fromInt(7), false);
    EXPECT_EQ(got.asInt(), 7);
    EXPECT_EQ(mem.metrics().effectiveMisses, 2u);
}

TEST(ApproxMemory, DegreeCancelsFetches)
{
    auto cfg = lvaConfig();
    cfg.approx.approxDegree = 1;
    ApproxMemory mem(cfg);
    // Each access misses (distinct blocks), all to one PC context.
    for (u64 i = 0; i < 9; ++i) {
        mem.load(0, 0x400, 0x10000 + i * 0x10000, Value::fromInt(5),
                 true);
    }
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.loadMisses, 9u);
    // Miss 1 allocates (fetch). Misses 2..9 approximated; degree 1
    // fetches every other one.
    EXPECT_EQ(m.approxLoads, 8u);
    EXPECT_EQ(m.fetches, 1u + 4u);
}

TEST(ApproxMemory, LvpAlwaysFetchesAndReturnsPrecise)
{
    auto cfg = lvaConfig();
    cfg.mode = MemMode::Lvp;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x10000, Value::fromInt(3), true);
    const Value got =
        mem.load(0, 0x400, 0x20000, Value::fromInt(3), true);
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(got.asInt(), 3);            // never clobbered
    EXPECT_EQ(m.fetches, m.loadMisses);   // 1:1 fetch ratio
    EXPECT_EQ(m.effectiveMisses, 1u);     // oracle hid the second
}

TEST(ApproxMemory, PrefetchModeFetchesExtraBlocks)
{
    auto cfg = lvaConfig();
    cfg.mode = MemMode::Prefetch;
    cfg.prefetch.degree = 4;
    ApproxMemory mem(cfg);
    // Sequential misses train a stride the prefetcher can follow.
    for (u64 i = 0; i < 32; ++i)
        mem.load(0, 0x400, 0x10000 + i * 64, Value::fromInt(1), false);
    const MemMetrics m = mem.metrics();
    EXPECT_GT(m.fetches, m.loadMisses); // prefetches inflate fetches
    EXPECT_LT(m.loadMisses, 32u);       // and some prefetches hit
}

TEST(ApproxMemory, ThreadsHavePrivateCaches)
{
    ApproxMemory mem(lvaConfig());
    mem.load(0, 0x400, 0x1000, Value::fromInt(1), false);
    // Thread 1 misses on the same block: caches are private.
    mem.load(1, 0x400, 0x1000, Value::fromInt(1), false);
    EXPECT_EQ(mem.metrics().loadMisses, 2u);
    EXPECT_EQ(mem.cacheFor(0).stats().misses.value(), 1u);
    EXPECT_EQ(mem.cacheFor(1).stats().misses.value(), 1u);
}

TEST(ApproxMemory, StoresWriteAllocateWithoutLoadMiss)
{
    ApproxMemory mem(lvaConfig());
    mem.store(0, 0x600, 0x3000);
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.stores, 1u);
    EXPECT_EQ(m.loadMisses, 0u);
    EXPECT_EQ(m.fetches, 1u);
    // The block is now resident: a load to it hits.
    mem.load(0, 0x400, 0x3000, Value::fromInt(1), false);
    EXPECT_EQ(mem.metrics().loadMisses, 0u);
}

TEST(ApproxMemory, TickInstructionsFeedsMpki)
{
    auto cfg = lvaConfig();
    cfg.mode = MemMode::Precise;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x1000, Value::fromInt(1), false); // 1 miss
    mem.tickInstructions(0, 999);
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.instructions, 1000u);
    EXPECT_DOUBLE_EQ(m.mpki(), 1.0);
    EXPECT_DOUBLE_EQ(m.rawMpki(), 1.0);
}

TEST(ApproxMemory, MetricsAggregateAcrossThreads)
{
    ApproxMemory mem(lvaConfig());
    mem.tickInstructions(0, 10);
    mem.tickInstructions(1, 20);
    EXPECT_EQ(mem.metrics().instructions, 30u);
}

TEST(ApproxMemory, CoverageMetric)
{
    ApproxMemory mem(lvaConfig());
    mem.load(0, 0x400, 0x10000, Value::fromInt(1), true); // cold
    mem.load(0, 0x400, 0x20000, Value::fromInt(1), true); // approx
    const MemMetrics m = mem.metrics();
    EXPECT_EQ(m.approximableLoads, 2u);
    EXPECT_DOUBLE_EQ(m.coverage(), 0.5);
}

TEST(ApproxMemory, FinishDrainsValueDelayedTraining)
{
    auto cfg = lvaConfig();
    cfg.approx.valueDelay = 50;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x10000, Value::fromInt(9), true);
    mem.finish();
    EXPECT_EQ(mem.approximatorFor(0).stats().trainings.value(), 1u);
}

TEST(ApproxMemory, ModeNames)
{
    EXPECT_STREQ(memModeName(MemMode::Precise), "precise");
    EXPECT_STREQ(memModeName(MemMode::Lva), "LVA");
    EXPECT_STREQ(memModeName(MemMode::Lvp), "LVP");
    EXPECT_STREQ(memModeName(MemMode::Prefetch), "prefetch");
}

} // namespace
} // namespace lva
