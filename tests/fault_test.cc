/**
 * @file
 * Tests for the deterministic fault-injection harness (util/fault):
 * spec grammar, trigger counting, action behavior, wildcard matching,
 * and the test-hook arming/disarming path. The 'abort' action is
 * process-fatal and therefore exercised by sweep_resume_test, which
 * runs a helper binary, not here.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>

#include "util/fault.hh"

namespace lva {
namespace {

/** Arms a spec for one test and always disarms on the way out. */
class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { setFaultSpecForTest(""); }
};

TEST_F(FaultTest, ParsesSimpleEntry)
{
    const auto plan = parseFaultSpec("sweep.point.2=throw");
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].site, "sweep.point.2");
    EXPECT_FALSE(plan[0].wildcard);
    EXPECT_EQ(plan[0].kind, FaultEntry::Kind::Throw);
    EXPECT_EQ(plan[0].trigger, FaultEntry::Trigger::Always);
}

TEST_F(FaultTest, ParsesTriggersDelaysAndWildcards)
{
    const auto plan = parseFaultSpec(
        "a=abort@at3,eval.golden.*=delay:50@first2,b=allocfail");
    ASSERT_EQ(plan.size(), 3u);

    EXPECT_EQ(plan[0].kind, FaultEntry::Kind::Abort);
    EXPECT_EQ(plan[0].trigger, FaultEntry::Trigger::At);
    EXPECT_EQ(plan[0].n, 3u);

    EXPECT_EQ(plan[1].site, "eval.golden.");
    EXPECT_TRUE(plan[1].wildcard);
    EXPECT_EQ(plan[1].kind, FaultEntry::Kind::Delay);
    EXPECT_EQ(plan[1].delayMs, 50u);
    EXPECT_EQ(plan[1].trigger, FaultEntry::Trigger::First);
    EXPECT_EQ(plan[1].n, 2u);

    EXPECT_EQ(plan[2].kind, FaultEntry::Kind::AllocFail);
}

TEST_F(FaultTest, EmptySpecAndEmptyItemsYieldEmptyPlan)
{
    EXPECT_TRUE(parseFaultSpec("").empty());
    // Stray separators are tolerated; only non-empty items parse.
    EXPECT_EQ(parseFaultSpec("a=throw,,b=throw").size(), 2u);
}

TEST_F(FaultTest, RejectsBadGrammar)
{
    // Not site=action.
    EXPECT_THROW(parseFaultSpec("justasite"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("=throw"), std::invalid_argument);
    // Unknown action kind / trigger.
    EXPECT_THROW(parseFaultSpec("a=explode"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("a=throw@sometimes"),
                 std::invalid_argument);
    // delay requires ':<ms>'; nothing else accepts one.
    EXPECT_THROW(parseFaultSpec("a=delay"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("a=throw:5"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("a=delay:abc"), std::invalid_argument);
    // Trigger counts must be sane.
    EXPECT_THROW(parseFaultSpec("a=throw@first0"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("a=throw@atx"), std::invalid_argument);
}

TEST_F(FaultTest, UnarmedSiteIsANoOp)
{
    setFaultSpecForTest("");
    EXPECT_FALSE(faultsArmed());
    EXPECT_NO_THROW(faultPoint("sweep.point.0"));
}

TEST_F(FaultTest, ThrowActionRaisesFaultInjectedAtMatchingSiteOnly)
{
    setFaultSpecForTest("sweep.point.1=throw");
    EXPECT_TRUE(faultsArmed());
    EXPECT_NO_THROW(faultPoint("sweep.point.0"));
    EXPECT_NO_THROW(faultPoint("sweep.point.10")); // exact, not prefix
    EXPECT_THROW(faultPoint("sweep.point.1"), FaultInjected);
    // 'always': every subsequent hit fires too.
    EXPECT_THROW(faultPoint("sweep.point.1"), FaultInjected);
}

TEST_F(FaultTest, FirstNFiresExactlyNTimes)
{
    setFaultSpecForTest("p=throw@first2");
    EXPECT_THROW(faultPoint("p"), FaultInjected);
    EXPECT_THROW(faultPoint("p"), FaultInjected);
    EXPECT_NO_THROW(faultPoint("p"));
    EXPECT_NO_THROW(faultPoint("p"));
}

TEST_F(FaultTest, AtNFiresOnTheNthHitOnly)
{
    setFaultSpecForTest("p=throw@at3");
    EXPECT_NO_THROW(faultPoint("p"));
    EXPECT_NO_THROW(faultPoint("p"));
    EXPECT_THROW(faultPoint("p"), FaultInjected);
    EXPECT_NO_THROW(faultPoint("p"));
}

TEST_F(FaultTest, WildcardMatchesByPrefix)
{
    setFaultSpecForTest("eval.golden.*=throw");
    EXPECT_THROW(faultPoint("eval.golden.canneal"), FaultInjected);
    EXPECT_THROW(faultPoint("eval.golden."), FaultInjected);
    EXPECT_NO_THROW(faultPoint("eval.evaluate.canneal"));
}

TEST_F(FaultTest, EvaluatePhaseSiteIsArmable)
{
    // The evaluator's per-workload evaluate site (evaluator.cc) is
    // the injection point the sweep retry path recovers from; keep
    // it armable by spec (lva_audit's fault-orphan-site rule checks
    // that every production site has a consumer like this).
    setFaultSpecForTest("eval.evaluate.*=throw@first1");
    EXPECT_THROW(faultPoint("eval.evaluate.canneal"), FaultInjected);
    EXPECT_NO_THROW(faultPoint("eval.evaluate.canneal"));
}

TEST_F(FaultTest, AllocFailRaisesBadAlloc)
{
    setFaultSpecForTest("p=allocfail");
    EXPECT_THROW(faultPoint("p"), std::bad_alloc);
}

TEST_F(FaultTest, DelayActionSleepsAtLeastTheRequestedTime)
{
    setFaultSpecForTest("p=delay:30");
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(faultPoint("p"));
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                   t0);
    EXPECT_GE(elapsed.count(), 30);
}

TEST_F(FaultTest, HitCountsArePerEntryNotPerSite)
{
    // Two entries match the same site; each keeps its own count.
    setFaultSpecForTest("p=throw@at2,p*=throw@at3");
    EXPECT_NO_THROW(faultPoint("p"));
    EXPECT_THROW(faultPoint("p"), FaultInjected); // exact entry at2
    EXPECT_THROW(faultPoint("p"), FaultInjected); // wildcard at3
    EXPECT_NO_THROW(faultPoint("p"));
}

TEST_F(FaultTest, BadSpecFromTestHookLeavesPreviousPlanArmed)
{
    setFaultSpecForTest("p=throw");
    EXPECT_THROW(setFaultSpecForTest("p=bogus"),
                 std::invalid_argument);
    EXPECT_THROW(faultPoint("p"), FaultInjected);
}

TEST_F(FaultTest, ExitCodeIsStable)
{
    // Pinned: sweep_resume_test and the CI fault job key on it.
    EXPECT_EQ(faultExitCode(), 53);
}

} // namespace
} // namespace lva
