/**
 * @file
 * Unit tests for the console/CSV table writer and formatters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/table.hh"

namespace lva {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Table, RowAndColumnCounts)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvRoundTrip)
{
    const std::string path = "test_output_table.csv";
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    t.writeCsv(path);
    EXPECT_EQ(slurp(path), "name,value\nalpha,1\nbeta,2\n");
    std::filesystem::remove(path);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    const std::string path = "test_output_escape.csv";
    Table t({"x"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    t.writeCsv(path);
    EXPECT_EQ(slurp(path), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    std::filesystem::remove(path);
}

TEST(Table, CsvCreatesParentDirectories)
{
    const std::string path = "test_output_dir/nested/t.csv";
    Table t({"x"});
    t.addRow({"1"});
    t.writeCsv(path);
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove_all("test_output_dir");
}

TEST(Formatters, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.14159, 0), "3");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Formatters, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.126, 1), "12.6%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(-0.05, 1), "-5.0%");
}

} // namespace
} // namespace lva
