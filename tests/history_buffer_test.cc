/**
 * @file
 * Unit tests for the FIFO history buffer backing the GHB and LHBs.
 */

#include <gtest/gtest.h>

#include "core/history_buffer.hh"

namespace lva {
namespace {

TEST(HistoryBuffer, StartsEmpty)
{
    HistoryBuffer buf(4);
    EXPECT_EQ(buf.capacity(), 4u);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_TRUE(buf.snapshot().empty());
}

TEST(HistoryBuffer, FillsInOrder)
{
    HistoryBuffer buf(3);
    buf.push(Value::fromInt(1));
    buf.push(Value::fromInt(2));
    EXPECT_EQ(buf.size(), 2u);
    const auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].asInt(), 1);
    EXPECT_EQ(snap[1].asInt(), 2);
}

TEST(HistoryBuffer, EvictsOldestWhenFull)
{
    HistoryBuffer buf(3);
    for (int i = 1; i <= 5; ++i)
        buf.push(Value::fromInt(i));
    EXPECT_TRUE(buf.full());
    const auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].asInt(), 3);
    EXPECT_EQ(snap[1].asInt(), 4);
    EXPECT_EQ(snap[2].asInt(), 5);
}

TEST(HistoryBuffer, NewestIndexing)
{
    HistoryBuffer buf(4);
    for (int i = 1; i <= 6; ++i)
        buf.push(Value::fromInt(i));
    EXPECT_EQ(buf.newest(0).asInt(), 6);
    EXPECT_EQ(buf.newest(1).asInt(), 5);
    EXPECT_EQ(buf.newest(3).asInt(), 3);
}

TEST(HistoryBuffer, ZeroCapacityIsLegalNoOp)
{
    HistoryBuffer buf(0);
    buf.push(Value::fromInt(1));
    buf.push(Value::fromInt(2));
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_TRUE(buf.empty());
    EXPECT_TRUE(buf.snapshot().empty());
}

TEST(HistoryBuffer, ClearResets)
{
    HistoryBuffer buf(3);
    buf.push(Value::fromInt(1));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    buf.push(Value::fromInt(9));
    EXPECT_EQ(buf.newest().asInt(), 9);
}

TEST(HistoryBuffer, OldestIndexing)
{
    HistoryBuffer buf(4);
    for (int i = 1; i <= 6; ++i) // wraps: holds 3,4,5,6
        buf.push(Value::fromInt(i));
    EXPECT_EQ(buf.oldest(0).asInt(), 3);
    EXPECT_EQ(buf.oldest(1).asInt(), 4);
    EXPECT_EQ(buf.oldest(3).asInt(), 6);
}

TEST(HistoryBuffer, OldestMirrorsNewestAtEveryFill)
{
    // The in-place indexed reads are what the hot paths use instead
    // of snapshot(); check them against each other and the snapshot
    // at every fill level, including partial and post-wrap.
    HistoryBuffer buf(5);
    for (int i = 0; i < 13; ++i) {
        buf.push(Value::fromInt(i));
        const auto snap = buf.snapshot();
        ASSERT_EQ(snap.size(), buf.size());
        for (u32 j = 0; j < buf.size(); ++j) {
            EXPECT_EQ(buf.oldest(j).asInt(), snap[j].asInt());
            EXPECT_EQ(buf.oldest(j).asInt(),
                      buf.newest(buf.size() - 1 - j).asInt());
        }
    }
}

TEST(HistoryBuffer, SnapshotMatchesNewestOrdering)
{
    HistoryBuffer buf(5);
    for (int i = 0; i < 17; ++i)
        buf.push(Value::fromInt(i));
    const auto snap = buf.snapshot();
    for (u32 i = 0; i < buf.size(); ++i)
        EXPECT_EQ(snap[buf.size() - 1 - i].asInt(),
                  buf.newest(i).asInt());
}

} // namespace
} // namespace lva
