/**
 * @file
 * Unit tests for proportional confidence updates (the paper's
 * future-work optimization, section III-B).
 */

#include <gtest/gtest.h>

#include "core/approximator.hh"

namespace lva {
namespace {

ApproximatorConfig
propConfig()
{
    ApproximatorConfig cfg;
    cfg.ghbEntries = 0;
    cfg.valueDelay = 0;
    cfg.proportionalConfidence = true;
    return cfg;
}

/** Count approximated misses on a mostly-stable stream with
 *  periodic wild outliers. */
u64
coverageOnOutlierStream(LoadValueApproximator &lva)
{
    lva.onMiss(0x400, Value::fromFloat(10.0f));
    u64 approximated = 0;
    for (int i = 0; i < 200; ++i) {
        const float v = (i % 8 == 7) ? 1e6f : 10.0f;
        if (lva.onMiss(0x400, Value::fromFloat(v)).approximated)
            ++approximated;
    }
    return approximated;
}

TEST(ProportionalConfidence, OutliersCostMoreCoverageThanFixed)
{
    // After a wild outlier, the fixed scheme is back above the gate
    // in one good training; the proportional scheme needs ~4, so on
    // an outlier-peppered stream it approximates measurably less
    // (while producing less error — the ablation bench shows that
    // side).
    ApproximatorConfig fixed_cfg = propConfig();
    fixed_cfg.proportionalConfidence = false;
    LoadValueApproximator fixed(fixed_cfg);
    LoadValueApproximator prop(propConfig());

    const u64 fixed_cov = coverageOnOutlierStream(fixed);
    const u64 prop_cov = coverageOnOutlierStream(prop);
    EXPECT_LT(prop_cov, fixed_cov);
    EXPECT_GT(prop_cov, 0u);
}

TEST(ProportionalConfidence, AccurateStreamsUnaffected)
{
    LoadValueApproximator prop(propConfig());
    prop.onMiss(0x400, Value::fromFloat(10.0f));
    u64 approximated = 0;
    for (int i = 0; i < 40; ++i) {
        if (prop.onMiss(0x400, Value::fromFloat(10.0f)).approximated)
            ++approximated;
    }
    EXPECT_EQ(approximated, 40u);
    EXPECT_EQ(prop.stats().confRejects.value(), 0u);
}

TEST(ProportionalConfidence, PenaltyIsCapped)
{
    // A single astronomically-wrong estimate must not pin confidence
    // to the minimum forever: penalty caps at 4 per training.
    LoadValueApproximator prop(propConfig());
    prop.onMiss(0x400, Value::fromFloat(1.0f));
    prop.onMiss(0x400, Value::fromFloat(1e30f)); // estimate way off
    // Recover with a long accurate stream; with a capped penalty and
    // conf floor -8, ~12 good trainings suffice.
    bool recovered = false;
    for (int i = 0; i < 20; ++i) {
        if (prop.onMiss(0x400, Value::fromFloat(5.0f)).approximated)
            recovered = true;
    }
    EXPECT_TRUE(recovered);
}

/** Good trainings needed to reopen the gate after one bad estimate
 *  of the given actual value (the estimate is ~10). */
int
recoverySteps(float bad_actual)
{
    LoadValueApproximator prop(propConfig());
    prop.onMiss(0x400, Value::fromFloat(10.0f)); // allocate + train
    prop.onMiss(0x400, Value::fromFloat(bad_actual)); // bad estimate
    for (int i = 1; i <= 16; ++i) {
        if (prop.onMiss(0x400, Value::fromFloat(10.0f)).approximated)
            return i;
    }
    return 17;
}

TEST(ProportionalConfidence, PenaltyScalesWithDistance)
{
    // ~15% off (1.5 window-widths) costs -2; wildly off costs the
    // capped -4, so recovery takes correspondingly longer.
    const int borderline = recoverySteps(11.6f); // ~14% off estimate
    const int wild = recoverySteps(1e6f);
    EXPECT_LT(borderline, wild);
    EXPECT_LE(borderline, 3);
    EXPECT_GE(wild, 4);
}

} // namespace
} // namespace lva
