/**
 * @file
 * Standalone ThreadSanitizer determinism check (no gtest, so the
 * whole binary is tsan-instrumented when built with -DLVA_TSAN=ON).
 *
 * Hammers the thread pool and the Evaluator's shared golden-run
 * cache from many workers, twice over (the second pass hits the warm
 * cache concurrently), and verifies the parallel results are
 * bit-identical to a serial run. Data races in the pool or the
 * golden cache fail `scripts/run_all.sh quick` via this binary.
 */

#include <atomic>
#include <cstdio>
#include <vector>

#include "eval/sweep.hh"
#include "util/thread_pool.hh"

using namespace lva;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    }
}

std::vector<SweepPoint>
grid()
{
    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        points.push_back({"precise", name, Evaluator::preciseConfig()});
        points.push_back({"lva", name, Evaluator::baselineLva()});
        ApproxMemory::Config deg8 = Evaluator::baselineLva();
        deg8.approx.approxDegree = 8;
        points.push_back({"deg8", name, deg8});
    }
    return points;
}

bool
identical(const EvalResult &a, const EvalResult &b)
{
    return a.preciseMpki == b.preciseMpki && a.mpki == b.mpki &&
           a.normMpki == b.normMpki &&
           a.preciseFetches == b.preciseFetches &&
           a.fetches == b.fetches && a.normFetches == b.normFetches &&
           a.outputError == b.outputError &&
           a.coverage == b.coverage &&
           a.instrVariation == b.instrVariation &&
           a.instructions == b.instructions;
}

} // namespace

int
main()
{
    // 1. Raw pool stress: many tiny tasks racing on an atomic.
    {
        ThreadPool pool(4);
        std::atomic<u64> sum{0};
        std::vector<std::future<u64>> futures;
        for (u64 i = 0; i < 512; ++i)
            futures.push_back(pool.submit([i, &sum] {
                sum += i;
                return i;
            }));
        u64 got = 0;
        for (auto &f : futures)
            got += f.get();
        check(got == 512 * 511 / 2, "pool task results");
        check(sum.load() == 512 * 511 / 2, "pool side effects");
    }

    // 2. Sweep determinism with a shared, initially cold golden
    //    cache; pass 2 re-runs every point against the warm cache.
    const std::vector<SweepPoint> points = grid();

    Evaluator serial_eval(2, 0.05);
    SweepRunner serial(serial_eval, 1);
    const std::vector<EvalResult> expect = serial.run(points);

    Evaluator par_eval(2, 0.05);
    SweepRunner par(par_eval, 8);
    for (int pass = 0; pass < 2; ++pass) {
        const std::vector<EvalResult> got = par.run(points);
        check(got.size() == expect.size(), "result count");
        for (std::size_t i = 0; i < expect.size(); ++i)
            check(identical(expect[i], got[i]),
                  "parallel result identical to serial");
    }

    if (failures) {
        std::fprintf(stderr, "tsan_sweep_check: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("tsan_sweep_check: OK\n");
    return 0;
}
