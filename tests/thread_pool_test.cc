/**
 * @file
 * Tests for the fixed-size worker pool behind the sweep engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace lva {
namespace {

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i, &order] {
            order.push_back(i); // serialized by the single worker
            return i;
        }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i);
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, FuturesCarryResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
    EXPECT_EQ(pool.submitted(), 100u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The worker that ran the throwing task keeps serving.
    EXPECT_EQ(good.get(), 7);
    EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, RunsTasksConcurrently)
{
    // Two tasks that each wait for the other to have started can
    // only finish if two workers run them simultaneously.
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    int started = 0;
    auto rendezvous = [&] {
        std::unique_lock<std::mutex> lock(m);
        ++started;
        cv.notify_all();
        cv.wait(lock, [&] { return started == 2; });
        return true;
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    EXPECT_TRUE(a.get());
    EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done] { ++done; });
        // No future waits: the destructor must finish the queue.
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
    pool.shutdown(); // idempotent
}

TEST(ThreadPool, SizeMatchesRequestedWorkers)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultJobsHonorsEnvironment)
{
    ::setenv("LVA_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    ::setenv("LVA_JOBS", "garbage", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u); // falls back to hw
    ::unsetenv("LVA_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, DefaultJobsParsesStrictly)
{
    // Regression: strtol's permissive prefix parse used to accept
    // "200abc" as 200 and "0x64" as 0 — trailing characters must
    // reject the whole value and fall back to hardware concurrency.
    // (The distinctive magnitudes cannot collide with a real core
    // count, so inequality proves the value was rejected.)
    ::setenv("LVA_JOBS", "200abc", 1);
    EXPECT_NE(ThreadPool::defaultJobs(), 200u);
    ::setenv("LVA_JOBS", "0x64", 1);
    EXPECT_NE(ThreadPool::defaultJobs(), 100u);
    ::setenv("LVA_JOBS", "7.5", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);

    // Out-of-range and non-positive values are rejected too.
    ::setenv("LVA_JOBS", "0", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ::setenv("LVA_JOBS", "-4", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ::setenv("LVA_JOBS", "300", 1);
    EXPECT_NE(ThreadPool::defaultJobs(), 300u);

    // Plain decimal (leading zeros included) still parses.
    ::setenv("LVA_JOBS", "042", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 42u);
    ::setenv("LVA_JOBS", "256", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 256u);
    ::unsetenv("LVA_JOBS");
}

} // namespace
} // namespace lva
