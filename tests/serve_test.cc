/**
 * @file
 * In-process tests for the evaluation service (eval/service):
 * request decoding, dispatch, per-request isolation/retry with the
 * serve.request.<n> fault sites, the serve.* stats subtree, and the
 * ServeLoop's bounded queue, busy backpressure, disconnect tolerance
 * and drain behavior over real loopback sockets. The acceptance
 * criterion rides here too: a sweep answered by the service is
 * byte-identical to the direct driver export for jobs 1 and 4, with
 * concurrent clients.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "eval/service.hh"
#include "sim/machine_config.hh"
#include "util/fault.hh"
#include "util/net.hh"

namespace lva {
namespace {

/** Tiny-but-real evaluator settings so tests stay fast. */
constexpr u32 kSeeds = 1;
constexpr double kScale = 0.02;

ServeOptions
testOptions()
{
    ServeOptions opts;
    opts.workers = 2;
    opts.queueCap = 4;
    opts.deadlineMs = 5000;
    opts.maxAttempts = 1;
    opts.jobs = 1;
    return opts;
}

JsonValue
parseResponse(const std::string &payload)
{
    JsonValue resp = parseJson(payload);
    EXPECT_TRUE(resp.isObject());
    EXPECT_EQ(resp.at("schema").asString(), rpcSchema());
    return resp;
}

bool
responseOk(const JsonValue &resp)
{
    const JsonValue &ok = resp.at("ok");
    return ok.type == JsonValue::Type::Bool && ok.boolean;
}

TEST(ServeConfig, DecodesEveryKnownKey)
{
    const JsonValue cfg = parseJson(
        "{\"mode\":\"lvp\",\"threads\":2,\"ghb\":2,\"lhb\":8,"
        "\"table\":1024,\"tableAssoc\":4,\"confidenceBits\":5,"
        "\"window\":0.2,\"confInts\":true,\"noConf\":false,"
        "\"proportional\":true,\"degree\":3,\"delay\":8,"
        "\"tagBits\":16,\"mantissaDrop\":6,\"estimator\":\"stride\","
        "\"prefetchDegree\":2}");
    const ApproxMemory::Config c = configFromJson(cfg);
    EXPECT_EQ(c.mode, MemMode::Lvp);
    EXPECT_EQ(c.threads, 2u);
    EXPECT_EQ(c.approx.ghbEntries, 2u);
    EXPECT_EQ(c.approx.lhbEntries, 8u);
    EXPECT_EQ(c.approx.tableEntries, 1024u);
    EXPECT_EQ(c.approx.tableAssoc, 4u);
    EXPECT_EQ(c.approx.confidenceBits, 5u);
    EXPECT_DOUBLE_EQ(c.approx.confidenceWindow, 0.2);
    EXPECT_TRUE(c.approx.confidenceForInts);
    EXPECT_FALSE(c.approx.confidenceDisabled);
    EXPECT_TRUE(c.approx.proportionalConfidence);
    EXPECT_EQ(c.approx.approxDegree, 3u);
    EXPECT_EQ(c.approx.valueDelay, 8u);
    EXPECT_EQ(c.approx.tagBits, 16u);
    EXPECT_EQ(c.approx.mantissaDropBits, 6u);
    EXPECT_EQ(c.approx.estimator, Estimator::Stride);
    EXPECT_EQ(c.prefetch.degree, 2u);
}

TEST(ServeConfig, InfiniteWindowAndPreciseBase)
{
    const ApproxMemory::Config inf_win =
        configFromJson(parseJson("{\"window\":\"inf\"}"));
    EXPECT_TRUE(std::isinf(inf_win.approx.confidenceWindow));

    const ApproxMemory::Config precise =
        configFromJson(parseJson("{\"base\":\"precise\"}"));
    EXPECT_EQ(precise.mode, MemMode::Precise);

    // "base" wins regardless of member order.
    const ApproxMemory::Config late_base = configFromJson(
        parseJson("{\"ghb\":2,\"base\":\"baseline\"}"));
    EXPECT_EQ(late_base.approx.ghbEntries, 2u);
}

TEST(ServeConfig, RejectsUnknownAndMistypedKeys)
{
    EXPECT_THROW(configFromJson(parseJson("{\"ghbb\":2}")),
                 std::runtime_error);
    EXPECT_THROW(configFromJson(parseJson("{\"mode\":\"turbo\"}")),
                 std::runtime_error);
    EXPECT_THROW(configFromJson(parseJson("{\"confInts\":1}")),
                 std::runtime_error);
    EXPECT_THROW(configFromJson(parseJson("{\"window\":\"huge\"}")),
                 std::runtime_error);
    EXPECT_THROW(configFromJson(parseJson("[1,2]")),
                 std::runtime_error);
}

TEST(ServeConfig, SweepPointsDecodeAndValidate)
{
    const std::vector<SweepPoint> points = sweepPointsFromJson(
        parseJson("[{\"label\":\"a\",\"workload\":\"canneal\"},"
                  "{\"label\":\"b\",\"workload\":\"ferret\","
                  "\"config\":{\"ghb\":4}}]"));
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label, "a");
    EXPECT_EQ(points[0].config.approx.ghbEntries, 0u);
    EXPECT_EQ(points[1].workload, "ferret");
    EXPECT_EQ(points[1].config.approx.ghbEntries, 4u);

    EXPECT_THROW(sweepPointsFromJson(parseJson("{}")),
                 std::runtime_error);
    EXPECT_THROW(
        sweepPointsFromJson(parseJson("[{\"workload\":\"x\"}]")),
        std::runtime_error);
    EXPECT_THROW(sweepPointsFromJson(parseJson(
                     "[{\"label\":\"a\",\"workload\":\"x\","
                     "\"cfg\":{}}]")),
                 std::runtime_error);
}

TEST(ServeService, PingReportsConfiguration)
{
    EvalService service(kSeeds, kScale, testOptions());
    const JsonValue resp = parseResponse(service.handle(
        "{\"schema\":\"lva-rpc-v1\",\"op\":\"ping\"}"));
    EXPECT_TRUE(responseOk(resp));
    EXPECT_EQ(resp.at("op").asString(), "ping");
    EXPECT_EQ(resp.at("jobs").asU64(), 1u);
    EXPECT_EQ(resp.at("seeds").asU64(), kSeeds);
}

TEST(ServeService, MalformedRequestsAreErrorsNotThrows)
{
    EvalService service(kSeeds, kScale, testOptions());
    const char *bad[] = {
        "this is not json",
        "[1,2,3]",
        "{\"noop\":true}",
        "{\"op\":\"warp\"}",
        "{\"schema\":\"lva-rpc-v2\",\"op\":\"ping\"}",
        "{\"op\":\"sweep\",\"driver\":\"d\",\"points\":[]}",
        "{\"op\":\"eval\"}",
    };
    for (const char *req : bad) {
        const JsonValue resp = parseResponse(service.handle(req));
        EXPECT_FALSE(responseOk(resp)) << req;
        EXPECT_NE(resp.at("error").asString(), "") << req;
    }
    EXPECT_EQ(service.stats().snapshot().valueOf("serve.errors"),
              static_cast<double>(std::size(bad)));
    EXPECT_EQ(service.stats().snapshot().valueOf("serve.requests"),
              static_cast<double>(std::size(bad)));
}

TEST(ServeService, ShutdownLatchesTheFlag)
{
    EvalService service(kSeeds, kScale, testOptions());
    EXPECT_FALSE(service.shutdownRequested());
    const JsonValue resp =
        parseResponse(service.handle("{\"op\":\"shutdown\"}"));
    EXPECT_TRUE(responseOk(resp));
    EXPECT_TRUE(service.shutdownRequested());
}

TEST(ServeService, StatsOpExportsTheServeSubtree)
{
    EvalService service(kSeeds, kScale, testOptions());
    (void)service.handle("{\"op\":\"ping\"}");
    const JsonValue resp =
        parseResponse(service.handle("{\"op\":\"stats\"}"));
    ASSERT_TRUE(responseOk(resp));
    const JsonValue &serve = resp.at("serve");
    ASSERT_TRUE(serve.isObject());
    EXPECT_EQ(serve.at("serve.requests").at("value").asU64(), 2u);
    EXPECT_NE(serve.find("serve.queueDepth"), nullptr);
    EXPECT_NE(serve.find("serve.rejects"), nullptr);
}

TEST(ServeService, InjectedRequestFaultIsIsolated)
{
    setFaultSpecForTest("serve.request.0=throw");
    EvalService service(kSeeds, kScale, testOptions());
    const JsonValue failed =
        parseResponse(service.handle("{\"op\":\"ping\"}"));
    EXPECT_FALSE(responseOk(failed));

    // The daemon keeps serving: the next request (index 1) is fine.
    const JsonValue ok =
        parseResponse(service.handle("{\"op\":\"ping\"}"));
    EXPECT_TRUE(responseOk(ok));
    setFaultSpecForTest("");

    const StatSnapshot snap = service.stats().snapshot();
    EXPECT_EQ(snap.valueOf("serve.failures"), 1.0);
    EXPECT_EQ(snap.valueOf("serve.errors"), 1.0);
}

TEST(ServeService, TransientRequestFaultIsRetried)
{
    setFaultSpecForTest("serve.request.0=throw@first1");
    ServeOptions opts = testOptions();
    opts.maxAttempts = 2;
    EvalService service(kSeeds, kScale, opts);
    const JsonValue resp =
        parseResponse(service.handle("{\"op\":\"ping\"}"));
    EXPECT_TRUE(responseOk(resp));
    setFaultSpecForTest("");

    const StatSnapshot snap = service.stats().snapshot();
    EXPECT_EQ(snap.valueOf("serve.retries"), 1.0);
    EXPECT_EQ(snap.valueOf("serve.failures"), 0.0);
}

/** points for a small two-workload, two-config sweep. */
const char *kSweepPoints =
    "[{\"label\":\"ghb-0\",\"workload\":\"swaptions\","
    "\"config\":{\"ghb\":0}},"
    "{\"label\":\"ghb-2\",\"workload\":\"swaptions\","
    "\"config\":{\"ghb\":2}},"
    "{\"label\":\"ghb-0\",\"workload\":\"blackscholes\","
    "\"config\":{\"ghb\":0}},"
    "{\"label\":\"ghb-2\",\"workload\":\"blackscholes\","
    "\"config\":{\"ghb\":2}}]";

/** The same sweep run directly, as a bench driver would. */
std::string
directExport(u32 jobs)
{
    std::vector<SweepPoint> points;
    for (const char *name : {"swaptions", "blackscholes"}) {
        for (u32 ghb : {0u, 2u}) {
            ApproxMemory::Config cfg = Evaluator::baselineLva();
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.ghbEntries = ghb; });
            points.push_back(
                {"ghb-" + std::to_string(ghb), name, cfg});
        }
    }
    Evaluator eval(kSeeds, kScale);
    SweepRunner runner(eval, jobs);
    SweepOptions opts;
    opts.driver = "serve_test";
    const SweepOutcome outcome = runner.runChecked(points, opts);
    EXPECT_TRUE(outcome.ok());
    return renderSweepStats("serve_test", points, outcome);
}

class ServeIdentityTest : public ::testing::TestWithParam<u32>
{
};

TEST_P(ServeIdentityTest, ServedSweepMatchesDirectExportBytes)
{
    const u32 jobs = GetParam();
    ServeOptions opts = testOptions();
    opts.jobs = jobs;
    EvalService service(kSeeds, kScale, opts);
    ServeLoop loop(service, opts);
    std::thread server([&] { loop.run(); });

    const std::string request =
        std::string("{\"schema\":\"lva-rpc-v1\",\"op\":\"sweep\","
                    "\"driver\":\"serve_test\",\"points\":") +
        kSweepPoints + "}";

    // Two concurrent clients submit the same sweep; both must get
    // the exact bytes the direct driver would export.
    std::vector<std::string> exports(2);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < exports.size(); ++c) {
        clients.emplace_back([&, c] {
            TcpStream conn = TcpStream::connectTo(
                "127.0.0.1", loop.port(), 5000);
            writeFrame(conn, request, 5000);
            std::string payload;
            ASSERT_TRUE(readFrame(conn, payload, 120000));
            const JsonValue resp = parseResponse(payload);
            ASSERT_TRUE(responseOk(resp));
            EXPECT_EQ(resp.at("failures").asU64(), 0u);
            exports[c] = resp.at("export").asString();
        });
    }
    for (auto &t : clients)
        t.join();
    loop.requestStop();
    server.join();

    const std::string direct = directExport(jobs);
    EXPECT_EQ(exports[0], direct);
    EXPECT_EQ(exports[1], direct);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ServeIdentityTest,
                         ::testing::Values(1u, 4u));

TEST(ServeMachine, ExplicitDefaultMachineMatchesMachinelessExport)
{
    // PR 10: a request embedding the built-in machine as an explicit
    // "machine" object — exactly what lva_client --machine sends —
    // must export the same bytes as the machine-less request.
    EvalService service(kSeeds, kScale, testOptions());
    const std::string base =
        std::string("\"op\":\"sweep\",\"driver\":\"serve_test\","
                    "\"points\":") +
        kSweepPoints;
    const JsonValue without = parseResponse(
        service.handle("{\"schema\":\"lva-rpc-v1\"," + base + "}"));
    const JsonValue with = parseResponse(
        service.handle("{\"schema\":\"lva-rpc-v1\"," + base +
                       ",\"machine\":" +
                       renderMachineJson(defaultMachine()) + "}"));
    ASSERT_TRUE(responseOk(without));
    ASSERT_TRUE(responseOk(with));
    EXPECT_EQ(with.at("export").asString(),
              without.at("export").asString());
}

TEST(ServeMachine, BadMachineObjectIsAnErrorResponseNotAThrow)
{
    EvalService service(kSeeds, kScale, testOptions());
    const JsonValue resp = parseResponse(service.handle(
        "{\"schema\":\"lva-rpc-v1\",\"op\":\"eval\","
        "\"workload\":\"swaptions\","
        "\"machine\":{\"schema\":\"lva-machine-v1\",\"cores\":0}}"));
    EXPECT_FALSE(responseOk(resp));
    EXPECT_NE(resp.at("error").asString().find("cores"),
              std::string::npos);
}

TEST(ServeLoopTest, BusyBackpressureAtQueueCapacity)
{
    ServeOptions opts = testOptions();
    opts.workers = 1;
    opts.queueCap = 1;
    EvalService service(kSeeds, kScale, opts);
    ServeLoop loop(service, opts);
    std::thread server([&] { loop.run(); });

    // First connection occupies the single handler (which blocks in
    // readFrame waiting for a request), the second fills the queue,
    // so the third must be answered `busy` and closed.
    TcpStream held =
        TcpStream::connectTo("127.0.0.1", loop.port(), 5000);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    TcpStream queued =
        TcpStream::connectTo("127.0.0.1", loop.port(), 5000);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    TcpStream refused =
        TcpStream::connectTo("127.0.0.1", loop.port(), 5000);

    std::string payload;
    ASSERT_TRUE(readFrame(refused, payload, 5000));
    const JsonValue busy = parseResponse(payload);
    EXPECT_FALSE(responseOk(busy));
    EXPECT_TRUE(busy.at("busy").boolean);
    // The shed response tells the client exactly how long to back
    // off; lva_client honors it (tests/serve_daemon_test.cc).
    EXPECT_EQ(busy.at("retryAfterMs").asU64(), busyRetryAfterMs());

    // Releasing the held connection lets the queued one be served.
    held.close();
    writeFrame(queued, "{\"op\":\"ping\"}", 5000);
    ASSERT_TRUE(readFrame(queued, payload, 5000));
    EXPECT_TRUE(responseOk(parseResponse(payload)));

    loop.requestStop();
    server.join();
    EXPECT_GE(service.stats().snapshot().valueOf("serve.rejects"),
              1.0);
}

TEST(ServeLoopTest, MidRequestDisconnectLeavesServerServing)
{
    ServeOptions opts = testOptions();
    EvalService service(kSeeds, kScale, opts);
    ServeLoop loop(service, opts);
    std::thread server([&] { loop.run(); });

    // A client that promises a 64-byte payload, sends half of it,
    // and vanishes: the handler sees a torn frame and must close
    // that connection only.
    {
        TcpStream torn =
            TcpStream::connectTo("127.0.0.1", loop.port(), 5000);
        const unsigned char hdr[8] = {'L', 'V', 'A', '1', 0, 0, 0, 64};
        torn.sendAll(hdr, sizeof(hdr), 1000);
        torn.sendAll("half a payload", 14, 1000);
    } // closed here, mid-frame

    TcpStream conn =
        TcpStream::connectTo("127.0.0.1", loop.port(), 5000);
    writeFrame(conn, "{\"op\":\"ping\"}", 5000);
    std::string payload;
    ASSERT_TRUE(readFrame(conn, payload, 5000));
    EXPECT_TRUE(responseOk(parseResponse(payload)));

    loop.requestStop();
    server.join();
}

TEST(ServeLoopTest, ShutdownRequestDrainsTheLoop)
{
    ServeOptions opts = testOptions();
    EvalService service(kSeeds, kScale, opts);
    ServeLoop loop(service, opts);
    std::thread server([&] { loop.run(); });

    TcpStream conn =
        TcpStream::connectTo("127.0.0.1", loop.port(), 5000);
    writeFrame(conn, "{\"op\":\"shutdown\"}", 5000);
    std::string payload;
    ASSERT_TRUE(readFrame(conn, payload, 5000));
    EXPECT_TRUE(responseOk(parseResponse(payload)));

    server.join(); // run() must return on its own
    EXPECT_TRUE(service.shutdownRequested());
}

TEST(ServeOptionsTest, EnvironmentFillsUnsetFields)
{
    setenv("LVA_SERVE_WORKERS", "7", 1);
    setenv("LVA_SERVE_QUEUE", "3", 1);
    setenv("LVA_SERVE_DEADLINE_MS", "1234", 1);
    setenv("LVA_SERVE_RETRIES", "2", 1);
    setenv("LVA_SERVE_CACHE", "5", 1);
    ServeOptions opts = resolveServeOptions({});
    EXPECT_EQ(opts.workers, 7u);
    EXPECT_EQ(opts.queueCap, 3u);
    EXPECT_EQ(opts.deadlineMs, 1234u);
    EXPECT_EQ(opts.maxAttempts, 3u);
    EXPECT_EQ(opts.cacheCap, 5u);
    unsetenv("LVA_SERVE_CACHE");

    // Explicit nonzero fields beat the environment.
    ServeOptions explicit_opts;
    explicit_opts.workers = 1;
    explicit_opts.maxAttempts = 1;
    explicit_opts.queueCap = 9;
    explicit_opts.deadlineMs = 50;
    opts = resolveServeOptions(explicit_opts);
    EXPECT_EQ(opts.workers, 1u);
    EXPECT_EQ(opts.maxAttempts, 1u);
    EXPECT_EQ(opts.queueCap, 9u);
    EXPECT_EQ(opts.deadlineMs, 50u);

    unsetenv("LVA_SERVE_WORKERS");
    unsetenv("LVA_SERVE_QUEUE");
    unsetenv("LVA_SERVE_DEADLINE_MS");
    unsetenv("LVA_SERVE_RETRIES");
    opts = resolveServeOptions({});
    EXPECT_EQ(opts.workers, 2u);
    EXPECT_EQ(opts.queueCap, 16u);
    EXPECT_EQ(opts.deadlineMs, 10000u);
    EXPECT_EQ(opts.maxAttempts, 1u);
}

TEST(ServeStatsTest, StatsOpExportsTheCacheSubtree)
{
    ServeOptions opts = testOptions();
    opts.cacheCap = 8;
    EvalService service(kSeeds, kScale, opts);
    (void)service.handle("{\"op\":\"eval\",\"workload\":\"swaptions\","
                         "\"config\":{\"ghb\":2}}");
    const JsonValue resp =
        parseResponse(service.handle("{\"op\":\"stats\"}"));
    ASSERT_TRUE(responseOk(resp));
    const JsonValue &serve = resp.at("serve");
    EXPECT_GE(serve.at("serve.cache.builds").at("value").asU64(), 1u);
    EXPECT_GE(serve.at("serve.cache.misses").at("value").asU64(), 1u);
    EXPECT_EQ(serve.at("serve.cache.capacity").at("value").asU64(),
              8u);
    EXPECT_NE(serve.find("serve.cache.hits"), nullptr);
    EXPECT_NE(serve.find("serve.cache.coalesced"), nullptr);
    EXPECT_NE(serve.find("serve.cache.evictions"), nullptr);
    EXPECT_NE(serve.find("serve.cache.size"), nullptr);
}

TEST(FleetRouting, RouteKeysFollowTheWorkloadSet)
{
    EXPECT_EQ(fleetRouteKey("{\"op\":\"eval\","
                            "\"workload\":\"canneal\"}"),
              "canneal");
    // Sweep keys are the sorted, deduplicated workload set: point
    // order and config differences never change the shard.
    const std::string key = fleetRouteKey(
        "{\"op\":\"sweep\",\"driver\":\"d\",\"points\":"
        "[{\"label\":\"a\",\"workload\":\"ferret\"},"
        "{\"label\":\"b\",\"workload\":\"canneal\"},"
        "{\"label\":\"c\",\"workload\":\"ferret\"}]}");
    EXPECT_EQ(key, "canneal,ferret");
    EXPECT_EQ(fleetRouteKey("{\"op\":\"ping\"}"), "op:ping");
    EXPECT_EQ(fleetRouteKey("not json at all"), "op:invalid");
}

TEST(FleetRouting, RendezvousHashIsStableAndConsistent)
{
    // Deterministic: the same key always lands on the same shard, and
    // the shard is always in range.
    for (int i = 0; i < 100; ++i) {
        const std::string key = "workload-" + std::to_string(i);
        const u32 s = fleetShard(key, 3);
        EXPECT_LT(s, 3u);
        EXPECT_EQ(s, fleetShard(key, 3));
    }

    // The consistent-hash property: removing the highest shard only
    // remaps keys that lived there; everything else stays put. That
    // is what keeps sibling worker caches hot when the fleet shrinks
    // or a worker is respawned.
    int moved = 0;
    for (int i = 0; i < 100; ++i) {
        const std::string key = "workload-" + std::to_string(i);
        const u32 with3 = fleetShard(key, 3);
        const u32 with2 = fleetShard(key, 2);
        if (with3 < 2)
            EXPECT_EQ(with2, with3) << key;
        else
            ++moved;
    }
    EXPECT_GT(moved, 0); // shard 2 did own some keys
}

} // namespace
} // namespace lva
