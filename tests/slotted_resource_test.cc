/**
 * @file
 * Unit tests for the slotted (calendar) bandwidth model used for NoC
 * links, L2 bank ports and memory controllers.
 */

#include <gtest/gtest.h>

#include "util/slotted_resource.hh"

namespace lva {
namespace {

TEST(SlottedResource, UncontendedStartsImmediately)
{
    SlottedResource r(8.0, 8.0);
    EXPECT_DOUBLE_EQ(r.acquire(100.0, 2.0), 100.0);
    EXPECT_DOUBLE_EQ(r.waitSum(), 0.0);
}

TEST(SlottedResource, SerializesWithinBucket)
{
    SlottedResource r(8.0, 8.0);
    const double a = r.acquire(0.0, 4.0);
    const double b = r.acquire(0.0, 4.0);
    EXPECT_DOUBLE_EQ(a, 0.0);
    EXPECT_DOUBLE_EQ(b, 4.0); // queues behind the first booking
}

TEST(SlottedResource, SpillsToNextBucketWhenFull)
{
    SlottedResource r(8.0, 8.0);
    r.acquire(0.0, 8.0); // fills bucket [0, 8)
    const double start = r.acquire(0.0, 4.0);
    EXPECT_GE(start, 8.0); // next bucket
}

TEST(SlottedResource, OutOfOrderArrivalUsesEarlierSlot)
{
    SlottedResource r(8.0, 8.0);
    // A "future" booking must not delay an earlier-timestamped one.
    r.acquire(1000.0, 8.0);
    const double start = r.acquire(0.0, 4.0);
    EXPECT_LT(start, 8.0);
}

TEST(SlottedResource, OversizeRequestGetsFreshBucket)
{
    SlottedResource r(8.0, 8.0);
    // A request larger than a bucket's capacity must still be served.
    const double start = r.acquire(0.0, 20.0);
    EXPECT_DOUBLE_EQ(start, 0.0);
}

TEST(SlottedResource, ThroughputBoundedByCapacity)
{
    // Offer 2x the capacity and verify the last start time reflects
    // the backlog (capacity 8 service-cycles per 8-cycle bucket).
    SlottedResource r(8.0, 8.0);
    double last = 0.0;
    const int n = 100;
    for (int i = 0; i < n; ++i)
        last = r.acquire(0.0, 4.0); // 400 cycles of demand at t=0
    EXPECT_GE(last, 0.9 * (n * 4.0 - 8.0));
    EXPECT_EQ(r.requests(), static_cast<u64>(n));
    EXPECT_GT(r.waitSum(), 0.0);
}

TEST(SlottedResource, IndependentBucketsDoNotInterfere)
{
    SlottedResource r(8.0, 8.0);
    r.acquire(0.0, 8.0);
    // A request a few buckets later is unaffected.
    EXPECT_DOUBLE_EQ(r.acquire(32.0, 2.0), 32.0);
}

} // namespace
} // namespace lva
