/**
 * @file
 * Tests for the checkpoint manifest layer (util/checkpoint): the
 * minimal JSON reader, the stable digest helpers, and the manifest's
 * load/append/resume behavior including torn-tail truncation and
 * header-mismatch recovery.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/checkpoint.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Fresh scratch file per test; removed afterwards. */
class ManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: ctest runs cases as separate parallel
        // processes, so a shared scratch directory races TearDown of
        // one case against SetUp of another.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("lva_checkpoint_test_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        path_ = (dir_ / "m.jsonl").string();
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
    std::string path_;
};

// ---------------------------------------------------------------------
// Digest helpers
// ---------------------------------------------------------------------

TEST(Fnv1a64, MatchesKnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, HexRenderingIsFixedWidthLowercase)
{
    EXPECT_EQ(hexU64(0), "0000000000000000");
    EXPECT_EQ(hexU64(0xcbf29ce484222325ull), "cbf29ce484222325");
    EXPECT_EQ(hexU64(0xffffffffffffffffull), "ffffffffffffffff");
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(ParseJson, ScalarsAndContainers)
{
    const JsonValue v = parseJson(
        R"({"s":"hi","n":-2.5,"u":18446744073709551615,)"
        R"("t":true,"f":false,"z":null,"a":[1,2,3],"o":{"k":"v"}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("s").asString(), "hi");
    EXPECT_EQ(v.at("n").asDouble(), -2.5);
    // u64 counters round-trip exactly (no detour through double).
    EXPECT_EQ(v.at("u").asU64(), 18446744073709551615ull);
    EXPECT_TRUE(v.at("t").boolean);
    EXPECT_FALSE(v.at("f").boolean);
    EXPECT_EQ(v.at("z").type, JsonValue::Type::Null);
    ASSERT_TRUE(v.at("a").isArray());
    ASSERT_EQ(v.at("a").items.size(), 3u);
    EXPECT_EQ(v.at("a").items[2].asU64(), 3u);
    EXPECT_EQ(v.at("o").at("k").asString(), "v");
}

TEST(ParseJson, StringEscapes)
{
    const JsonValue v =
        parseJson(R"("line\nquote\"back\\slash\ttab\u0007")");
    EXPECT_EQ(v.asString(), "line\nquote\"back\\slash\ttab\a");
}

TEST(ParseJson, NumberTextPreserved)
{
    // %.17g doubles survive as source text.
    const JsonValue v = parseJson("0.10000000000000001");
    EXPECT_EQ(v.text, "0.10000000000000001");
    EXPECT_EQ(v.asDouble(), 0.1);
}

TEST(ParseJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parseJson("1 2"), std::runtime_error); // trailing
    EXPECT_THROW(parseJson("nope"), std::runtime_error);
}

TEST(ParseJson, AsU64RejectsNonUnsignedNumbers)
{
    // asU64 guards every count the manifest and RPC layers trust
    // (shard indices, result counts): a negative, fractional or
    // overflowing number must throw, never silently truncate the way
    // strtoull-with-no-checks would.
    EXPECT_THROW(parseJson("\"7\"").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("-3").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("1.5").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("1e3").asU64(), std::runtime_error);
    EXPECT_THROW(parseJson("[-1]").items[0].asU64(),
                 std::runtime_error);
    // One past u64 max: in range for strtoull's saturating parse but
    // flagged by ERANGE.
    EXPECT_THROW(parseJson("18446744073709551616").asU64(),
                 std::runtime_error);
    // The boundary itself still round-trips.
    EXPECT_EQ(parseJson("18446744073709551615").asU64(),
              18446744073709551615ull);
    EXPECT_EQ(parseJson("0").asU64(), 0u);
}

TEST(ParseJson, FindAndAt)
{
    const JsonValue v = parseJson(R"({"a":1})");
    EXPECT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("b"), nullptr);
    EXPECT_THROW(v.at("b"), std::runtime_error);
}

// ---------------------------------------------------------------------
// CheckpointManifest
// ---------------------------------------------------------------------

TEST_F(ManifestTest, AppendThenResumeRestoresPayloadBytes)
{
    const std::string payload1 = R"({"x":1,"y":"a"})";
    const std::string payload2 = R"({"x":2})";
    {
        CheckpointManifest m(path_, "drv", "ctx", false);
        EXPECT_EQ(m.loadedCount(), 0u);
        m.append("digest-one", payload1);
        m.append("digest-two", payload2);
        EXPECT_NE(m.find("digest-one"), nullptr);
    }
    CheckpointManifest m(path_, "drv", "ctx", true);
    EXPECT_EQ(m.loadedCount(), 2u);
    ASSERT_NE(m.find("digest-one"), nullptr);
    // Byte-exact payload restoration is what makes resumed exports
    // byte-identical to uninterrupted runs.
    EXPECT_EQ(*m.find("digest-one"), payload1);
    EXPECT_EQ(*m.find("digest-two"), payload2);
    EXPECT_EQ(m.find("digest-missing"), nullptr);
}

TEST_F(ManifestTest, NonResumeOpenDiscardsExistingRecords)
{
    {
        CheckpointManifest m(path_, "drv", "ctx", false);
        m.append("d", R"({"x":1})");
    }
    CheckpointManifest m(path_, "drv", "ctx", false);
    EXPECT_EQ(m.loadedCount(), 0u);
    EXPECT_EQ(m.find("d"), nullptr);
}

TEST_F(ManifestTest, TornTailIsTruncatedAndOverwritten)
{
    {
        CheckpointManifest m(path_, "drv", "ctx", false);
        m.append("good", R"({"x":1})");
    }
    const std::string durable = slurp(path_);
    // Simulate a kill mid-append: a record with no trailing newline.
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << R"({"digest":"torn","payload":{"x":)";
    }
    CheckpointManifest m(path_, "drv", "ctx", true);
    EXPECT_EQ(m.loadedCount(), 1u);
    EXPECT_NE(m.find("good"), nullptr);
    EXPECT_EQ(m.find("torn"), nullptr);
    // The constructor truncated the torn bytes away.
    EXPECT_EQ(slurp(path_), durable);
    m.append("next", R"({"x":2})");
    CheckpointManifest again(path_, "drv", "ctx", true);
    EXPECT_EQ(again.loadedCount(), 2u);
}

TEST_F(ManifestTest, CorruptMiddleRecordStopsTheLoadThere)
{
    {
        CheckpointManifest m(path_, "drv", "ctx", false);
        m.append("one", R"({"x":1})");
    }
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "not json at all\n";
        out << R"({"digest":"after","payload":{"x":2}})" << "\n";
    }
    // Everything after the first bad line is dropped: the file is an
    // append-only log, so a corrupt line invalidates its suffix.
    CheckpointManifest m(path_, "drv", "ctx", true);
    EXPECT_EQ(m.loadedCount(), 1u);
    EXPECT_NE(m.find("one"), nullptr);
    EXPECT_EQ(m.find("after"), nullptr);
}

TEST_F(ManifestTest, HeaderMismatchStartsFresh)
{
    {
        CheckpointManifest m(path_, "drv", "ctx-old", false);
        m.append("d", R"({"x":1})");
    }
    // Same driver, different context (e.g. LVA_SEEDS changed): stale
    // results must not be resumed.
    CheckpointManifest m(path_, "drv", "ctx-new", true);
    EXPECT_EQ(m.loadedCount(), 0u);
    EXPECT_EQ(m.find("d"), nullptr);

    // And the fresh manifest is fully usable afterwards.
    m.append("d2", R"({"x":2})");
    CheckpointManifest again(path_, "drv", "ctx-new", true);
    EXPECT_EQ(again.loadedCount(), 1u);
    EXPECT_NE(again.find("d2"), nullptr);
}

TEST_F(ManifestTest, MissingFileResumesEmpty)
{
    CheckpointManifest m(path_, "drv", "ctx", true);
    EXPECT_EQ(m.loadedCount(), 0u);
}

TEST_F(ManifestTest, HeaderLineBindsSchemaDriverContext)
{
    { CheckpointManifest m(path_, "mydriver", "mycontext", false); }
    std::ifstream in(path_);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    const JsonValue v = parseJson(header);
    EXPECT_EQ(v.at("schema").asString(), manifestSchema());
    EXPECT_EQ(v.at("driver").asString(), "mydriver");
    EXPECT_EQ(v.at("context").asString(), "mycontext");
}

TEST_F(ManifestTest, CreatesParentDirectories)
{
    const std::string nested =
        (dir_ / "a" / "b" / "m.jsonl").string();
    CheckpointManifest m(nested, "drv", "ctx", false);
    m.append("d", R"({"x":1})");
    EXPECT_TRUE(fs::exists(nested));
}

// ---------------------------------------------------------------------
// writeAllFd — the EINTR/short-write retry loop under every manifest
// header and record append. WriteFn is a plain function pointer, so
// the injected fakes script their behavior through file-static state.
// ---------------------------------------------------------------------

/** What the fake write functions append and consume. */
std::string g_written;        // NOLINT: test scripting state
std::vector<ssize_t> g_script; // per-call results; empty = write all
std::size_t g_calls = 0;

ssize_t
fakeWrite(int /*fd*/, const void *buf, std::size_t n)
{
    ++g_calls;
    ssize_t take = static_cast<ssize_t>(n);
    if (!g_script.empty()) {
        take = g_script.front();
        g_script.erase(g_script.begin());
    }
    if (take < 0) {
        errno = take == -2 ? EINTR : EIO;
        return -1;
    }
    if (static_cast<std::size_t>(take) > n)
        take = static_cast<ssize_t>(n);
    g_written.append(static_cast<const char *>(buf),
                     static_cast<std::size_t>(take));
    return take;
}

class WriteAllFdTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_written.clear();
        g_script.clear();
        g_calls = 0;
    }
};

TEST_F(WriteAllFdTest, WritesEverythingInOneCall)
{
    const std::string data = "hello manifest";
    EXPECT_TRUE(writeAllFd(-1, data.data(), data.size(), fakeWrite));
    EXPECT_EQ(g_written, data);
    EXPECT_EQ(g_calls, 1u);
}

TEST_F(WriteAllFdTest, RetriesShortWritesUntilComplete)
{
    // The kernel may accept any prefix; the loop must resume at the
    // right offset every time (1-byte drips are the worst case).
    const std::string data = "0123456789";
    g_script = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    EXPECT_TRUE(writeAllFd(-1, data.data(), data.size(), fakeWrite));
    EXPECT_EQ(g_written, data);
    EXPECT_EQ(g_calls, 10u);
}

TEST_F(WriteAllFdTest, RetriesEintrWithoutLosingBytes)
{
    // -2 scripts an EINTR failure: a signal (SIGCHLD from a fleet
    // worker, SIGTERM forwarded by a supervisor) interrupting the
    // write must not drop the record or double-write a prefix.
    const std::string data = "abcdef";
    g_script = {-2, 3, -2, -2, 3};
    EXPECT_TRUE(writeAllFd(-1, data.data(), data.size(), fakeWrite));
    EXPECT_EQ(g_written, data);
    EXPECT_EQ(g_calls, 5u);
}

TEST_F(WriteAllFdTest, HardErrorReturnsFalseWithErrno)
{
    const std::string data = "abcdef";
    g_script = {3, -1}; // EIO after a partial write
    errno = 0;
    EXPECT_FALSE(writeAllFd(-1, data.data(), data.size(), fakeWrite));
    EXPECT_EQ(errno, EIO);
    EXPECT_EQ(g_written, "abc");
}

TEST_F(WriteAllFdTest, ZeroReturnIsTreatedAsAHardError)
{
    // A write(2) returning 0 for a nonzero count would loop forever
    // if treated as progress; the helper converts it to EIO.
    const std::string data = "xyz";
    g_script = {0};
    EXPECT_FALSE(writeAllFd(-1, data.data(), data.size(), fakeWrite));
    EXPECT_EQ(errno, EIO);
}

TEST_F(WriteAllFdTest, ZeroLengthWriteSucceedsWithoutCalling)
{
    EXPECT_TRUE(writeAllFd(-1, "", 0, fakeWrite));
    EXPECT_EQ(g_calls, 0u);
}

} // namespace
} // namespace lva
