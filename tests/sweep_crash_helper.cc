/**
 * @file
 * Helper binary for sweep_resume_test: runs a small fixed sweep with
 * the standard robustness CLI so the test can kill it mid-sweep (via
 * LVA_FAULT=...=abort), restart it with --resume, and byte-compare
 * the stats export against an uninterrupted run. Not a gtest binary —
 * the injected abort must take the whole process down, exactly like a
 * real kill.
 */

#include "eval/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    // Fixed, cheap, deterministic grid: one workload, four degrees.
    std::vector<SweepPoint> points;
    for (const u32 degree : {0u, 2u, 4u, 8u}) {
        ApproxMemory::Config cfg = Evaluator::baselineLva();
        cfg.approx.approxDegree = degree;
        points.push_back(
            {"deg" + std::to_string(degree), "canneal", cfg});
    }

    const SweepOptions opts =
        sweepOptionsFromCli("sweep_crash_helper", argc, argv);
    Evaluator eval(1, 0.05);
    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    exportSweepStats("sweep_crash_helper", points, outcome);
    return reportSweepFailures(outcome);
}
