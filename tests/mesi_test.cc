/**
 * @file
 * Tests for the MESI protocol option and the banked L2: silent E->M
 * upgrades, clean-exclusive evictions, and bank-local addressing.
 */

#include <gtest/gtest.h>

#include "sim/full_system.hh"

namespace lva {
namespace {

TraceEvent
loadEv(Addr addr, u32 instr_before = 0)
{
    TraceEvent ev;
    ev.addr = addr;
    ev.instrBefore = instr_before;
    ev.isLoad = true;
    return ev;
}

TraceEvent
storeEv(Addr addr, u32 instr_before = 0)
{
    TraceEvent ev;
    ev.addr = addr;
    ev.instrBefore = instr_before;
    ev.isLoad = false;
    return ev;
}

FullSystemConfig
withProtocol(CoherenceProtocol p)
{
    FullSystemConfig cfg = FullSystemConfig::baseline();
    cfg.protocol = p;
    return cfg;
}

/** Private read-then-write: MESI upgrades silently, MSI must send an
 *  upgrade request plus possible invalidations. */
TEST(Mesi, SilentUpgradeSavesTraffic)
{
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < 50; ++i) {
        // Stride of 0x1040 rotates home banks so requests cross the
        // mesh (bank 0 is local to core 0 and generates no flits).
        const Addr addr = 0x100000 + i * 0x1040;
        traces[0].push_back(loadEv(addr, 10));
        traces[0].push_back(storeEv(addr, 10));
    }

    FullSystemSim msi(withProtocol(CoherenceProtocol::Msi));
    FullSystemSim mesi(withProtocol(CoherenceProtocol::Mesi));
    const FullSystemResult rm = msi.run(traces);
    const FullSystemResult re = mesi.run(traces);

    EXPECT_EQ(rm.l1Misses, re.l1Misses);
    // MESI's silent upgrades remove the GetM control messages.
    EXPECT_LT(re.flitHops, rm.flitHops);
}

TEST(Mesi, SharedDataStillInvalidates)
{
    // Core 0 and 1 both read; core 1 then writes: even under MESI the
    // write must invalidate core 0's copy.
    std::vector<ThreadTrace> traces(4);
    traces[0] = {loadEv(0x300000), loadEv(0x300000, 4000)};
    traces[1] = {loadEv(0x300000, 500), storeEv(0x300000, 1000)};
    FullSystemSim sim(withProtocol(CoherenceProtocol::Mesi));
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.l1Misses, 3u); // core 0's re-read misses
}

TEST(Mesi, ExclusiveReadIsExclusiveOnlyWhenAlone)
{
    // Two cores read the same block; the second read must see S (a
    // subsequent silent write by either would break coherence). We
    // verify behaviourally: core 1's later write still invalidates.
    std::vector<ThreadTrace> traces(4);
    traces[0] = {loadEv(0x400000), loadEv(0x400000, 6000)};
    traces[1] = {loadEv(0x400000, 1000), storeEv(0x400000, 2000)};
    FullSystemSim sim(withProtocol(CoherenceProtocol::Mesi));
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.l1Misses, 3u);
}

TEST(Mesi, CleanForwardSkipsWriteback)
{
    // Core 0 reads (E under MESI); core 1 reads the same block: the
    // owner forwards clean data with no dirty writeback. Compare L2
    // access counts against MSI, where the block is plain Shared.
    std::vector<ThreadTrace> t(4);
    t[0] = {loadEv(0x500000)};
    t[1] = {loadEv(0x500000, 2000)};

    FullSystemSim mesi(withProtocol(CoherenceProtocol::Mesi));
    const FullSystemResult re = mesi.run(t);
    // Both reads must be served; only one DRAM trip.
    EXPECT_EQ(re.dramAccesses, 1u);
    EXPECT_EQ(re.l1Misses, 2u);
}

TEST(BankedL2, CapacityIsActuallyUsable)
{
    // Stream 2048 distinct blocks (128 KB): the four 128 KB banks
    // must hold all of them; a second pass sees only L2 hits (no
    // additional DRAM accesses) even though each bank caches only its
    // address-interleaved slice.
    std::vector<ThreadTrace> traces(4);
    for (u32 pass = 0; pass < 2; ++pass)
        for (u32 i = 0; i < 2048; ++i)
            traces[0].push_back(
                loadEv(0x1000000 + static_cast<Addr>(i) * 64, 2));
    // Thrash the L1 between passes so second-pass hits come from L2.
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.dramAccesses, 2048u); // pass 2: all L2 hits
}

TEST(BankedL2, SliceConflictsAreRealistic)
{
    // 16-way 128 KB banks: 128 sets per bank over the bank-local
    // (compacted) block number. Same bank + same set repeats every
    // 4*128 blocks; stream 24 such lines (> 16 ways), then revisit
    // the first: it must have been evicted and re-miss to DRAM.
    std::vector<ThreadTrace> traces(4);
    const Addr set_stride = 64ull * 4 * 128; // same bank, same set
    for (u32 i = 0; i < 24; ++i)
        traces[0].push_back(
            loadEv(0x2000000 + i * set_stride, 2));
    traces[0].push_back(loadEv(0x2000000, 2)); // revisit first line
    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.dramAccesses, 25u); // the revisit went to DRAM again
}

} // namespace
} // namespace lva
