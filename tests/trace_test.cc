/**
 * @file
 * Unit tests for trace recording.
 */

#include <gtest/gtest.h>

#include "cpu/trace.hh"

namespace lva {
namespace {

TEST(TraceRecorder, RecordsLoadsWithPayload)
{
    TraceRecorder rec(2);
    rec.tickInstructions(0, 5);
    const Value got =
        rec.load(0, 0x400, 0x1234, Value::fromFloat(2.5f), true);
    EXPECT_FLOAT_EQ(got.asFloat(), 2.5f); // recorder never clobbers

    ASSERT_EQ(rec.traces()[0].size(), 1u);
    const TraceEvent &ev = rec.traces()[0][0];
    EXPECT_EQ(ev.addr, 0x1234u);
    EXPECT_EQ(ev.pc, 0x400u);
    EXPECT_EQ(ev.instrBefore, 5u);
    EXPECT_TRUE(ev.isLoad);
    EXPECT_TRUE(ev.approximable);
    EXPECT_FALSE(ev.dependsOnPrev);
    EXPECT_FLOAT_EQ(ev.value.asFloat(), 2.5f);
}

TEST(TraceRecorder, RecordsDependencyFlag)
{
    TraceRecorder rec(1);
    rec.load(0, 0x400, 0x1000, Value::fromInt(1), false, true);
    EXPECT_TRUE(rec.traces()[0][0].dependsOnPrev);
}

TEST(TraceRecorder, RecordsStores)
{
    TraceRecorder rec(1);
    rec.tickInstructions(0, 3);
    rec.store(0, 0x500, 0x2000);
    const TraceEvent &ev = rec.traces()[0][0];
    EXPECT_FALSE(ev.isLoad);
    EXPECT_EQ(ev.instrBefore, 3u);
    EXPECT_EQ(ev.addr, 0x2000u);
}

TEST(TraceRecorder, InstrBeforeResetsPerEvent)
{
    TraceRecorder rec(1);
    rec.tickInstructions(0, 10);
    rec.load(0, 0x400, 0x1000, Value::fromInt(1), false);
    rec.load(0, 0x400, 0x1040, Value::fromInt(1), false);
    EXPECT_EQ(rec.traces()[0][0].instrBefore, 10u);
    EXPECT_EQ(rec.traces()[0][1].instrBefore, 0u);
}

TEST(TraceRecorder, ThreadsAreSeparate)
{
    TraceRecorder rec(3);
    rec.load(0, 0x400, 0x1000, Value::fromInt(1), false);
    rec.load(2, 0x400, 0x2000, Value::fromInt(1), false);
    EXPECT_EQ(rec.traces()[0].size(), 1u);
    EXPECT_EQ(rec.traces()[1].size(), 0u);
    EXPECT_EQ(rec.traces()[2].size(), 1u);
    EXPECT_EQ(rec.totalEvents(), 2u);
}

TEST(TraceRecorder, TotalInstructionsCountsMemOps)
{
    TraceRecorder rec(1);
    rec.tickInstructions(0, 7);
    rec.load(0, 0x400, 0x1000, Value::fromInt(1), false);
    rec.store(0, 0x400, 0x1040);
    EXPECT_EQ(rec.totalInstructions(), 9u); // 7 + load + store
}

} // namespace
} // namespace lva
