/**
 * @file
 * Unit tests for the grayscale image / PGM writer used by Figure 1.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/pgm.hh"

namespace lva {
namespace {

TEST(GrayImage, FillAndAccess)
{
    GrayImage img(4, 3, 7);
    EXPECT_EQ(img.width(), 4u);
    EXPECT_EQ(img.height(), 3u);
    EXPECT_EQ(img.at(0, 0), 7);
    img.set(2, 1, 200);
    EXPECT_EQ(img.at(2, 1), 200);
    EXPECT_EQ(img.pixels().size(), 12u);
}

TEST(GrayImage, FillCircleClipsAtBorders)
{
    GrayImage img(10, 10, 0);
    img.fillCircle(0, 0, 3, 255); // mostly off-image: must not crash
    EXPECT_EQ(img.at(0, 0), 255);
    EXPECT_EQ(img.at(9, 9), 0);
}

TEST(GrayImage, FillCircleCoversRadius)
{
    GrayImage img(20, 20, 0);
    img.fillCircle(10, 10, 3, 99);
    EXPECT_EQ(img.at(10, 10), 99);
    EXPECT_EQ(img.at(13, 10), 99);
    EXPECT_EQ(img.at(10, 7), 99);
    EXPECT_EQ(img.at(14, 10), 0); // outside radius
}

TEST(GrayImage, DrawLineEndpoints)
{
    GrayImage img(16, 16, 0);
    img.drawLine(1, 1, 12, 9, 50);
    EXPECT_EQ(img.at(1, 1), 50);
    EXPECT_EQ(img.at(12, 9), 50);
}

TEST(GrayImage, DrawLineClipsOffImage)
{
    GrayImage img(8, 8, 0);
    img.drawLine(-5, -5, 20, 20, 50); // diagonal through the image
    EXPECT_EQ(img.at(3, 3), 50);
}

TEST(GrayImage, PgmHeaderAndPayload)
{
    const std::string path = "test_output_img.pgm";
    GrayImage img(3, 2, 5);
    img.set(0, 0, 1);
    img.writePgm(path);

    std::ifstream in(path, std::ios::binary);
    std::string magic;
    u32 w = 0;
    u32 h = 0;
    u32 maxval = 0;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(w, 3u);
    EXPECT_EQ(h, 2u);
    EXPECT_EQ(maxval, 255u);
    in.get(); // single whitespace after header
    char buf[6];
    in.read(buf, 6);
    EXPECT_EQ(static_cast<int>(in.gcount()), 6);
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(buf[1], 5);
    std::filesystem::remove(path);
}

TEST(GrayImage, MeanAbsDiff)
{
    GrayImage a(2, 2, 10);
    GrayImage b(2, 2, 10);
    EXPECT_DOUBLE_EQ(GrayImage::meanAbsDiff(a, b), 0.0);
    b.set(0, 0, 14);
    EXPECT_DOUBLE_EQ(GrayImage::meanAbsDiff(a, b), 1.0);
}

} // namespace
} // namespace lva
