/**
 * @file
 * Tests for the seven mini-PARSEC workloads: generic invariants (run
 * to completion, determinism, zero self-error, annotated sites) and
 * per-benchmark output sanity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/approx_memory.hh"
#include "workloads/blackscholes.hh"
#include "workloads/bodytrack.hh"
#include "workloads/canneal.hh"
#include "workloads/ferret.hh"
#include "workloads/fluidanimate.hh"
#include "workloads/workload.hh"
#include "workloads/x264.hh"

namespace lva {
namespace {

WorkloadParams
smallParams(u64 seed = 1)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = 0.05;
    return p;
}

/** Generic invariants swept over every benchmark. */
class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, RunsAndSelfErrorIsZero)
{
    auto a = makeWorkload(GetParam(), smallParams());
    auto b = makeWorkload(GetParam(), smallParams());
    a->generate();
    b->generate();
    NullBackend null;
    a->run(null);
    b->run(null);
    // Two precise runs with the same seed are bit-identical.
    EXPECT_DOUBLE_EQ(a->outputErrorVs(*b), 0.0);
}

TEST_P(EveryWorkload, DeclaresApproximateLoadSites)
{
    auto w = makeWorkload(GetParam(), smallParams());
    EXPECT_GT(w->approxLoadSites(), 0u);
    EXPECT_GT(w->loadSites().size(), w->approxLoadSites());
}

TEST_P(EveryWorkload, IssuesTrafficThroughTheBackend)
{
    auto w = makeWorkload(GetParam(), smallParams());
    w->generate();
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Precise;
    ApproxMemory mem(cfg);
    w->run(mem);
    const MemMetrics m = mem.metrics();
    EXPECT_GT(m.instructions, 1000u);
    EXPECT_GT(m.loads, 100u);
    EXPECT_GT(m.approximableLoads, 10u);
    EXPECT_LT(m.approximableLoads, m.loads + 1);
}

TEST_P(EveryWorkload, PreciseExecutionIsNeverClobbered)
{
    // Running through an LVA memory in LVP mode returns precise
    // values, so the output must equal the golden output exactly.
    auto w = makeWorkload(GetParam(), smallParams());
    auto golden = makeWorkload(GetParam(), smallParams());
    w->generate();
    golden->generate();
    NullBackend null;
    golden->run(null);
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Lvp;
    cfg.approx.valueDelay = 0;
    ApproxMemory mem(cfg);
    w->run(mem);
    EXPECT_DOUBLE_EQ(w->outputErrorVs(*golden), 0.0);
}

TEST_P(EveryWorkload, ApproximateRunStaysBounded)
{
    auto w = makeWorkload(GetParam(), smallParams());
    auto golden = makeWorkload(GetParam(), smallParams());
    w->generate();
    golden->generate();
    NullBackend null;
    golden->run(null);
    ApproxMemory mem(ApproxMemory::Config{});
    w->run(mem);
    const double err = w->outputErrorVs(*golden);
    EXPECT_GE(err, 0.0);
    EXPECT_LT(err, 1.5); // sane even for the pessimistic metrics
}

TEST_P(EveryWorkload, HighDegreeErrorStaysFinite)
{
    // Approximation degree 16 starves training and recycles stale
    // values; outputs must degrade gracefully, never to NaN (e.g.
    // bodytrack's particle weights underflowing to zero).
    auto w = makeWorkload(GetParam(), smallParams());
    auto golden = makeWorkload(GetParam(), smallParams());
    w->generate();
    golden->generate();
    NullBackend null;
    golden->run(null);
    ApproxMemory::Config cfg;
    cfg.approx.approxDegree = 16;
    ApproxMemory mem(cfg);
    w->run(mem);
    const double err = w->outputErrorVs(*golden);
    EXPECT_TRUE(std::isfinite(err)) << err;
    EXPECT_GE(err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, EveryWorkload,
                         ::testing::ValuesIn(allWorkloadNames()));

TEST(Blackscholes, ClosedFormMatchesKnownValue)
{
    // S=100, K=100, r=5%, vol=20%, T=1y: call ~10.45, put ~5.57.
    const float call =
        BlackscholesWorkload::price(100, 100, 0.05f, 0.2f, 1.0f, true);
    const float put =
        BlackscholesWorkload::price(100, 100, 0.05f, 0.2f, 1.0f, false);
    EXPECT_NEAR(call, 10.45f, 0.05f);
    EXPECT_NEAR(put, 5.57f, 0.05f);
    // Put-call parity: C - P = S - K e^{-rT}.
    EXPECT_NEAR(call - put, 100.0f - 100.0f * std::exp(-0.05f), 0.05f);
}

TEST(Blackscholes, PricesAreFinite)
{
    BlackscholesWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    for (float p : w.prices()) {
        EXPECT_TRUE(std::isfinite(p));
        // The Abramowitz-Stegun CNDF polynomial (as in PARSEC) can
        // yield ~1e-6 negatives for deep out-of-the-money options.
        EXPECT_GE(p, -1e-4f);
    }
}

TEST(Canneal, AnnealingAcceptsSwaps)
{
    CannealWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    EXPECT_GT(w.swapsAccepted(), 0u);
    EXPECT_GT(w.finalCost(), 0.0);
}

TEST(Canneal, DifferentSeedsDifferentCost)
{
    CannealWorkload a(smallParams(1));
    CannealWorkload b(smallParams(2));
    a.generate();
    b.generate();
    NullBackend null;
    a.run(null);
    b.run(null);
    EXPECT_NE(a.finalCost(), b.finalCost());
}

TEST(Ferret, TopKHasRequestedSize)
{
    FerretWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    ASSERT_FALSE(w.results().empty());
    for (const auto &r : w.results())
        EXPECT_EQ(r.size(), FerretWorkload::topK);
}

TEST(Bodytrack, TrackFollowsTruth)
{
    BodytrackWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    ASSERT_FALSE(w.track().empty());
    double err_sum = 0.0;
    for (std::size_t f = 0; f < w.track().size(); ++f) {
        const auto [tx, ty] = w.truthAt(static_cast<u32>(f));
        const double dx = w.track()[f].first - tx;
        const double dy = w.track()[f].second - ty;
        err_sum += std::sqrt(dx * dx + dy * dy);
    }
    // The particle filter stays within ~16 px of the body on average.
    EXPECT_LT(err_sum / static_cast<double>(w.track().size()), 16.0);
}

TEST(Bodytrack, RenderTrackProducesImage)
{
    BodytrackWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    const GrayImage img = w.renderTrack();
    EXPECT_EQ(img.width(), 256u);
    // Some pixels must be drawn bright (the skeleton discs).
    u64 bright = 0;
    for (u8 p : img.pixels())
        bright += p == 255 ? 1 : 0;
    EXPECT_GT(bright, 50u);
}

TEST(Fluidanimate, ParticlesStayInDomain)
{
    FluidanimateWorkload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    const auto cells = w.finalCells();
    EXPECT_FALSE(cells.empty());
    for (u32 c : cells)
        EXPECT_LT(c, 48u * 48u);
}

TEST(X264, PsnrAndBitsInPlausibleRange)
{
    X264Workload w(smallParams());
    w.generate();
    NullBackend null;
    w.run(null);
    EXPECT_GT(w.psnr(), 20.0);
    EXPECT_LT(w.psnr(), 70.0);
    EXPECT_GT(w.bits(), 0.0);
}

TEST(WorkloadFactory, AllNamesConstruct)
{
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name, smallParams());
        EXPECT_STREQ(w->name(), name.c_str());
    }
}

TEST(WorkloadFactory, NamesInPaperOrder)
{
    const auto &names = allWorkloadNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "blackscholes");
    EXPECT_EQ(names.back(), "x264");
}

} // namespace
} // namespace lva
