/**
 * @file
 * Unit tests for the statistics utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace lva {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, MatchesHandComputation)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance with Bessel's correction: 32 / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.sample(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.sample(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.99); // bucket 0
    h.sample(2.0);  // bucket 1
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    h.sample(50.0); // overflow
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Histogram, TotalEqualsSumOfBuckets)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i % 13) / 10.0);
    u64 sum = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < h.buckets(); ++b)
        sum += h.bucketCount(b);
    EXPECT_EQ(sum, h.total());
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, SingleValue)
{
    EXPECT_NEAR(geomean({7.0}), 7.0, 1e-12);
}

} // namespace
} // namespace lva
