/**
 * @file
 * Unit tests for the statistics utilities and the stat registry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace lva {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, MatchesHandComputation)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance with Bessel's correction: 32 / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.sample(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.sample(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.99); // bucket 0
    h.sample(2.0);  // bucket 1
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    h.sample(50.0); // overflow
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Histogram, TotalEqualsSumOfBuckets)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i % 13) / 10.0);
    u64 sum = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < h.buckets(); ++b)
        sum += h.bucketCount(b);
    EXPECT_EQ(sum, h.total());
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, SingleValue)
{
    EXPECT_NEAR(geomean({7.0}), 7.0, 1e-12);
}

TEST(Gauge, SetAddReset)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(StatRegistry, RegisterOrGetReturnsSameObject)
{
    StatRegistry reg(0);
    Counter &a = reg.counter("l1.misses", "desc");
    Counter &b = reg.counter("l1.misses");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);

    Histogram &h1 = reg.histogram("lat", 0.0, 10.0, 5);
    Histogram &h2 = reg.histogram("lat", 0.0, 10.0, 5);
    EXPECT_EQ(&h1, &h2);
}

TEST(StatRegistry, TypeCollisionThrows)
{
    StatRegistry reg(0);
    reg.counter("x.count");
    EXPECT_THROW(reg.gauge("x.count"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("x.count", 0.0, 1.0, 4),
                 std::invalid_argument);
}

TEST(StatRegistry, HistogramGeometryCollisionThrows)
{
    StatRegistry reg(0);
    reg.histogram("lat", 0.0, 10.0, 5);
    EXPECT_THROW(reg.histogram("lat", 0.0, 20.0, 5),
                 std::invalid_argument);
    EXPECT_THROW(reg.histogram("lat", 0.0, 10.0, 8),
                 std::invalid_argument);
}

TEST(StatRegistry, MalformedPathThrows)
{
    StatRegistry reg(0);
    EXPECT_THROW(reg.counter(""), std::invalid_argument);
    EXPECT_THROW(reg.counter(".leading"), std::invalid_argument);
    EXPECT_THROW(reg.counter("trailing."), std::invalid_argument);
    EXPECT_THROW(reg.counter("a..b"), std::invalid_argument);
    EXPECT_THROW(reg.counter("bad path"), std::invalid_argument);
}

TEST(StatRegistry, SnapshotIsSortedByPath)
{
    StatRegistry reg(0);
    reg.counter("z.last");
    reg.counter("a.first");
    reg.gauge("m.middle");
    const StatSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].path, "a.first");
    EXPECT_EQ(snap.entries[1].path, "m.middle");
    EXPECT_EQ(snap.entries[2].path, "z.last");
}

TEST(StatSnapshot, MergeSumsCountersAndHistograms)
{
    StatRegistry r1(0), r2(0);
    r1.counter("c").inc(10);
    r2.counter("c").inc(32);
    r1.histogram("h", 0.0, 10.0, 5).sample(1.0);
    r2.histogram("h", 0.0, 10.0, 5).sample(1.5);
    r2.histogram("h", 0.0, 10.0, 5).sample(99.0); // overflow
    r1.gauge("g").set(1.0);
    r2.gauge("g").set(7.0);
    r2.counter("only2").inc(5);

    StatSnapshot merged = r1.snapshot();
    merged.merge(r2.snapshot());

    EXPECT_EQ(merged.find("c")->count, 42u);
    EXPECT_EQ(merged.find("h")->histTotal, 3u);
    EXPECT_EQ(merged.find("h")->histBuckets[0], 2u);
    EXPECT_EQ(merged.find("h")->histOverflow, 1u);
    // Gauges: last-merged value wins.
    EXPECT_DOUBLE_EQ(merged.find("g")->gauge, 7.0);
    // Paths present only on one side carry over, order stays sorted.
    EXPECT_EQ(merged.find("only2")->count, 5u);
    for (std::size_t i = 1; i < merged.entries.size(); ++i)
        EXPECT_LT(merged.entries[i - 1].path, merged.entries[i].path);
}

TEST(StatSnapshot, MergeIsDeterministicOverSeedOrder)
{
    // Simulates the evaluator's per-seed serial merge: merging the
    // same per-seed snapshots in the same order twice must produce
    // identical entries, whatever thread produced them.
    auto makeSeedSnap = [](u64 seed) {
        StatRegistry reg(0);
        reg.counter("thread0.mem.loads").inc(100 + seed);
        reg.gauge("eval.x").set(static_cast<double>(seed) * 0.5);
        reg.histogram("lat", 0.0, 4.0, 4)
            .sample(static_cast<double>(seed % 4));
        return reg.snapshot();
    };
    StatSnapshot a, b;
    for (u64 seed = 1; seed <= 5; ++seed)
        a.merge(makeSeedSnap(seed));
    for (u64 seed = 1; seed <= 5; ++seed)
        b.merge(makeSeedSnap(seed));
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].path, b.entries[i].path);
        EXPECT_EQ(a.entries[i].count, b.entries[i].count);
        EXPECT_EQ(a.entries[i].gauge, b.entries[i].gauge);
        EXPECT_EQ(a.entries[i].histBuckets, b.entries[i].histBuckets);
    }
}

TEST(StatSnapshot, MergeTypeConflictThrows)
{
    StatRegistry r1(0), r2(0);
    r1.counter("p");
    r2.gauge("p");
    StatSnapshot snap = r1.snapshot();
    EXPECT_THROW(snap.merge(r2.snapshot()), std::invalid_argument);

    StatRegistry r3(0), r4(0);
    r3.histogram("h", 0.0, 1.0, 4);
    r4.histogram("h", 0.0, 2.0, 4);
    StatSnapshot hs = r3.snapshot();
    EXPECT_THROW(hs.merge(r4.snapshot()), std::invalid_argument);
}

TEST(EventTracer, DisabledRecordsNothing)
{
    EventTracer t(0);
    EXPECT_FALSE(t.enabled());
    t.record("x", 1.0);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.drain().empty());
}

TEST(EventTracer, RingWrapKeepsNewestOldestFirst)
{
    EventTracer t(4);
    for (int i = 0; i < 10; ++i)
        t.record("e", static_cast<double>(i));
    EXPECT_EQ(t.recorded(), 10u);
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
        EXPECT_EQ(events[i].seq, 6u + i);
    }
    // drain() clears the ring.
    EXPECT_TRUE(t.drain().empty());
}

TEST(StatRegistry, TraceRoutesThroughRegistryTracer)
{
    StatRegistry reg(8);
    reg.trace("lva.approx", 3.25);
    const auto events = reg.tracer().drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].path, "lva.approx");
    EXPECT_DOUBLE_EQ(events[0].value, 3.25);
}

} // namespace
} // namespace lva
