// Lock-order fixture: forward() takes a_ then b_, backward() takes
// b_ then a_ — an ordering cycle between Pipeline::a_ and
// Pipeline::b_.  waitBoth() waits on cv_ while still holding b_.
#include <condition_variable>
#include <mutex>

class Pipeline
{
  public:
    void forward();
    void backward();
    void waitBoth();

  private:
    std::mutex a_;
    std::mutex b_;
    std::condition_variable cv_;
    int work_ = 0;
};

void
Pipeline::forward()
{
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    ++work_;
}

void
Pipeline::backward()
{
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);
    --work_;
}

void
Pipeline::waitBoth()
{
    std::unique_lock<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    cv_.wait(la);
}
