#!/usr/bin/env bash
# Arms the engine fault site so it is not an orphan.
LVA_FAULT="engine.step.go=throw@first1" ./engine
