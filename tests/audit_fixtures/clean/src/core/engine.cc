// Clean fixture: documented stats, validated + annotated knobs, a
// fault site armed by scripts/run.sh, downward include only.
#include "util/log.hh"

struct Reg
{
    int counter(const char *, const char *, const char *);
};

unsigned long envKnobU64(const char *, unsigned long, unsigned long,
                         unsigned long);
char *getenv(const char *);
void faultPoint(const char *);

int
setup(Reg &reg)
{
    int ticks = reg.counter("engine.ticks", "ticks", "events");
    const unsigned long depth =
        envKnobU64("LVA_FIX_DEPTH", 4, 1, 64);
    // String-valued path knob. lva-audit: allow(knob-unvalidated)
    const char *dir = getenv("LVA_FIX_DIR");
    faultPoint("engine.step.go");
    return ticks + static_cast<int>(depth) + (dir ? 1 : 0);
}
