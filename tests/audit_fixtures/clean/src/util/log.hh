// Layer-0 helper: includes nothing, included from above.
#ifndef FIXTURE_LOG_HH
#define FIXTURE_LOG_HH
void logLine(const char *msg);
#endif
