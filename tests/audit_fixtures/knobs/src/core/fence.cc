// Audit-fence hygiene fixture: the end-allow on line 2 has no begin.
// lva-audit: end-allow
int dangling();
