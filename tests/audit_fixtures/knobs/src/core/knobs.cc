// Knob fixture: LVA_FIX_ALPHA is documented and validated;
// getenv("LVA_FIX_RAW") on line 12 is both undocumented and
// unvalidated (two findings, one line).
unsigned long envKnobU64(const char *, unsigned long, unsigned long,
                         unsigned long);
char *getenv(const char *);

unsigned long
readKnobs()
{
    const unsigned long a = envKnobU64("LVA_FIX_ALPHA", 1, 0, 9);
    const char *raw = getenv("LVA_FIX_RAW");
    return a + (raw ? 1 : 0);
}
