#!/usr/bin/env bash
# Arms a real site (line 3) and a site nothing defines (line 4).
LVA_FAULT="worker.step.3=throw@first1" ./worker
LVA_FAULT="worker.ghost=abort" ./worker
