// Fault-site fixture: "worker.step." (prefix, via the local binding
// idiom) is armed by scripts/chaos.sh; "worker.orphan" (line 12) is
// never referenced anywhere.
void faultPoint(const char *);
int toString(int);

void
step(int index)
{
    const char *site = "worker.step." + toString(index);
    faultPoint(site);
    faultPoint("worker.orphan");
}
