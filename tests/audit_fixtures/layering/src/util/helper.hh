// Layering violation fixture: layer 0 (src/util) reaching up into
// layer 2 (src/eval) — the back-edge is on line 5.
#ifndef FIXTURE_HELPER_HH
#define FIXTURE_HELPER_HH
#include "eval/driver.hh"
#endif
