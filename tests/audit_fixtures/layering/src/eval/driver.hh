// Layer-2 header; including downward is fine.
#ifndef FIXTURE_DRIVER_HH
#define FIXTURE_DRIVER_HH
int drive();
#endif
