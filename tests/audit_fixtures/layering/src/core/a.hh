// Include-cycle fixture, half one: a -> b (line 4).
#ifndef FIXTURE_A_HH
#define FIXTURE_A_HH
#include "core/b.hh"
#endif
