// Include-cycle fixture, half two: b -> a (line 4) closes the loop.
#ifndef FIXTURE_B_HH
#define FIXTURE_B_HH
#include "core/a.hh"
#endif
