// Stat conformance fixture: "engine.ticks" is documented (full
// literal), the joinPath leaf "stalls" backs the engine.pipe.stalls
// row, but "engine.rogue" (line 16) matches no catalog row.
struct Reg
{
    int counter(const char *, const char *, const char *);
};
struct SR
{
    static const char *joinPath(const char *, const char *);
};

int
setup(Reg &reg, const char *prefix)
{
    int rogue = reg.counter("engine.rogue", "undocumented", "events");
    int ticks = reg.counter("engine.ticks", "ticks", "events");
    int stalls = reg.counter(SR::joinPath(prefix, "stalls"),
                             "pipe stalls", "events");
    return rogue + ticks + stalls;
}
