/**
 * @file
 * Round-trip tests for binary trace serialization.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "cpu/trace_io.hh"
#include "sim/full_system.hh"
#include "util/random.hh"

namespace lva {
namespace {

std::vector<ThreadTrace>
randomTraces(u64 seed)
{
    Rng rng(seed);
    std::vector<ThreadTrace> traces(4);
    for (auto &trace : traces) {
        const u64 count = 50 + rng.below(100);
        for (u64 i = 0; i < count; ++i) {
            TraceEvent ev;
            ev.addr = rng.next() & 0xffff'ffffULL;
            ev.pc = static_cast<LoadSiteId>(rng.below(1 << 20));
            ev.instrBefore = static_cast<u32>(rng.below(1000));
            ev.isLoad = rng.chance(0.7);
            ev.approximable = ev.isLoad && rng.chance(0.5);
            ev.dependsOnPrev = ev.isLoad && rng.chance(0.2);
            switch (rng.below(3)) {
              case 0:
                ev.value = Value::fromInt(
                    static_cast<i64>(rng.next()));
                break;
              case 1:
                ev.value = Value::fromFloat(
                    static_cast<float>(rng.uniform(-10, 10)));
                break;
              default:
                ev.value =
                    Value::fromDouble(rng.uniform(-1e6, 1e6));
            }
            trace.push_back(ev);
        }
    }
    return traces;
}

void
expectEqual(const std::vector<ThreadTrace> &a,
            const std::vector<ThreadTrace> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size()) << "thread " << t;
        for (std::size_t i = 0; i < a[t].size(); ++i) {
            const TraceEvent &x = a[t][i];
            const TraceEvent &y = b[t][i];
            EXPECT_EQ(x.addr, y.addr);
            EXPECT_EQ(x.pc, y.pc);
            EXPECT_EQ(x.instrBefore, y.instrBefore);
            EXPECT_EQ(x.isLoad, y.isLoad);
            EXPECT_EQ(x.approximable, y.approximable);
            EXPECT_EQ(x.dependsOnPrev, y.dependsOnPrev);
            EXPECT_TRUE(x.value.exactlyEquals(y.value))
                << "thread " << t << " event " << i;
        }
    }
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const std::string path = "test_trace_roundtrip.bin";
    const auto traces = randomTraces(42);
    writeTraces(traces, path);
    const auto back = readTraces(path);
    expectEqual(traces, back);
    std::filesystem::remove(path);
}

TEST(TraceIo, EmptyThreadsSurvive)
{
    const std::string path = "test_trace_empty.bin";
    std::vector<ThreadTrace> traces(4); // all empty
    writeTraces(traces, path);
    const auto back = readTraces(path);
    ASSERT_EQ(back.size(), 4u);
    for (const auto &trace : back)
        EXPECT_TRUE(trace.empty());
    std::filesystem::remove(path);
}

TEST(TraceIo, ReplayOfLoadedTraceMatchesOriginal)
{
    const std::string path = "test_trace_replay.bin";
    const auto traces = randomTraces(7);
    writeTraces(traces, path);
    const auto back = readTraces(path);

    FullSystemSim a(FullSystemConfig::lva(2));
    FullSystemSim b(FullSystemConfig::lva(2));
    const FullSystemResult ra = a.run(traces);
    const FullSystemResult rb = b.run(back);
    EXPECT_DOUBLE_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.l1Misses, rb.l1Misses);
    EXPECT_EQ(ra.approxMisses, rb.approxMisses);
    std::filesystem::remove(path);
}

} // namespace
} // namespace lva
