/**
 * @file
 * Cross-process acceptance tests for the lva_fleet frontend: real
 * forked processes, real sockets, real kills. Pins ISSUE 7's
 * scale-out criteria — a fleet of any size answers sweep requests
 * with bytes identical to the direct driver export, a worker killed
 * by an injected fault is respawned and the rerouted request still
 * matches, and SIGTERM / `shutdown` drain the whole tree cleanly.
 *
 * Binary paths arrive via the LVA_FLEET_BINARY / LVA_CLIENT_BINARY
 * compile definitions; the worker binary is discovered by the
 * frontend itself (sibling lva_served).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "eval/evaluator.hh"
#include "eval/sweep.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

constexpr u32 kSeeds = 1;
constexpr double kScale = 0.02;

/** points for a small two-workload, two-config sweep. */
const char *kSweepPoints =
    "[{\"label\":\"ghb-0\",\"workload\":\"swaptions\","
    "\"config\":{\"ghb\":0}},"
    "{\"label\":\"ghb-2\",\"workload\":\"swaptions\","
    "\"config\":{\"ghb\":2}},"
    "{\"label\":\"ghb-0\",\"workload\":\"blackscholes\","
    "\"config\":{\"ghb\":0}},"
    "{\"label\":\"ghb-2\",\"workload\":\"blackscholes\","
    "\"config\":{\"ghb\":2}}]";

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** The same sweep run directly, as a bench driver would export it. */
std::string
directExport()
{
    std::vector<SweepPoint> points;
    for (const char *name : {"swaptions", "blackscholes"}) {
        for (u32 ghb : {0u, 2u}) {
            ApproxMemory::Config cfg = Evaluator::baselineLva();
            cfg.approx.ghbEntries = ghb;
            points.push_back(
                {"ghb-" + std::to_string(ghb), name, cfg});
        }
    }
    Evaluator eval(kSeeds, kScale);
    SweepRunner runner(eval, 1);
    SweepOptions opts;
    opts.driver = "fleet_daemon_test";
    const SweepOutcome outcome = runner.runChecked(points, opts);
    EXPECT_TRUE(outcome.ok());
    return renderSweepStats("fleet_daemon_test", points, outcome);
}

class FleetDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("lva_fleet_" +
                std::to_string(static_cast<long>(getpid())) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        log_ = dir_ / "fleet.log";
        std::ofstream(dir_ / "points.json") << kSweepPoints;
    }

    void
    TearDown() override
    {
        if (pid_ > 0) { // a test failed before reaping: clean up
            kill(pid_, SIGKILL);
            int status = 0;
            waitpid(pid_, &status, 0);
        }
        fs::remove_all(dir_);
    }

    /** Fork+exec the frontend; stdout/stderr land in log_. */
    void
    startFleet(int fleet, const std::string &fleetFault = "",
               const std::string &cache = "")
    {
        pid_ = fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            FILE *log = std::fopen(log_.string().c_str(), "w");
            if (log) {
                dup2(fileno(log), STDOUT_FILENO);
                dup2(fileno(log), STDERR_FILENO);
            }
            setenv("LVA_SEEDS", "1", 1);
            setenv("LVA_SCALE", "0.02", 1);
            setenv("LVA_JOBS", "1", 1);
            if (!fleetFault.empty())
                setenv("LVA_FLEET_FAULT", fleetFault.c_str(), 1);
            const std::string n = std::to_string(fleet);
            if (cache.empty())
                execl(LVA_FLEET_BINARY, "lva_fleet", "--port", "0",
                      "--fleet", n.c_str(),
                      static_cast<char *>(nullptr));
            else
                execl(LVA_FLEET_BINARY, "lva_fleet", "--port", "0",
                      "--fleet", n.c_str(), "--cache", cache.c_str(),
                      static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        port_ = waitForPort();
        ASSERT_GT(port_, 0) << slurp(log_);
    }

    /**
     * Parse the *frontend's* announced port out of the log (the
     * worker lines carry ports too, but those go to the workers'
     * pipes, not this log). Retries ~15s: the frontend only
     * announces after every worker booted.
     */
    int
    waitForPort() const
    {
        for (int tries = 0; tries < 300; ++tries) {
            const std::string log = slurp(log_);
            const std::size_t at = log.find("lva_fleet: listening on ");
            if (at != std::string::npos) {
                const std::size_t colon = log.find(':', at + 24);
                if (colon != std::string::npos)
                    return std::atoi(log.c_str() + colon + 1);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        return 0;
    }

    /**
     * Parse worker @p index's pid from its spawn announcement
     * ("lva_fleet: worker N (incarnation 0) pid P on ..."), waiting
     * for the line to appear. Returns -1 when it never does.
     */
    pid_t
    workerPid(int index) const
    {
        const std::string needle = "worker " + std::to_string(index) +
                                   " (incarnation 0) pid ";
        for (int tries = 0; tries < 100; ++tries) {
            const std::string log = slurp(log_);
            const std::size_t at = log.find(needle);
            if (at != std::string::npos)
                return std::atoi(log.c_str() + at + needle.size());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        return -1;
    }

    int
    client(const std::string &args) const
    {
        return runCommand(std::string("'") + LVA_CLIENT_BINARY +
                          "' --port " + std::to_string(port_) + " " +
                          args + " >> '" +
                          (dir_ / "client.log").string() + "' 2>&1");
    }

    int
    sweepToFile(const std::string &out) const
    {
        return client("sweep --driver fleet_daemon_test --points '" +
                      (dir_ / "points.json").string() + "' --out '" +
                      (dir_ / out).string() + "'");
    }

    /** Reap the frontend; returns its exit code (-1 = abnormal). */
    int
    reap()
    {
        int status = 0;
        waitpid(pid_, &status, 0);
        pid_ = -1;
        if (!WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    fs::path dir_;
    fs::path log_;
    pid_t pid_ = -1;
    int port_ = 0;
};

TEST_F(FleetDaemonTest, ServesPingAndDrainsOnSigterm)
{
    startFleet(2);
    EXPECT_EQ(client("ping"), 0) << slurp(dir_ / "client.log");
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
    EXPECT_NE(slurp(log_).find("drained, exiting"),
              std::string::npos);
}

TEST_F(FleetDaemonTest, SweepMatchesDirectExportBytes)
{
    // A squeezed per-worker cache (1 entry, 2 workloads in the sweep)
    // forces evictions mid-request; the bytes must not care.
    startFleet(3, "", "1");
    ASSERT_EQ(sweepToFile("out.json"), 0)
        << slurp(dir_ / "client.log") << slurp(log_);
    EXPECT_EQ(slurp(dir_ / "out.json"), directExport());
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(FleetDaemonTest, KilledWorkerIsRespawnedWithIdenticalBytes)
{
    // Every worker's first incarnation aborts on its first request:
    // whichever worker the sweep routes to dies mid-request, the
    // frontend respawns it, retries, and the client still gets the
    // exact direct-driver bytes.
    startFleet(2, "*:serve.request.0=abort");
    ASSERT_EQ(sweepToFile("out.json"), 0)
        << slurp(dir_ / "client.log") << slurp(log_);
    EXPECT_EQ(slurp(dir_ / "out.json"), directExport());
    EXPECT_NE(slurp(log_).find("respawning"), std::string::npos);

    // The respawned worker serves follow-up traffic normally.
    EXPECT_EQ(sweepToFile("out2.json"), 0);
    EXPECT_EQ(slurp(dir_ / "out2.json"), directExport());

    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(FleetDaemonTest, ConcurrentClientsGetIdenticalBytes)
{
    startFleet(3);
    std::vector<int> rc(2, -2);
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&, c] {
            rc[static_cast<std::size_t>(c)] =
                sweepToFile("out" + std::to_string(c) + ".json");
        });
    for (auto &t : clients)
        t.join();
    ASSERT_EQ(rc[0], 0) << slurp(dir_ / "client.log");
    ASSERT_EQ(rc[1], 0) << slurp(dir_ / "client.log");
    const std::string direct = directExport();
    EXPECT_EQ(slurp(dir_ / "out0.json"), direct);
    EXPECT_EQ(slurp(dir_ / "out1.json"), direct);
    kill(pid_, SIGTERM);
    EXPECT_EQ(reap(), 0) << slurp(log_);
}

TEST_F(FleetDaemonTest, ShutdownRequestEndsTheWholeTree)
{
    startFleet(2);
    EXPECT_EQ(client("shutdown"), 0) << slurp(dir_ / "client.log");
    EXPECT_EQ(reap(), 0) << slurp(log_);
    EXPECT_NE(slurp(log_).find("drained, exiting"),
              std::string::npos);
}

TEST_F(FleetDaemonTest, HungWorkerIsKilledWithinTheDrainDeadline)
{
    // A worker that stops responding (SIGSTOP stands in for a wedged
    // process) must not hang the frontend's exit forever: the drain's
    // bounded reap escalates to SIGKILL after its deadline and the
    // frontend still exits 0. The old drain called waitpid(pid, .., 0)
    // unconditionally, which blocked until the heat death of the
    // stopped worker.
    startFleet(1);
    const pid_t worker = workerPid(0);
    ASSERT_GT(worker, 0) << slurp(log_);
    ASSERT_EQ(kill(worker, SIGSTOP), 0);

    kill(pid_, SIGTERM);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(reap(), 0) << slurp(log_);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start);
    // Shutdown frame timeouts + the 2s reap deadline, with headroom:
    // well under a minute, where the old code never returned.
    EXPECT_LT(elapsed.count(), 30);
    const std::string log = slurp(log_);
    EXPECT_NE(log.find("SIGKILL"), std::string::npos) << log;
    EXPECT_NE(log.find("drained, exiting"), std::string::npos);

    // The stopped worker really is gone (SIGKILL acts on stopped
    // processes; the frontend reaped it).
    EXPECT_NE(kill(worker, 0), 0);
}

} // namespace
} // namespace lva
