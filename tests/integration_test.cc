/**
 * @file
 * End-to-end integration tests: workload -> trace -> full-system
 * timing, and cross-phase consistency properties.
 */

#include <gtest/gtest.h>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "workloads/workload.hh"

namespace lva {
namespace {

TEST(Integration, TraceReplayIsDeterministic)
{
    const FsSweep a = runFullSystemSweep("canneal", {0}, 1, 0.05);
    const FsSweep b = runFullSystemSweep("canneal", {0}, 1, 0.05);
    EXPECT_DOUBLE_EQ(a.baseline.cycles, b.baseline.cycles);
    EXPECT_DOUBLE_EQ(a.lva[0].cycles, b.lva[0].cycles);
    EXPECT_EQ(a.baseline.flitHops, b.baseline.flitHops);
}

TEST(Integration, LvaNeverSlowsCannealMateriallyDown)
{
    const FsSweep sweep =
        runFullSystemSweep("canneal", {0, 16}, 1, 0.1);
    EXPECT_GT(sweep.speedup(0), -0.05);
    EXPECT_GT(sweep.speedup(1), 0.0);
}

TEST(Integration, HigherDegreeNeverFetchesMore)
{
    const FsSweep sweep =
        runFullSystemSweep("bodytrack", {0, 2, 8}, 1, 0.1);
    EXPECT_GE(sweep.lva[0].l2Accesses, sweep.lva[1].l2Accesses);
    EXPECT_GE(sweep.lva[1].l2Accesses, sweep.lva[2].l2Accesses);
    EXPECT_LE(sweep.lva[0].fetchesSkipped,
              sweep.lva[1].fetchesSkipped);
}

TEST(Integration, DegreeReducesTrafficAndEnergy)
{
    const FsSweep sweep =
        runFullSystemSweep("canneal", {0, 16}, 1, 0.1);
    EXPECT_LT(sweep.lva[1].flitHops, sweep.lva[0].flitHops);
    EXPECT_LT(sweep.lva[1].energy.total(),
              sweep.lva[0].energy.total());
}

TEST(Integration, MissLatencyDropsUnderLva)
{
    const FsSweep sweep =
        runFullSystemSweep("bodytrack", {0}, 1, 0.1);
    EXPECT_LT(sweep.lva[0].avgL1MissLatency,
              sweep.baseline.avgL1MissLatency);
    EXPECT_GT(sweep.missLatencyReduction(0), 0.0);
}

TEST(Integration, BaselineReplayMatchesTraceInstructionCount)
{
    WorkloadParams params;
    params.seed = 1;
    params.scale = 0.05;
    auto w = makeWorkload("ferret", params);
    w->generate();
    TraceRecorder rec(params.threads);
    w->run(rec);

    FullSystemSim sim(FullSystemConfig::baseline());
    const FullSystemResult r = sim.run(rec.traces());
    EXPECT_EQ(r.instructions, rec.totalInstructions());
}

TEST(Integration, NormalizedEdpBelowOneForAmenableWorkloads)
{
    const FsSweep sweep =
        runFullSystemSweep("bodytrack", {0, 16}, 1, 0.1);
    EXPECT_LT(sweep.normMissEdp(0), 1.0);
    EXPECT_LT(sweep.normMissEdp(1), sweep.normMissEdp(0));
}

} // namespace
} // namespace lva
