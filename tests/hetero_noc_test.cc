/**
 * @file
 * Tests for the heterogeneous NoC plane (paper section VI-C): training
 * fetches ride a slow low-energy mesh, demand traffic the fast one.
 */

#include <gtest/gtest.h>

#include "sim/full_system.hh"

namespace lva {
namespace {

std::vector<ThreadTrace>
approxStream(u32 loads)
{
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < loads; ++i) {
        TraceEvent ev;
        // Spread banks so traffic crosses links.
        ev.addr = 0x100000 + static_cast<Addr>(i) * 0x10040;
        ev.value = Value::fromInt(7);
        ev.pc = 0x400;
        ev.instrBefore = 4;
        ev.isLoad = true;
        ev.approximable = true;
        traces[0].push_back(ev);
    }
    return traces;
}

TEST(HeteroNoc, TrainingTrafficMovesToSlowPlane)
{
    FullSystemConfig cfg = FullSystemConfig::lva(0);
    cfg.heteroNoc = true;
    FullSystemSim sim(cfg);
    const FullSystemResult r = sim.run(approxStream(40));
    // Approximated misses train in the background: most flit-hops
    // land on the slow plane.
    EXPECT_GT(r.events.nocFlitHopsSlow, 0u);
    EXPECT_GT(r.events.nocFlitHopsSlow, r.events.nocFlitHops / 2);
}

TEST(HeteroNoc, DisabledMeansNoSlowTraffic)
{
    FullSystemSim sim(FullSystemConfig::lva(0));
    const FullSystemResult r = sim.run(approxStream(40));
    EXPECT_EQ(r.events.nocFlitHopsSlow, 0u);
    EXPECT_GT(r.events.nocFlitHops, 0u);
}

TEST(HeteroNoc, ReducesNocEnergyWithoutChangingWork)
{
    FullSystemConfig homo = FullSystemConfig::lva(0);
    FullSystemConfig hetero = FullSystemConfig::lva(0);
    hetero.heteroNoc = true;

    FullSystemSim homo_sim(homo);
    FullSystemSim hetero_sim(hetero);
    const FullSystemResult rh = homo_sim.run(approxStream(60));
    const FullSystemResult rs = hetero_sim.run(approxStream(60));

    EXPECT_EQ(rh.instructions, rs.instructions);
    EXPECT_EQ(rh.l1Misses, rs.l1Misses);
    // The same messages flow (narrower slow links mean more flits per
    // message), but the per-flit energy drop dominates.
    EXPECT_GT(rs.events.nocFlitHopsSlow, 0u);
    EXPECT_LT(rs.energy.noc, rh.energy.noc);
}

TEST(HeteroNoc, DemandTrafficKeepsTheFastPlane)
{
    // Non-approximable loads always use the fast plane even when the
    // heterogeneous NoC is configured.
    FullSystemConfig cfg = FullSystemConfig::baseline();
    cfg.heteroNoc = true;
    FullSystemSim sim(cfg);
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < 20; ++i) {
        TraceEvent ev;
        ev.addr = 0x100000 + static_cast<Addr>(i) * 0x10040;
        ev.isLoad = true;
        ev.instrBefore = 4;
        traces[0].push_back(ev);
    }
    const FullSystemResult r = sim.run(traces);
    EXPECT_EQ(r.events.nocFlitHopsSlow, 0u);
    EXPECT_GT(r.events.nocFlitHops, 0u);
}

TEST(HeteroNoc, EnergyModelChargesSlowRate)
{
    EnergyParams p;
    EnergyEvents fast;
    fast.nocFlitHops = 100;
    EnergyEvents slow;
    slow.nocFlitHopsSlow = 100;
    EXPECT_LT(computeEnergy(slow, p).noc, computeEnergy(fast, p).noc);
}

} // namespace
} // namespace lva
