/**
 * @file
 * MachineConfig (lva-machine-v1) parser and projection tests.
 *
 * Three properties matter:
 *  - strict parsing: unknown keys, out-of-range values and
 *    inconsistent geometry are rejected with the offending key named
 *    (a silently-ignored typo would simulate the wrong machine);
 *  - the built-in default machine is byte-for-byte the pre-config
 *    hardcoded configuration — Evaluator::baselineLva() /
 *    preciseConfig() in phase 1, FullSystemConfig::baseline()/lva(d)
 *    in phase 2 — so file-less exports never move;
 *  - renderMachineJson() is a canonical inverse of machineFromJson()
 *    (the serving tier and manifest context keys depend on it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/approx_memory.hh"
#include "eval/evaluator.hh"
#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/checkpoint.hh"

namespace lva {
namespace {

/** Wrap @p body (comma-joined members) into a schema-tagged doc. */
std::string
doc(const std::string &body)
{
    std::string out = "{\"schema\":\"lva-machine-v1\"";
    if (!body.empty())
        out += "," + body;
    return out + "}";
}

MachineConfig
parse(const std::string &json)
{
    return machineFromJson(parseJson(json));
}

/** The rejection diagnostic for @p json, or "" if it was accepted. */
std::string
rejection(const std::string &json)
{
    try {
        machineFromJson(parseJson(json));
    } catch (const std::exception &e) {
        return e.what();
    }
    return "";
}

void
expectRejected(const std::string &json, const std::string &needle)
{
    const std::string msg = rejection(json);
    ASSERT_FALSE(msg.empty()) << "accepted: " << json;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "diagnostic \"" << msg << "\" does not name \"" << needle
        << "\" for: " << json;
}

void
expectApproxEq(const ApproximatorConfig &a, const ApproximatorConfig &b)
{
    EXPECT_EQ(a.tableEntries, b.tableEntries);
    EXPECT_EQ(a.tableAssoc, b.tableAssoc);
    EXPECT_EQ(a.confidenceBits, b.confidenceBits);
    EXPECT_EQ(a.confidenceWindow, b.confidenceWindow);
    EXPECT_EQ(a.confidenceForInts, b.confidenceForInts);
    EXPECT_EQ(a.confidenceDisabled, b.confidenceDisabled);
    EXPECT_EQ(a.ghbEntries, b.ghbEntries);
    EXPECT_EQ(a.lhbEntries, b.lhbEntries);
    EXPECT_EQ(a.tagBits, b.tagBits);
    EXPECT_EQ(a.valueDelay, b.valueDelay);
    EXPECT_EQ(a.approxDegree, b.approxDegree);
    EXPECT_EQ(a.estimator, b.estimator);
    EXPECT_EQ(a.proportionalConfidence, b.proportionalConfidence);
    EXPECT_EQ(a.mantissaDropBits, b.mantissaDropBits);
}

void
expectFullSystemEq(const FullSystemConfig &a, const FullSystemConfig &b)
{
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.core.width, b.core.width);
    EXPECT_EQ(a.core.robEntries, b.core.robEntries);
    EXPECT_EQ(a.l1.sizeBytes, b.l1.sizeBytes);
    EXPECT_EQ(a.l1.assoc, b.l1.assoc);
    EXPECT_EQ(a.l1.blockBytes, b.l1.blockBytes);
    EXPECT_EQ(a.l1Latency, b.l1Latency);
    EXPECT_EQ(a.l2.sizeBytes, b.l2.sizeBytes);
    EXPECT_EQ(a.l2.assoc, b.l2.assoc);
    EXPECT_EQ(a.l2.blockBytes, b.l2.blockBytes);
    EXPECT_EQ(a.l2Latency, b.l2Latency);
    EXPECT_EQ(a.l2Banks, b.l2Banks);
    EXPECT_EQ(a.l2Occupancy, b.l2Occupancy);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.memLatency, b.memLatency);
    EXPECT_EQ(a.memOccupancy, b.memOccupancy);
    EXPECT_EQ(a.mesh.cols, b.mesh.cols);
    EXPECT_EQ(a.mesh.rows, b.mesh.rows);
    EXPECT_EQ(a.mesh.routerCycles, b.mesh.routerCycles);
    EXPECT_EQ(a.mesh.flitBytes, b.mesh.flitBytes);
    EXPECT_EQ(a.lvaEnabled, b.lvaEnabled);
    expectApproxEq(a.approx, b.approx);
    EXPECT_EQ(a.coreApprox.size(), b.coreApprox.size());
    EXPECT_EQ(a.backgroundFetchExtraLatency,
              b.backgroundFetchExtraLatency);
    EXPECT_EQ(a.heteroNoc, b.heteroNoc);
    EXPECT_EQ(a.slowMesh.cols, b.slowMesh.cols);
    EXPECT_EQ(a.slowMesh.rows, b.slowMesh.rows);
    EXPECT_EQ(a.slowMesh.routerCycles, b.slowMesh.routerCycles);
    EXPECT_EQ(a.slowMesh.flitBytes, b.slowMesh.flitBytes);
}

/** A hetero machine exercising most non-default fields. */
std::string
heteroDoc()
{
    return doc(
        "\"name\":\"h4\",\"cores\":4,"
        "\"core\":{\"width\":2,\"rob\":16},"
        "\"l1\":{\"size\":32768,\"assoc\":4,\"block\":32,"
        "\"latency\":2},"
        "\"phase1L1\":{\"size\":32768,\"assoc\":4,\"block\":32},"
        "\"l2\":{\"size\":1048576,\"assoc\":8,\"block\":32,"
        "\"latency\":9,\"banks\":4,\"occupancy\":2},"
        "\"memory\":{\"latency\":200,\"occupancy\":12},"
        "\"noc\":{\"cols\":4,\"rows\":1,\"routerCycles\":2,"
        "\"flitBytes\":32},"
        "\"protocol\":\"mesi\",\"heteroNoc\":true,"
        "\"slowNoc\":{\"cols\":2,\"rows\":2,\"routerCycles\":8,"
        "\"flitBytes\":4},"
        "\"backgroundFetchExtraLatency\":7,"
        "\"approx\":{\"table\":256,\"tableAssoc\":2,"
        "\"confidenceBits\":5,\"window\":0.05,\"confInts\":true,"
        "\"ghb\":2,\"lhb\":2,\"tagBits\":16,\"delay\":8,"
        "\"degree\":1,\"estimator\":\"last\",\"proportional\":true,"
        "\"mantissaDrop\":3},"
        "\"coreApprox\":["
        "{\"core\":1,\"estimator\":\"stride\",\"table\":1024},"
        "{\"core\":3,\"window\":\"inf\",\"noConf\":false}]");
}

TEST(MachineConfigParse, MinimalDocIsTheTable2MachineNamedCustom)
{
    const MachineConfig m = parse(doc(""));
    EXPECT_EQ(m.name, "custom");
    EXPECT_EQ(m.cores, 4u);
    EXPECT_EQ(m.l2Banks, 4u);
    EXPECT_TRUE(m.coreApprox.empty());
    // Same machine as the built-in default, different display name.
    MachineConfig named = m;
    named.name = defaultMachine().name;
    EXPECT_EQ(renderMachineJson(named),
              renderMachineJson(defaultMachine()));
}

TEST(MachineConfigParse, SchemaIsRequiredAndChecked)
{
    expectRejected("{}", "schema");
    expectRejected("{\"schema\":\"lva-machine-v2\"}",
                   "unsupported schema");
    expectRejected("[1,2]", "must be a JSON object");
}

TEST(MachineConfigParse, UnknownKeysAreNamedAtEveryLevel)
{
    expectRejected(doc("\"coreCount\":4"), "coreCount");
    expectRejected(doc("\"l1\":{\"ways\":8}"), "l1: unknown key");
    expectRejected(doc("\"core\":{\"depth\":9}"), "core: unknown key");
    expectRejected(doc("\"l2\":{\"slices\":4}"), "l2: unknown key");
    expectRejected(doc("\"memory\":{\"channels\":2}"),
                   "memory: unknown key");
    expectRejected(doc("\"noc\":{\"diameter\":3}"), "noc: unknown key");
    expectRejected(doc("\"approx\":{\"tables\":2}"),
                   "approx: unknown key");
    expectRejected(doc("\"coreApprox\":[{\"core\":0,\"foo\":1}]"),
                   "coreApprox[]: unknown key");
    // phase1L1 has no latency (it is a hit/miss tag model only).
    expectRejected(doc("\"phase1L1\":{\"latency\":1}"),
                   "phase1L1: unknown key");
}

TEST(MachineConfigParse, CoreCountRangeAndTypes)
{
    EXPECT_EQ(parse(doc("\"cores\":1,\"noc\":{\"cols\":1,\"rows\":1},"
                        "\"l2\":{\"banks\":1}"))
                  .cores,
              1u);
    expectRejected(doc("\"cores\":0,\"noc\":{\"cols\":1,\"rows\":1},"
                       "\"l2\":{\"banks\":1}"),
                   "cores");
    expectRejected(doc("\"cores\":33"), "cores");
    // Type and sign errors surface from the JSON layer; the exact
    // wording is its business, rejection is ours.
    EXPECT_FALSE(rejection(doc("\"cores\":-4")).empty());
    EXPECT_FALSE(rejection(doc("\"cores\":\"four\"")).empty());
}

TEST(MachineConfigParse, CacheGeometryMustBePowerOfTwoSets)
{
    // 24 KB / (8 * 64) = 48 sets: not a power of two.
    expectRejected(doc("\"l1\":{\"size\":24576}"), "power of two");
    expectRejected(doc("\"phase1L1\":{\"size\":24576}"), "power of two");
    expectRejected(doc("\"l1\":{\"block\":48}"), "block");
    expectRejected(doc("\"l1\":{\"size\":16000}"),
                   "multiple of assoc * block");
    // Whole-L2 geometry can be fine while the per-bank slice is not:
    // 384 KB 12-way has 512 sets and splits evenly into 3 banks, but
    // each 128 KB slice is not a multiple of its 768-byte set.
    expectRejected(doc("\"cores\":3,\"noc\":{\"cols\":3,\"rows\":1},"
                       "\"l2\":{\"banks\":3,\"size\":393216,"
                       "\"assoc\":12}"),
                   "l2 bank slice");
}

TEST(MachineConfigParse, TopologyConsistency)
{
    expectRejected(doc("\"cores\":2"), "must equal noc nodes");
    expectRejected(doc("\"l2\":{\"banks\":2}"), "l2.banks");
    // 512 KB has power-of-two sets but does not split into 3 banks.
    expectRejected(doc("\"cores\":3,\"noc\":{\"cols\":3,\"rows\":1},"
                       "\"l2\":{\"banks\":3}"),
                   "multiple of l2.banks");
    expectRejected(doc("\"heteroNoc\":true,"
                       "\"slowNoc\":{\"cols\":1,\"rows\":1}"),
                   "slowNoc");
    // The same slow plane is fine while heteroNoc stays off.
    EXPECT_EQ(parse(doc("\"slowNoc\":{\"cols\":1,\"rows\":1}"))
                  .slowNoc.nodes(),
              1u);
}

TEST(MachineConfigParse, ApproximatorRanges)
{
    expectRejected(doc("\"approx\":{\"table\":512,\"tableAssoc\":3}"),
                   "tableAssoc must divide table");
    expectRejected(doc("\"approx\":{\"confidenceBits\":0}"),
                   "confidenceBits");
    expectRejected(doc("\"approx\":{\"confidenceBits\":32}"),
                   "confidenceBits");
    expectRejected(doc("\"approx\":{\"window\":-0.5}"), "window");
    expectRejected(doc("\"approx\":{\"window\":\"huge\"}"), "window");
    expectRejected(doc("\"approx\":{\"lhb\":0}"), "lhb");
    expectRejected(doc("\"approx\":{\"tagBits\":65}"), "tagBits");
    expectRejected(doc("\"approx\":{\"mantissaDrop\":53}"),
                   "mantissaDrop");
    expectRejected(doc("\"approx\":{\"estimator\":\"median\"}"),
                   "unknown estimator");
    expectRejected(doc("\"protocol\":\"moesi\""), "unknown protocol");
    EXPECT_EQ(parse(doc("\"approx\":{\"window\":\"inf\"}"))
                  .approx.confidenceWindow,
              ApproximatorConfig::infiniteWindow);
}

TEST(MachineConfigParse, CoreApproxEntries)
{
    expectRejected(doc("\"coreApprox\":[{\"estimator\":\"last\"}]"),
                   "missing \"core\"");
    expectRejected(doc("\"coreApprox\":[{\"core\":4}]"),
                   "out of range");
    expectRejected(doc("\"coreApprox\":[{\"core\":0},{\"core\":0}]"),
                   "duplicate");
    expectRejected(doc("\"coreApprox\":{\"core\":0}"),
                   "must be a JSON array");
    // A rejected per-core value names the entry, not the base.
    expectRejected(doc("\"coreApprox\":[{\"core\":2,\"lhb\":0}]"),
                   "coreApprox[2]");

    // Listed cores get their overrides; unlisted cores inherit approx.
    const MachineConfig m =
        parse(doc("\"approx\":{\"table\":256},"
                  "\"coreApprox\":[{\"core\":1,\"table\":1024}]"));
    ASSERT_EQ(m.coreApprox.size(), 4u);
    EXPECT_EQ(m.coreApprox[0].tableEntries, 256u);
    EXPECT_EQ(m.coreApprox[1].tableEntries, 1024u);
    EXPECT_EQ(m.coreApprox[3].tableEntries, 256u);

    // An empty list means homogeneous, same as no list at all.
    EXPECT_TRUE(parse(doc("\"coreApprox\":[]")).coreApprox.empty());
}

TEST(MachineConfigFile, MissingAndTornFilesFailWithThePath)
{
    const std::string missing =
        testing::TempDir() + "machine_config_test_nonexistent.json";
    try {
        machineFromFile(missing);
        FAIL() << "missing file accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(missing),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }

    const std::string torn =
        testing::TempDir() + "machine_config_test_torn.json";
    {
        std::ofstream out(torn, std::ios::binary);
        out << "{\"schema\":\"lva-machine-v1\",\"cores\"";
    }
    try {
        machineFromFile(torn);
        FAIL() << "torn file accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(torn), std::string::npos);
    }
    std::remove(torn.c_str());
}

TEST(MachineConfigFile, RoundTripsThroughRenderAndParse)
{
    const std::string path =
        testing::TempDir() + "machine_config_test_ok.json";
    {
        std::ofstream out(path, std::ios::binary);
        out << heteroDoc();
    }
    const MachineConfig m = machineFromFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(m.name, "h4");
    EXPECT_EQ(renderMachineJson(m),
              renderMachineJson(parse(renderMachineJson(m))));
}

TEST(MachineConfigDefault, Phase1MatchesTheHardcodedEvaluatorConfigs)
{
    // The pre-config-file byte-identity pin: the default machine's
    // phase-1 projections are the exact configs every driver used
    // before --machine existed, down to the manifest config key.
    EXPECT_EQ(configKey(defaultMachine().phase1Lva()),
              configKey(Evaluator::baselineLva()));
    EXPECT_EQ(configKey(defaultMachine().phase1Precise()),
              configKey(Evaluator::preciseConfig()));
    EXPECT_EQ(configKey(Evaluator::preciseBaseFor(
                  defaultMachine().phase1Lva())),
              configKey(Evaluator::preciseConfig()));
}

TEST(MachineConfigDefault, FullSystemMatchesBaselineAndLva)
{
    expectFullSystemEq(defaultMachine().fullSystem(false),
                       FullSystemConfig::baseline());
    expectFullSystemEq(defaultMachine().fullSystem(true, 4),
                       FullSystemConfig::lva(4));
    expectFullSystemEq(defaultMachine().fullSystem(true, 16),
                       FullSystemConfig::lva(16));
    // Degree is meaningless without the mechanism; baseline ignores it.
    expectFullSystemEq(defaultMachine().fullSystem(false, 16),
                       FullSystemConfig::baseline());
}

TEST(MachineConfigProjection, HeteroVariantsCarryIntoBothPhases)
{
    const MachineConfig m = parse(heteroDoc());

    const ApproxMemory::Config lva = m.phase1Lva();
    EXPECT_EQ(lva.threads, 4u);
    EXPECT_EQ(lva.cache.sizeBytes, 32768u);
    ASSERT_EQ(lva.threadApprox.size(), 4u);
    EXPECT_EQ(lva.threadApprox[0].estimator, Estimator::Last);
    EXPECT_EQ(lva.threadApprox[1].estimator, Estimator::Stride);
    EXPECT_EQ(lva.threadApprox[1].tableEntries, 1024u);
    EXPECT_EQ(lva.threadApprox[3].confidenceWindow,
              ApproximatorConfig::infiniteWindow);
    // Precise projection stays canonical: no variants, so the golden
    // cache key depends only on geometry.
    EXPECT_TRUE(m.phase1Precise().threadApprox.empty());
    // Sweep edits must land on every lane, not only the (unused,
    // once variants exist) base — the driver/RPC shared semantics.
    ApproxMemory::Config swept = lva;
    swept.editApprox([](ApproximatorConfig &a) { a.ghbEntries = 3; });
    EXPECT_EQ(swept.approx.ghbEntries, 3u);
    EXPECT_EQ(swept.threadApprox[0].ghbEntries, 3u);
    EXPECT_EQ(swept.threadApprox[2].ghbEntries, 3u);
    // The heterogeneous lane set must actually construct.
    ApproxMemory mem(lva);

    const FullSystemConfig fs = m.fullSystem(true, 4);
    EXPECT_TRUE(fs.lvaEnabled);
    EXPECT_TRUE(fs.heteroNoc);
    EXPECT_EQ(fs.slowMesh.flitBytes, 4u);
    EXPECT_EQ(fs.backgroundFetchExtraLatency, 7u);
    ASSERT_EQ(fs.coreApprox.size(), 4u);
    for (const ApproximatorConfig &a : fs.coreApprox) {
        // The lva(degree) override applies to every variant.
        EXPECT_EQ(a.approxDegree, 4u);
        EXPECT_EQ(a.valueDelay, 1u);
    }
    EXPECT_EQ(fs.coreApprox[1].estimator, Estimator::Stride);
    // Without LVA the machine is a precise baseline: no mechanism.
    EXPECT_FALSE(m.fullSystem(false).lvaEnabled);
    EXPECT_TRUE(m.fullSystem(false).coreApprox.empty());
}

TEST(MachineConfigSchema, KeyListIsUniqueAndComplete)
{
    const std::vector<std::string> &keys = machineSchemaKeys();
    EXPECT_EQ(keys.size(), 47u);
    EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()).size(),
              keys.size());
    // Spot-check the corners the docs table is gated against.
    EXPECT_EQ(keys.front(), "schema");
    EXPECT_NE(std::find(keys.begin(), keys.end(), "coreApprox.core"),
              keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(),
                        "backgroundFetchExtraLatency"),
              keys.end());
}

} // namespace
} // namespace lva
