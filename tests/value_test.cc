/**
 * @file
 * Unit tests for the tagged Value type: conversions, hashing with
 * mantissa truncation, the relaxed confidence window, and the
 * computation functions f (AVERAGE / LAST / STRIDE).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/value.hh"

namespace lva {
namespace {

TEST(Value, IntRoundTrip)
{
    const Value v = Value::fromInt(-1234567890123LL);
    EXPECT_EQ(v.kind(), ValueKind::Int64);
    EXPECT_EQ(v.asInt(), -1234567890123LL);
    EXPECT_DOUBLE_EQ(v.toReal(), -1234567890123.0);
}

TEST(Value, FloatRoundTrip)
{
    const Value v = Value::fromFloat(3.25f);
    EXPECT_EQ(v.kind(), ValueKind::Float32);
    EXPECT_FLOAT_EQ(v.asFloat(), 3.25f);
    EXPECT_DOUBLE_EQ(v.toReal(), 3.25);
}

TEST(Value, DoubleRoundTrip)
{
    const Value v = Value::fromDouble(-0.001953125);
    EXPECT_EQ(v.kind(), ValueKind::Float64);
    EXPECT_DOUBLE_EQ(v.asDouble(), -0.001953125);
}

TEST(Value, OfKindRoundsIntegers)
{
    EXPECT_EQ(Value::ofKind(ValueKind::Int64, 41.6).asInt(), 42);
    EXPECT_EQ(Value::ofKind(ValueKind::Int64, -41.6).asInt(), -42);
    EXPECT_EQ(Value::ofKind(ValueKind::Int64, 0.4).asInt(), 0);
}

TEST(Value, OfKindPreservesFloatKinds)
{
    EXPECT_EQ(Value::ofKind(ValueKind::Float32, 1.5).kind(),
              ValueKind::Float32);
    EXPECT_EQ(Value::ofKind(ValueKind::Float64, 1.5).kind(),
              ValueKind::Float64);
}

TEST(Value, ExactEqualityRequiresKindAndBits)
{
    EXPECT_TRUE(Value::fromInt(7).exactlyEquals(Value::fromInt(7)));
    EXPECT_FALSE(Value::fromInt(7).exactlyEquals(Value::fromInt(8)));
    // 1.0f and 1.0 have different kinds even if numerically equal.
    EXPECT_FALSE(
        Value::fromFloat(1.0f).exactlyEquals(Value::fromDouble(1.0)));
}

TEST(Value, HashBitsIdentityForIntegers)
{
    const Value v = Value::fromInt(0x1234);
    EXPECT_EQ(v.hashBits(0), v.hashBits(23));
}

TEST(Value, HashBitsTruncatesFloatMantissa)
{
    // 1.000 and a value differing only in low mantissa bits should
    // collide once enough bits are dropped (paper section VII-B).
    const Value a = Value::fromFloat(1.0f);
    const Value b = Value::fromFloat(std::nextafterf(1.0f, 2.0f));
    EXPECT_NE(a.hashBits(0), b.hashBits(0));
    EXPECT_EQ(a.hashBits(5), b.hashBits(5));
}

TEST(Value, HashBitsTruncationClampsAtMantissaWidth)
{
    const Value a = Value::fromFloat(1.5f);
    // Dropping more than 23 bits must not clobber exponent/sign.
    EXPECT_EQ(a.hashBits(23), a.hashBits(60));
    EXPECT_NE(a.hashBits(60), 0u);
}

TEST(Value, HashBitsDoubleTruncation)
{
    const Value a = Value::fromDouble(2.0);
    const Value b =
        Value::fromDouble(std::nextafter(2.0, 3.0));
    EXPECT_NE(a.hashBits(0), b.hashBits(0));
    EXPECT_EQ(a.hashBits(8), b.hashBits(8));
}

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(-110.0, -100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(5.0, 5.0), 0.0);
}

TEST(RelativeError, ZeroActual)
{
    EXPECT_DOUBLE_EQ(relativeError(0.0, 0.0), 0.0);
    EXPECT_TRUE(std::isinf(relativeError(0.001, 0.0)));
}

TEST(RelativeError, NanYieldsInfinity)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isinf(relativeError(nan, 1.0)));
    EXPECT_TRUE(std::isinf(relativeError(1.0, nan)));
}

TEST(Window, ZeroWindowIsExactMatch)
{
    const Value a = Value::fromFloat(1.0f);
    const Value b = Value::fromFloat(std::nextafterf(1.0f, 2.0f));
    EXPECT_TRUE(withinWindow(a, a, 0.0));
    EXPECT_FALSE(withinWindow(a, b, 0.0));
}

TEST(Window, TenPercentWindow)
{
    const Value actual = Value::fromDouble(100.0);
    EXPECT_TRUE(withinWindow(Value::fromDouble(109.9), actual, 0.10));
    EXPECT_TRUE(withinWindow(Value::fromDouble(90.1), actual, 0.10));
    EXPECT_FALSE(withinWindow(Value::fromDouble(110.2), actual, 0.10));
    EXPECT_FALSE(withinWindow(Value::fromDouble(89.8), actual, 0.10));
}

TEST(Window, InfiniteWindowAcceptsEverything)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(withinWindow(Value::fromDouble(1e30),
                             Value::fromDouble(-1.0), inf));
}

TEST(Window, IntegerWindow)
{
    const Value actual = Value::fromInt(100);
    EXPECT_TRUE(withinWindow(Value::fromInt(105), actual, 0.10));
    EXPECT_FALSE(withinWindow(Value::fromInt(115), actual, 0.10));
}

TEST(Estimators, AverageOfFloats)
{
    const std::vector<Value> vals = {
        Value::fromFloat(1.0f), Value::fromFloat(2.0f),
        Value::fromFloat(3.0f), Value::fromFloat(6.0f)};
    const Value avg = averageOf(vals);
    EXPECT_EQ(avg.kind(), ValueKind::Float32);
    EXPECT_FLOAT_EQ(avg.asFloat(), 3.0f);
}

TEST(Estimators, AverageOfIntsRounds)
{
    const std::vector<Value> vals = {Value::fromInt(1),
                                     Value::fromInt(2)};
    EXPECT_EQ(averageOf(vals).asInt(), 2); // 1.5 rounds to 2
}

TEST(Estimators, LastReturnsNewest)
{
    const std::vector<Value> vals = {Value::fromInt(1),
                                     Value::fromInt(9)};
    EXPECT_EQ(lastOf(vals).asInt(), 9);
}

TEST(Estimators, StrideExtrapolates)
{
    const std::vector<Value> vals = {
        Value::fromDouble(10.0), Value::fromDouble(20.0),
        Value::fromDouble(30.0)};
    EXPECT_DOUBLE_EQ(strideOf(vals).asDouble(), 40.0);
}

TEST(Estimators, StrideSingleValueIsIdentity)
{
    const std::vector<Value> vals = {Value::fromDouble(5.0)};
    EXPECT_DOUBLE_EQ(strideOf(vals).asDouble(), 5.0);
}

/** Property sweep: the window test is symmetric in sign and scales
 *  with the magnitude of the actual value. */
class WindowProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(WindowProperty, ScalesWithMagnitude)
{
    const double mag = GetParam();
    const Value actual = Value::fromDouble(mag);
    const Value inside = Value::fromDouble(mag * 1.09);
    const Value outside = Value::fromDouble(mag * 1.11);
    EXPECT_TRUE(withinWindow(inside, actual, 0.10)) << mag;
    EXPECT_FALSE(withinWindow(outside, actual, 0.10)) << mag;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, WindowProperty,
                         ::testing::Values(1e-6, 0.5, 1.0, 42.0, 1e12,
                                           -1e-6, -7.0, -1e12));

} // namespace
} // namespace lva
