/**
 * @file
 * Unit tests for the MSI directory.
 */

#include <gtest/gtest.h>

#include "sim/directory.hh"

namespace lva {
namespace {

constexpr Addr blk = 0x4000;

TEST(Directory, StartsInvalid)
{
    Directory dir;
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Invalid);
    EXPECT_EQ(dir.find(blk), nullptr);
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(Directory, ReadFillMakesShared)
{
    Directory dir;
    dir.addSharer(blk, 0);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Shared);
    EXPECT_TRUE(dir.isSharer(blk, 0));
    EXPECT_FALSE(dir.isSharer(blk, 1));
    dir.addSharer(blk, 2);
    EXPECT_TRUE(dir.isSharer(blk, 2));
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Shared);
}

TEST(Directory, WriteMakesModifiedSingleOwner)
{
    Directory dir;
    dir.addSharer(blk, 0);
    dir.addSharer(blk, 1);
    dir.setOwner(blk, 2);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Modified);
    EXPECT_TRUE(dir.isSharer(blk, 2));
    // Single-writer invariant: previous sharers are gone.
    EXPECT_FALSE(dir.isSharer(blk, 0));
    EXPECT_FALSE(dir.isSharer(blk, 1));
    EXPECT_EQ(dir.find(blk)->owner, 2u);
}

TEST(Directory, DowngradeKeepsSharer)
{
    Directory dir;
    dir.setOwner(blk, 1);
    dir.downgrade(blk);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Shared);
    EXPECT_TRUE(dir.isSharer(blk, 1));
    EXPECT_EQ(dir.stats().downgrades.value(), 1u);
}

TEST(Directory, ReadFillByOwnerDemotesToShared)
{
    Directory dir;
    dir.setOwner(blk, 1);
    dir.addSharer(blk, 1);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Shared);
}

TEST(Directory, RemoveSharerToInvalid)
{
    Directory dir;
    dir.addSharer(blk, 0);
    dir.addSharer(blk, 1);
    dir.removeSharer(blk, 0);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Shared);
    dir.removeSharer(blk, 1);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Invalid);
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(Directory, RemoveOwnerClearsOwnership)
{
    Directory dir;
    dir.setOwner(blk, 3);
    dir.removeSharer(blk, 3);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Invalid);
}

TEST(Directory, ClearDropsBlock)
{
    Directory dir;
    dir.addSharer(blk, 0);
    dir.addSharer(blk + 64, 1);
    dir.clear(blk);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Invalid);
    EXPECT_EQ(dir.stateOf(blk + 64), CoherenceState::Shared);
}

TEST(Directory, RemoveSharerOnUnknownBlockIsNoOp)
{
    Directory dir;
    dir.removeSharer(0x9999, 0); // must not crash or create state
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(Directory, IndependentBlocks)
{
    Directory dir;
    dir.setOwner(blk, 0);
    dir.addSharer(blk + 64, 1);
    EXPECT_EQ(dir.stateOf(blk), CoherenceState::Modified);
    EXPECT_EQ(dir.stateOf(blk + 64), CoherenceState::Shared);
}

} // namespace
} // namespace lva
