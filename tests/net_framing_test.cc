/**
 * @file
 * Transport + framing tests for util/net: frame round-trips over a
 * real loopback connection, malformed-frame rejection (bad magic,
 * oversize length, truncation mid-frame), clean-EOF detection at
 * frame boundaries, and deadline expiry.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/net.hh"

namespace lva {
namespace {

/** A connected (client, server) stream pair over loopback. */
struct Pair
{
    TcpStream client;
    TcpStream server;
};

Pair
loopbackPair(TcpListener &listener)
{
    Pair p;
    p.client =
        TcpStream::connectTo("127.0.0.1", listener.port(), 2000);
    p.server = listener.acceptOne(2000);
    EXPECT_TRUE(p.client.valid());
    EXPECT_TRUE(p.server.valid());
    return p;
}

TEST(NetFraming, RoundTripSmallEmptyAndBinary)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    const std::vector<std::string> payloads = {
        "{\"op\":\"ping\"}",
        "",
        std::string("\x00\x01\xff\x7f bytes", 13),
    };
    for (const std::string &sent : payloads) {
        writeFrame(p.client, sent, 1000);
        std::string got;
        ASSERT_TRUE(readFrame(p.server, got, 1000));
        EXPECT_EQ(got, sent);
    }
}

TEST(NetFraming, RoundTripLargePayload)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    // Larger than any socket buffer, so both sides must loop; the
    // writer runs on its own thread while this thread drains.
    std::string sent(2u * 1024 * 1024, 'x');
    for (std::size_t i = 0; i < sent.size(); i += 4099)
        sent[i] = static_cast<char>('a' + (i % 26));

    std::thread writer(
        [&] { writeFrame(p.client, sent, 10000); });
    std::string got;
    ASSERT_TRUE(readFrame(p.server, got, 10000));
    writer.join();
    EXPECT_EQ(got, sent);
}

TEST(NetFraming, CleanEofAtFrameBoundaryReturnsFalse)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    writeFrame(p.client, "last", 1000);
    p.client.close();

    std::string got;
    ASSERT_TRUE(readFrame(p.server, got, 1000));
    EXPECT_EQ(got, "last");
    EXPECT_FALSE(readFrame(p.server, got, 1000));
}

TEST(NetFraming, BadMagicIsRejected)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    const char junk[8] = {'B', 'A', 'D', '!', 0, 0, 0, 1};
    p.client.sendAll(junk, sizeof(junk), 1000);
    std::string got;
    EXPECT_THROW(readFrame(p.server, got, 1000), NetError);
}

TEST(NetFraming, OversizeLengthIsRejectedBeforeAllocation)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    // Header advertising ~4 GiB: must be refused by the length check,
    // not by an attempted allocation.
    const unsigned char hdr[8] = {'L', 'V', 'A', '1',
                                  0xff, 0xff, 0xff, 0xff};
    p.client.sendAll(hdr, sizeof(hdr), 1000);
    std::string got;
    EXPECT_THROW(readFrame(p.server, got, 1000), NetError);
}

TEST(NetFraming, OversizePayloadIsRefusedOnSend)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    EXPECT_THROW(
        writeFrame(p.client,
                   std::string(frameMaxBytes() + 1, 'x'), 1000),
        NetError);
}

TEST(NetFraming, TruncatedHeaderIsAnError)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    // 3 of the 8 header bytes, then EOF: not a frame boundary.
    p.client.sendAll("LVA", 3, 1000);
    p.client.close();
    std::string got;
    EXPECT_THROW(readFrame(p.server, got, 1000), NetError);
}

TEST(NetFraming, TruncatedPayloadIsAnError)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    const unsigned char hdr[8] = {'L', 'V', 'A', '1', 0, 0, 0, 10};
    p.client.sendAll(hdr, sizeof(hdr), 1000);
    p.client.sendAll("half", 4, 1000);
    p.client.close();
    std::string got;
    EXPECT_THROW(readFrame(p.server, got, 1000), NetError);
}

TEST(NetFraming, ReadDeadlineExpires)
{
    TcpListener listener(0);
    Pair p = loopbackPair(listener);

    // Nothing ever arrives: the read must give up, not block.
    std::string got;
    EXPECT_THROW(readFrame(p.server, got, 50), NetError);
}

TEST(NetFraming, AcceptTimesOutWithoutAConnection)
{
    TcpListener listener(0);
    TcpStream conn = listener.acceptOne(50);
    EXPECT_FALSE(conn.valid());
}

TEST(NetFraming, ConnectToClosedPortFails)
{
    // Bind then immediately close, so the port is (briefly) known
    // dead; the connect must fail, not hang.
    u16 dead_port = 0;
    {
        TcpListener listener(0);
        dead_port = listener.port();
    }
    EXPECT_THROW(TcpStream::connectTo("127.0.0.1", dead_port, 500),
                 NetError);
}

TEST(NetFraming, EphemeralPortIsResolved)
{
    TcpListener listener(0);
    EXPECT_GT(listener.port(), 0);
}

} // namespace
} // namespace lva
