/**
 * @file
 * Tests for the StatDump framework, the component stat reports and
 * the versioned lva-stats-v1 JSON export.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "eval/stat_report.hh"
#include "util/results_dir.hh"
#include "util/stats_json.hh"

namespace lva {
namespace {

TEST(StatDump, AddAndLookup)
{
    StatDump dump;
    dump.add("a.b", 3.0, "a thing");
    dump.add("a.c", 4.5);
    EXPECT_DOUBLE_EQ(dump.valueOf("a.b"), 3.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("a.c"), 4.5);
    EXPECT_DOUBLE_EQ(dump.valueOf("missing"), 0.0);
    EXPECT_EQ(dump.entries().size(), 2u);
}

TEST(StatDump, FileOutputIsGem5Style)
{
    const std::string path = "test_stats_out.txt";
    StatDump dump;
    dump.add("sys.cycles", 1234, "total cycles");
    dump.add("sys.ipc", 2.5, "aggregate IPC");
    dump.writeFile(path);

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    EXPECT_NE(text.find("sys.cycles"), std::string::npos);
    EXPECT_NE(text.find("1234"), std::string::npos);
    EXPECT_NE(text.find("# total cycles"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(StatReport, ApproxMemoryReportMatchesMetrics)
{
    ApproxMemory::Config cfg;
    cfg.threads = 2;
    cfg.cache = CacheConfig{1024, 2, 64};
    cfg.approx.valueDelay = 0;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x10000, Value::fromInt(1), true);
    mem.load(0, 0x400, 0x20000, Value::fromInt(1), true);
    mem.tickInstructions(1, 98);

    const StatDump dump = reportApproxMemory(mem, "p1");
    const MemMetrics m = mem.metrics();
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.instructions"),
                     static_cast<double>(m.instructions));
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.loadMisses"),
                     static_cast<double>(m.loadMisses));
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.mpki"), m.mpki());
    // Per-thread breakdown present.
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread0.l1.misses"), 2.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread1.l1.misses"), 0.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread0.lva.lookups"), 2.0);
}

TEST(StatReport, FullSystemReportMatchesResult)
{
    FullSystemSim sim(FullSystemConfig::lva(2));
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < 12; ++i) {
        TraceEvent ev;
        ev.addr = 0x100000 + i * 0x10040;
        ev.value = Value::fromInt(9);
        ev.pc = 0x400;
        ev.instrBefore = 5;
        ev.isLoad = true;
        ev.approximable = true;
        traces[0].push_back(ev);
    }
    const FullSystemResult r = sim.run(traces);
    const StatDump dump = reportFullSystem(r, "sys");
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.cycles"), r.cycles);
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.l1Misses"),
                     static_cast<double>(r.l1Misses));
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.energy.total"),
                     r.energy.total());
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.missEdp"), r.missEdp());
}

namespace {

/** Two labelled snapshots with every stat type represented. */
std::vector<NamedSnapshot>
sampleSnapshots()
{
    StatRegistry reg(0);
    reg.counter("l1.misses", "L1 misses").inc(464);
    reg.gauge("eval.mpki", "effective MPKI", "misses/kinstr").set(3.5);
    reg.histogram("lva.error", 0.0, 1.0, 4, "relative error")
        .sample(0.25);
    std::vector<NamedSnapshot> snaps;
    snaps.push_back({"baseline", "canneal", reg.snapshot()});
    reg.counter("l1.misses").inc(36);
    snaps.push_back({"lva-d4", "canneal", reg.snapshot()});
    return snaps;
}

} // namespace

TEST(StatsJson, RenderCarriesSchemaDriverAndPoints)
{
    const std::string json = renderStatsJson("unit_test",
                                             sampleSnapshots());
    EXPECT_NE(json.find(std::string("\"schema\": \"") +
                        statsJsonSchema() + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"driver\": \"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"lva-d4\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"canneal\""), std::string::npos);
    EXPECT_NE(json.find("\"l1.misses\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 500"), std::string::npos);
    // Histograms export their geometry and buckets.
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    // Identical input renders identical bytes.
    EXPECT_EQ(json, renderStatsJson("unit_test", sampleSnapshots()));
}

TEST(StatsJson, SchemaCheckRejectsForeignFilePassesOwn)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "lva_schema_check_test";
    fs::create_directories(dir);
    const std::string missing = (dir / "never_written.json").string();
    EXPECT_NO_THROW(checkStatsFileSchema(missing));

    const std::string foreign = (dir / "foreign.json").string();
    std::ofstream(foreign)
        << "{\n  \"schema\": \"lva-stats-v999\",\n  \"points\": []\n}\n";
    EXPECT_THROW(checkStatsFileSchema(foreign), std::runtime_error);

    const std::string untagged = (dir / "untagged.json").string();
    std::ofstream(untagged) << "{\n  \"points\": []\n}\n";
    EXPECT_THROW(checkStatsFileSchema(untagged), std::runtime_error);

    const std::string own = (dir / "own.json").string();
    std::ofstream(own) << renderStatsJson("own", sampleSnapshots());
    EXPECT_NO_THROW(checkStatsFileSchema(own));
    fs::remove_all(dir);
}

TEST(StatsJson, WriteHonorsResultsDirOverride)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "lva_results_dir_test";
    fs::remove_all(dir);
    setenv("LVA_RESULTS_DIR", dir.c_str(), 1);

    const std::string written =
        writeStatsJson("unit_test", sampleSnapshots());
    EXPECT_EQ(written, (dir / "stats" / "unit_test.json").string());
    ASSERT_TRUE(fs::exists(written));

    std::ifstream in(written);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), renderStatsJson("unit_test", sampleSnapshots()));

    // A foreign-schema file at the target path must error, not be
    // truncated.
    std::ofstream(written) << "{\n  \"schema\": \"lva-stats-v0\"\n}\n";
    EXPECT_THROW(writeStatsJson("unit_test", sampleSnapshots()),
                 std::runtime_error);
    std::ifstream again(written);
    std::stringstream ss2;
    ss2 << again.rdbuf();
    EXPECT_NE(ss2.str().find("lva-stats-v0"), std::string::npos);

    unsetenv("LVA_RESULTS_DIR");
    fs::remove_all(dir);
}

} // namespace
} // namespace lva
