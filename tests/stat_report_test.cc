/**
 * @file
 * Tests for the StatDump framework and the component stat reports.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/stat_report.hh"

namespace lva {
namespace {

TEST(StatDump, AddAndLookup)
{
    StatDump dump;
    dump.add("a.b", 3.0, "a thing");
    dump.add("a.c", 4.5);
    EXPECT_DOUBLE_EQ(dump.valueOf("a.b"), 3.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("a.c"), 4.5);
    EXPECT_DOUBLE_EQ(dump.valueOf("missing"), 0.0);
    EXPECT_EQ(dump.entries().size(), 2u);
}

TEST(StatDump, FileOutputIsGem5Style)
{
    const std::string path = "test_stats_out.txt";
    StatDump dump;
    dump.add("sys.cycles", 1234, "total cycles");
    dump.add("sys.ipc", 2.5, "aggregate IPC");
    dump.writeFile(path);

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    EXPECT_NE(text.find("sys.cycles"), std::string::npos);
    EXPECT_NE(text.find("1234"), std::string::npos);
    EXPECT_NE(text.find("# total cycles"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(StatReport, ApproxMemoryReportMatchesMetrics)
{
    ApproxMemory::Config cfg;
    cfg.threads = 2;
    cfg.cache = CacheConfig{1024, 2, 64};
    cfg.approx.valueDelay = 0;
    ApproxMemory mem(cfg);
    mem.load(0, 0x400, 0x10000, Value::fromInt(1), true);
    mem.load(0, 0x400, 0x20000, Value::fromInt(1), true);
    mem.tickInstructions(1, 98);

    const StatDump dump = reportApproxMemory(mem, "p1");
    const MemMetrics m = mem.metrics();
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.instructions"),
                     static_cast<double>(m.instructions));
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.loadMisses"),
                     static_cast<double>(m.loadMisses));
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.mpki"), m.mpki());
    // Per-thread breakdown present.
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread0.l1.misses"), 2.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread1.l1.misses"), 0.0);
    EXPECT_DOUBLE_EQ(dump.valueOf("p1.thread0.lva.lookups"), 2.0);
}

TEST(StatReport, FullSystemReportMatchesResult)
{
    FullSystemSim sim(FullSystemConfig::lva(2));
    std::vector<ThreadTrace> traces(4);
    for (u32 i = 0; i < 12; ++i) {
        TraceEvent ev;
        ev.addr = 0x100000 + i * 0x10040;
        ev.value = Value::fromInt(9);
        ev.pc = 0x400;
        ev.instrBefore = 5;
        ev.isLoad = true;
        ev.approximable = true;
        traces[0].push_back(ev);
    }
    const FullSystemResult r = sim.run(traces);
    const StatDump dump = reportFullSystem(r, "sys");
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.cycles"), r.cycles);
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.l1Misses"),
                     static_cast<double>(r.l1Misses));
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.energy.total"),
                     r.energy.total());
    EXPECT_DOUBLE_EQ(dump.valueOf("sys.missEdp"), r.missEdp());
}

} // namespace
} // namespace lva
