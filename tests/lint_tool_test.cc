/**
 * @file
 * lva-lint rule engine tests: every rule fires on its fixture under
 * tests/lint_fixtures/, suppression comments silence findings, clean
 * files come back empty (the binary's exit-0 path), and the path
 * scoping matches the catalog.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint_core.hh"

namespace {

using lva::lint::Finding;
using lva::lint::lintSource;
using lva::lint::ruleCatalog;

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(LVA_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** (rule, line) pairs for compact whole-file assertions. */
std::multiset<std::pair<std::string, int>>
hits(const std::vector<Finding> &findings)
{
    std::multiset<std::pair<std::string, int>> out;
    for (const auto &f : findings)
        out.insert({f.rule, f.line});
    return out;
}

TEST(LintCatalog, ListsEveryRuleExactlyOnce)
{
    std::set<std::string> ids;
    for (const auto &r : ruleCatalog()) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate " << r.id;
        EXPECT_FALSE(r.summary.empty());
        EXPECT_FALSE(r.scope.empty());
    }
    const std::set<std::string> expected = {
        lva::lint::kNoRand, lva::lint::kNoWallClock,
        lva::lint::kNoUnorderedIteration,
        lva::lint::kNoPointerKeyedOrdered, lva::lint::kNoMutableGlobal,
        lva::lint::kHotPathAlloc, lva::lint::kBadAllowFence};
    EXPECT_EQ(ids, expected);
}

TEST(LintRules, RandFixtureFiresPerCallSite)
{
    const auto findings =
        lintSource("src/core/fixture.cc", readFixture("rand_hazards.cc"));
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoRand, 9},
        {lva::lint::kNoRand, 10},
        {lva::lint::kNoRand, 11},
        {lva::lint::kNoRand, 12},
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintRules, WallClockFixtureFiresPerReadButNotSteadyClock)
{
    const auto findings = lintSource("bench/fixture.cc",
                                     readFixture("wall_clock_hazards.cc"));
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoWallClock, 8},
        {lva::lint::kNoWallClock, 9},
        {lva::lint::kNoWallClock, 11},
        {lva::lint::kNoWallClock, 12},
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintRules, UnorderedIterationFiresOnlyOnExportPaths)
{
    const std::string src = readFixture("unordered_iteration.cc");

    // On an export path both iteration sites fire; the find()/end()
    // point lookup does not.
    const auto exported = lintSource("src/eval/fixture.cc", src);
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoUnorderedIteration, 18},
        {lva::lint::kNoUnorderedIteration, 26},
    };
    EXPECT_EQ(hits(exported), expected);

    // The same text elsewhere in the tree is out of the rule's scope.
    EXPECT_TRUE(lintSource("src/sim/fixture.cc", src).empty());

    // src/util/stat* export plumbing is in scope too.
    EXPECT_EQ(hits(lintSource("src/util/stat_dump_fixture.cc", src)),
              expected);
}

TEST(LintRules, PointerKeyedOrderedFixture)
{
    const auto findings =
        lintSource("src/noc/fixture.cc", readFixture("pointer_keyed.cc"));
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoPointerKeyedOrdered, 11},
        {lva::lint::kNoPointerKeyedOrdered, 12},
        {lva::lint::kNoPointerKeyedOrdered, 13},
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintRules, MutableStaticFixtureSkipsConstAndFunctions)
{
    const std::string src = readFixture("mutable_static.cc");
    const auto findings = lintSource("src/mem/fixture.cc", src);
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoMutableGlobal, 6},
        {lva::lint::kNoMutableGlobal, 7},
        {lva::lint::kNoMutableGlobal, 12},
    };
    EXPECT_EQ(hits(findings), expected);

    // util/ owns its synchronisation; the rule is scoped out there.
    EXPECT_TRUE(lintSource("src/util/fixture.cc", src).empty());
}

TEST(LintRules, HotPathAllocFiresOnlyInsideFences)
{
    const auto findings = lintSource("src/core/fixture.cc",
                                     readFixture("hot_path_alloc.cc"));
    // Identical push_back calls outside the fence (lines 6 and 21)
    // never fire; line 18's is silenced by the allow comment.
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kHotPathAlloc, 10}, // push_back
        {lva::lint::kHotPathAlloc, 11}, // emplace_back
        {lva::lint::kHotPathAlloc, 12}, // std::deque
        {lva::lint::kHotPathAlloc, 13}, // std::string
        {lva::lint::kHotPathAlloc, 14}, // new
        {lva::lint::kHotPathAlloc, 15}, // snapshot()
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintRules, HotPathFenceWithoutEndRunsToEof)
{
    const std::string src = "// lva-hot-path: begin\n"
                            "void f(std::vector<int> &v) { v.push_back(1); }\n"
                            "void g(std::vector<int> &v) { v.resize(9); }\n";
    EXPECT_EQ(hits(lintSource("src/core/f.cc", src)),
              (std::multiset<std::pair<std::string, int>>{
                  {lva::lint::kHotPathAlloc, 2},
                  {lva::lint::kHotPathAlloc, 3}}));

    // No markers at all: the rule never looks at the file.
    EXPECT_TRUE(
        lintSource("src/core/g.cc",
                   "void h(std::vector<int> &v) { v.push_back(1); }\n")
            .empty());
}

TEST(LintSuppression, AllowCommentsSilenceEveryRule)
{
    // Linted on an export path so all five rules are in scope; the
    // fixture suppresses each finding (same-line, previous-line and
    // allow(all) forms) so the file must come back clean.
    const auto findings =
        lintSource("src/eval/fixture.cc", readFixture("suppressed.cc"));
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unsuppressed, first: " << findings[0].rule
        << " at line " << findings[0].line;
}

TEST(LintSuppression, AllowOnlyCoversItsOwnRuleAndLine)
{
    const std::string src = "// lva-lint: allow(no-wall-clock)\n"
                            "int x = rand();\n"
                            "int y = rand();\n";
    const auto findings = lintSource("src/core/f.cc", src);
    // Wrong rule name in the allow → both call sites still fire.
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoRand, 2},
        {lva::lint::kNoRand, 3},
    };
    EXPECT_EQ(hits(findings), expected);

    // Right rule, but two lines above the second call site: only the
    // adjacent line is covered.
    const std::string src2 = "// lva-lint: allow(no-rand)\n"
                             "int x = rand();\n"
                             "int y = rand();\n";
    EXPECT_EQ(hits(lintSource("src/core/f.cc", src2)),
              (std::multiset<std::pair<std::string, int>>{
                  {lva::lint::kNoRand, 3}}));
}

TEST(LintSuppression, BlockFenceCoversOnlyTheFencedRegion)
{
    const auto findings = lintSource("src/core/fixture.cc",
                                     readFixture("block_allow.cc"));
    // Inside the begin-allow/end-allow fence the rand() is silenced;
    // the identical hazard after the fence still fires, and balanced
    // fences produce no hygiene findings.
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kNoRand, 16},
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintSuppression, UnbalancedFencesAreFindings)
{
    const auto findings = lintSource("src/core/fixture.cc",
                                     readFixture("bad_fence.cc"));
    // Stray end-allow (line 5) and unclosed begin-allow (line 7) are
    // both bad-allow-fence findings; an unclosed fence deliberately
    // suppresses nothing, so the rand() at line 11 fires too.
    const std::multiset<std::pair<std::string, int>> expected = {
        {lva::lint::kBadAllowFence, 5},
        {lva::lint::kBadAllowFence, 7},
        {lva::lint::kNoRand, 11},
    };
    EXPECT_EQ(hits(findings), expected);
}

TEST(LintSuppression, FencesNestAndTrackTheirOwnRules)
{
    const std::string src = "// lva-lint: begin-allow(no-rand)\n"
                            "// lva-lint: begin-allow(no-wall-clock)\n"
                            "int a = rand();\n"
                            "long b = time(nullptr);\n"
                            "// lva-lint: end-allow\n"
                            "long c = time(nullptr);\n"
                            "// lva-lint: end-allow\n";
    // The inner fence covers lines 2-5 (wall clock), the outer one
    // lines 1-7 (rand): line 6's wall-clock read is outside its
    // fence and fires.
    EXPECT_EQ(hits(lintSource("src/core/f.cc", src)),
              (std::multiset<std::pair<std::string, int>>{
                  {lva::lint::kNoWallClock, 6}}));
}

TEST(LintClean, CleanFixtureAndExitSemantics)
{
    // Empty findings <=> the lva_lint binary exits 0 for this file.
    EXPECT_TRUE(
        lintSource("src/eval/fixture.cc", readFixture("clean.cc")).empty());
    EXPECT_TRUE(lintSource("src/core/empty.cc", "").empty());
}

TEST(LintStripping, CommentsAndStringsNeverFire)
{
    const std::string src =
        "// rand() time(nullptr) system_clock\n"
        "/* std::random_device in a block comment\n"
        "   spanning lines */\n"
        "const char *a = \"rand() inside a string\";\n"
        "const char *b = R\"(raw rand() srand() string)\";\n"
        "char c = '\\'';\n";
    EXPECT_TRUE(lintSource("src/core/f.cc", src).empty());
}

TEST(LintStripping, CodeAfterCommentOnSameLineStillFires)
{
    const std::string src = "int x = rand(); // seeded below, honest\n";
    EXPECT_EQ(hits(lintSource("src/core/f.cc", src)),
              (std::multiset<std::pair<std::string, int>>{
                  {lva::lint::kNoRand, 1}}));
}

TEST(LintFindings, AreSortedAndCarryThePath)
{
    const std::string src = "int a = rand();\n"
                            "static int hits = 0;\n";
    const auto findings = lintSource("bench/f.cc", src);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].line, 1);
    EXPECT_EQ(findings[0].rule, lva::lint::kNoRand);
    EXPECT_EQ(findings[1].line, 2);
    EXPECT_EQ(findings[1].rule, lva::lint::kNoMutableGlobal);
    for (const auto &f : findings) {
        EXPECT_EQ(f.file, "bench/f.cc");
        EXPECT_FALSE(f.message.empty());
    }
}

} // namespace
