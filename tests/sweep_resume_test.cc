/**
 * @file
 * Cross-process crash/resume acceptance test: kill the helper sweep
 * binary after K of N points via an injected abort (a real process
 * exit, no unwinding), restart it with --resume, and require the
 * final stats export to be byte-identical to an uninterrupted run —
 * for both the serial path and a 4-worker pool.
 *
 * The helper path arrives via the LVA_CRASH_HELPER compile
 * definition; faults and knobs travel through the child environment.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "util/fault.hh"

namespace lva {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Run the helper with the given env prefix + args; exit status. */
int
runHelper(const std::string &env, const std::string &args)
{
    const std::string cmd = env + " '" + LVA_CRASH_HELPER + "' " +
                            args + " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

class SweepResumeTest : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        base_ = fs::temp_directory_path() /
                ("lva_resume_j" + std::to_string(GetParam()));
        fs::remove_all(base_);
    }

    void TearDown() override { fs::remove_all(base_); }

    std::string
    env(const fs::path &dir, const std::string &extra = "") const
    {
        return "LVA_RESULTS_DIR='" + dir.string() + "' LVA_JOBS=" +
               std::to_string(GetParam()) +
               (extra.empty() ? "" : " " + extra);
    }

    fs::path base_;
};

TEST_P(SweepResumeTest, CrashAtPointKThenResumeIsByteIdentical)
{
    const fs::path ref_dir = base_ / "ref";
    const fs::path crash_dir = base_ / "crash";
    const fs::path stats = "stats/sweep_crash_helper.json";
    const fs::path manifest = "checkpoints/sweep_crash_helper.jsonl";

    // Reference: a clean, uninterrupted run.
    ASSERT_EQ(runHelper(env(ref_dir), ""), 0);
    const std::string ref = slurp(ref_dir / stats);
    ASSERT_FALSE(ref.empty());

    // Kill the process the moment point 2 starts: _Exit, mid-sweep.
    ASSERT_EQ(runHelper(env(crash_dir,
                            "LVA_FAULT='sweep.point.2=abort'"),
                        "--checkpoint"),
              faultExitCode());
    // The crash happened before the export could be written, but the
    // manifest recorded the durable progress.
    EXPECT_FALSE(fs::exists(crash_dir / stats));
    ASSERT_TRUE(fs::exists(crash_dir / manifest));

    // Restart with --resume: completed points come from the manifest,
    // the rest run now, and the bytes match the reference exactly.
    ASSERT_EQ(runHelper(env(crash_dir), "--resume"), 0);
    EXPECT_EQ(slurp(crash_dir / stats), ref);
}

TEST_P(SweepResumeTest, PermanentFailureStillExportsTheRest)
{
    const fs::path dir = base_ / "partial";
    const fs::path stats = dir / "stats/sweep_crash_helper.json";

    // One permanently failing point: the sweep finishes degraded
    // (exit 3), the other three points export, and the failure is
    // recorded structurally.
    ASSERT_EQ(runHelper(env(dir, "LVA_FAULT='sweep.point.1=throw'"),
                        ""),
              3);
    const std::string out = slurp(stats);
    ASSERT_FALSE(out.empty());
    EXPECT_NE(out.find("\"failures\": ["), std::string::npos);
    EXPECT_NE(out.find("injected fault at sweep.point.1"),
              std::string::npos);
    EXPECT_NE(out.find("\"label\": \"deg0\""), std::string::npos);
    EXPECT_NE(out.find("\"label\": \"deg4\""), std::string::npos);
    EXPECT_NE(out.find("\"label\": \"deg8\""), std::string::npos);
    // The failed point exports no snapshot: "deg2" appears exactly
    // once, in its failure record.
    const auto first = out.find("\"label\": \"deg2\"");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("\"label\": \"deg2\"", first + 1),
              std::string::npos);
}

TEST_P(SweepResumeTest, UnknownFlagIsAUsageError)
{
    EXPECT_EQ(runHelper(env(base_ / "usage"), "--bogus"), 2);
}

INSTANTIATE_TEST_SUITE_P(Jobs, SweepResumeTest,
                         ::testing::Values(1, 4));

} // namespace
} // namespace lva
