/**
 * @file
 * Unit tests for the deterministic virtual-address arena.
 */

#include <gtest/gtest.h>

#include "util/arena.hh"

namespace lva {
namespace {

TEST(VirtualArena, BlockAlignedAllocations)
{
    VirtualArena arena(0x1000, 64);
    const Addr a = arena.allocate(10);
    const Addr b = arena.allocate(100);
    const Addr c = arena.allocate(64);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b, 0x1040u); // 10 rounds up to one block
    EXPECT_EQ(c, 0x10c0u); // 100 rounds up to two blocks
    EXPECT_EQ(arena.next(), 0x1100u);
}

TEST(VirtualArena, RegionsNeverShareBlocks)
{
    VirtualArena arena(0, 64);
    Addr prev_end = 0;
    for (int i = 1; i <= 32; ++i) {
        const Addr base = arena.allocate(static_cast<u64>(i * 7));
        EXPECT_EQ(base % 64, 0u);
        EXPECT_GE(base, prev_end);
        prev_end = base + static_cast<u64>(i * 7);
    }
}

TEST(VirtualArena, BytesAllocatedCountsFromConstructionBase)
{
    // The arena remembers the base it was constructed with;
    // bytesAllocated() used to default to the standard base and
    // report garbage for arenas anchored anywhere else.
    VirtualArena arena(0x8000, 64);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    arena.allocate(10); // rounds up to one block
    EXPECT_EQ(arena.bytesAllocated(), 64u);
    arena.allocate(100); // rounds up to two blocks
    EXPECT_EQ(arena.bytesAllocated(), 192u);
    EXPECT_EQ(arena.base(), 0x8000u);
    EXPECT_EQ(arena.next(), arena.base() + arena.bytesAllocated());
}

TEST(VirtualArena, BytesAllocatedAtDefaultBase)
{
    VirtualArena arena;
    arena.allocate(64);
    EXPECT_EQ(arena.bytesAllocated(), 64u);
    EXPECT_EQ(arena.base(), 0x1000'0000u);
}

TEST(VirtualArena, DeterministicAcrossInstances)
{
    VirtualArena a;
    VirtualArena b;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.allocate(100), b.allocate(100));
}

} // namespace
} // namespace lva
