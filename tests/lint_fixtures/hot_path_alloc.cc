// Fixture for the hot-path-alloc rule: allocation-prone constructs
// are flagged only between lva-hot-path begin/end markers.
#include <vector>

std::vector<int> before;
void outside_before() { before.push_back(1); } // not fenced: fine

// lva-hot-path: begin (fixture fence)
std::vector<int> inside;
void hot_grow() { inside.push_back(2); }
void hot_emplace() { inside.emplace_back(3); }
std::deque<int> hot_queue;
std::string hot_name;
int *hot_leak() { return new int(4); }
void hot_copy(const HistoryBuffer &b) { auto s = b.snapshot(); }
void hot_fine(int x) { inside[0] = x; } // in-place write: fine
// lva-lint: allow(hot-path-alloc)
void hot_tolerated() { inside.push_back(5); }
// lva-hot-path: end

void outside_after() { before.push_back(6); } // fence closed: fine
