// lva-lint fixture: every banned RNG entry point.  Never compiled;
// consumed by lint_tool_test as text.
#include <cstdlib>
#include <random>

int
noisySeed()
{
    std::srand(42);                       // line 9: no-rand
    std::random_device entropy;           // line 10: no-rand
    const int a = std::rand();            // line 11: no-rand
    const int b = rand();                 // line 12: no-rand
    return a + b + static_cast<int>(entropy());
}

// Mentions in comments or strings must NOT fire:
// rand() srand() std::random_device
const char *kDoc = "call rand() for chaos";
