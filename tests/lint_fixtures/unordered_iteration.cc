// lva-lint fixture: unordered-container iteration on an export path.
// lint_tool_test lints this text under a virtual src/eval/ path (rule
// fires) and a virtual src/sim/ path (rule is scoped out).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Exporter
{
    std::unordered_map<uint64_t, double> histogram;
    std::unordered_set<std::string> names;

    double
    sumInHashOrder() const
    {
        double total = 0.0;
        for (const auto &kv : histogram)       // line 18: iteration
            total += kv.second;
        return total;
    }

    auto
    firstName() const
    {
        return names.begin();                  // line 26: iteration
    }
};

// Point lookups stay legal even on export paths:
inline double
lookup(const Exporter &e, uint64_t key)
{
    const auto it = e.histogram.find(key);
    return it == e.histogram.end() ? 0.0 : it->second;
}
