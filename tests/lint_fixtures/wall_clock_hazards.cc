// lva-lint fixture: wall-clock reads.  Never compiled.
#include <chrono>
#include <ctime>

long
wallClockReads()
{
    const std::time_t now = std::time(nullptr);             // line 8
    const auto sys = std::chrono::system_clock::now();      // line 9
    const auto hr =
        std::chrono::high_resolution_clock::now();          // line 11
    struct tm *parts = localtime(&now);                     // line 12
    return static_cast<long>(now) + parts->tm_sec +
           sys.time_since_epoch().count() +
           hr.time_since_epoch().count();
}

// steady_clock is allowed (bench reporting only):
using ReportingClock = std::chrono::steady_clock;
