// Unbalanced fence fixture: a stray end-allow (line 5) and a
// begin-allow that never closes (line 7) are both findings; an open
// fence suppresses nothing, so the rand() at line 11 still fires.
#include <cstdlib>
// lva-lint: end-allow
int stray();
// lva-lint: begin-allow(no-rand)
int
unclosed()
{
    return std::rand(); // line 11: NOT suppressed
}
