// lva-lint fixture: every hazard class, each suppressed with the
// rule-named allow syntax.  lint_tool_test expects ZERO findings.
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>

int
seededElsewhere()
{
    std::srand(7); // lva-lint: allow(no-rand)
    // lva-lint: allow(no-rand)
    return std::rand();
}

// lva-lint: allow(no-wall-clock)
static const std::time_t kBuildStamp = std::time(nullptr);

// lva-lint: allow(no-pointer-keyed-ordered)
std::map<int *, int> slotByCell;

static int retryBudget = 3; // lva-lint: allow(no-mutable-global)

double
drainInHashOrder(const std::unordered_map<int, double> &stats)
{
    double total = 0.0;
    // Summation is order-insensitive enough here. allow(all) form:
    // lva-lint: allow(all)
    for (const auto &kv : stats)
        total += kv.second;
    return total;
}
