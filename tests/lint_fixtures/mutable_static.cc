// lva-lint fixture: mutable static/global state.  Never compiled.
#include <cstdint>
#include <string>
#include <vector>

static int callCount = 0;                        // line 6: mutable
static std::vector<int> resultCache;             // line 7: mutable

int
countingHelper()
{
    static uint64_t invocations = 0;             // line 12: mutable
    return static_cast<int>(++invocations);
}

// Immutable and function declarations must NOT fire:
static const int kLimit = 64;
static constexpr double kScale = 0.5;

struct Widget
{
    static Widget
    makeDefault();

    static std::string describe(const Widget &w);
};

static int helperDecl(int x);
