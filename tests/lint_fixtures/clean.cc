// lva-lint fixture: deterministic code that must produce no findings,
// including the look-alikes each rule has to NOT match.
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

// Seeded, deterministic PRNG use (mirrors util/random.hh).
struct Rng
{
    uint64_t state;
    uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state;
    }
};

// steady_clock for wall-time *reporting* is allowed.
using Timer = std::chrono::steady_clock;

// Ordered map with a value-type key: iteration order is deterministic.
inline double
sumSorted(const std::map<uint64_t, double> &sorted)
{
    double total = 0.0;
    for (const auto &kv : sorted)
        total += kv.second;
    return total;
}

// Point lookups into an unordered map never observe hash order.
inline double
pointLookup(const std::unordered_map<uint64_t, double> &histo, uint64_t k)
{
    const auto it = histo.find(k);
    return it == histo.end() ? 0.0 : it->second;
}

// Identifier look-alikes: operand(), strand, mytime() are not rand()
// or time().
inline int operand(int x) { return x; }
inline int strand(int x) { return x; }
inline long mytime(long t) { return t; }

// static constants and static member functions are not mutable state.
static constexpr int kWays = 8;
static const char *kName = "clean";

struct Helper
{
    static Helper make();
    static int
    twice(int x)
    {
        return 2 * x;
    }
};

} // namespace fixture
