// Block-scope suppression fixture: the fenced region silences
// no-rand, identical hazards outside the fence still fire.
#include <cstdlib>

// lva-lint: begin-allow(no-rand)
int
insideFence()
{
    return std::rand(); // suppressed by the fence
}
// lva-lint: end-allow

int
outsideFence()
{
    return std::rand(); // line 16: fires
}
