// lva-lint fixture: pointer-keyed ordered containers.  Never compiled.
#include <map>
#include <set>
#include <string>

struct Node
{
    int id;
};

std::map<Node *, int> rankByNode;                 // line 11
std::set<const Node *> visited;                   // line 12
std::multimap<Node *, std::string> labels;        // line 13

// Value-side pointers and stable integer keys are fine:
std::map<int, Node *> nodeById;
std::set<long> seenIds;
