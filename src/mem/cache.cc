#include "mem/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace lva {

CacheStats::CacheStats(StatRegistry &reg, const std::string &prefix)
    : hits(reg.counter(StatRegistry::joinPath(prefix, "hits"),
                       "accesses that found the block resident")),
      misses(reg.counter(StatRegistry::joinPath(prefix, "misses"),
                         "accesses that missed")),
      fetches(reg.counter(StatRegistry::joinPath(prefix, "fetches"),
                          "blocks brought into the cache")),
      evictions(reg.counter(StatRegistry::joinPath(prefix, "evictions"),
                            "blocks displaced by fills")),
      writebacks(reg.counter(StatRegistry::joinPath(prefix, "writebacks"),
                             "dirty blocks written back"))
{
}

Cache::Cache(const CacheConfig &config) : Cache(config, nullptr, "l1")
{
}

Cache::Cache(const CacheConfig &config, StatRegistry &reg,
             const std::string &prefix)
    : Cache(config, &reg, prefix)
{
}

Cache::Cache(const CacheConfig &config, StatRegistry *reg,
             const std::string &prefix)
    : config_(config),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      traceEvict_(StatRegistry::joinPath(prefix, "evict")),
      stats_(*reg_, prefix)
{
    lva_assert(config.blockBytes > 0 &&
               std::has_single_bit(config.blockBytes),
               "block size %u not a power of two", config.blockBytes);
    lva_assert(config.assoc > 0, "associativity must be positive");
    const u64 sets = config.numSets();
    lva_assert(sets > 0 && std::has_single_bit(sets),
               "set count %llu not a power of two",
               static_cast<unsigned long long>(sets));

    blockMask_ = config.blockBytes - 1;
    setShift_ = std::countr_zero(static_cast<u64>(config.blockBytes));
    setMask_ = sets - 1;
    sets_.resize(sets);
    for (auto &set : sets_)
        set.ways.resize(config.assoc);
}

Cache::Set &
Cache::setFor(Addr addr)
{
    return sets_[(addr >> setShift_) & setMask_];
}

const Cache::Set &
Cache::setFor(Addr addr) const
{
    return sets_[(addr >> setShift_) & setMask_];
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = blockAlign(addr);
    for (const auto &way : setFor(addr).ways)
        if (way.tag == tag)
            return true;
    return false;
}

bool
Cache::access(Addr addr, bool is_write)
{
    const Addr tag = blockAlign(addr);
    for (auto &way : setFor(addr).ways) {
        if (way.tag == tag) {
            way.lastUse = ++useClock_;
            way.dirty = way.dirty || is_write;
            stats_.hits.inc();
            return true;
        }
    }
    stats_.misses.inc();
    return false;
}

Addr
Cache::insert(Addr addr, bool is_write)
{
    const Addr tag = blockAlign(addr);
    Set &set = setFor(addr);

    for (auto &way : set.ways) {
        if (way.tag == tag) {
            // Already resident: refresh recency only.
            way.lastUse = ++useClock_;
            way.dirty = way.dirty || is_write;
            return invalidAddr;
        }
    }

    // Victim: first empty way, otherwise the least recently used.
    Way *victim = nullptr;
    for (auto &way : set.ways) {
        if (way.tag == invalidAddr) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    lva_assert(victim != nullptr, "set has no ways");

    stats_.fetches.inc();
    Addr evicted = invalidAddr;
    if (victim->tag != invalidAddr) {
        evicted = victim->tag;
        stats_.evictions.inc();
        reg_->trace(traceEvict_, static_cast<double>(evicted));
        if (victim->dirty)
            stats_.writebacks.inc();
    }
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    victim->dirty = is_write;
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr tag = blockAlign(addr);
    for (auto &way : setFor(addr).ways) {
        if (way.tag == tag) {
            if (way.dirty)
                stats_.writebacks.inc();
            way.tag = invalidAddr;
            way.dirty = false;
            return true;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (auto &set : sets_)
        for (auto &way : set.ways)
            way = Way{};
    useClock_ = 0;
}

u64
Cache::residentBlocks() const
{
    u64 count = 0;
    for (const auto &set : sets_)
        for (const auto &way : set.ways)
            if (way.tag != invalidAddr)
                ++count;
    return count;
}

} // namespace lva
