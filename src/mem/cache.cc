#include "mem/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace lva {

CacheStats::CacheStats(StatRegistry &reg, const std::string &prefix)
    : hits(reg.counter(StatRegistry::joinPath(prefix, "hits"),
                       "accesses that found the block resident")),
      misses(reg.counter(StatRegistry::joinPath(prefix, "misses"),
                         "accesses that missed")),
      fetches(reg.counter(StatRegistry::joinPath(prefix, "fetches"),
                          "blocks brought into the cache")),
      evictions(reg.counter(StatRegistry::joinPath(prefix, "evictions"),
                            "blocks displaced by fills")),
      writebacks(reg.counter(StatRegistry::joinPath(prefix, "writebacks"),
                             "dirty blocks written back"))
{
}

Cache::Cache(const CacheConfig &config) : Cache(config, nullptr, "l1")
{
}

Cache::Cache(const CacheConfig &config, StatRegistry &reg,
             const std::string &prefix)
    : Cache(config, &reg, prefix)
{
}

Cache::Cache(const CacheConfig &config, StatRegistry *reg,
             const std::string &prefix)
    : config_(config),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      traceEvict_(StatRegistry::joinPath(prefix, "evict")),
      stats_(*reg_, prefix)
{
    lva_assert(config.blockBytes > 0 &&
               std::has_single_bit(config.blockBytes),
               "block size %u not a power of two", config.blockBytes);
    lva_assert(config.assoc > 0, "associativity must be positive");
    const u64 sets = config.numSets();
    lva_assert(sets > 0 && std::has_single_bit(sets),
               "set count %llu not a power of two",
               static_cast<unsigned long long>(sets));

    blockMask_ = config.blockBytes - 1;
    setShift_ = std::countr_zero(static_cast<u64>(config.blockBytes));
    setMask_ = sets - 1;
    const u64 slots = sets * config.assoc;
    tags_.assign(slots, invalidAddr);
    lastUse_.assign(slots, 0);
    dirty_.assign(slots, 0);
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = blockAlign(addr);
    const u64 base = setBase(addr);
    for (u32 w = 0; w < config_.assoc; ++w)
        if (tags_[base + w] == tag)
            return true;
    return false;
}

bool
Cache::access(Addr addr, bool is_write)
{
    const Addr tag = blockAlign(addr);
    const u64 base = setBase(addr);
    for (u32 w = 0; w < config_.assoc; ++w) {
        const u64 s = base + w;
        if (tags_[s] == tag) {
            lastUse_[s] = ++useClock_;
            // Branch instead of |=: loads (the overwhelmingly common
            // case) never touch the dirty column.
            if (is_write)
                dirty_[s] = 1;
            stats_.hits.inc();
            return true;
        }
    }
    stats_.misses.inc();
    return false;
}

Addr
Cache::insert(Addr addr, bool is_write)
{
    const Addr tag = blockAlign(addr);
    const u64 base = setBase(addr);

    for (u32 w = 0; w < config_.assoc; ++w) {
        const u64 s = base + w;
        if (tags_[s] == tag) {
            // Already resident: refresh recency only.
            lastUse_[s] = ++useClock_;
            dirty_[s] |= static_cast<u8>(is_write);
            return invalidAddr;
        }
    }

    return fill(addr, is_write);
}

Addr
Cache::fill(Addr addr, bool is_write)
{
    const Addr tag = blockAlign(addr);
    const u64 base = setBase(addr);

    // Victim: first empty way, otherwise the least recently used,
    // ties broken toward the lowest way index. Selected WITHOUT
    // reading the tag column: lastUse_ is zero iff the way is empty
    // (useClock_ stamps are unique and >= 1, and invalidate()/
    // flush() zero the stamp), so the least lastUse_ with
    // earliest-index ties is exactly that policy.
    u64 victim = base;
    u64 best = lastUse_[base];
    for (u32 w = 1; w < config_.assoc; ++w) {
        const u64 s = base + w;
        const u64 t = lastUse_[s];
        if (t < best) {
            victim = s;
            best = t;
        }
    }

    stats_.fetches.inc();
    Addr evicted = invalidAddr;
    if (tags_[victim] != invalidAddr) {
        evicted = tags_[victim];
        stats_.evictions.inc();
        reg_->trace(traceEvict_, static_cast<double>(evicted));
        if (dirty_[victim])
            stats_.writebacks.inc();
    }
    tags_[victim] = tag;
    lastUse_[victim] = ++useClock_;
    dirty_[victim] = static_cast<u8>(is_write);
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr tag = blockAlign(addr);
    const u64 base = setBase(addr);
    for (u32 w = 0; w < config_.assoc; ++w) {
        const u64 s = base + w;
        if (tags_[s] == tag) {
            if (dirty_[s])
                stats_.writebacks.inc();
            tags_[s] = invalidAddr;
            lastUse_[s] = 0; // empty marker; fill()'s victim scan keys on it
            dirty_[s] = 0;
            return true;
        }
    }
    return false;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), invalidAddr);
    std::fill(lastUse_.begin(), lastUse_.end(), u64{0});
    std::fill(dirty_.begin(), dirty_.end(), u8{0});
    useClock_ = 0;
}

u64
Cache::residentBlocks() const
{
    u64 count = 0;
    for (const Addr tag : tags_)
        if (tag != invalidAddr)
            ++count;
    return count;
}

} // namespace lva
