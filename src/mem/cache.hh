/**
 * @file
 * Set-associative cache tag model with true-LRU replacement.
 *
 * The cache tracks block residency only; data values live in the workload's
 * host containers. This mirrors the Pin-based phase-1 methodology, where the
 * cache simulator decides hit/miss and the tool clobbers load values.
 *
 * Fetch policy is deliberately external: load value approximation decouples
 * fetches from misses (paper section III-C), so the caller decides whether a
 * missing block is actually brought in (insert()) or skipped.
 */

#ifndef LVA_MEM_CACHE_HH
#define LVA_MEM_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace lva {

/** Geometry of one cache level. */
struct CacheConfig
{
    u64 sizeBytes = 64 * 1024; ///< total capacity
    u32 assoc = 8;             ///< ways per set
    u32 blockBytes = 64;       ///< block (line) size

    u64 numSets() const { return sizeBytes / (u64(assoc) * blockBytes); }

    /** 64 KB 8-way, the phase-1 (Pin) private L1 D-cache. */
    static CacheConfig pinL1() { return {64 * 1024, 8, 64}; }

    /** 16 KB 8-way, the phase-2 (full-system) private L1 D-cache. */
    static CacheConfig fullSystemL1() { return {16 * 1024, 8, 64}; }
};

/**
 * Event counts for one cache instance, registry-backed: the counters
 * live in a StatRegistry under "<prefix>.hits" etc. and this struct
 * holds references for the hot path.
 */
struct CacheStats
{
    CacheStats(StatRegistry &reg, const std::string &prefix);

    Counter &hits;      ///< accesses that found the block resident
    Counter &misses;    ///< accesses that did not
    Counter &fetches;   ///< blocks actually brought in (insert())
    Counter &evictions; ///< blocks displaced by fetches
    Counter &writebacks;///< dirty blocks displaced or invalidated

    void
    reset()
    {
        hits.reset();
        misses.reset();
        fetches.reset();
        evictions.reset();
        writebacks.reset();
    }
};

/**
 * A single cache: tag array + LRU state + statistics.
 */
class Cache
{
  public:
    /** Standalone cache with a private registry (paths "l1.*"). */
    explicit Cache(const CacheConfig &config);

    /** Cache whose stats register in @p reg under @p prefix. */
    Cache(const CacheConfig &config, StatRegistry &reg,
          const std::string &prefix);

    const CacheConfig &config() const { return config_; }

    /** Block-aligned address of @p addr. */
    Addr blockAlign(Addr addr) const { return addr & ~blockMask_; }

    /** Is the block containing @p addr resident? Does not touch LRU. */
    bool contains(Addr addr) const;

    /**
     * Demand access: updates hit/miss statistics and, on a hit, the LRU
     * ordering (and the dirty bit when @p is_write).
     *
     * @return true on hit. A miss does NOT fetch the block; call insert()
     *         if the block should be brought in.
     */
    bool access(Addr addr, bool is_write = false);

    /**
     * Bring the block containing @p addr into the cache, evicting the LRU
     * block of the set if needed. Counts one fetch. Inserting a block
     * already present refreshes its LRU position without re-fetching.
     *
     * @param is_write mark the newly inserted block dirty
     * @return address of the evicted block, or invalidAddr if none
     */
    Addr insert(Addr addr, bool is_write = false);

    /**
     * As insert(), but the caller guarantees the block is absent —
     * the immediately preceding access() or probe() on the same
     * address missed, with no intervening insert to the set. Skips
     * insert()'s residency re-scan; statistics and eviction choice
     * are identical.
     */
    Addr fill(Addr addr, bool is_write = false);

    /**
     * Probe for a hit without updating any statistics (used by
     * prefetchers to filter redundant prefetches).
     */
    bool probe(Addr addr) const { return contains(addr); }

    /** Remove the block if present; @return true if it was resident. */
    bool invalidate(Addr addr);

    /** Drop all blocks and reset LRU (statistics are kept). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    /** Number of resident blocks (for tests). */
    u64 residentBlocks() const;

    /** Misses per kilo-instruction given an instruction count. */
    static double
    mpki(u64 misses, u64 instructions)
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(misses) /
                         static_cast<double>(instructions);
    }

  private:
    Cache(const CacheConfig &config, StatRegistry *reg,
          const std::string &prefix);

    /** First way slot of the set holding @p addr. */
    u64
    setBase(Addr addr) const
    {
        return ((addr >> setShift_) & setMask_) * config_.assoc;
    }

    CacheConfig config_;
    Addr blockMask_;
    u64 setShift_;
    u64 setMask_;

    /**
     * Tag array, structure-of-arrays: way w of set s lives at slot
     * s * assoc + w in each column. The hot access() scan reads only
     * tags_ — for an 8-way set that is a single 64-byte line —
     * instead of chasing a per-set heap vector of padded way structs.
     * tags_ holds the block-aligned address (invalidAddr = empty).
     */
    std::vector<Addr> tags_;
    std::vector<u64> lastUse_; ///< LRU timestamp per way slot
    std::vector<u8> dirty_;    ///< dirty flag per way slot
    u64 useClock_ = 0;
    std::unique_ptr<StatRegistry> ownedReg_; ///< standalone ctor only
    StatRegistry *reg_;
    std::string traceEvict_; ///< precomputed tracer path
    CacheStats stats_;
};

} // namespace lva

#endif // LVA_MEM_CACHE_HH
