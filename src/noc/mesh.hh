/**
 * @file
 * 2x2 mesh network-on-chip timing model (the BookSim substitute).
 *
 * Dimension-ordered (XY) routing over 3-cycle routers and 16-byte
 * links. Each directed link keeps a busy-until time: messages queue
 * behind earlier traffic and occupy the link for their flit count,
 * modelling both serialization and contention. Flit-hops are counted
 * for the interconnect-traffic and energy results.
 */

#ifndef LVA_NOC_MESH_HH
#define LVA_NOC_MESH_HH

#include <vector>

#include "util/slotted_resource.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace lva {

/** Mesh geometry and timing parameters (paper Table II). */
struct MeshConfig
{
    u32 cols = 2;
    u32 rows = 2;
    u32 routerCycles = 3;  ///< per-hop router pipeline latency
    u32 flitBytes = 16;    ///< link width

    u32 nodes() const { return cols * rows; }

    /** Flits needed for a message of @p bytes (at least 1). */
    u32
    flitsFor(u32 bytes) const
    {
        return (bytes + flitBytes - 1) / flitBytes;
    }
};

/** Message sizes used by the coherence protocol. */
struct MessageBytes
{
    static constexpr u32 control = 8;       ///< request / ack / inv
    static constexpr u32 data = 64 + 8;     ///< cache block + header
};

/** Traffic counters for the NoC. */
struct MeshStats
{
    Counter messages;
    Counter flitHops; ///< flits * hops traversed (energy proxy)
    double queueWait = 0.0; ///< total cycles spent waiting for links

    void
    reset()
    {
        messages.reset();
        flitHops.reset();
        queueWait = 0.0;
    }
};

/**
 * Analytic mesh timing: deliver() computes the arrival time of one
 * message given the current global time, advancing per-link busy
 * windows so that overlapping messages contend.
 */
class Mesh
{
  public:
    explicit Mesh(const MeshConfig &config);

    const MeshConfig &config() const { return config_; }

    /**
     * Send @p bytes from node @p src to node @p dst at time @p now.
     * @return the cycle at which the message is fully delivered
     */
    double deliver(u32 src, u32 dst, u32 bytes, double now);

    const MeshStats &stats() const { return stats_; }

    /** Reset per-link occupancy (not statistics). */
    void clearOccupancy();

  private:
    u32 xOf(u32 node) const { return node % config_.cols; }
    u32 yOf(u32 node) const { return node / config_.cols; }
    u32 nodeAt(u32 x, u32 y) const { return y * config_.cols + x; }

    /** Directed link index from @p from to adjacent node @p to. */
    std::size_t linkIndex(u32 from, u32 to) const;

    MeshConfig config_;
    std::vector<SlottedResource> links_;
    MeshStats stats_;
};

} // namespace lva

#endif // LVA_NOC_MESH_HH
