#include "noc/mesh.hh"

#include "util/logging.hh"

namespace lva {

Mesh::Mesh(const MeshConfig &config)
    : config_(config),
      // One directed link per (node, neighbour) pair; index by
      // from-node * 4 + direction (N/S/E/W). Each link moves one flit
      // per cycle.
      links_(static_cast<std::size_t>(config.nodes()) * 4,
             SlottedResource(8.0, 8.0))
{
    lva_assert(config.cols >= 1 && config.rows >= 1, "empty mesh");
}

std::size_t
Mesh::linkIndex(u32 from, u32 to) const
{
    const i32 dx = static_cast<i32>(xOf(to)) - static_cast<i32>(xOf(from));
    const i32 dy = static_cast<i32>(yOf(to)) - static_cast<i32>(yOf(from));
    u32 dir;
    if (dy == -1 && dx == 0)
        dir = 0; // north
    else if (dy == 1 && dx == 0)
        dir = 1; // south
    else if (dx == 1 && dy == 0)
        dir = 2; // east
    else if (dx == -1 && dy == 0)
        dir = 3; // west
    else
        lva_panic("nodes %u and %u are not adjacent", from, to);
    return static_cast<std::size_t>(from) * 4 + dir;
}

double
Mesh::deliver(u32 src, u32 dst, u32 bytes, double now)
{
    lva_assert(src < config_.nodes() && dst < config_.nodes(),
               "bad node %u -> %u", src, dst);
    stats_.messages.inc();

    const u32 flits = config_.flitsFor(bytes);
    double t = now;

    if (src == dst) {
        // Local delivery still pays one router traversal.
        return t + config_.routerCycles;
    }

    // XY routing: resolve X first, then Y.
    u32 cur = src;
    while (cur != dst) {
        u32 next;
        if (xOf(cur) != xOf(dst)) {
            next = nodeAt(xOf(cur) + (xOf(dst) > xOf(cur) ? 1u : -1u),
                          yOf(cur));
        } else {
            next = nodeAt(xOf(cur),
                          yOf(cur) + (yOf(dst) > yOf(cur) ? 1u : -1u));
        }
        // The link is busy only while flits serialize across it; the
        // router pipeline adds latency but is itself pipelined.
        const double start =
            links_[linkIndex(cur, next)].acquire(t, flits);
        stats_.queueWait += start - t;
        stats_.flitHops.inc(flits);
        t = start + config_.routerCycles + flits;
        cur = next;
    }
    return t;
}

void
Mesh::clearOccupancy()
{
    for (auto &link : links_)
        link = SlottedResource(8.0, 8.0);
}

} // namespace lva
