/**
 * @file
 * Global-history-buffer prefetcher baseline (Nesbit & Smith, IEEE Micro
 * 2005), configured as in the paper's Figure 8 comparison: 2048-entry
 * GHB + 2048-entry index table, PC-localized delta correlation with a
 * next-line fallback, and a configurable prefetch degree.
 */

#ifndef LVA_PREFETCH_GHB_PREFETCHER_HH
#define LVA_PREFETCH_GHB_PREFETCHER_HH

#include <memory>
#include <string>
#include <vector>

#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace lva {

/** Tunables of the GHB prefetcher. */
struct GhbPrefetcherConfig
{
    u32 ghbEntries = 2048;   ///< circular miss-address history
    u32 indexEntries = 2048; ///< PC-indexed head pointers into the GHB
    u32 degree = 4;          ///< prefetches issued per miss
    u32 blockBytes = 64;     ///< cache block size
    u32 maxChainWalk = 64;   ///< history depth examined per prediction
};

/** Event counts for the prefetcher (registry-backed). */
struct PrefetcherStats
{
    PrefetcherStats(StatRegistry &reg, const std::string &prefix);

    Counter &misses;        ///< training misses observed
    Counter &issued;        ///< prefetch addresses produced
    Counter &deltaPredicts; ///< predictions from delta correlation
    Counter &nextLine;      ///< predictions from the next-line fallback

    void
    reset()
    {
        misses.reset();
        issued.reset();
        deltaPredicts.reset();
        nextLine.reset();
    }
};

/**
 * PC-localized GHB prefetcher.
 *
 * Each L1 miss appends (address, link-to-previous-miss-of-same-PC) to a
 * circular global history buffer; an index table maps the PC to the most
 * recent entry. Prediction walks the PC's miss chain, extracts the delta
 * stream and looks for the most recent earlier occurrence of the latest
 * delta pair (delta correlation); the deltas that followed it are
 * replayed, up to the prefetch degree. With no correlation match the
 * prefetcher falls back to next-line prefetching.
 */
class GhbPrefetcher
{
  public:
    /** Standalone prefetcher with a private registry ("prefetch.*"). */
    explicit GhbPrefetcher(const GhbPrefetcherConfig &config);

    /** Prefetcher whose stats register in @p reg under @p prefix. */
    GhbPrefetcher(const GhbPrefetcherConfig &config, StatRegistry &reg,
                  const std::string &prefix);

    const GhbPrefetcherConfig &config() const { return config_; }

    /**
     * Observe an L1 load miss and produce prefetch candidates.
     *
     * @param pc   static load site of the missing load
     * @param addr miss address
     * @return up to config().degree block-aligned prefetch addresses
     */
    std::vector<Addr> onMiss(LoadSiteId pc, Addr addr);

    const PrefetcherStats &stats() const { return stats_; }

  private:
    struct GhbEntry
    {
        Addr addr = 0;
        u64 prevSeq = 0; ///< global sequence of previous same-PC miss
        u64 seq = 0;     ///< own global sequence (0 = never written)
    };

    struct IndexEntry
    {
        u64 pcTag = ~u64(0);
        u64 lastSeq = 0; ///< most recent GHB sequence for this PC
    };

    /** Is a recorded sequence number still resident in the GHB? */
    bool live(u64 seq) const
    {
        return seq != 0 && seq + config_.ghbEntries >= nextSeq_;
    }

    GhbPrefetcher(const GhbPrefetcherConfig &config, StatRegistry *reg,
                  const std::string &prefix);

    GhbPrefetcherConfig config_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    u64 nextSeq_ = 1;
    std::unique_ptr<StatRegistry> ownedReg_; ///< standalone ctor only
    StatRegistry *reg_;
    PrefetcherStats stats_;
};

} // namespace lva

#endif // LVA_PREFETCH_GHB_PREFETCHER_HH
