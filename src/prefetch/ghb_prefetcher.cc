#include "prefetch/ghb_prefetcher.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace lva {

PrefetcherStats::PrefetcherStats(StatRegistry &reg,
                                 const std::string &prefix)
    : misses(reg.counter(StatRegistry::joinPath(prefix, "misses"),
                         "training misses observed")),
      issued(reg.counter(StatRegistry::joinPath(prefix, "issued"),
                         "prefetch addresses produced")),
      deltaPredicts(reg.counter(
          StatRegistry::joinPath(prefix, "deltaPredicts"),
          "predictions from delta correlation")),
      nextLine(reg.counter(StatRegistry::joinPath(prefix, "nextLine"),
                           "predictions from the next-line fallback"))
{
}

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherConfig &config)
    : GhbPrefetcher(config, nullptr, "prefetch")
{
}

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherConfig &config,
                             StatRegistry &reg, const std::string &prefix)
    : GhbPrefetcher(config, &reg, prefix)
{
}

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherConfig &config,
                             StatRegistry *reg, const std::string &prefix)
    : config_(config), ghb_(config.ghbEntries),
      index_(config.indexEntries),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      stats_(*reg_, prefix)
{
    lva_assert(config.ghbEntries > 0 && config.indexEntries > 0,
               "prefetcher tables must have entries");
    lva_assert(config.blockBytes > 0, "bad block size");
}

std::vector<Addr>
GhbPrefetcher::onMiss(LoadSiteId pc, Addr addr)
{
    stats_.misses.inc();
    const Addr block = addr & ~Addr(config_.blockBytes - 1);

    // --- Train: append to the GHB and link into this PC's chain. ---
    IndexEntry &idx = index_[mix64(pc) % config_.indexEntries];
    const u64 prev_seq =
        (idx.pcTag == pc && live(idx.lastSeq)) ? idx.lastSeq : 0;

    const u64 my_seq = nextSeq_++;
    GhbEntry &slot = ghb_[my_seq % config_.ghbEntries];
    slot.addr = block;
    slot.prevSeq = prev_seq;
    slot.seq = my_seq;

    idx.pcTag = pc;
    idx.lastSeq = my_seq;

    if (config_.degree == 0)
        return {};

    // --- Reconstruct this PC's recent miss addresses (newest first). ---
    std::vector<Addr> history;
    history.reserve(config_.maxChainWalk);
    u64 seq = my_seq;
    while (live(seq) && history.size() < config_.maxChainWalk) {
        const GhbEntry &entry = ghb_[seq % config_.ghbEntries];
        if (entry.seq != seq)
            break; // overwritten since linked
        history.push_back(entry.addr);
        seq = entry.prevSeq;
    }

    std::vector<Addr> prefetches;
    prefetches.reserve(config_.degree);

    // --- Local delta correlation over the PC's delta stream. ---
    // deltas[i] = history[i] - history[i+1]  (newest delta first)
    if (history.size() >= 4) {
        std::vector<i64> deltas(history.size() - 1);
        for (std::size_t i = 0; i + 1 < history.size(); ++i)
            deltas[i] = static_cast<i64>(history[i]) -
                        static_cast<i64>(history[i + 1]);

        const i64 d0 = deltas[0];
        const i64 d1 = deltas[1];
        // Find the most recent earlier occurrence of the pair (d1, d0).
        for (std::size_t j = 2; j + 1 < deltas.size(); ++j) {
            if (deltas[j] == d0 && deltas[j + 1] == d1) {
                // Replay the deltas that followed that occurrence
                // (they sit at decreasing indices: j-1, j-2, ...).
                Addr next = block;
                std::size_t k = j;
                while (prefetches.size() < config_.degree) {
                    if (k == 0) {
                        // Pattern exhausted: keep striding by d0.
                        next = static_cast<Addr>(
                            static_cast<i64>(next) + d0);
                    } else {
                        --k;
                        next = static_cast<Addr>(
                            static_cast<i64>(next) + deltas[k]);
                    }
                    prefetches.push_back(next &
                                         ~Addr(config_.blockBytes - 1));
                    stats_.deltaPredicts.inc();
                }
                break;
            }
        }
    }

    // --- Next-line fallback: a single sequential block when no delta
    // pattern is found (issuing the full degree blindly would flood
    // the cache with useless fetches on irregular streams). ---
    if (prefetches.empty()) {
        prefetches.push_back(block + config_.blockBytes);
        stats_.nextLine.inc();
    }

    stats_.issued.inc(prefetches.size());
    return prefetches;
}

} // namespace lva
