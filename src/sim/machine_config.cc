#include "sim/machine_config.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/stats_json.hh"

namespace lva {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("machine: " + what);
}

u32
u32Field(const std::string &key, const JsonValue &value)
{
    const u64 v = value.asU64();
    if (v > std::numeric_limits<u32>::max())
        fail("\"" + key + "\" out of range");
    return static_cast<u32>(v);
}

bool
boolField(const std::string &key, const JsonValue &value)
{
    if (value.type != JsonValue::Type::Bool)
        fail("\"" + key + "\" must be true or false");
    return value.boolean;
}

Estimator
estimatorFromName(const std::string &name)
{
    if (name == "average")
        return Estimator::Average;
    if (name == "last")
        return Estimator::Last;
    if (name == "stride")
        return Estimator::Stride;
    fail("unknown estimator \"" + name + "\"");
}

const char *
estimatorJsonName(Estimator e)
{
    switch (e) {
      case Estimator::Average:
        return "average";
      case Estimator::Last:
        return "last";
      case Estimator::Stride:
        return "stride";
    }
    return "?";
}

bool
powerOfTwo(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
requireObject(const std::string &key, const JsonValue &v)
{
    if (!v.isObject())
        fail("\"" + key + "\" must be a JSON object");
}

/** Shared size/assoc/block checks for one cache level. */
void
validateCache(const std::string &label, const CacheConfig &c)
{
    if (c.sizeBytes == 0 || c.assoc == 0 || c.blockBytes == 0)
        fail(label + ": size, assoc and block must be positive");
    if (!powerOfTwo(c.blockBytes) || c.blockBytes < 8)
        fail(label + ": block must be a power of two >= 8");
    if (c.sizeBytes % (u64(c.assoc) * c.blockBytes) != 0)
        fail(label + ": size must be a multiple of assoc * block");
    if (!powerOfTwo(c.numSets()))
        fail(label + ": set count " + std::to_string(c.numSets()) +
             " is not a power of two");
}

void
validateApprox(const std::string &label, const ApproximatorConfig &a)
{
    if (a.tableEntries == 0 || a.tableAssoc == 0)
        fail(label + ": table and tableAssoc must be positive");
    if (a.tableEntries % a.tableAssoc != 0)
        fail(label + ": tableAssoc must divide table");
    if (a.confidenceBits == 0 || a.confidenceBits > 31)
        fail(label + ": confidenceBits must be in [1, 31]");
    if (!(a.confidenceWindow >= 0.0)) // NaN rejected too
        fail(label + ": window must be >= 0 or \"inf\"");
    if (a.lhbEntries == 0)
        fail(label + ": lhb must be positive");
    if (a.tagBits > 64)
        fail(label + ": tagBits must be <= 64");
    if (a.mantissaDropBits > 52)
        fail(label + ": mantissaDrop must be <= 52");
}

void
parseCache(const std::string &label, const JsonValue &v,
           CacheConfig &out, u32 *latency)
{
    requireObject(label, v);
    for (const auto &[key, value] : v.members) {
        if (key == "size")
            out.sizeBytes = value.asU64();
        else if (key == "assoc")
            out.assoc = u32Field(label + ".assoc", value);
        else if (key == "block")
            out.blockBytes = u32Field(label + ".block", value);
        else if (key == "latency" && latency != nullptr)
            *latency = u32Field(label + ".latency", value);
        else
            fail(label + ": unknown key \"" + key + "\"");
    }
}

void
parseMesh(const std::string &label, const JsonValue &v, MeshConfig &out)
{
    requireObject(label, v);
    for (const auto &[key, value] : v.members) {
        if (key == "cols")
            out.cols = u32Field(label + ".cols", value);
        else if (key == "rows")
            out.rows = u32Field(label + ".rows", value);
        else if (key == "routerCycles")
            out.routerCycles = u32Field(label + ".routerCycles", value);
        else if (key == "flitBytes")
            out.flitBytes = u32Field(label + ".flitBytes", value);
        else
            fail(label + ": unknown key \"" + key + "\"");
    }
}

void
parseApprox(const std::string &label, const JsonValue &v,
            ApproximatorConfig &out)
{
    requireObject(label, v);
    for (const auto &[key, value] : v.members)
        if (!applyApproxKey(out, key, value))
            fail(label + ": unknown key \"" + key + "\"");
}

std::string
renderCache(const CacheConfig &c, const u32 *latency)
{
    std::string out = "{\"size\":" + std::to_string(c.sizeBytes) +
                      ",\"assoc\":" + std::to_string(c.assoc) +
                      ",\"block\":" + std::to_string(c.blockBytes);
    if (latency != nullptr)
        out += ",\"latency\":" + std::to_string(*latency);
    return out + "}";
}

std::string
renderMesh(const MeshConfig &m)
{
    return "{\"cols\":" + std::to_string(m.cols) +
           ",\"rows\":" + std::to_string(m.rows) +
           ",\"routerCycles\":" + std::to_string(m.routerCycles) +
           ",\"flitBytes\":" + std::to_string(m.flitBytes) + "}";
}

std::string
renderApprox(const ApproximatorConfig &a)
{
    const std::string window =
        std::isfinite(a.confidenceWindow)
            ? jsonDouble(a.confidenceWindow)
            : std::string("\"inf\"");
    return "{\"table\":" + std::to_string(a.tableEntries) +
           ",\"tableAssoc\":" + std::to_string(a.tableAssoc) +
           ",\"confidenceBits\":" + std::to_string(a.confidenceBits) +
           ",\"window\":" + window +
           ",\"confInts\":" + (a.confidenceForInts ? "true" : "false") +
           ",\"noConf\":" + (a.confidenceDisabled ? "true" : "false") +
           ",\"ghb\":" + std::to_string(a.ghbEntries) +
           ",\"lhb\":" + std::to_string(a.lhbEntries) +
           ",\"tagBits\":" + std::to_string(a.tagBits) +
           ",\"delay\":" + std::to_string(a.valueDelay) +
           ",\"degree\":" + std::to_string(a.approxDegree) +
           ",\"estimator\":\"" +
           std::string(estimatorJsonName(a.estimator)) + "\"" +
           ",\"proportional\":" +
           (a.proportionalConfidence ? "true" : "false") +
           ",\"mantissaDrop\":" + std::to_string(a.mantissaDropBits) +
           "}";
}

} // namespace

const char *
machineSchema()
{
    return "lva-machine-v1";
}

bool
applyApproxKey(ApproximatorConfig &a, const std::string &key,
               const JsonValue &value)
{
    if (key == "table") {
        a.tableEntries = u32Field(key, value);
    } else if (key == "tableAssoc") {
        a.tableAssoc = u32Field(key, value);
    } else if (key == "confidenceBits") {
        a.confidenceBits = u32Field(key, value);
    } else if (key == "window") {
        if (value.type == JsonValue::Type::String) {
            if (value.asString() != "inf")
                fail("window must be a number or \"inf\"");
            a.confidenceWindow = ApproximatorConfig::infiniteWindow;
        } else {
            a.confidenceWindow = value.asDouble();
        }
    } else if (key == "confInts") {
        a.confidenceForInts = boolField(key, value);
    } else if (key == "noConf") {
        a.confidenceDisabled = boolField(key, value);
    } else if (key == "ghb") {
        a.ghbEntries = u32Field(key, value);
    } else if (key == "lhb") {
        a.lhbEntries = u32Field(key, value);
    } else if (key == "tagBits") {
        a.tagBits = u32Field(key, value);
    } else if (key == "delay") {
        a.valueDelay = u32Field(key, value);
    } else if (key == "degree") {
        a.approxDegree = u32Field(key, value);
    } else if (key == "estimator") {
        a.estimator = estimatorFromName(value.asString());
    } else if (key == "proportional") {
        a.proportionalConfidence = boolField(key, value);
    } else if (key == "mantissaDrop") {
        a.mantissaDropBits = u32Field(key, value);
    } else {
        return false;
    }
    return true;
}

void
MachineConfig::validate() const
{
    if (name.empty())
        fail("name must be non-empty");
    // The directory tracks sharers in a 32-bit mask, so 32 cores is
    // the hard ceiling of the coherence model.
    if (cores == 0 || cores > 32)
        fail("cores must be in [1, 32]");
    if (core.width == 0 || core.robEntries == 0)
        fail("core.width and core.rob must be positive");

    validateCache("l1", l1);
    validateCache("phase1L1", phase1L1);
    validateCache("l2", l2);
    if (l1Latency == 0 || l2Latency == 0 || memLatency == 0)
        fail("latencies must be positive");
    if (l2Occupancy == 0 || memOccupancy == 0)
        fail("occupancies must be positive");

    if (noc.cols == 0 || noc.rows == 0 || noc.routerCycles == 0 ||
        noc.flitBytes == 0)
        fail("noc fields must be positive");
    if (slowNoc.cols == 0 || slowNoc.rows == 0 ||
        slowNoc.routerCycles == 0 || slowNoc.flitBytes == 0)
        fail("slowNoc fields must be positive");
    if (cores != noc.nodes())
        fail("cores (" + std::to_string(cores) +
             ") must equal noc nodes (" + std::to_string(noc.nodes()) +
             "): one core per mesh node");
    if (l2Banks != noc.nodes())
        fail("l2.banks (" + std::to_string(l2Banks) +
             ") must equal noc nodes (" + std::to_string(noc.nodes()) +
             "): one bank per mesh node");
    if (heteroNoc && slowNoc.nodes() != noc.nodes())
        fail("slowNoc must span the same nodes as noc");

    // Each bank caches its address-interleaved slice, so the slice
    // geometry must itself be a valid cache.
    if (l2.sizeBytes % l2Banks != 0)
        fail("l2.size must be a multiple of l2.banks");
    CacheConfig slice = l2;
    slice.sizeBytes = l2.sizeBytes / l2Banks;
    validateCache("l2 bank slice", slice);

    validateApprox("approx", approx);
    if (!coreApprox.empty()) {
        if (coreApprox.size() != cores)
            fail("coreApprox must carry one entry per core");
        for (std::size_t i = 0; i < coreApprox.size(); ++i)
            validateApprox("coreApprox[" + std::to_string(i) + "]",
                           coreApprox[i]);
    }
}

ApproxMemory::Config
MachineConfig::phase1Config(MemMode mode) const
{
    ApproxMemory::Config c;
    c.threads = cores;
    c.cache = phase1L1;
    c.mode = mode;
    c.approx = approx;
    // Variants only matter to the modes that build a mechanism; the
    // Precise projection stays canonical so golden-cache keys do not
    // fragment across variant sets.
    if (mode == MemMode::Lva || mode == MemMode::Lvp)
        c.threadApprox = coreApprox;
    return c;
}

ApproxMemory::Config
MachineConfig::phase1Lva() const
{
    return phase1Config(MemMode::Lva);
}

ApproxMemory::Config
MachineConfig::phase1Precise() const
{
    return phase1Config(MemMode::Precise);
}

FullSystemConfig
MachineConfig::fullSystem(bool lvaEnabled, u32 degree) const
{
    FullSystemConfig cfg;
    cfg.cores = cores;
    cfg.core = core;
    cfg.l1 = l1;
    cfg.l1Latency = l1Latency;
    cfg.l2 = l2;
    cfg.l2Latency = l2Latency;
    cfg.l2Banks = l2Banks;
    cfg.l2Occupancy = l2Occupancy;
    cfg.protocol = protocol;
    cfg.memLatency = memLatency;
    cfg.memOccupancy = memOccupancy;
    cfg.mesh = noc;
    cfg.heteroNoc = heteroNoc;
    cfg.slowMesh = slowNoc;
    cfg.backgroundFetchExtraLatency = backgroundFetchExtraLatency;
    cfg.lvaEnabled = lvaEnabled;
    if (lvaEnabled) {
        // Same override FullSystemConfig::lva applies: the requested
        // degree at a value delay of ~1 load (paper section VI-E).
        cfg.approx = approx;
        cfg.approx.approxDegree = degree;
        cfg.approx.valueDelay = 1;
        cfg.coreApprox = coreApprox;
        for (ApproximatorConfig &a : cfg.coreApprox) {
            a.approxDegree = degree;
            a.valueDelay = 1;
        }
    }
    return cfg;
}

const MachineConfig &
defaultMachine()
{
    static const MachineConfig machine = MachineConfig::table2();
    return machine;
}

MachineConfig
machineFromJson(const JsonValue &v)
{
    if (!v.isObject())
        fail("description must be a JSON object");
    const JsonValue *schema = v.find("schema");
    if (schema == nullptr)
        fail("missing \"schema\" (expected \"" +
             std::string(machineSchema()) + "\")");
    if (schema->asString() != machineSchema())
        fail("unsupported schema \"" + schema->asString() + "\"");

    MachineConfig m;
    m.name = "custom";
    // Deferred past the main loop so the expansion sees the final
    // "cores" and "approx" values regardless of member order.
    const JsonValue *core_approx = nullptr;

    for (const auto &[key, value] : v.members) {
        if (key == "schema") {
            // validated above
        } else if (key == "name") {
            m.name = value.asString();
        } else if (key == "cores") {
            m.cores = u32Field(key, value);
        } else if (key == "core") {
            requireObject(key, value);
            for (const auto &[k2, v2] : value.members) {
                if (k2 == "width")
                    m.core.width = u32Field("core.width", v2);
                else if (k2 == "rob")
                    m.core.robEntries = u32Field("core.rob", v2);
                else
                    fail("core: unknown key \"" + k2 + "\"");
            }
        } else if (key == "l1") {
            parseCache(key, value, m.l1, &m.l1Latency);
        } else if (key == "phase1L1") {
            parseCache(key, value, m.phase1L1, nullptr);
        } else if (key == "l2") {
            requireObject(key, value);
            for (const auto &[k2, v2] : value.members) {
                if (k2 == "size")
                    m.l2.sizeBytes = v2.asU64();
                else if (k2 == "assoc")
                    m.l2.assoc = u32Field("l2.assoc", v2);
                else if (k2 == "block")
                    m.l2.blockBytes = u32Field("l2.block", v2);
                else if (k2 == "latency")
                    m.l2Latency = u32Field("l2.latency", v2);
                else if (k2 == "banks")
                    m.l2Banks = u32Field("l2.banks", v2);
                else if (k2 == "occupancy")
                    m.l2Occupancy = u32Field("l2.occupancy", v2);
                else
                    fail("l2: unknown key \"" + k2 + "\"");
            }
        } else if (key == "memory") {
            requireObject(key, value);
            for (const auto &[k2, v2] : value.members) {
                if (k2 == "latency")
                    m.memLatency = u32Field("memory.latency", v2);
                else if (k2 == "occupancy")
                    m.memOccupancy = u32Field("memory.occupancy", v2);
                else
                    fail("memory: unknown key \"" + k2 + "\"");
            }
        } else if (key == "noc") {
            parseMesh(key, value, m.noc);
        } else if (key == "protocol") {
            const std::string &p = value.asString();
            if (p == "msi")
                m.protocol = CoherenceProtocol::Msi;
            else if (p == "mesi")
                m.protocol = CoherenceProtocol::Mesi;
            else
                fail("unknown protocol \"" + p + "\"");
        } else if (key == "heteroNoc") {
            m.heteroNoc = boolField(key, value);
        } else if (key == "slowNoc") {
            parseMesh(key, value, m.slowNoc);
        } else if (key == "backgroundFetchExtraLatency") {
            m.backgroundFetchExtraLatency = u32Field(key, value);
        } else if (key == "approx") {
            parseApprox(key, value, m.approx);
        } else if (key == "coreApprox") {
            if (!value.isArray())
                fail("coreApprox must be a JSON array");
            core_approx = &value;
        } else {
            fail("unknown key \"" + key + "\"");
        }
    }

    if (core_approx != nullptr && !core_approx->items.empty()) {
        m.coreApprox.assign(m.cores, m.approx);
        std::vector<bool> seen(m.cores, false);
        for (const JsonValue &entry : core_approx->items) {
            requireObject("coreApprox[]", entry);
            const JsonValue *idx = entry.find("core");
            if (idx == nullptr)
                fail("coreApprox[]: missing \"core\"");
            const u32 c = u32Field("coreApprox.core", *idx);
            if (c >= m.cores)
                fail("coreApprox.core " + std::to_string(c) +
                     " out of range for " + std::to_string(m.cores) +
                     " cores");
            if (seen[c])
                fail("coreApprox: duplicate entry for core " +
                     std::to_string(c));
            seen[c] = true;
            for (const auto &[key, value] : entry.members) {
                if (key == "core")
                    continue;
                if (!applyApproxKey(m.coreApprox[c], key, value))
                    fail("coreApprox[]: unknown key \"" + key + "\"");
            }
        }
    }

    m.validate();
    return m;
}

MachineConfig
machineFromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("machine config " + path +
                                 ": cannot open");
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        throw std::runtime_error("machine config " + path +
                                 ": read error");
    try {
        return machineFromJson(parseJson(text.str()));
    } catch (const std::exception &e) {
        throw std::runtime_error("machine config " + path + ": " +
                                 e.what());
    }
}

std::string
renderMachineJson(const MachineConfig &m)
{
    std::string out = "{\"schema\":\"" + std::string(machineSchema()) +
                      "\",\"name\":" + jsonQuote(m.name) +
                      ",\"cores\":" + std::to_string(m.cores) +
                      ",\"core\":{\"width\":" +
                      std::to_string(m.core.width) +
                      ",\"rob\":" + std::to_string(m.core.robEntries) +
                      "}";
    out += ",\"l1\":" + renderCache(m.l1, &m.l1Latency);
    out += ",\"phase1L1\":" + renderCache(m.phase1L1, nullptr);
    out += ",\"l2\":{\"size\":" + std::to_string(m.l2.sizeBytes) +
           ",\"assoc\":" + std::to_string(m.l2.assoc) +
           ",\"block\":" + std::to_string(m.l2.blockBytes) +
           ",\"latency\":" + std::to_string(m.l2Latency) +
           ",\"banks\":" + std::to_string(m.l2Banks) +
           ",\"occupancy\":" + std::to_string(m.l2Occupancy) + "}";
    out += ",\"memory\":{\"latency\":" + std::to_string(m.memLatency) +
           ",\"occupancy\":" + std::to_string(m.memOccupancy) + "}";
    out += ",\"noc\":" + renderMesh(m.noc);
    out += ",\"protocol\":\"";
    out += m.protocol == CoherenceProtocol::Msi ? "msi" : "mesi";
    out += "\",\"heteroNoc\":";
    out += m.heteroNoc ? "true" : "false";
    out += ",\"slowNoc\":" + renderMesh(m.slowNoc);
    out += ",\"backgroundFetchExtraLatency\":" +
           std::to_string(m.backgroundFetchExtraLatency);
    out += ",\"approx\":" + renderApprox(m.approx);
    if (!m.coreApprox.empty()) {
        out += ",\"coreApprox\":[";
        for (std::size_t i = 0; i < m.coreApprox.size(); ++i) {
            if (i > 0)
                out += ",";
            std::string entry = renderApprox(m.coreApprox[i]);
            // Splice "core": i in as the first member.
            out += "{\"core\":" + std::to_string(i) + "," +
                   entry.substr(1);
        }
        out += "]";
    }
    return out + "}";
}

const std::vector<std::string> &
machineSchemaKeys()
{
    static const std::vector<std::string> keys = {
        "schema",
        "name",
        "cores",
        "core.width",
        "core.rob",
        "l1.size",
        "l1.assoc",
        "l1.block",
        "l1.latency",
        "phase1L1.size",
        "phase1L1.assoc",
        "phase1L1.block",
        "l2.size",
        "l2.assoc",
        "l2.block",
        "l2.latency",
        "l2.banks",
        "l2.occupancy",
        "memory.latency",
        "memory.occupancy",
        "noc.cols",
        "noc.rows",
        "noc.routerCycles",
        "noc.flitBytes",
        "protocol",
        "heteroNoc",
        "slowNoc.cols",
        "slowNoc.rows",
        "slowNoc.routerCycles",
        "slowNoc.flitBytes",
        "backgroundFetchExtraLatency",
        "approx.table",
        "approx.tableAssoc",
        "approx.confidenceBits",
        "approx.window",
        "approx.confInts",
        "approx.noConf",
        "approx.ghb",
        "approx.lhb",
        "approx.tagBits",
        "approx.delay",
        "approx.degree",
        "approx.estimator",
        "approx.proportional",
        "approx.mantissaDrop",
        "coreApprox",
        "coreApprox.core",
    };
    return keys;
}

} // namespace lva
