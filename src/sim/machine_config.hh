/**
 * @file
 * Config-driven machine topology (lva-machine-v1).
 *
 * One validated MachineConfig object describes the whole CMP — core
 * count and width, per-level cache geometry, L2 banking, NoC shape,
 * coherence protocol, and the approximator configuration (optionally
 * per core) — parsed from a JSON file via the util/checkpoint
 * JsonValue reader with strict rejection of unknown keys,
 * out-of-range values and inconsistent geometry. One binary can then
 * instantiate arbitrary CMPs from config files, and sweeps can range
 * over *topology* instead of only approximator knobs.
 *
 * The all-defaults object is the named built-in "table2" machine
 * (paper Table II): its phase-1 projection equals
 * Evaluator::baselineLva()/preciseConfig() and its full-system
 * projection equals FullSystemConfig::baseline()/lva(d) exactly, so
 * exports under the default machine stay byte-identical to the
 * pre-config-file hardcoded paths (pinned by machine_config_test and
 * refactor_identity_test).
 *
 * The schema is documented key-by-key in docs/topology.md, whose
 * marker-delimited table scripts/check_docs.sh diffs two-way against
 * machineSchemaKeys(); adding a key here without a docs row (or vice
 * versa) fails the build gate.
 */

#ifndef LVA_SIM_MACHINE_CONFIG_HH
#define LVA_SIM_MACHINE_CONFIG_HH

#include <string>
#include <vector>

#include "core/approx_memory.hh"
#include "sim/config.hh"
#include "util/checkpoint.hh"

namespace lva {

/** The machine-config file schema tag ("lva-machine-v1"). */
const char *machineSchema();

/**
 * A complete, validated CMP description. Field defaults reproduce the
 * paper's Table II machine ("table2"); validate() enforces every
 * geometry invariant listed in docs/topology.md.
 */
struct MachineConfig
{
    std::string name = "table2"; ///< display/context name

    u32 cores = 4; ///< one core per NoC node (max 32: sharer bitmask)
    CoreConfig core{}; ///< issue width, ROB entries

    CacheConfig l1 = CacheConfig::fullSystemL1(); ///< phase-2 private L1
    u32 l1Latency = 1;

    /** Phase-1 (Pin-methodology) private L1, one per thread. */
    CacheConfig phase1L1 = CacheConfig::pinL1();

    CacheConfig l2{512 * 1024, 16, 64}; ///< shared, bank-distributed
    u32 l2Latency = 6;
    u32 l2Banks = 4; ///< one bank per NoC node
    u32 l2Occupancy = 1;

    CoherenceProtocol protocol = CoherenceProtocol::Msi;

    u32 memLatency = 160;
    u32 memOccupancy = 8;

    MeshConfig noc{}; ///< cols x rows; nodes() == cores == l2Banks
    bool heteroNoc = false;
    MeshConfig slowNoc{2, 2, /*routerCycles=*/6, /*flitBytes=*/8};
    u32 backgroundFetchExtraLatency = 0;

    /** Approximator configuration shared by every core. */
    ApproximatorConfig approx{};

    /**
     * Per-core approximator variants: empty = homogeneous (every core
     * uses approx); otherwise exactly one entry per core, expanded at
     * parse time from the "coreApprox" override list.
     */
    std::vector<ApproximatorConfig> coreApprox;

    /** The built-in paper Table II machine (all defaults). */
    static MachineConfig table2() { return {}; }

    /**
     * Throw std::runtime_error on any invalid or inconsistent field:
     * zero/excessive core counts, cores vs NoC-node or L2-bank
     * mismatch, non-power-of-two set counts (including the per-bank
     * L2 slice), table associativity not dividing the table size, a
     * coreApprox list whose length is not the core count, and so on.
     */
    void validate() const;

    /**
     * Phase-1 projection: the per-thread ApproxMemory configuration
     * of this machine (threads = cores, cache = phase1L1) under
     * @p mode. Per-core approximator variants carry over as
     * threadApprox for the mechanism modes; the Precise projection is
     * canonical (no variants) so golden-cache keys stay stable.
     */
    ApproxMemory::Config phase1Config(MemMode mode) const;

    /** phase1Config(MemMode::Lva): the machine's baseline LVA config. */
    ApproxMemory::Config phase1Lva() const;

    /** phase1Config(MemMode::Precise): the machine's golden config. */
    ApproxMemory::Config phase1Precise() const;

    /**
     * Phase-2 projection: the full-system timing model of this
     * machine. With @p lvaEnabled the approximator runs at
     * @p degree with a value delay of 1 load, exactly like
     * FullSystemConfig::lva (paper section VI-E observes ~1 in
     * full-system runs); per-core variants carry over with the same
     * degree/delay override applied.
     */
    FullSystemConfig fullSystem(bool lvaEnabled, u32 degree = 0) const;
};

/** The shared built-in default machine (Table II). */
const MachineConfig &defaultMachine();

/**
 * Parse and validate one machine description. @p v must be a JSON
 * object carrying "schema": "lva-machine-v1"; unknown keys, type
 * mismatches, out-of-range values and geometry inconsistencies all
 * throw std::runtime_error with the offending key named.
 */
MachineConfig machineFromJson(const JsonValue &v);

/** machineFromJson over the contents of @p path (throws on I/O or
 *  parse errors, with the path in the message). */
MachineConfig machineFromFile(const std::string &path);

/**
 * Canonical compact-JSON rendering of @p m: every schema key in a
 * fixed order, so equal machines render byte-identically. Feeds the
 * coordinator's scatter requests, checkpoint context keys, and the
 * round-trip property machineFromJson(parse(render(m))) == m.
 */
std::string renderMachineJson(const MachineConfig &m);

/**
 * The flat (dotted) key list of the machine schema, in schema
 * (docs-table) order — the
 * source of truth behind `lva_stats_catalog --machine-schema` and the
 * docs/topology.md table gate.
 */
const std::vector<std::string> &machineSchemaKeys();

/**
 * Apply one approximator-config key ("table", "window", "estimator",
 * ...) to @p a; returns false when @p key is not an approximator key
 * (caller decides whether that is an error). Shared between the
 * machine parser and the lva-rpc-v1 "config" parser so both speak the
 * same key names; throws on a malformed value.
 */
bool applyApproxKey(ApproximatorConfig &a, const std::string &key,
                    const JsonValue &value);

} // namespace lva

#endif // LVA_SIM_MACHINE_CONFIG_HH
