/**
 * @file
 * Full-system configuration (paper Table II).
 *
 *   4 IA-32 cores, 2 GHz, 4-wide OoO, 32-entry ROB
 *   16 KB 8-way private L1 D-caches, 1-cycle latency, 64 B blocks
 *   512 KB shared distributed L2, 16-way, 6-cycle latency
 *   1 GB main memory, 160-cycle latency
 *   MSI coherence protocol
 *   2x2 mesh, 3-cycle routers
 */

#ifndef LVA_SIM_CONFIG_HH
#define LVA_SIM_CONFIG_HH

#include <vector>

#include "core/approximator_config.hh"
#include "cpu/ooo_core.hh"
#include "energy/energy_model.hh"
#include "mem/cache.hh"
#include "noc/mesh.hh"
#include "sim/directory.hh"

namespace lva {

/** Parameters of the 4-core CMP timing model. */
struct FullSystemConfig
{
    u32 cores = 4;
    CoreConfig core{};                       ///< 4-wide, 32-entry ROB
    CacheConfig l1 = CacheConfig::fullSystemL1();
    u32 l1Latency = 1;

    CacheConfig l2{512 * 1024, 16, 64};      ///< shared, distributed
    u32 l2Latency = 6;
    u32 l2Banks = 4;                         ///< one bank per mesh node
    u32 l2Occupancy = 1;                     ///< bank port busy cycles

    /** Coherence protocol; the paper's system uses MSI (Table II),
     *  MESI is provided as an ablation (silent E->M upgrades). */
    CoherenceProtocol protocol = CoherenceProtocol::Msi;

    u32 memLatency = 160;
    u32 memOccupancy = 8;                    ///< controller busy cycles

    MeshConfig mesh{};
    EnergyParams energy{};

    /** Approximation: enabled when lvaEnabled, using approx. */
    bool lvaEnabled = false;
    ApproximatorConfig approx{};

    /**
     * Per-core approximator variants (from MachineConfig::coreApprox):
     * empty means homogeneous — every core uses approx; otherwise
     * exactly one entry per core.
     */
    std::vector<ApproximatorConfig> coreApprox;

    /**
     * Extra latency added to background (training / write-allocate)
     * fetches, modelling the deprioritized, low-energy NoC and memory
     * paths of paper section VI-C. LVA tolerates this because stale
     * training only costs accuracy, never a rollback.
     */
    u32 backgroundFetchExtraLatency = 0;

    /**
     * Heterogeneous NoC (paper section VI-C, citing Mishra et al.):
     * when enabled, background training fetches travel over a second
     * mesh plane with narrower links and deeper (low-voltage) router
     * pipelines, whose flit-hops cost nocFlitHopSlow instead of
     * nocFlitHop. Demand traffic keeps the fast plane to itself,
     * which can even help tail latency.
     */
    bool heteroNoc = false;
    MeshConfig slowMesh{2, 2, /*routerCycles=*/6, /*flitBytes=*/8};

    /** Precise baseline system. */
    static FullSystemConfig
    baseline()
    {
        return {};
    }

    /**
     * LVA system at a given approximation degree. The full-system
     * value delay is ~1 load (paper section VI-E observes average
     * value delay of ~1 in full-system runs).
     */
    static FullSystemConfig
    lva(u32 degree)
    {
        FullSystemConfig cfg;
        cfg.lvaEnabled = true;
        cfg.approx = ApproximatorConfig::baseline();
        cfg.approx.approxDegree = degree;
        cfg.approx.valueDelay = 1;
        return cfg;
    }
};

} // namespace lva

#endif // LVA_SIM_CONFIG_HH
