#include "sim/full_system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lva {

/** Per-core replay context; stats live under "core<N>.*". */
struct FullSystemSim::CoreCtx
{
    CoreCtx(const FullSystemConfig &config, u32 index, StatRegistry &reg,
            const std::string &prefix)
        : core(config.core), l1(config.l1, reg, prefix + ".l1"),
          demandMisses(reg.counter(prefix + ".demandMisses",
                                   "misses the core had to wait for")),
          approxMisses(reg.counter(prefix + ".approxMisses",
                                   "misses hidden by approximation")),
          l1Misses(reg.counter(prefix + ".loadMisses",
                               "raw L1 load misses")),
          fetchesSkipped(reg.counter(
              prefix + ".fetchesSkipped",
              "block fetches cancelled by the degree counter")),
          missLatency(reg.histogram(
              prefix + ".missLatency", 0.0, 400.0, 20,
              "effective L1 miss latency seen by the core", "cycles"))
    {
        if (config.lvaEnabled) {
            const ApproximatorConfig &variant =
                config.coreApprox.empty() ? config.approx
                                          : config.coreApprox.at(index);
            lva = std::make_unique<LoadValueApproximator>(
                variant, reg, prefix + ".lva");
        }
    }

    OoOCore core;
    Cache l1;
    std::unique_ptr<LoadValueApproximator> lva;
    std::size_t cursor = 0;          ///< next trace event
    const ThreadTrace *trace = nullptr;
    Counter &demandMisses;
    Counter &approxMisses;
    Counter &l1Misses;
    Counter &fetchesSkipped;
    Histogram &missLatency;

    /** Remaining instructions of the current event's instrBefore
     *  batch; large batches are executed in scheduler-quantum chunks
     *  so cores interleave finely with each other's accesses. */
    u32 pendingInstr = 0;
    bool batchStarted = false;

    /** Completion time of the most recent load on this core; a load
     *  marked dependsOnPrev cannot issue before this (its address is
     *  produced by that load). */
    double lastLoadReady = 0.0;

    /** Outstanding background fills (store buffer + training-fetch
     *  MSHRs): completions of requests the core did not wait for. */
    std::deque<double> background;
    static constexpr std::size_t maxBackground = 16;

    /** Apply backpressure before issuing a new background request. */
    void
    reserveBackgroundSlot()
    {
        while (!background.empty() &&
               background.front() <= core.now())
            background.pop_front();
        if (background.size() >= maxBackground) {
            // Store buffer / MSHRs full: the core stalls until the
            // oldest background request completes.
            core.advanceTo(background.front());
            background.pop_front();
        }
    }
};

FullSystemSim::SysGauges::SysGauges(StatRegistry &reg)
    : cycles(reg.gauge("system.cycles",
                       "makespan over all cores", "cycles")),
      instructions(reg.gauge("system.instructions",
                             "instructions retired", "insts")),
      ipc(reg.gauge("system.ipc",
                    "aggregate instructions per cycle", "insts/cycle")),
      avgL1MissLatency(reg.gauge(
          "system.avgL1MissLatency",
          "average effective L1 miss latency", "cycles")),
      nocQueueWait(reg.gauge("system.nocQueueWait",
                             "total NoC link queueing", "cycles")),
      memQueueWait(reg.gauge("system.memQueueWait",
                             "total DRAM-port queueing", "cycles")),
      bankQueueWait(reg.gauge("system.bankQueueWait",
                              "total L2-bank-port queueing", "cycles")),
      energyL1(reg.gauge("energy.l1", "L1 dynamic energy", "nJ")),
      energyL2(reg.gauge("energy.l2", "L2 dynamic energy", "nJ")),
      energyDram(reg.gauge("energy.dram", "DRAM dynamic energy", "nJ")),
      energyNoc(reg.gauge("energy.noc", "NoC dynamic energy", "nJ")),
      energyApprox(reg.gauge("energy.approximator",
                             "approximator table energy", "nJ")),
      energyTotal(reg.gauge("energy.total",
                            "total dynamic energy", "nJ"))
{
}

FullSystemSim::FullSystemSim(const FullSystemConfig &config)
    : config_(config),
      bankPorts_(config.l2Banks, SlottedResource(8.0, 8.0)),
      memPorts_(config.l2Banks,
                SlottedResource(4.0 * config.memOccupancy,
                                4.0 * config.memOccupancy)),
      events_(registry_, "energy.events"),
      gauges_(registry_),
      l2Fetches_(registry_.counter("l2.fetches",
                                   "blocks L2 pulled from memory"))
{
    lva_assert(config.cores == config.mesh.nodes(),
               "one core per mesh node expected");
    lva_assert(config.l2Banks == config.mesh.nodes(),
               "one L2 bank per mesh node expected");
    lva_assert(config.coreApprox.empty() ||
                   config.coreApprox.size() == config.cores,
               "coreApprox must carry one entry per core");
    for (u32 c = 0; c < config.cores; ++c)
        cores_.push_back(std::make_unique<CoreCtx>(
            config, c, registry_, "core" + std::to_string(c)));
    // Distributed L2: one physically separate bank per mesh node,
    // each caching its address-interleaved slice.
    CacheConfig bank_cfg = config.l2;
    bank_cfg.sizeBytes = config.l2.sizeBytes / config.l2Banks;
    for (u32 b = 0; b < config.l2Banks; ++b)
        l2Bank_.push_back(std::make_unique<Cache>(
            bank_cfg, registry_, "l2.bank" + std::to_string(b)));
    mesh_ = std::make_unique<Mesh>(config.mesh);
    if (config.heteroNoc)
        slowMesh_ = std::make_unique<Mesh>(config.slowMesh);
}

FullSystemSim::~FullSystemSim() = default;

void
FullSystemSim::evictFromL1(u32 core, Addr block, double now)
{
    // Writeback traffic only for a dirty owner; a clean Exclusive
    // copy (MESI) is dropped silently.
    const Directory::Entry *entry = directory_.find(block);
    if (entry != nullptr && entry->owner == core && entry->dirty) {
        mesh_->deliver(core, bankOf(block), MessageBytes::data, now);
        events_.l2Accesses.inc(); // writeback into the L2 bank
        l2Bank_[bankOf(block)]->insert(bankLocalAddr(block), true);
    }
    directory_.removeSharer(block, core);
}

double
FullSystemSim::fetchBlock(u32 core, Addr block, bool is_write,
                          double now, bool background)
{
    const u32 bank = bankOf(block);
    Cache &l2 = *l2Bank_[bank];
    const Addr local = bankLocalAddr(block);

    // Background fills may ride the heterogeneous (slow, low-energy)
    // NoC plane; everything else keeps the fast plane.
    Mesh &net =
        (background && slowMesh_) ? *slowMesh_ : *mesh_;

    // 1. Request to the home bank.
    double t = net.deliver(core, bank, MessageBytes::control, now);

    // 2. L2 bank port + array access.
    const double start =
        bankPorts_[bank].acquire(t, config_.l2Occupancy);
    bankQueueWait_ += start - t;
    t = start + config_.l2Latency;
    events_.l2Accesses.inc();

    const Directory::Entry *entry = directory_.find(block);

    if (is_write) {
        // GetM: invalidate every other copy. The requesting core's
        // store retires from the store buffer, so invalidation
        // latency is off the critical path; the traffic is modelled.
        if (entry != nullptr) {
            for (u32 s = 0; s < config_.cores; ++s) {
                if (s == core || (entry->sharers & (1u << s)) == 0)
                    continue;
                net.deliver(bank, s, MessageBytes::control, t);
                cores_[s]->l1.invalidate(block);
                directory_.stats().invalidationsSent.inc();
            }
        }
    } else if (entry != nullptr && entry->owner != Directory::noOwner &&
               entry->owner != core) {
        // GetS with a remote E/M owner: forward from the owner's L1;
        // dirty (M) data is also written back into the bank as the
        // owner downgrades to S. Clean (E) forwards carry no
        // writeback.
        const u32 owner = entry->owner;
        const bool was_dirty = entry->dirty;
        double fwd =
            net.deliver(bank, owner, MessageBytes::control, t);
        fwd += config_.l1Latency;
        events_.l1Accesses.inc(); // owner L1 read-out
        directory_.stats().forwards.inc();
        directory_.downgrade(block);
        if (was_dirty) {
            net.deliver(owner, bank, MessageBytes::data, fwd);
            events_.l2Accesses.inc();
        }
        const double arrive =
            net.deliver(owner, core, MessageBytes::data, fwd);
        // The data lands in the (inclusive) L2 bank; insert()
        // refreshes recency if it is already resident.
        l2.insert(local, was_dirty);
        CoreCtx &ctx = *cores_[core];
        const Addr victim = ctx.l1.insert(block, false);
        if (victim != invalidAddr)
            evictFromL1(core, victim, arrive);
        directory_.addSharer(block, core);
        return arrive + config_.l1Latency;
    }

    // 3. L2 lookup; miss goes to memory.
    const bool l2_hit = l2.access(local);
    if (!l2_hit) {
        const double mem_start =
            memPorts_[bank].acquire(t, config_.memOccupancy);
        memQueueWait_ += mem_start - t;
        t = mem_start + config_.memLatency;
        events_.dramAccesses.inc();
        const Addr local_victim = l2.insert(local);
        l2Fetches_.inc();
        if (local_victim != invalidAddr) {
            // Inclusive L2: recall the victim from any L1 holding it.
            const Addr l2_victim = globalAddr(local_victim, bank);
            const Directory::Entry *v = directory_.find(l2_victim);
            if (v != nullptr) {
                for (u32 s = 0; s < config_.cores; ++s) {
                    if ((v->sharers & (1u << s)) == 0)
                        continue;
                    net.deliver(bank, s, MessageBytes::control, t);
                    cores_[s]->l1.invalidate(l2_victim);
                }
                directory_.clear(l2_victim);
            }
        }
    }

    // 4. Data response to the requesting core.
    const double arrive =
        net.deliver(bank, core, MessageBytes::data, t);

    // 5. L1 fill + directory update. Under MESI a read fill with no
    // other sharers grants the E state, enabling later silent
    // upgrades; MSI (the paper's protocol) grants only S.
    CoreCtx &ctx = *cores_[core];
    const Addr victim = ctx.l1.insert(block, is_write);
    if (victim != invalidAddr)
        evictFromL1(core, victim, arrive);
    const Directory::Entry *after = directory_.find(block);
    if (is_write) {
        directory_.setOwner(block, core, /*dirty=*/true);
    } else if (config_.protocol == CoherenceProtocol::Mesi &&
               (after == nullptr || after->sharers == 0)) {
        directory_.setOwner(block, core, /*dirty=*/false);
    } else {
        directory_.addSharer(block, core);
    }

    return arrive + config_.l1Latency;
}

FullSystemResult
FullSystemSim::run(const std::vector<ThreadTrace> &traces)
{
    lva_assert(traces.size() == cores_.size(),
               "trace count %zu != core count %zu", traces.size(),
               cores_.size());
    for (u32 c = 0; c < cores_.size(); ++c)
        cores_[c]->trace = &traces[c];

    // Replay: always advance the core whose local clock is earliest,
    // so cross-core contention and coherence interleave plausibly.
    while (true) {
        CoreCtx *next = nullptr;
        u32 next_id = 0;
        for (u32 c = 0; c < cores_.size(); ++c) {
            CoreCtx &ctx = *cores_[c];
            if (ctx.cursor >= ctx.trace->size())
                continue;
            if (next == nullptr || ctx.core.now() < next->core.now()) {
                next = &ctx;
                next_id = c;
            }
        }
        if (next == nullptr)
            break;

        // Execute the event's leading instruction batch in bounded
        // chunks, yielding to other cores between chunks so their
        // coherence actions interleave at realistic granularity.
        const TraceEvent &ev = (*next->trace)[next->cursor];
        constexpr u32 quantum = 64;
        if (!next->batchStarted) {
            next->pendingInstr = ev.instrBefore;
            next->batchStarted = true;
        }
        if (next->pendingInstr > 0) {
            const u32 chunk = next->pendingInstr < quantum
                                  ? next->pendingInstr
                                  : quantum;
            next->core.executeInstructions(chunk);
            next->pendingInstr -= chunk;
            continue; // rescheduled by min-clock
        }
        next->cursor++;
        next->batchStarted = false;

        // Address dependency: a pointer-chasing load cannot issue
        // before the load that produced its address has completed.
        if (ev.isLoad && ev.dependsOnPrev)
            next->core.advanceTo(next->lastLoadReady);

        const Addr block = next->l1.blockAlign(ev.addr);
        events_.l1Accesses.inc();

        if (ev.isLoad) {
            const bool hit = next->l1.access(ev.addr, false);
            if (hit) {
                if (ev.approximable && next->lva) {
                    // A GHB push only — no table access is charged
                    // (the table is consulted on misses alone).
                    next->lva->onHit(ev.pc, ev.value);
                }
                next->core.loadHit();
                next->lastLoadReady =
                    next->core.now() + config_.l1Latency;
                continue;
            }
            next->l1Misses.inc();

            if (ev.approximable && next->lva) {
                const MissResponse resp =
                    next->lva->onMiss(ev.pc, ev.value);
                events_.approxLookups.inc();
                if (resp.fetch) {
                    if (resp.approximated)
                        next->reserveBackgroundSlot();
                    const double issue = next->core.now();
                    const double done = fetchBlock(
                        next_id, block, false, issue,
                        /*background=*/resp.approximated);
                    events_.approxTrains.inc();
                    if (resp.approximated) {
                        // Training fetch off the critical path,
                        // possibly over the deprioritized path.
                        next->background.push_back(
                            done + config_.backgroundFetchExtraLatency);
                        next->approxMisses.inc();
                        next->missLatency.sample(1.0);
                        next->core.loadHit(); // miss hidden
                        next->lastLoadReady =
                            next->core.now() + config_.l1Latency;
                    } else {
                        next->demandMisses.inc();
                        next->missLatency.sample(done - issue);
                        next->core.demandMiss(done);
                        next->lastLoadReady = done;
                    }
                } else {
                    // Fetch cancelled outright (approximation degree).
                    next->approxMisses.inc();
                    next->fetchesSkipped.inc();
                    next->missLatency.sample(1.0);
                    next->core.loadHit();
                    next->lastLoadReady =
                        next->core.now() + config_.l1Latency;
                }
                continue;
            }

            const double issue = next->core.now();
            const double done = fetchBlock(next_id, block, false, issue);
            next->demandMisses.inc();
            next->missLatency.sample(done - issue);
            next->core.demandMiss(done);
            next->lastLoadReady = done;
        } else {
            // Stores: retire via the store buffer. A hit may still
            // need an upgrade (invalidate other sharers); a miss
            // write-allocates in the background.
            const double now = next->core.now();
            const bool hit = next->l1.access(ev.addr, true);
            if (hit) {
                const Directory::Entry *entry = directory_.find(block);
                if (entry != nullptr && entry->owner == next_id) {
                    // Already E or M: a MESI E copy upgrades
                    // silently (no traffic); M stays M.
                    directory_.markDirty(block);
                } else {
                    // Upgrade: GetM without data transfer.
                    const u32 bank = bankOf(block);
                    mesh_->deliver(next_id, bank,
                                   MessageBytes::control, now);
                    if (entry != nullptr) {
                        for (u32 s = 0; s < cores_.size(); ++s) {
                            if (s == next_id ||
                                (entry->sharers & (1u << s)) == 0)
                                continue;
                            mesh_->deliver(bank, s,
                                           MessageBytes::control, now);
                            cores_[s]->l1.invalidate(block);
                            directory_.stats()
                                .invalidationsSent.inc();
                        }
                    }
                    directory_.setOwner(block, next_id);
                }
                next->core.storeAccess();
            } else {
                next->reserveBackgroundSlot();
                const double done =
                    fetchBlock(next_id, block, true, next->core.now(),
                               /*background=*/true);
                next->background.push_back(
                    done + config_.backgroundFetchExtraLatency);
                next->core.storeAccess();
            }
        }
    }

    // Drain and collect.
    FullSystemResult result;
    double makespan = 0.0;
    double miss_latency_sum = 0.0;
    u64 miss_count = 0;
    for (auto &ctx : cores_) {
        ctx->core.drainAll();
        makespan = std::max(makespan, ctx->core.now());
        result.instructions += ctx->core.instructionsRetired();
        result.l1Misses += ctx->l1Misses.value();
        result.demandMisses += ctx->demandMisses.value();
        result.approxMisses += ctx->approxMisses.value();
        result.fetchesSkipped += ctx->fetchesSkipped.value();
        miss_latency_sum +=
            ctx->core.missLatencySum() +
            1.0 * static_cast<double>(ctx->approxMisses.value());
        miss_count +=
            ctx->demandMisses.value() + ctx->approxMisses.value();
    }
    result.cycles = makespan;
    result.ipc = makespan > 0.0
                     ? static_cast<double>(result.instructions) / makespan
                     : 0.0;
    result.avgL1MissLatency =
        miss_count > 0
            ? miss_latency_sum / static_cast<double>(miss_count)
            : 0.0;
    result.l2Accesses = events_.l2Accesses.value();
    result.l2Fetches = l2Fetches_.value();
    result.dramAccesses = events_.dramAccesses.value();
    const u64 slow_hops =
        slowMesh_ ? slowMesh_->stats().flitHops.value() : 0;
    result.flitHops = mesh_->stats().flitHops.value() + slow_hops;
    result.nocQueueWait =
        mesh_->stats().queueWait +
        (slowMesh_ ? slowMesh_->stats().queueWait : 0.0);
    result.memQueueWait = memQueueWait_;
    result.bankQueueWait = bankQueueWait_;
    // The mesh keeps its own counters; fold the final hop totals into
    // the energy-event registry entries (run() executes once).
    events_.nocFlitHops.inc(mesh_->stats().flitHops.value());
    events_.nocFlitHopsSlow.inc(slow_hops);
    result.events = events_.value();
    result.energy = computeEnergy(result.events, config_.energy);

    gauges_.cycles.set(result.cycles);
    gauges_.instructions.set(static_cast<double>(result.instructions));
    gauges_.ipc.set(result.ipc);
    gauges_.avgL1MissLatency.set(result.avgL1MissLatency);
    gauges_.nocQueueWait.set(result.nocQueueWait);
    gauges_.memQueueWait.set(result.memQueueWait);
    gauges_.bankQueueWait.set(result.bankQueueWait);
    gauges_.energyL1.set(result.energy.l1);
    gauges_.energyL2.set(result.energy.l2);
    gauges_.energyDram.set(result.energy.dram);
    gauges_.energyNoc.set(result.energy.noc);
    gauges_.energyApprox.set(result.energy.approximator);
    gauges_.energyTotal.set(result.energy.total());
    result.stats = registry_.snapshot();
    return result;
}

} // namespace lva
