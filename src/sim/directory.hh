/**
 * @file
 * Directory state for the MSI coherence protocol.
 *
 * One logical directory, banked with the shared L2: for every block it
 * records which L1s hold it and whether one of them owns it in M. The
 * timing simulator consults it to generate invalidation, downgrade and
 * forwarding traffic, and keeps it consistent with the functional L1
 * tag arrays on every fill, eviction and upgrade.
 */

#ifndef LVA_SIM_DIRECTORY_HH
#define LVA_SIM_DIRECTORY_HH

#include <unordered_map>

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace lva {

/** Coherence state of a block as seen by the directory. */
enum class CoherenceState : u8 {
    Invalid,   ///< no L1 holds the block
    Shared,    ///< one or more L1s hold it read-only
    Exclusive, ///< exactly one L1 holds it clean (MESI only)
    Modified,  ///< exactly one L1 owns it dirty
};

/** Which protocol the directory enforces. */
enum class CoherenceProtocol : u8 {
    Msi,  ///< the paper's Table II configuration
    Mesi, ///< adds the E state: silent upgrade on private data
};

/** Directory statistics. */
struct DirectoryStats
{
    Counter invalidationsSent; ///< sharer copies killed by GetM
    Counter downgrades;        ///< M owners demoted to S by GetS
    Counter forwards;          ///< owner-to-requestor data forwards

    void
    reset()
    {
        invalidationsSent.reset();
        downgrades.reset();
        forwards.reset();
    }
};

/**
 * Sharer-tracking directory for up to 32 cores.
 */
class Directory
{
  public:
    static constexpr u32 noOwner = ~u32(0);

    struct Entry
    {
        u32 sharers = 0;      ///< bitmask of L1s holding the block
        u32 owner = noOwner;  ///< valid in Exclusive/Modified
        bool dirty = false;   ///< distinguishes M from E
    };

    /** Current coherence state of @p block. */
    CoherenceState
    stateOf(Addr block) const
    {
        const auto it = entries_.find(block);
        if (it == entries_.end() || it->second.sharers == 0)
            return CoherenceState::Invalid;
        if (it->second.owner == noOwner)
            return CoherenceState::Shared;
        return it->second.dirty ? CoherenceState::Modified
                                : CoherenceState::Exclusive;
    }

    const Entry *
    find(Addr block) const
    {
        const auto it = entries_.find(block);
        return it == entries_.end() ? nullptr : &it->second;
    }

    bool
    isSharer(Addr block, u32 core) const
    {
        const Entry *e = find(block);
        return e != nullptr && (e->sharers & (1u << core)) != 0;
    }

    /** Record that @p core obtained the block in S. */
    void
    addSharer(Addr block, u32 core)
    {
        Entry &e = entries_[block];
        e.sharers |= 1u << core;
        if (e.owner == core)
            e.owner = noOwner; // demoted by a read fill
    }

    /** Record that @p core obtained sole ownership.
     *  @param dirty true for M (a write), false for E (a read fill
     *         granted exclusively under MESI) */
    void
    setOwner(Addr block, u32 core, bool dirty = true)
    {
        Entry &e = entries_[block];
        e.sharers = 1u << core;
        e.owner = core;
        e.dirty = dirty;
    }

    /** Silent E -> M transition (a MESI store hit on own E copy). */
    void
    markDirty(Addr block)
    {
        auto it = entries_.find(block);
        if (it != entries_.end())
            it->second.dirty = true;
    }

    /** Demote an E/M owner to a plain sharer (GetS downgrade). */
    void
    downgrade(Addr block)
    {
        auto it = entries_.find(block);
        if (it != entries_.end()) {
            it->second.owner = noOwner;
            it->second.dirty = false;
            stats_.downgrades.inc();
        }
    }

    /** Remove @p core's copy (L1 eviction or invalidation). */
    void
    removeSharer(Addr block, u32 core)
    {
        auto it = entries_.find(block);
        if (it == entries_.end())
            return;
        it->second.sharers &= ~(1u << core);
        if (it->second.owner == core) {
            it->second.owner = noOwner;
            it->second.dirty = false;
        }
        if (it->second.sharers == 0)
            entries_.erase(it);
    }

    /** Drop all sharer state for @p block (L2 eviction recall). */
    void
    clear(Addr block)
    {
        entries_.erase(block);
    }

    DirectoryStats &stats() { return stats_; }
    const DirectoryStats &stats() const { return stats_; }

    std::size_t trackedBlocks() const { return entries_.size(); }

  private:
    // Determinism audit (lva-lint no-unordered-iteration): hash order
    // never escapes this map.  Every access above is a point lookup,
    // insert or erase keyed by block address; the only aggregate view
    // is trackedBlocks() == size(), which is order-independent.  The
    // DirectoryStats counters that do reach exports are incremented on
    // keyed operations, never by walking entries_.  If a future change
    // needs to enumerate blocks (e.g. a recall sweep), snapshot the
    // keys and sort them first.
    std::unordered_map<Addr, Entry> entries_;
    DirectoryStats stats_;
};

} // namespace lva

#endif // LVA_SIM_DIRECTORY_HH
