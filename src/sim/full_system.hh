/**
 * @file
 * Full-system timing simulation of the Table II CMP: four OoO cores
 * with private L1s, a shared banked L2 with a directory MSI protocol,
 * a 2x2 mesh NoC, main memory, and optionally a load value
 * approximator beside each L1.
 *
 * Traces recorded from a precise functional run are replayed; the
 * simulator recomputes hits/misses, coherence traffic, approximation
 * decisions, per-access timing with contention, and dynamic energy.
 */

#ifndef LVA_SIM_FULL_SYSTEM_HH
#define LVA_SIM_FULL_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/approximator.hh"
#include "cpu/ooo_core.hh"
#include "cpu/trace.hh"
#include "energy/energy_model.hh"
#include "mem/cache.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/directory.hh"
#include "util/slotted_resource.hh"
#include "util/stat_registry.hh"

namespace lva {

/** Outputs of one full-system replay. */
struct FullSystemResult
{
    double cycles = 0.0;          ///< makespan over all cores
    u64 instructions = 0;
    double ipc = 0.0;

    u64 l1Misses = 0;             ///< raw L1 load misses
    u64 demandMisses = 0;         ///< misses the core had to wait for
    u64 approxMisses = 0;         ///< misses hidden by approximation
    u64 fetchesSkipped = 0;       ///< block fetches cancelled (degree)
    u64 l2Accesses = 0;
    u64 l2Fetches = 0;            ///< blocks L2 pulled from memory
    u64 dramAccesses = 0;
    u64 flitHops = 0;             ///< interconnect traffic
    double nocQueueWait = 0.0;    ///< total link queueing (diagnostic)
    double memQueueWait = 0.0;    ///< total DRAM-port queueing
    double bankQueueWait = 0.0;   ///< total L2-bank-port queueing

    /**
     * Average effective L1 miss latency as seen by the core:
     * approximated misses cost one cycle, demand misses their full
     * round trip.
     */
    double avgL1MissLatency = 0.0;

    EnergyEvents events{};
    EnergyBreakdown energy{};

    /** Full registry snapshot taken at the end of run(). */
    StatSnapshot stats{};

    /** L1-miss energy-delay product (paper Figure 11): the energy
     *  spent servicing L1 misses times the average effective miss
     *  latency. */
    double
    missEdp() const
    {
        return energy.missServicing() * avgL1MissLatency;
    }
};

/**
 * The timing simulator. Construct once per replay.
 */
class FullSystemSim
{
  public:
    explicit FullSystemSim(const FullSystemConfig &config);
    ~FullSystemSim();

    /** Replay @p traces (one per core) to completion. */
    FullSystemResult run(const std::vector<ThreadTrace> &traces);

    /**
     * The simulation's stat registry: "core<N>.*", "l2.bank<N>.*",
     * "energy.*" and "system.*". Gauges are populated by run().
     */
    const StatRegistry &registry() const { return registry_; }

  private:
    struct CoreCtx;

    /** End-of-run derived values, registered at construction. */
    struct SysGauges
    {
        SysGauges(StatRegistry &reg);

        Gauge &cycles;
        Gauge &instructions;
        Gauge &ipc;
        Gauge &avgL1MissLatency;
        Gauge &nocQueueWait;
        Gauge &memQueueWait;
        Gauge &bankQueueWait;
        Gauge &energyL1;
        Gauge &energyL2;
        Gauge &energyDram;
        Gauge &energyNoc;
        Gauge &energyApprox;
        Gauge &energyTotal;
    };

    /**
     * Service an L1 fill for @p core: the full GetS/GetM round trip.
     *
     * @param background the fill is off the critical path (training
     *        fetch or store write-allocate); with heteroNoc it rides
     *        the slow mesh plane
     * @return data-arrival cycle at the requesting core
     */
    double fetchBlock(u32 core, Addr block, bool is_write, double now,
                      bool background = false);

    /** Handle eviction of @p block from @p core's L1. */
    void evictFromL1(u32 core, Addr block, double now);

    /** Home L2 bank of a block (address-interleaved). */
    u32
    bankOf(Addr block) const
    {
        return static_cast<u32>((block / config_.l1.blockBytes) %
                                config_.l2Banks);
    }

    /**
     * Bank-local alias of a global block address: the banks are
     * address-interleaved, so a bank sees every l2Banks-th block;
     * compacting the block number keeps its set index bits dense
     * (otherwise 1/l2Banks of each bank's sets would be usable).
     */
    Addr
    bankLocalAddr(Addr block) const
    {
        const u64 bs = config_.l1.blockBytes;
        return ((block / bs) / config_.l2Banks) * bs;
    }

    /** Inverse of bankLocalAddr for a given bank. */
    Addr
    globalAddr(Addr local, u32 bank) const
    {
        const u64 bs = config_.l1.blockBytes;
        return ((local / bs) * config_.l2Banks + bank) * bs;
    }

    FullSystemConfig config_;
    StatRegistry registry_; ///< declared before every stats holder
    std::vector<std::unique_ptr<CoreCtx>> cores_;
    std::vector<std::unique_ptr<Cache>> l2Bank_;
    std::unique_ptr<Mesh> mesh_;
    std::unique_ptr<Mesh> slowMesh_; ///< heterogeneous plane, if any
    Directory directory_;
    std::vector<SlottedResource> bankPorts_;
    std::vector<SlottedResource> memPorts_;
    EnergyEventCounters events_;
    SysGauges gauges_;
    Counter &l2Fetches_;
    double memQueueWait_ = 0.0;
    double bankQueueWait_ = 0.0;
};

} // namespace lva

#endif // LVA_SIM_FULL_SYSTEM_HH
