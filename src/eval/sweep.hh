/**
 * @file
 * Parallel sweep engine for the bench drivers.
 *
 * Every figure/table walks a (workload x config x seed) grid of
 * independent, seeded, deterministic simulations — embarrassingly
 * parallel work that the drivers used to run strictly serially. A
 * SweepRunner fans a batch of named sweep points out across a fixed
 * ThreadPool and returns results in submission order, so tables and
 * CSVs are byte-identical to the serial output regardless of the
 * worker count. LVA_JOBS=1 bypasses the pool entirely and reproduces
 * the historical serial path exactly.
 */

#ifndef LVA_EVAL_SWEEP_HH
#define LVA_EVAL_SWEEP_HH

#include <future>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "eval/evaluator.hh"
#include "util/thread_pool.hh"

namespace lva {

/** One named (workload, configuration) evaluation request. */
struct SweepPoint
{
    std::string label;    ///< driver-chosen tag (column/row name)
    std::string workload; ///< PARSEC benchmark name
    ApproxMemory::Config config;
};

/**
 * Fans batches of sweep points out across a worker pool.
 *
 * Concurrent points share the Evaluator's golden-run cache: the first
 * point to need a (workload, seed) baseline builds it once and every
 * other point blocks on that latch instead of duplicating the run.
 */
class SweepRunner
{
  public:
    /**
     * @param eval shared evaluator (golden cache lives here)
     * @param jobs worker threads; 0 = ThreadPool::defaultJobs()
     *             (LVA_JOBS env, else hardware concurrency)
     */
    explicit SweepRunner(Evaluator &eval, u32 jobs = 0);

    /** Generic fan-out without a phase-1 evaluator (full-system). */
    explicit SweepRunner(u32 jobs = 0);

    /** Worker threads in use (1 = serial, no pool). */
    u32 jobs() const { return jobs_; }

    Evaluator &evaluator() { return *eval_; }

    /**
     * Evaluate every point, in parallel, returning results in
     * submission order (results[i] corresponds to points[i]).
     */
    std::vector<EvalResult> run(const std::vector<SweepPoint> &points);

    /**
     * Ordered fan-out of @p count independent tasks: apply @p fn to
     * each index 0..count-1 on the pool and return the results in
     * index order. @p fn must be safe to invoke concurrently; it is
     * copied into each task, so reference captures must outlive run.
     */
    template <typename Fn>
    auto
    map(u64 count, Fn fn) -> std::vector<std::invoke_result_t<Fn, u64>>
    {
        using R = std::invoke_result_t<Fn, u64>;
        static_assert(!std::is_void_v<R>,
                      "map tasks must return a value");
        std::vector<R> out;
        out.reserve(count);
        if (!pool_) { // serial path: identical to the historical loop
            for (u64 i = 0; i < count; ++i)
                out.push_back(fn(i));
            return out;
        }
        std::vector<std::future<R>> futures;
        futures.reserve(count);
        for (u64 i = 0; i < count; ++i)
            futures.push_back(pool_->submit([fn, i] { return fn(i); }));
        for (auto &f : futures)
            out.push_back(f.get());
        return out;
    }

  private:
    Evaluator *eval_;
    u32 jobs_;
    std::unique_ptr<ThreadPool> pool_; ///< null when jobs_ == 1
};

/**
 * Write the versioned stats JSON export for a completed sweep to
 * "<resultsDir()>/stats/<driver>.json": one labelled snapshot per
 * point, in submission order. Because results come back in submission
 * order and each point's snapshot is merged seed-serially, the bytes
 * are identical for any LVA_JOBS.
 *
 * @return the path written
 */
std::string exportSweepStats(const std::string &driver,
                             const std::vector<SweepPoint> &points,
                             const std::vector<EvalResult> &results);

} // namespace lva

#endif // LVA_EVAL_SWEEP_HH
