/**
 * @file
 * Parallel, fault-tolerant sweep engine for the bench drivers.
 *
 * Every figure/table walks a (workload x config x seed) grid of
 * independent, seeded, deterministic simulations — embarrassingly
 * parallel work that the drivers used to run strictly serially. A
 * SweepRunner fans a batch of named sweep points out across a fixed
 * ThreadPool and returns results in submission order, so tables and
 * CSVs are byte-identical to the serial output regardless of the
 * worker count. LVA_JOBS=1 bypasses the pool entirely and reproduces
 * the historical serial path exactly.
 *
 * Robustness layer (DESIGN.md section 13): runChecked()/mapChecked()
 * isolate each point — an exception, a tripped lva_assert, or an
 * injected fault becomes a structured PointFailure instead of
 * aborting the batch — with bounded retry under capped exponential
 * backoff, optional per-point deadlines, and an append-only fsync'd
 * checkpoint manifest (util/checkpoint) that lets a killed sweep
 * restart and skip every point it already completed.
 */

#ifndef LVA_EVAL_SWEEP_HH
#define LVA_EVAL_SWEEP_HH

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "eval/evaluator.hh"
#include "util/checkpoint.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace lva {

struct MachineConfig;

/** One named (workload, configuration) evaluation request. */
struct SweepPoint
{
    std::string label;    ///< driver-chosen tag (column/row name)
    std::string workload; ///< PARSEC benchmark name
    ApproxMemory::Config config;
};

/** One isolated point that could not be completed. */
struct PointFailure
{
    u64 index = 0;         ///< submission index of the failed point
    std::string label;     ///< point label ("" for map tasks)
    std::string workload;  ///< workload name ("" for map tasks)
    std::string error;     ///< what() of the final failed attempt
    u32 attempts = 1;      ///< attempts consumed (== maxAttempts)
    bool timedOut = false; ///< deadline expiry, not an exception
};

/**
 * Execution policy for a checked sweep. Field defaults of 0/false
 * defer to the environment knobs noted below; the environment never
 * overrides an explicit nonzero field.
 */
struct SweepOptions
{
    /** Driver name: names the checkpoint manifest file. */
    std::string driver;

    /** Record completed points into the manifest (LVA_CHECKPOINT=1). */
    bool checkpoint = false;

    /** Skip points already in the manifest (LVA_RESUME=1; implies
     *  checkpoint). */
    bool resume = false;

    /** Attempts per point, >= 1 (LVA_RETRIES=<n> means 1+n attempts;
     *  default 1: deterministic simulations only transiently fail
     *  under fault injection or resource exhaustion). */
    u32 maxAttempts = 0;

    /** First retry backoff in ms (default 10); doubles per retry. */
    u32 backoffBaseMs = 0;

    /** Backoff ceiling in ms (default 1000). */
    u32 backoffCapMs = 0;

    /**
     * Per-point deadline in ms (LVA_POINT_TIMEOUT_MS; 0 = none).
     * Requires a pool (jobs >= 2): the result collector abandons a
     * point whose future is not ready within the deadline of the
     * collector reaching it. A coarse watchdog against hung points,
     * not a precise per-point timer — and inherently timing
     * dependent, so leave it off when byte-identical reruns matter.
     */
    u64 timeoutMs = 0;

    /**
     * Machine topology the sweep runs on (--machine <file>, else the
     * LVA_MACHINE path knob); null = the built-in Table II machine,
     * which is byte-identity-pinned against the historical hardcoded
     * defaults. Shared, immutable: copying SweepOptions never copies
     * the parsed config.
     */
    std::shared_ptr<const MachineConfig> machine;
};

/** Everything a checked sweep produced. */
struct SweepOutcome
{
    /**
     * One entry per submitted point, in submission order. Failed
     * points hold a placeholder whose scalar fields and "eval.*"
     * gauges are NaN and whose failed flag is set, so tables render
     * an honest "nan" rather than a plausible number.
     */
    std::vector<EvalResult> results;

    /** Structured failures, ordered by point index. */
    std::vector<PointFailure> failures;

    /** Points restored from the checkpoint manifest, not re-run. */
    u64 resumed = 0;

    bool ok() const { return failures.empty(); }
};

/** Results of a checked map (see SweepRunner::mapChecked). */
template <typename R>
struct MapOutcome
{
    std::vector<std::optional<R>> results; ///< nullopt = failed task
    std::vector<PointFailure> failures;    ///< ordered by index

    bool ok() const { return failures.empty(); }
};

/**
 * Resolve SweepOptions against the environment knobs and defaults
 * (LVA_CHECKPOINT, LVA_RESUME, LVA_RETRIES, LVA_POINT_TIMEOUT_MS).
 */
SweepOptions resolveSweepOptions(SweepOptions opts);

/**
 * The standard robustness CLI shared by every sweep-driving bench
 * binary: --checkpoint, --resume, --retries N, --timeout-ms N,
 * --machine FILE (plus the environment knobs, which explicit flags
 * override). Unknown arguments exit(2) with a usage message.
 */
SweepOptions sweepOptionsFromCli(const std::string &driver, int argc,
                                 char **argv);

/** The machine a sweep runs on: *opts.machine or defaultMachine(). */
const MachineConfig &sweepMachine(const SweepOptions &opts);

/**
 * The baseline-LVA phase-1 config of the sweep's machine. With no
 * --machine/LVA_MACHINE this is exactly Evaluator::baselineLva(), so
 * drivers converted to it stay byte-identical by construction.
 */
ApproxMemory::Config machineBaseLva(const SweepOptions &opts);

/**
 * Print one warning line per failure and return the driver exit
 * code: 0 for a clean sweep, 3 (documented in DESIGN.md section 13)
 * when results are partial.
 */
int reportSweepFailures(const SweepOutcome &outcome);

/** As above for mapChecked outcomes (@p total submitted tasks). */
int reportSweepFailures(const std::vector<PointFailure> &failures,
                        std::size_t total);

/**
 * The honest placeholder a failed point leaves in a result row:
 * NaN scalars, NaN "eval.*" gauges, failed flag set. Exposed so the
 * shard merge (eval/coord) can reconstruct a worker-side failure
 * exactly as the local engine would have recorded it.
 */
EvalResult failedPointPlaceholder();

/** Stable canonical rendering of a config (digest input). */
std::string configKey(const ApproxMemory::Config &cfg);

/** Stable digest of one sweep point (16 hex chars). */
std::string sweepPointDigest(const SweepPoint &point);

/**
 * The manifest context key for an evaluator-driven sweep: binds
 * cached results to the export schema, seed count and scale, so a
 * manifest written under different settings is never resumed.
 */
std::string sweepContextKey(const Evaluator &eval);

/**
 * As above, additionally binding the manifest to the sweep's machine
 * topology (digest of its canonical JSON) when one is set, so a
 * manifest written under one machine is never resumed under another.
 * With no machine set the key is byte-identical to the historical
 * sweepContextKey(eval), keeping pre-machine manifests resumable.
 */
std::string sweepContextKey(const Evaluator &eval,
                            const SweepOptions &opts);

/** Catalog of the sweep-runtime gauges folded into every completed
 *  point's snapshot ("eval.retries.*", "eval.failures.*"). */
const std::vector<EvalMetricDef> &sweepRuntimeDefs();

/**
 * Fans batches of sweep points out across a worker pool.
 *
 * Concurrent points share the Evaluator's golden-run cache: the first
 * point to need a (workload, seed) baseline builds it once and every
 * other point blocks on that latch instead of duplicating the run.
 *
 * Worker-count precedence (pinned by sweep_test): an explicit
 * nonzero @p jobs always wins — jobs=1 is the exact serial path (no
 * pool, no LVA_JOBS consultation) even when LVA_JOBS demands more;
 * only jobs=0 defers to LVA_JOBS, then hardware concurrency.
 */
class SweepRunner
{
  public:
    /**
     * @param eval shared evaluator (golden cache lives here)
     * @param jobs worker threads; 0 = ThreadPool::defaultJobs()
     *             (LVA_JOBS env, else hardware concurrency)
     */
    explicit SweepRunner(Evaluator &eval, u32 jobs = 0);

    /** Generic fan-out without a phase-1 evaluator (full-system). */
    explicit SweepRunner(u32 jobs = 0);

    /** Worker threads in use (1 = serial, no pool). */
    u32 jobs() const { return jobs_; }

    /** True when no pool exists (the historical serial loop). */
    bool serial() const { return pool_ == nullptr; }

    Evaluator &evaluator() { return *eval_; }

    /**
     * Evaluate every point, in parallel, returning results in
     * submission order (results[i] corresponds to points[i]). The
     * historical strict API: the first point failure propagates as
     * an exception. Prefer runChecked for crash-safe sweeps.
     */
    std::vector<EvalResult> run(const std::vector<SweepPoint> &points);

    /**
     * Evaluate every point with per-point isolation, bounded retry,
     * optional deadlines, and (per @p opts) checkpoint/resume via the
     * manifest at "<resultsDir>/checkpoints/<driver>.jsonl".
     * Deterministic for any LVA_JOBS when timeouts are off.
     */
    SweepOutcome runChecked(const std::vector<SweepPoint> &points,
                            const SweepOptions &opts = {});

    /**
     * Ordered fan-out of @p count independent tasks: apply @p fn to
     * each index 0..count-1 on the pool and return the results in
     * index order. @p fn must be safe to invoke concurrently; it is
     * copied into each task, so reference captures must outlive run.
     */
    template <typename Fn>
    auto
    map(u64 count, Fn fn) -> std::vector<std::invoke_result_t<Fn, u64>>
    {
        using R = std::invoke_result_t<Fn, u64>;
        static_assert(!std::is_void_v<R>,
                      "map tasks must return a value");
        std::vector<R> out;
        out.reserve(count);
        if (!pool_) { // serial path: identical to the historical loop
            for (u64 i = 0; i < count; ++i)
                out.push_back(fn(i));
            return out;
        }
        std::vector<std::future<R>> futures;
        futures.reserve(count);
        for (u64 i = 0; i < count; ++i)
            futures.push_back(pool_->submit([fn, i] { return fn(i); }));
        for (auto &f : futures)
            out.push_back(f.get());
        return out;
    }

    /**
     * map() with the robustness layer: each task runs under failure
     * isolation with retry/backoff per @p opts; failures surface as
     * PointFailure records (labelled via @p labeler when given)
     * instead of aborting the batch. Checkpoint/resume does not apply
     * here — map results are arbitrary types the manifest cannot
     * serialize — so checkpointing is silently skipped and an explicit
     * resume request draws a warning that everything will re-run.
     */
    template <typename Fn>
    auto
    mapChecked(u64 count, Fn fn, const SweepOptions &opts = {},
               std::function<std::string(u64)> labeler = nullptr)
        -> MapOutcome<std::invoke_result_t<Fn, u64>>
    {
        using R = std::invoke_result_t<Fn, u64>;
        const SweepOptions eff = resolveSweepOptions(opts);
        if (eff.resume)
            lva_warn("%s: resume applies to point sweeps only; "
                     "re-running every task",
                     eff.driver.empty() ? "sweep" : eff.driver.c_str());

        MapOutcome<R> out;
        out.results.resize(count);

        auto attempt = [fn, eff](u64 i) {
            return attemptTask<R>(eff, i, [fn, i] { return fn(i); });
        };

        auto labelFailure = [&](PointFailure &f) {
            if (labeler)
                f.label = labeler(f.index);
        };

        if (!pool_) {
            warnIfTimeoutUnsupported(eff);
            for (u64 i = 0; i < count; ++i) {
                auto tried = attempt(i);
                if (tried.failure) {
                    labelFailure(*tried.failure);
                    out.failures.push_back(std::move(*tried.failure));
                } else {
                    out.results[i] = std::move(*tried.value);
                }
            }
            return out;
        }

        std::vector<std::future<Tried<R>>> futures;
        futures.reserve(count);
        for (u64 i = 0; i < count; ++i)
            futures.push_back(
                pool_->submit([attempt, i] { return attempt(i); }));
        for (u64 i = 0; i < count; ++i) {
            if (eff.timeoutMs > 0 &&
                futures[i].wait_for(std::chrono::milliseconds(
                    eff.timeoutMs)) == std::future_status::timeout) {
                PointFailure f;
                f.index = i;
                f.error = "point deadline expired";
                f.attempts = eff.maxAttempts;
                f.timedOut = true;
                labelFailure(f);
                out.failures.push_back(std::move(f));
                continue; // abandon the future; the pool drains it
            }
            Tried<R> tried = futures[i].get();
            if (tried.failure) {
                labelFailure(*tried.failure);
                out.failures.push_back(std::move(*tried.failure));
            } else {
                out.results[i] = std::move(*tried.value);
            }
        }
        return out;
    }

  private:
    /** One task's outcome: exactly one of value/failure is set. */
    template <typename R>
    struct Tried
    {
        std::optional<R> value;
        std::optional<PointFailure> failure;
        u32 attempts = 1;
    };

    static void warnIfTimeoutUnsupported(const SweepOptions &opts);

    /** Backoff before retry @p attempt (1-based), capped. */
    static void backoff(const SweepOptions &opts, u32 attempt);

    /**
     * Run @p task under failure isolation with bounded retry. The
     * fault site "sweep.point.<index>" is hit once per attempt, so
     * LVA_FAULT can inject transient ("@first2") or permanent
     * failures, crashes and delays per point, deterministically for
     * any worker count.
     */
    template <typename R, typename Task>
    static Tried<R>
    attemptTask(const SweepOptions &opts, u64 index, Task task)
    {
        Tried<R> out;
        const std::string site =
            "sweep.point." + std::to_string(index);
        std::string last_error;
        for (u32 attempt = 1; attempt <= opts.maxAttempts; ++attempt) {
            out.attempts = attempt;
            try {
                ScopedFailureIsolation isolate;
                faultPoint(site);
                out.value.emplace(task());
                return out;
            } catch (const std::exception &e) {
                last_error = e.what();
            } catch (...) {
                last_error = "unknown exception";
            }
            if (attempt < opts.maxAttempts)
                backoff(opts, attempt);
        }
        PointFailure f;
        f.index = index;
        f.error = last_error;
        f.attempts = opts.maxAttempts;
        out.failure = std::move(f);
        return out;
    }

    Evaluator *eval_;
    u32 jobs_;
    std::unique_ptr<ThreadPool> pool_; ///< null when jobs_ == 1
};

/**
 * Serialize / restore one completed point for the manifest. The
 * decoded result re-renders byte-identically through the stats JSON
 * export (doubles travel as %.17g, counters as exact integers).
 */
std::string encodeEvalResult(const EvalResult &result);
EvalResult decodeEvalResult(const JsonValue &payload);

/**
 * Render the versioned stats export for a completed sweep as a byte
 * string — completed points' labelled snapshots in submission order
 * plus (for the outcome overload) a "failures" section for every
 * isolated point. These are exactly the bytes exportSweepStats
 * writes to disk, exposed separately so the evaluation service
 * (docs/serving.md) can stream a byte-identical export back to a
 * client without touching the results tree.
 */
std::string renderSweepStats(const std::string &driver,
                             const std::vector<SweepPoint> &points,
                             const std::vector<EvalResult> &results);
std::string renderSweepStats(const std::string &driver,
                             const std::vector<SweepPoint> &points,
                             const SweepOutcome &outcome);

/**
 * Write the versioned stats JSON export for a completed sweep to
 * "<resultsDir()>/stats/<driver>.json": one labelled snapshot per
 * point, in submission order. Because results come back in submission
 * order and each point's snapshot is merged seed-serially, the bytes
 * are identical for any LVA_JOBS.
 *
 * @return the path written
 */
std::string exportSweepStats(const std::string &driver,
                             const std::vector<SweepPoint> &points,
                             const std::vector<EvalResult> &results);

/**
 * Partial-result export: completed points in submission order plus a
 * "failures" section for every isolated point — the export never
 * silently truncates a degraded sweep.
 */
std::string exportSweepStats(const std::string &driver,
                             const std::vector<SweepPoint> &points,
                             const SweepOutcome &outcome);

} // namespace lva

#endif // LVA_EVAL_SWEEP_HH
