/**
 * @file
 * The evaluation service: sweep-as-a-service on top of the batch
 * harness (protocol spec: docs/serving.md).
 *
 * PRs 1-4 built a parallel, fault-tolerant sweep engine that every
 * bench driver spawns anew — so every design-space question pays the
 * process start *and* rebuilds every golden (precise) baseline run.
 * The service keeps one Evaluator and one SweepRunner alive in a
 * long-lived daemon (`tools/lva_served`): requests arrive as
 * length-prefixed JSON frames (`lva-rpc-v1`, util/net), sweep points
 * fan out across the shared worker pool, golden runs are computed
 * once per (workload, seed) for the life of the process, and the
 * response carries the same `lva-stats-v1` export a direct bench run
 * would have written — byte-identical, for any LVA_JOBS value.
 *
 * The PR 4 robustness layer is reused end to end: every request runs
 * under ScopedFailureIsolation with bounded retry (fault site
 * "serve.request.<n>"), every sweep point inside it under the
 * engine's own per-point isolation; the accept path has its own site
 * ("serve.accept"); the connection queue is bounded with an explicit
 * `busy` response, never unbounded growth; and SIGTERM drains
 * in-flight requests before the daemon exits 0.
 *
 * Split for testability: EvalService is pure request -> response
 * (exercised in-process by tests/serve_test.cc), ServeLoop owns the
 * sockets, queue and handler threads, and tools/lva_served adds
 * signals and flags on top.
 */

#ifndef LVA_EVAL_SERVICE_HH
#define LVA_EVAL_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/sweep.hh"
#include "util/net.hh"
#include "util/stat_registry.hh"

namespace lva {

/** The RPC schema tag carried by every request and response. */
const char *rpcSchema();

/**
 * Delay clients should wait before retrying a shed request, carried
 * as the busy response's "retryAfterMs" member. A fixed constant, not
 * a knob: deterministic backoff is what keeps fleet runs reproducible
 * (docs/serving.md, "Admission control").
 */
u64 busyRetryAfterMs();

/** The canned at-capacity response (sent by the accept loop). */
std::string busyResponse();

/**
 * Routing key for a request payload: sweeps and evals key on their
 * (sorted, deduplicated) workload set so every request touching a
 * workload's goldens lands on the shard whose cache holds them;
 * control ops (ping/stats) key on the op name. Malformed payloads
 * get a stable fallback key — the worker will reject them anyway.
 */
std::string fleetRouteKey(const std::string &requestJson);

/**
 * Rendezvous (highest-random-weight) hash: the shard in [0, shards)
 * whose fnv1a64(key "#" shard) score is highest. Every frontend
 * computes the same mapping with no shared state, and removing a
 * shard only remaps the keys that were on it — the property that
 * keeps sibling caches hot across worker respawns.
 */
u32 fleetShard(const std::string &key, u32 shards);

/**
 * Serving policy. Field defaults of 0 defer to the LVA_SERVE_* knobs
 * noted below, then to the built-in defaults; an explicit nonzero
 * field always wins (same convention as SweepOptions).
 */
struct ServeOptions
{
    /** TCP port on 127.0.0.1 (LVA_SERVE_PORT; 0 = ephemeral). */
    u16 port = 0;

    /** Connection-handler threads (LVA_SERVE_WORKERS; default 2). */
    u32 workers = 0;

    /** Accepted connections allowed to wait for a handler before new
     *  ones are refused with `busy` (LVA_SERVE_QUEUE; default 16). */
    u32 queueCap = 0;

    /** Per-connection deadline in ms for receiving one complete
     *  request frame (LVA_SERVE_DEADLINE_MS; default 10000). Applies
     *  to the wire, not to evaluation time. */
    u64 deadlineMs = 0;

    /** Attempts per request, >= 1 (LVA_SERVE_RETRIES=<n> means 1+n
     *  attempts; default 1). Distinct from LVA_RETRIES, which the
     *  sweep engine applies per *point* inside the request. */
    u32 maxAttempts = 0;

    /** Sweep-pool worker threads (0 = LVA_JOBS, then hardware).
     *  Exports are byte-identical for any value. */
    u32 jobs = 0;

    /** Golden-cache capacity in entries (LVA_SERVE_CACHE; 0 = the
     *  knob, and an unset knob means unbounded). Exports are
     *  byte-identical for any capacity — see docs/serving.md. */
    u64 cacheCap = 0;
};

/** Resolve @p opts against the LVA_SERVE_* knobs and defaults. */
ServeOptions resolveServeOptions(ServeOptions opts);

/**
 * The process-wide "serve.*" stats subtree (cataloged in
 * docs/metrics.md, exported by the `stats` op). Registries are
 * thread-confined by design, so this wrapper serializes the
 * multi-threaded serving counters behind one mutex — request rates
 * are no hot path.
 */
class ServeStats
{
  public:
    ServeStats();

    void onConnection();
    void onReject();
    void onRequest();
    void onError();
    void onFailure();

    /** Record @p extra attempts consumed beyond the first. */
    void onRetries(u32 extra);

    void setQueueDepth(std::size_t depth);

    /**
     * Mirror the evaluator's golden-cache lifecycle totals into the
     * "serve.cache.*" subtree (counters advance by delta — registry
     * counters are monotonic; size/capacity are gauges).
     */
    void syncGoldenCache(const GoldenCacheCounters &c);

    /** Path-sorted snapshot of the serve.* subtree. */
    StatSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    StatRegistry registry_;
    Counter &connections_;
    Counter &rejects_;
    Counter &requests_;
    Counter &errors_;
    Counter &failures_;
    Counter &retries_;
    Gauge &queueDepth_;
    Counter &cacheHits_;
    Counter &cacheMisses_;
    Counter &cacheBuilds_;
    Counter &cacheCoalesced_;
    Counter &cacheEvictions_;
    Gauge &cacheSize_;
    Gauge &cacheCapacity_;
    GoldenCacheCounters lastCache_{}; ///< last synced totals (deltas)
};

/**
 * Decode a request "config" object into an ApproxMemory::Config.
 * Keys mirror the lva_explore flags (docs/serving.md lists them);
 * unknown keys throw std::runtime_error — a silently-ignored typo
 * would return results for the wrong configuration.
 */
ApproxMemory::Config configFromJson(const JsonValue &cfg);

/**
 * As above against an explicit base configuration (a machine's
 * phase-1 projection): "base":"baseline" (default) starts from
 * @p base, "base":"precise" from its precise counterpart, and an
 * approximator override applies to every per-thread variant too.
 */
ApproxMemory::Config configFromJson(const JsonValue &cfg,
                                    const ApproxMemory::Config &base);

/** Decode a request "points" array into sweep points. */
std::vector<SweepPoint> sweepPointsFromJson(const JsonValue &points);

/** As above with every point starting from @p base. */
std::vector<SweepPoint>
sweepPointsFromJson(const JsonValue &points,
                    const ApproxMemory::Config &base);

/**
 * Request -> response, no sockets involved.
 *
 * handle() may be called concurrently from any number of handler
 * threads: the Evaluator's golden cache and the SweepRunner's pool
 * are shared across requests (that sharing is the point of the
 * daemon), and both are concurrency-safe by construction (DESIGN.md
 * sections 10 and 14).
 */
class EvalService
{
  public:
    /**
     * @param seeds / @p scale evaluator parameters (0 = LVA_SEEDS /
     *        LVA_SCALE, as everywhere else)
     * @param opts serving policy (resolved against the environment)
     */
    EvalService(u32 seeds, double scale, const ServeOptions &opts);

    Evaluator &evaluator() { return eval_; }
    u32 jobs() const { return runner_.jobs(); }
    ServeStats &stats() { return stats_; }

    /** Set once a `shutdown` request was answered. */
    bool shutdownRequested() const { return shutdown_.load(); }

    /**
     * Handle one request payload (JSON text) and return the response
     * payload. Never throws: malformed requests and isolated
     * failures become `ok:false` responses.
     */
    std::string handle(const std::string &requestJson);

  private:
    std::string dispatch(const JsonValue &req, const std::string &op);
    std::string handlePing() const;
    std::string handleStats();
    std::string handleShutdown();
    std::string handleEval(const JsonValue &req);
    std::string handleSweep(const JsonValue &req);

    Evaluator eval_;
    SweepRunner runner_;
    ServeStats stats_;
    u32 maxAttempts_;
    std::atomic<u64> nextRequest_{0};
    std::atomic<bool> shutdown_{false};
};

/**
 * The blocking accept/serve loop: a localhost listener, a bounded
 * queue of accepted connections, and a fixed set of handler threads
 * draining it through EvalService::handle().
 *
 * Backpressure is explicit: a connection arriving while the queue
 * holds opts.queueCap entries is answered with busyResponse() and
 * closed — the queue never grows without bound.
 *
 * Shutdown: requestStop() (async-signal-safe: one atomic store) or a
 * `shutdown` request makes run() stop accepting, serve every
 * already-accepted connection to the end of its current request, and
 * return. In-flight evaluations always complete.
 */
class ServeLoop
{
  public:
    /** Binds the listener (throws NetError on failure). */
    ServeLoop(EvalService &service, const ServeOptions &opts);

    ~ServeLoop();

    ServeLoop(const ServeLoop &) = delete;
    ServeLoop &operator=(const ServeLoop &) = delete;

    /** The bound port (resolved after an ephemeral bind). */
    u16 port() const { return listener_.port(); }

    /** Serve until stopped; returns once fully drained. */
    void run();

    /** Ask run() to stop and drain (callable from a signal handler
     *  context via a relaxed atomic store). */
    void requestStop() { stop_.store(true); }

    bool stopping() const;

  private:
    void handlerMain();
    void handleConnection(TcpStream conn);

    EvalService &service_;
    ServeOptions opts_;
    TcpListener listener_;
    std::atomic<bool> stop_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<TcpStream> queue_;
    bool closed_ = false; ///< accept loop done; no more pushes
    std::vector<std::thread> handlers_;
};

} // namespace lva

#endif // LVA_EVAL_SERVICE_HH
