#include "eval/fullsystem_eval.hh"

#include "cpu/trace.hh"
#include "sim/machine_config.hh"
#include "util/env_knob.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace lva {

double
fsScaleFromEnv()
{
    return envKnobF64("LVA_SCALE", 1.0, 1e-6, 4.0);
}

FsSweep
runFullSystemSweep(const std::string &workload,
                   const std::vector<u32> &degrees, u64 seed,
                   double scale, const MachineConfig *machine)
{
    WorkloadParams params;
    params.seed = seed;
    params.scale = scale > 0.0 ? scale : fsScaleFromEnv();
    if (machine != nullptr)
        params.threads = machine->cores;

    // Record the precise execution once.
    auto w = makeWorkload(workload, params);
    w->generate();
    TraceRecorder recorder(params.threads);
    w->run(recorder);

    FsSweep sweep;
    sweep.workload = workload;
    sweep.degrees = degrees;

    {
        FullSystemSim sim(machine != nullptr
                              ? machine->fullSystem(/*lvaEnabled=*/false)
                              : FullSystemConfig::baseline());
        sweep.baseline = sim.run(recorder.traces());
    }
    for (u32 d : degrees) {
        FullSystemSim sim(machine != nullptr
                              ? machine->fullSystem(/*lvaEnabled=*/true,
                                                    d)
                              : FullSystemConfig::lva(d));
        sweep.lva.push_back(sim.run(recorder.traces()));
    }
    return sweep;
}

std::vector<NamedSnapshot>
fsSweepSnapshots(const std::vector<FsSweep> &sweeps)
{
    std::vector<NamedSnapshot> snaps;
    for (const FsSweep &s : sweeps) {
        snaps.push_back(
            {s.workload + "/baseline", s.workload, s.baseline.stats});
        for (std::size_t i = 0; i < s.lva.size(); ++i)
            snaps.push_back(
                {s.workload + "/lva-d" + std::to_string(s.degrees[i]),
                 s.workload, s.lva[i].stats});
    }
    return snaps;
}

} // namespace lva
