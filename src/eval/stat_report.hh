/**
 * @file
 * Builders that flatten every component's counters into a StatDump —
 * the library's equivalent of gem5's stats.txt.
 */

#ifndef LVA_EVAL_STAT_REPORT_HH
#define LVA_EVAL_STAT_REPORT_HH

#include <string>
#include <vector>

#include "core/approx_memory.hh"
#include "sim/full_system.hh"
#include "util/stat_dump.hh"
#include "util/stat_registry.hh"

namespace lva {

struct PointFailure; // eval/sweep.hh

/** Append one cache's counters under @p prefix. */
void appendCacheStats(StatDump &dump, const std::string &prefix,
                      const CacheStats &stats);

/** Append one approximator's counters under @p prefix. */
void appendApproximatorStats(StatDump &dump, const std::string &prefix,
                             const ApproximatorStats &stats);

/** Append a phase-1 run's aggregate metrics under @p prefix. */
void appendMemMetrics(StatDump &dump, const std::string &prefix,
                      const MemMetrics &metrics);

/**
 * Full phase-1 report: aggregate metrics plus per-thread cache and
 * mechanism breakdowns.
 */
StatDump reportApproxMemory(const ApproxMemory &mem,
                            const std::string &prefix = "phase1");

/** Full phase-2 report for one timing replay. */
StatDump reportFullSystem(const FullSystemResult &result,
                          const std::string &prefix = "system");

/**
 * Flatten a registry snapshot into a StatDump under @p prefix.
 * Histograms contribute "<path>.total", ".underflow" and ".overflow".
 */
void appendSnapshot(StatDump &dump, const std::string &prefix,
                    const StatSnapshot &snap);

/** One sweep point's snapshot, labelled for the JSON export. */
struct NamedSnapshot
{
    std::string label;    ///< sweep-point label (config description)
    std::string workload; ///< workload name; may be empty
    StatSnapshot stats;
};

/**
 * Render the versioned stats export: schema tag, driver name, and one
 * object per sweep point. Byte-deterministic for a given input.
 */
std::string renderStatsJson(const std::string &driver,
                            const std::vector<NamedSnapshot> &snaps);

/**
 * As above, plus a "failures" section listing every point a checked
 * sweep could not complete. With @p failures empty the bytes are
 * identical to the failure-less overload, so clean runs — including
 * resumed ones — export exactly the historical shape.
 */
std::string renderStatsJson(const std::string &driver,
                            const std::vector<NamedSnapshot> &snaps,
                            const std::vector<PointFailure> &failures);

/**
 * Guard against silently truncating an export written by a different
 * schema version: if @p path exists and carries a schema tag other
 * than statsJsonSchema(), throw std::runtime_error. A missing file,
 * or one with the current tag, passes.
 */
void checkStatsFileSchema(const std::string &path);

/**
 * Write the export for @p driver to
 * "<resultsDir()>/stats/<driver>.json" (LVA_RESULTS_DIR honored).
 * Errors out — it does not truncate — when the existing file has a
 * different schema version.
 *
 * @return the path written
 */
std::string writeStatsJson(const std::string &driver,
                           const std::vector<NamedSnapshot> &snaps);

/** writeStatsJson with a "failures" section (partial sweeps). */
std::string writeStatsJson(const std::string &driver,
                           const std::vector<NamedSnapshot> &snaps,
                           const std::vector<PointFailure> &failures);

} // namespace lva

#endif // LVA_EVAL_STAT_REPORT_HH
