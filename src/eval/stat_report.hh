/**
 * @file
 * Builders that flatten every component's counters into a StatDump —
 * the library's equivalent of gem5's stats.txt.
 */

#ifndef LVA_EVAL_STAT_REPORT_HH
#define LVA_EVAL_STAT_REPORT_HH

#include <string>

#include "core/approx_memory.hh"
#include "sim/full_system.hh"
#include "util/stat_dump.hh"

namespace lva {

/** Append one cache's counters under @p prefix. */
void appendCacheStats(StatDump &dump, const std::string &prefix,
                      const CacheStats &stats);

/** Append one approximator's counters under @p prefix. */
void appendApproximatorStats(StatDump &dump, const std::string &prefix,
                             const ApproximatorStats &stats);

/** Append a phase-1 run's aggregate metrics under @p prefix. */
void appendMemMetrics(StatDump &dump, const std::string &prefix,
                      const MemMetrics &metrics);

/**
 * Full phase-1 report: aggregate metrics plus per-thread cache and
 * mechanism breakdowns.
 */
StatDump reportApproxMemory(const ApproxMemory &mem,
                            const std::string &prefix = "phase1");

/** Full phase-2 report for one timing replay. */
StatDump reportFullSystem(const FullSystemResult &result,
                          const std::string &prefix = "system");

} // namespace lva

#endif // LVA_EVAL_STAT_REPORT_HH
