/**
 * @file
 * Sweep sharding for the fleet coordinator (docs/serving.md, "The
 * sweep coordinator").
 *
 * PR 7's fleet routes *whole* requests to workers, so one large
 * sweep — the unit of work behind every paper figure — still runs
 * inside a single lva_served process. This layer splits one sweep
 * into shards a coordinator (tools/lva_sweep_coord) scatters across
 * the fleet as ordinary `lva-rpc-v1` sweep requests, then merges the
 * shard results back into one `lva-stats-v1` export that is
 * byte-identical to a single-process run for any shard count, fleet
 * size, or kill schedule.
 *
 * The pieces are deliberately pure (no sockets, no processes) so
 * tests can pin the byte-identity property in-process:
 *
 *  - planShards(): points -> shards by rendezvous hash of each
 *    point's workload (the fleetRouteKey locality rule: all points
 *    needing a workload's goldens land in the same shard), keeping
 *    submission order within a shard.
 *  - shardDigest() / coordContextKey(): the identity a shard's
 *    completion record carries in the PR-4 append-only checkpoint
 *    manifest, so a killed coordinator resumes finished shards.
 *  - encodeShardRecord() / decodeShardRecord(): one-line JSON shard
 *    payloads under the existing lva-manifest-v1 schema.
 *  - mergeShards(): shard records -> one SweepOutcome in global
 *    submission order, ready for renderSweepStats().
 */

#ifndef LVA_EVAL_COORD_HH
#define LVA_EVAL_COORD_HH

#include <mutex>
#include <string>
#include <vector>

#include "eval/sweep.hh"
#include "util/stat_registry.hh"

namespace lva {

/**
 * One sweep's partition into shards. Shards may be empty (a shard
 * whose rendezvous slice holds no workload): callers skip them, and
 * skipping cannot change the merged bytes because the merge is
 * keyed by global point indices.
 */
struct ShardPlan
{
    u32 shards = 0; ///< requested shard count (>= 1)

    /** Global point indices per shard, in submission order. */
    std::vector<std::vector<u64>> members;

    /**
     * Per-shard routing key: the shard's sorted, deduplicated
     * workload set joined by ',' plus "#shard:<index>" — exactly
     * what fleetRouteKey() computes for the shard's sweep request,
     * so a coordinator and an lva_fleet frontend agree on worker
     * placement. Empty shards get the bare "#shard:<index>" suffix.
     */
    std::vector<std::string> keys;
};

/**
 * Partition @p points into @p shards shards: point i goes to shard
 * fleetShard(points[i].workload, shards). Deterministic for any
 * shard count; every point lands in exactly one shard.
 */
ShardPlan planShards(const std::vector<SweepPoint> &points, u32 shards);

/**
 * Stable digest (16 hex chars) of shard @p shard under @p plan: the
 * shard index plus every member point's sweepPointDigest. Keys the
 * shard's completion record in the checkpoint manifest.
 */
std::string shardDigest(const ShardPlan &plan,
                        const std::vector<SweepPoint> &points,
                        u32 shard);

/**
 * The manifest context key for a sharded sweep: the evaluator-driven
 * sweepContextKey (schema, seeds, scale) plus the shard count, so a
 * manifest written under a different shard plan is never resumed.
 */
std::string coordContextKey(const Evaluator &eval, u32 shards);

/**
 * Worker preference order for a shard key: every worker index in
 * [0, workers), sorted by descending rendezvous score (ties broken
 * toward the lower index). rank[0] equals fleetShard(key, workers);
 * the tail is the work-stealing order when the preferred worker is
 * dead.
 */
std::vector<u32> coordWorkerRank(const std::string &key, u32 workers);

/** One shard's completed results, in shard-local submission order. */
struct ShardRecord
{
    u32 shard = 0;

    /** One entry per shard member; failed points hold the failed
     *  placeholder (their snapshot is never rendered). */
    std::vector<EvalResult> results;

    /** Worker-side failures with shard-local indices. */
    std::vector<PointFailure> failures;
};

/**
 * Serialize / restore one completed shard for the manifest. The
 * payload is one JSON line: completed results travel through
 * encodeEvalResult (byte-exact round trip), failed points as null,
 * failures as structured records.
 */
std::string encodeShardRecord(const ShardRecord &record);
ShardRecord decodeShardRecord(const JsonValue &payload);

/**
 * Build a ShardRecord from a worker's detailed sweep response
 * (request member "detail": true): the "results" array maps
 * one-to-one onto the shard's points (null = failed), and
 * "failureDetail" carries the shard-local failures. Throws
 * std::runtime_error on a malformed or failed response.
 */
ShardRecord shardRecordFromResponse(const JsonValue &response,
                                    u32 shard,
                                    std::size_t pointCount);

/**
 * Merge every shard's record into one outcome over @p pointCount
 * global points: results return to their global submission indices,
 * failures are remapped shard-local -> global and ordered by index.
 * Requires exactly one record per non-empty shard of @p plan; the
 * result renders byte-identically to a single-process runChecked
 * through renderSweepStats(), which is what coord_test pins.
 */
SweepOutcome mergeShards(const ShardPlan &plan, std::size_t pointCount,
                         const std::vector<ShardRecord> &records);

/**
 * The coordinator's "coord.*" stats subtree (cataloged in
 * docs/metrics.md). Same discipline as ServeStats: registries are
 * thread-confined by design, so the shard scatter threads go through
 * one mutex — shard completions are no hot path.
 */
class CoordStats
{
  public:
    CoordStats();

    /** Record the sweep plan dimensions (gauges). */
    void onPlan(u32 shards, u64 points, u32 workers);

    void onScatter();
    void onGather();
    void onResumed();
    void onStolen();
    void onRespawn();
    void onPointFailures(u64 n);

    /** Path-sorted snapshot of the coord.* subtree. */
    StatSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    StatRegistry registry_;
    Gauge &shards_;
    Gauge &points_;
    Gauge &workers_;
    Counter &scattered_;
    Counter &gathered_;
    Counter &resumed_;
    Counter &stolen_;
    Counter &respawns_;
    Counter &pointFailures_;
};

} // namespace lva

#endif // LVA_EVAL_COORD_HH
