#include "eval/stat_report.hh"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "eval/sweep.hh"
#include "util/logging.hh"
#include "util/results_dir.hh"
#include "util/stats_json.hh"

namespace lva {

void
appendCacheStats(StatDump &dump, const std::string &prefix,
                 const CacheStats &stats)
{
    dump.add(prefix + ".hits",
             static_cast<double>(stats.hits.value()),
             "accesses that found the block resident");
    dump.add(prefix + ".misses",
             static_cast<double>(stats.misses.value()),
             "accesses that missed");
    dump.add(prefix + ".fetches",
             static_cast<double>(stats.fetches.value()),
             "blocks brought into the cache");
    dump.add(prefix + ".evictions",
             static_cast<double>(stats.evictions.value()),
             "blocks displaced by fills");
    dump.add(prefix + ".writebacks",
             static_cast<double>(stats.writebacks.value()),
             "dirty blocks written back");
}

void
appendApproximatorStats(StatDump &dump, const std::string &prefix,
                        const ApproximatorStats &stats)
{
    dump.add(prefix + ".lookups",
             static_cast<double>(stats.lookups.value()),
             "misses presented to the approximator");
    dump.add(prefix + ".approximations",
             static_cast<double>(stats.approximations.value()),
             "misses answered with X_approx");
    dump.add(prefix + ".fetchesSkipped",
             static_cast<double>(stats.fetchesSkipped.value()),
             "block fetches cancelled by the degree counter");
    dump.add(prefix + ".trainings",
             static_cast<double>(stats.trainings.value()),
             "X_actual arrivals applied");
    dump.add(prefix + ".allocations",
             static_cast<double>(stats.allocations.value()),
             "table entries (re)allocated");
    dump.add(prefix + ".confRejects",
             static_cast<double>(stats.confRejects.value()),
             "misses rejected by the confidence gate");
    dump.add(prefix + ".coldRejects",
             static_cast<double>(stats.coldRejects.value()),
             "misses with no history yet");
    dump.add(prefix + ".staleDrops",
             static_cast<double>(stats.staleDrops.value()),
             "trainings dropped after re-allocation");
}

void
appendMemMetrics(StatDump &dump, const std::string &prefix,
                 const MemMetrics &m)
{
    dump.add(prefix + ".instructions",
             static_cast<double>(m.instructions),
             "dynamic instructions");
    dump.add(prefix + ".loads", static_cast<double>(m.loads),
             "load instructions");
    dump.add(prefix + ".stores", static_cast<double>(m.stores),
             "store instructions");
    dump.add(prefix + ".loadMisses",
             static_cast<double>(m.loadMisses), "raw L1 load misses");
    dump.add(prefix + ".effectiveMisses",
             static_cast<double>(m.effectiveMisses),
             "misses not hidden by approximation");
    dump.add(prefix + ".fetches", static_cast<double>(m.fetches),
             "L1 block fills");
    dump.add(prefix + ".approxLoads",
             static_cast<double>(m.approxLoads),
             "loads returning approximate values");
    dump.add(prefix + ".mpki", m.mpki(),
             "effective misses per kilo-instruction");
    dump.add(prefix + ".coverage", m.coverage(),
             "approximated fraction of approximable loads");
}

StatDump
reportApproxMemory(const ApproxMemory &mem, const std::string &prefix)
{
    // Aggregate metrics first, then the whole registry: every
    // per-thread component stat ("thread<N>.l1.*", "thread<N>.lva.*",
    // "thread<N>.mem.*") flows from the same snapshot that the JSON
    // export serializes.
    StatDump dump;
    appendMemMetrics(dump, prefix, mem.metrics());
    appendSnapshot(dump, prefix, mem.snapshot());
    return dump;
}

StatDump
reportFullSystem(const FullSystemResult &r, const std::string &prefix)
{
    StatDump dump;
    dump.add(prefix + ".cycles", r.cycles, "makespan over all cores");
    dump.add(prefix + ".instructions",
             static_cast<double>(r.instructions),
             "instructions retired");
    dump.add(prefix + ".ipc", r.ipc, "aggregate IPC");
    dump.add(prefix + ".l1Misses", static_cast<double>(r.l1Misses),
             "raw L1 load misses");
    dump.add(prefix + ".demandMisses",
             static_cast<double>(r.demandMisses),
             "misses the cores waited for");
    dump.add(prefix + ".approxMisses",
             static_cast<double>(r.approxMisses),
             "misses hidden by approximation");
    dump.add(prefix + ".fetchesSkipped",
             static_cast<double>(r.fetchesSkipped),
             "fetches cancelled by the degree counter");
    dump.add(prefix + ".avgL1MissLatency", r.avgL1MissLatency,
             "effective miss latency (cycles)");
    dump.add(prefix + ".l2Accesses",
             static_cast<double>(r.l2Accesses), "L2 bank accesses");
    dump.add(prefix + ".dramAccesses",
             static_cast<double>(r.dramAccesses), "DRAM transfers");
    dump.add(prefix + ".noc.flitHops",
             static_cast<double>(r.flitHops),
             "interconnect flit-hops (all planes)");
    dump.add(prefix + ".noc.flitHopsSlow",
             static_cast<double>(r.events.nocFlitHopsSlow),
             "flit-hops on the heterogeneous plane");
    dump.add(prefix + ".energy.total", r.energy.total(),
             "dynamic energy (nJ)");
    dump.add(prefix + ".energy.l1", r.energy.l1, "L1 energy (nJ)");
    dump.add(prefix + ".energy.l2", r.energy.l2, "L2 energy (nJ)");
    dump.add(prefix + ".energy.dram", r.energy.dram,
             "DRAM energy (nJ)");
    dump.add(prefix + ".energy.noc", r.energy.noc, "NoC energy (nJ)");
    dump.add(prefix + ".energy.approximator", r.energy.approximator,
             "approximator energy (nJ)");
    dump.add(prefix + ".missEdp", r.missEdp(),
             "L1-miss energy-delay product");
    return dump;
}

void
appendSnapshot(StatDump &dump, const std::string &prefix,
               const StatSnapshot &snap)
{
    for (const SnapEntry &e : snap.entries) {
        const std::string path = StatRegistry::joinPath(prefix, e.path);
        switch (e.type) {
          case StatType::Counter:
            dump.add(path, static_cast<double>(e.count), e.desc);
            break;
          case StatType::Gauge:
            dump.add(path, e.gauge, e.desc);
            break;
          case StatType::Histogram:
            dump.add(path + ".total",
                     static_cast<double>(e.histTotal), e.desc);
            dump.add(path + ".underflow",
                     static_cast<double>(e.histUnderflow),
                     "samples below " + jsonDouble(e.histLo));
            dump.add(path + ".overflow",
                     static_cast<double>(e.histOverflow),
                     "samples at or above " + jsonDouble(e.histHi));
            break;
        }
    }
}

std::string
renderStatsJson(const std::string &driver,
                const std::vector<NamedSnapshot> &snaps)
{
    return renderStatsJson(driver, snaps, {});
}

std::string
renderStatsJson(const std::string &driver,
                const std::vector<NamedSnapshot> &snaps,
                const std::vector<PointFailure> &failures)
{
    std::string out = "{\n";
    out += "  \"schema\": " +
           jsonQuote(statsJsonSchema()) + ",\n";
    out += "  \"driver\": " + jsonQuote(driver) + ",\n";
    out += "  \"points\": [";
    bool first = true;
    for (const NamedSnapshot &s : snaps) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\n      \"label\": " + jsonQuote(s.label);
        if (!s.workload.empty())
            out += ",\n      \"workload\": " + jsonQuote(s.workload);
        out += ",\n      \"stats\": " + snapshotToJson(s.stats, 6);
        out += "\n    }";
    }
    out += first ? "]" : "\n  ]";
    if (!failures.empty()) {
        // Additive section: absent on clean sweeps so the historical
        // byte layout (and every determinism test pinning it) holds.
        out += ",\n  \"failures\": [";
        bool ffirst = true;
        for (const PointFailure &f : failures) {
            out += ffirst ? "\n" : ",\n";
            ffirst = false;
            out += "    {\"index\": " + std::to_string(f.index);
            out += ", \"label\": " + jsonQuote(f.label);
            if (!f.workload.empty())
                out += ", \"workload\": " + jsonQuote(f.workload);
            out += ", \"error\": " + jsonQuote(f.error);
            out += ", \"attempts\": " + std::to_string(f.attempts);
            out += std::string(", \"timedOut\": ") +
                   (f.timedOut ? "true" : "false");
            out += "}";
        }
        out += ffirst ? "]" : "\n  ]";
    }
    out += "\n}\n";
    return out;
}

void
checkStatsFileSchema(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return; // nothing to clobber
    std::string line;
    while (std::getline(in, line)) {
        const auto key = line.find("\"schema\"");
        if (key == std::string::npos)
            continue;
        const std::string want =
            jsonQuote(statsJsonSchema());
        if (line.find(want, key) == std::string::npos)
            throw std::runtime_error(
                "stats export " + path +
                " carries a different schema version than " +
                statsJsonSchema() +
                "; refusing to truncate it (move it aside first)");
        return;
    }
    // A file without any schema tag is not ours to overwrite.
    throw std::runtime_error(
        "stats export " + path +
        " has no schema tag; refusing to truncate it");
}

std::string
writeStatsJson(const std::string &driver,
               const std::vector<NamedSnapshot> &snaps)
{
    return writeStatsJson(driver, snaps, {});
}

std::string
writeStatsJson(const std::string &driver,
               const std::vector<NamedSnapshot> &snaps,
               const std::vector<PointFailure> &failures)
{
    const std::string path =
        resultsPath("stats/" + driver + ".json");
    checkStatsFileSchema(path);
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open())
        lva_fatal("cannot open '%s' for writing", path.c_str());
    out << renderStatsJson(driver, snaps, failures);
    return path;
}

} // namespace lva
