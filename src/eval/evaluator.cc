#include "eval/evaluator.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/env_knob.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace lva {

namespace {

u32
seedsFromEnv()
{
    // paper: all measurements averaged from 5 runs
    return static_cast<u32>(envKnobU64("LVA_SEEDS", 5, 1, 64));
}

double
scaleFromEnv()
{
    return envKnobF64("LVA_SCALE", 1.0, 1e-6, 4.0);
}

} // namespace

const std::vector<EvalMetricDef> &
evalMetricDefs()
{
    static const std::vector<EvalMetricDef> defs = {
        {"eval.preciseMpki", "baseline effective MPKI", "misses/kinst"},
        {"eval.mpki", "configured effective MPKI", "misses/kinst"},
        {"eval.normMpki", "MPKI normalized to precise", "ratio"},
        {"eval.preciseFetches", "baseline L1 block fills", "blocks"},
        {"eval.fetches", "configured L1 block fills", "blocks"},
        {"eval.normFetches", "fetches normalized to precise", "ratio"},
        {"eval.outputError", "application output error", "fraction"},
        {"eval.coverage", "approximated / approximable loads",
         "fraction"},
        {"eval.instrVariation",
         "|instructions - precise| / precise", "fraction"},
        {"eval.instructions", "dynamic instructions (configured run)",
         "insts"},
    };
    return defs;
}

const std::vector<EvalMetricDef> &
workloadStaticDefs()
{
    static const std::vector<EvalMetricDef> defs = {
        {"workload.staticApproxLoads",
         "static (distinct) PCs of approximate loads", "sites"},
        {"workload.staticLoads", "all static load PCs", "sites"},
    };
    return defs;
}

void
applyEvalDerived(StatSnapshot &snap, const EvalResult &r)
{
    const double values[] = {
        r.preciseMpki,   r.mpki,        r.normMpki,
        r.preciseFetches, r.fetches,    r.normFetches,
        r.outputError,   r.coverage,    r.instrVariation,
        r.instructions,
    };
    const auto &defs = evalMetricDefs();
    lva_assert(defs.size() == sizeof(values) / sizeof(values[0]),
               "eval metric catalog out of sync");
    for (std::size_t i = 0; i < defs.size(); ++i)
        snap.setGauge(defs[i].path, values[i], defs[i].desc,
                      defs[i].unit);
}

Evaluator::Evaluator(u32 seeds, double scale)
    : seeds_(seeds ? seeds : seedsFromEnv()),
      scale_(scale > 0.0 ? scale : scaleFromEnv())
{
}

ApproxMemory::Config
Evaluator::baselineLva()
{
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Lva;
    cfg.cache = CacheConfig::pinL1();
    cfg.approx = ApproximatorConfig::baseline();
    return cfg;
}

ApproxMemory::Config
Evaluator::preciseConfig()
{
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Precise;
    cfg.cache = CacheConfig::pinL1();
    return cfg;
}

ApproxMemory::Config
Evaluator::preciseBaseFor(const ApproxMemory::Config &cfg)
{
    ApproxMemory::Config precise = preciseConfig();
    precise.threads = cfg.threads;
    precise.cache = cfg.cache;
    return precise;
}

namespace {

/**
 * Golden-cache key for one workload under one precise config: the
 * plain workload name for the canonical preciseConfig() geometry (so
 * every pre-machine key — and every test that asserts on it — stays
 * unchanged), a "@t<threads>.s<size>.a<assoc>.b<block>" variant suffix
 * for any other machine geometry.
 */
std::string
goldenKeyName(const std::string &name, const ApproxMemory::Config &precise)
{
    static const ApproxMemory::Config canonical =
        Evaluator::preciseConfig();
    if (precise.threads == canonical.threads &&
        precise.cache.sizeBytes == canonical.cache.sizeBytes &&
        precise.cache.assoc == canonical.cache.assoc &&
        precise.cache.blockBytes == canonical.cache.blockBytes)
        return name;
    return name + "@t" + std::to_string(precise.threads) + ".s" +
           std::to_string(precise.cache.sizeBytes) + ".a" +
           std::to_string(precise.cache.assoc) + ".b" +
           std::to_string(precise.cache.blockBytes);
}

} // namespace

std::size_t
goldenEvictionVictim(const std::vector<GoldenEvictionCandidate> &candidates)
{
    lva_assert(!candidates.empty(), "eviction with no candidates");

    // LRU order first; lastUse stamps are unique (a single use clock
    // issues them), so the order — and therefore the victim — is
    // deterministic.
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return candidates[a].lastUse < candidates[b].lastUse;
              });

    // Within the ceil(n/4) least-recently-used window, evict the
    // cheapest rebuild; strictly-lower cost only, so cost ties keep
    // the older entry.
    const std::size_t window = (candidates.size() + 3) / 4;
    std::size_t best = order[0];
    for (std::size_t i = 1; i < window; ++i) {
        const std::size_t idx = order[i];
        if (candidates[idx].cost < candidates[best].cost)
            best = idx;
    }
    return best;
}

void
Evaluator::enforceCapacityLocked()
{
    if (capacity_ == 0)
        return;
    for (;;) {
        // Only Ready slots are candidates: a Building slot has a
        // waiter about to need it, an Empty one holds no golden.
        std::vector<std::pair<std::string, u64>> keys;
        std::vector<GoldenEvictionCandidate> candidates;
        for (const auto &kv : goldens_) {
            if (kv.second->state == GoldenSlot::State::Ready) {
                keys.push_back(kv.first);
                candidates.push_back(
                    {kv.second->lastUse, kv.second->cost});
            }
        }
        if (candidates.size() <= capacity_)
            return;
        // Erasing the map entry only drops the map's reference;
        // readers that acquired the golden before this eviction keep
        // it alive through their own shared_ptr.
        goldens_.erase(keys[goldenEvictionVictim(candidates)]);
        ++counters_.evictions;
    }
}

void
Evaluator::setGoldenCacheCapacity(u64 entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = entries;
    enforceCapacityLocked();
}

GoldenCacheCounters
Evaluator::goldenCacheCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    GoldenCacheCounters c = counters_;
    c.capacity = capacity_;
    c.size = 0;
    for (const auto &kv : goldens_)
        if (kv.second->state == GoldenSlot::State::Ready)
            ++c.size;
    return c;
}

std::vector<std::pair<std::string, u64>>
Evaluator::goldenResidentKeys()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, u64>> keys;
    for (const auto &kv : goldens_)
        if (kv.second->state == GoldenSlot::State::Ready)
            keys.push_back(kv.first);
    return keys;
}

std::shared_ptr<const Evaluator::Golden>
Evaluator::golden(const std::string &name, WorkloadFactory factory,
                  u64 seed, const ApproxMemory::Config &precise)
{
    const auto key = std::make_pair(goldenKeyName(name, precise), seed);
    std::shared_ptr<GoldenSlot> slot;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            auto &entry = goldens_[key];
            if (!entry)
                entry = std::make_shared<GoldenSlot>();
            slot = entry;
            if (slot->state == GoldenSlot::State::Ready) {
                slot->lastUse = ++useClock_;
                ++counters_.hits;
                return {slot, &slot->golden};
            }
            if (slot->state == GoldenSlot::State::Empty) {
                // This caller becomes the single-flight builder.
                slot->state = GoldenSlot::State::Building;
                ++counters_.misses;
                break;
            }
            // Another caller is building this golden; coalesce onto
            // its run instead of duplicating the precise work.  On
            // wake the slot is Ready, or Empty again (failed build) —
            // and possibly already evicted from the map — so restart
            // the lookup from scratch.
            ++counters_.coalesced;
            cv_.wait(lock, [&] {
                return slot->state != GoldenSlot::State::Building;
            });
        }
    }

    // Build outside the lock: the precise run is the expensive part,
    // and concurrent builds of *different* goldens must proceed.
    Golden g;
    try {
        // An exception here (including an injected one) steps the
        // slot back to Empty, so a retried point rebuilds the
        // baseline instead of latching a broken slot forever.
        faultPoint("eval.golden." + name);

        WorkloadParams params;
        params.seed = seed;
        params.scale = scale_;
        params.threads = precise.threads;

        g.workload = factory(params);
        g.workload->generate();
        ApproxMemory mem(precise);
        g.workload->run(mem);
        g.metrics = mem.metrics();
        g.stats = mem.snapshot();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        slot->state = GoldenSlot::State::Empty;
        cv_.notify_all();
        throw;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    slot->golden = std::move(g);
    slot->state = GoldenSlot::State::Ready;
    slot->lastUse = ++useClock_;
    slot->cost = slot->golden.metrics.instructions;
    ++counters_.builds;
    enforceCapacityLocked();
    cv_.notify_all();
    return {slot, &slot->golden};
}

EvalResult
Evaluator::evaluate(const std::string &name,
                    const ApproxMemory::Config &cfg)
{
    faultPoint("eval.evaluate." + name);

    EvalResult avg;
    double sum_precise_mpki = 0.0, sum_mpki = 0.0;
    double sum_norm_mpki = 0.0;
    double sum_precise_fetches = 0.0, sum_fetches = 0.0;
    double sum_norm_fetches = 0.0;
    double sum_error = 0.0, sum_coverage = 0.0, sum_var = 0.0;
    double sum_instr = 0.0;

    // Loop invariants: resolve the name->factory mapping and build
    // the params template once, not once per seed.
    const WorkloadFactory factory = findWorkloadFactory(name);
    const ApproxMemory::Config precise = preciseBaseFor(cfg);
    WorkloadParams params;
    params.scale = scale_;
    params.threads = cfg.threads;

    for (u32 s = 0; s < seeds_; ++s) {
        const u64 seed = 1 + s;
        // Holding the shared_ptr keeps this golden valid for the
        // whole seed body even if the cache evicts it concurrently.
        const std::shared_ptr<const Golden> base =
            golden(name, factory, seed, precise);

        params.seed = seed;

        auto w = factory(params);
        w->generate();
        ApproxMemory mem(cfg);
        w->run(mem);
        const MemMetrics m = mem.metrics();
        // Seed order is fixed, so the merged snapshot (counters sum,
        // gauges last-seed-wins) is deterministic regardless of how
        // sweep points are scheduled across threads.
        avg.stats.merge(mem.snapshot());

        const double base_mpki = base->metrics.mpki();
        const double base_fetches =
            static_cast<double>(base->metrics.fetches);
        const double my_mpki = m.mpki();
        const double my_fetches = static_cast<double>(m.fetches);

        sum_precise_mpki += base_mpki;
        sum_mpki += my_mpki;
        // Guard benchmarks with vanishing baseline MPKI (swaptions).
        sum_norm_mpki +=
            base_mpki > 1e-9 ? my_mpki / base_mpki : 1.0;
        sum_precise_fetches += base_fetches;
        sum_fetches += my_fetches;
        sum_norm_fetches +=
            base_fetches > 0.5 ? my_fetches / base_fetches : 1.0;
        sum_error += w->outputErrorVs(*base->workload);
        sum_coverage += m.coverage();
        const double base_instr =
            static_cast<double>(base->metrics.instructions);
        sum_var += base_instr > 0.0
                       ? std::fabs(static_cast<double>(m.instructions) -
                                   base_instr) / base_instr
                       : 0.0;
        sum_instr += static_cast<double>(m.instructions);
    }

    const double n = static_cast<double>(seeds_);
    avg.preciseMpki = sum_precise_mpki / n;
    avg.mpki = sum_mpki / n;
    avg.normMpki = sum_norm_mpki / n;
    avg.preciseFetches = sum_precise_fetches / n;
    avg.fetches = sum_fetches / n;
    avg.normFetches = sum_norm_fetches / n;
    avg.outputError = sum_error / n;
    avg.coverage = sum_coverage / n;
    avg.instrVariation = sum_var / n;
    avg.instructions = sum_instr / n;
    applyEvalDerived(avg.stats, avg);
    return avg;
}

EvalResult
Evaluator::evaluatePrecise(const std::string &name)
{
    return evaluatePrecise(name, preciseConfig());
}

EvalResult
Evaluator::evaluatePrecise(const std::string &name,
                           const ApproxMemory::Config &precise)
{
    EvalResult avg;
    double sum_mpki = 0.0;
    double sum_instr = 0.0;
    double sum_fetches = 0.0;
    const WorkloadFactory factory = findWorkloadFactory(name);
    const ApproxMemory::Config base_cfg = preciseBaseFor(precise);
    for (u32 s = 0; s < seeds_; ++s) {
        const std::shared_ptr<const Golden> base =
            golden(name, factory, 1 + s, base_cfg);
        sum_mpki += base->metrics.mpki();
        sum_instr += static_cast<double>(base->metrics.instructions);
        sum_fetches += static_cast<double>(base->metrics.fetches);
        avg.stats.merge(base->stats);
    }
    const double n = static_cast<double>(seeds_);
    avg.preciseMpki = avg.mpki = sum_mpki / n;
    avg.preciseFetches = avg.fetches = sum_fetches / n;
    avg.instructions = sum_instr / n;
    avg.normMpki = 1.0;
    avg.normFetches = 1.0;
    applyEvalDerived(avg.stats, avg);
    return avg;
}

} // namespace lva
