#include "eval/evaluator.hh"

#include <cmath>
#include <cstdlib>

#include "util/fault.hh"
#include "util/logging.hh"

namespace lva {

namespace {

u32
seedsFromEnv()
{
    if (const char *env = std::getenv("LVA_SEEDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1 && v <= 64)
            return static_cast<u32>(v);
        lva_warn("ignoring bad LVA_SEEDS='%s'", env);
    }
    return 5; // paper: all measurements averaged from 5 runs
}

double
scaleFromEnv()
{
    if (const char *env = std::getenv("LVA_SCALE")) {
        const double v = std::strtod(env, nullptr);
        if (v > 0.0 && v <= 4.0)
            return v;
        lva_warn("ignoring bad LVA_SCALE='%s'", env);
    }
    return 1.0;
}

} // namespace

const std::vector<EvalMetricDef> &
evalMetricDefs()
{
    static const std::vector<EvalMetricDef> defs = {
        {"eval.preciseMpki", "baseline effective MPKI", "misses/kinst"},
        {"eval.mpki", "configured effective MPKI", "misses/kinst"},
        {"eval.normMpki", "MPKI normalized to precise", "ratio"},
        {"eval.preciseFetches", "baseline L1 block fills", "blocks"},
        {"eval.fetches", "configured L1 block fills", "blocks"},
        {"eval.normFetches", "fetches normalized to precise", "ratio"},
        {"eval.outputError", "application output error", "fraction"},
        {"eval.coverage", "approximated / approximable loads",
         "fraction"},
        {"eval.instrVariation",
         "|instructions - precise| / precise", "fraction"},
        {"eval.instructions", "dynamic instructions (configured run)",
         "insts"},
    };
    return defs;
}

const std::vector<EvalMetricDef> &
workloadStaticDefs()
{
    static const std::vector<EvalMetricDef> defs = {
        {"workload.staticApproxLoads",
         "static (distinct) PCs of approximate loads", "sites"},
        {"workload.staticLoads", "all static load PCs", "sites"},
    };
    return defs;
}

void
applyEvalDerived(StatSnapshot &snap, const EvalResult &r)
{
    const double values[] = {
        r.preciseMpki,   r.mpki,        r.normMpki,
        r.preciseFetches, r.fetches,    r.normFetches,
        r.outputError,   r.coverage,    r.instrVariation,
        r.instructions,
    };
    const auto &defs = evalMetricDefs();
    lva_assert(defs.size() == sizeof(values) / sizeof(values[0]),
               "eval metric catalog out of sync");
    for (std::size_t i = 0; i < defs.size(); ++i)
        snap.setGauge(defs[i].path, values[i], defs[i].desc,
                      defs[i].unit);
}

Evaluator::Evaluator(u32 seeds, double scale)
    : seeds_(seeds ? seeds : seedsFromEnv()),
      scale_(scale > 0.0 ? scale : scaleFromEnv())
{
}

ApproxMemory::Config
Evaluator::baselineLva()
{
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Lva;
    cfg.cache = CacheConfig::pinL1();
    cfg.approx = ApproximatorConfig::baseline();
    return cfg;
}

ApproxMemory::Config
Evaluator::preciseConfig()
{
    ApproxMemory::Config cfg;
    cfg.mode = MemMode::Precise;
    cfg.cache = CacheConfig::pinL1();
    return cfg;
}

const Evaluator::Golden &
Evaluator::golden(const std::string &name, WorkloadFactory factory,
                  u64 seed)
{
    GoldenSlot *slot;
    {
        // std::map never relocates nodes, so the reference stays
        // valid while concurrent callers insert other slots.
        std::lock_guard<std::mutex> lock(mutex_);
        slot = &goldens_[std::make_pair(name, seed)];
    }

    std::call_once(slot->once, [&] {
        // An exception here (including an injected one) leaves the
        // once_flag unset, so a retried point rebuilds the baseline
        // instead of latching a broken slot forever.
        faultPoint("eval.golden." + name);

        WorkloadParams params;
        params.seed = seed;
        params.scale = scale_;

        Golden &g = slot->golden;
        g.workload = factory(params);
        g.workload->generate();
        ApproxMemory mem(preciseConfig());
        g.workload->run(mem);
        g.metrics = mem.metrics();
        g.stats = mem.snapshot();
    });

    return slot->golden;
}

EvalResult
Evaluator::evaluate(const std::string &name,
                    const ApproxMemory::Config &cfg)
{
    faultPoint("eval.evaluate." + name);

    EvalResult avg;
    double sum_precise_mpki = 0.0, sum_mpki = 0.0;
    double sum_norm_mpki = 0.0;
    double sum_precise_fetches = 0.0, sum_fetches = 0.0;
    double sum_norm_fetches = 0.0;
    double sum_error = 0.0, sum_coverage = 0.0, sum_var = 0.0;
    double sum_instr = 0.0;

    // Loop invariants: resolve the name->factory mapping and build
    // the params template once, not once per seed.
    const WorkloadFactory factory = findWorkloadFactory(name);
    WorkloadParams params;
    params.scale = scale_;

    for (u32 s = 0; s < seeds_; ++s) {
        const u64 seed = 1 + s;
        const Golden &base = golden(name, factory, seed);

        params.seed = seed;

        auto w = factory(params);
        w->generate();
        ApproxMemory mem(cfg);
        w->run(mem);
        const MemMetrics m = mem.metrics();
        // Seed order is fixed, so the merged snapshot (counters sum,
        // gauges last-seed-wins) is deterministic regardless of how
        // sweep points are scheduled across threads.
        avg.stats.merge(mem.snapshot());

        const double base_mpki = base.metrics.mpki();
        const double base_fetches =
            static_cast<double>(base.metrics.fetches);
        const double my_mpki = m.mpki();
        const double my_fetches = static_cast<double>(m.fetches);

        sum_precise_mpki += base_mpki;
        sum_mpki += my_mpki;
        // Guard benchmarks with vanishing baseline MPKI (swaptions).
        sum_norm_mpki +=
            base_mpki > 1e-9 ? my_mpki / base_mpki : 1.0;
        sum_precise_fetches += base_fetches;
        sum_fetches += my_fetches;
        sum_norm_fetches +=
            base_fetches > 0.5 ? my_fetches / base_fetches : 1.0;
        sum_error += w->outputErrorVs(*base.workload);
        sum_coverage += m.coverage();
        const double base_instr =
            static_cast<double>(base.metrics.instructions);
        sum_var += base_instr > 0.0
                       ? std::fabs(static_cast<double>(m.instructions) -
                                   base_instr) / base_instr
                       : 0.0;
        sum_instr += static_cast<double>(m.instructions);
    }

    const double n = static_cast<double>(seeds_);
    avg.preciseMpki = sum_precise_mpki / n;
    avg.mpki = sum_mpki / n;
    avg.normMpki = sum_norm_mpki / n;
    avg.preciseFetches = sum_precise_fetches / n;
    avg.fetches = sum_fetches / n;
    avg.normFetches = sum_norm_fetches / n;
    avg.outputError = sum_error / n;
    avg.coverage = sum_coverage / n;
    avg.instrVariation = sum_var / n;
    avg.instructions = sum_instr / n;
    applyEvalDerived(avg.stats, avg);
    return avg;
}

EvalResult
Evaluator::evaluatePrecise(const std::string &name)
{
    EvalResult avg;
    double sum_mpki = 0.0;
    double sum_instr = 0.0;
    double sum_fetches = 0.0;
    const WorkloadFactory factory = findWorkloadFactory(name);
    for (u32 s = 0; s < seeds_; ++s) {
        const Golden &base = golden(name, factory, 1 + s);
        sum_mpki += base.metrics.mpki();
        sum_instr += static_cast<double>(base.metrics.instructions);
        sum_fetches += static_cast<double>(base.metrics.fetches);
        avg.stats.merge(base.stats);
    }
    const double n = static_cast<double>(seeds_);
    avg.preciseMpki = avg.mpki = sum_mpki / n;
    avg.preciseFetches = avg.fetches = sum_fetches / n;
    avg.instructions = sum_instr / n;
    avg.normMpki = 1.0;
    avg.normFetches = 1.0;
    applyEvalDerived(avg.stats, avg);
    return avg;
}

} // namespace lva
