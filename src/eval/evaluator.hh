/**
 * @file
 * Design-space-exploration driver (the paper's phase-1 methodology):
 * runs each workload precisely and under a given memory configuration,
 * averages over several seeds, and reports normalized MPKI, normalized
 * fetches, coverage and application output error.
 */

#ifndef LVA_EVAL_EVALUATOR_HH
#define LVA_EVAL_EVALUATOR_HH

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/approx_memory.hh"
#include "util/stat_registry.hh"
#include "workloads/workload.hh"

namespace lva {

/** Seed-averaged results of one (workload, configuration) evaluation. */
struct EvalResult
{
    double preciseMpki = 0.0;   ///< baseline effective MPKI
    double mpki = 0.0;          ///< configured effective MPKI
    double normMpki = 1.0;      ///< mpki / preciseMpki
    double preciseFetches = 0.0;///< baseline L1 block fills
    double fetches = 0.0;
    double normFetches = 1.0;   ///< fetches / preciseFetches
    double outputError = 0.0;   ///< application metric (section IV)
    double coverage = 0.0;      ///< approximated / approximable loads
    double instrVariation = 0.0;///< |instr - instr_precise| / precise
    double instructions = 0.0;  ///< dynamic instructions (configured run)

    /**
     * Set on the NaN placeholder a checked sweep leaves for a point
     * that could not be completed (see SweepRunner::runChecked);
     * never set on a result produced by an actual evaluation.
     */
    bool failed = false;

    /**
     * Registry snapshot merged over all seeds (counters summed), with
     * the seed-averaged derived metrics folded in as "eval.*" gauges.
     */
    StatSnapshot stats{};
};

/** Catalog row for one "eval.*" derived gauge. */
struct EvalMetricDef
{
    const char *path;
    const char *desc;
    const char *unit;
};

/** The fixed catalog of derived metrics exported under "eval.*". */
const std::vector<EvalMetricDef> &evalMetricDefs();

/** Fold the derived metrics of @p r into @p snap as "eval.*" gauges. */
void applyEvalDerived(StatSnapshot &snap, const EvalResult &r);

/**
 * Catalog of the static-workload gauges exported under "workload.*"
 * (fig12): [0] static approximate load sites, [1] all static load
 * sites.
 */
const std::vector<EvalMetricDef> &workloadStaticDefs();

/**
 * Monotonic totals of the golden-cache lifecycle (docs/serving.md has
 * the state diagram). A snapshot, readable at any time; the serving
 * layer exports it as the "serve.cache.*" subtree and tests assert
 * single-flight with it (K concurrent requests needing the same
 * golden must yield builds == 1).
 */
struct GoldenCacheCounters
{
    u64 hits = 0;      ///< acquisitions answered by a ready slot
    u64 misses = 0;    ///< acquisitions that initiated a precise run
    u64 builds = 0;    ///< precise runs actually completed
    u64 coalesced = 0; ///< acquisitions that waited on another
                       ///< caller's in-flight build (single-flight)
    u64 evictions = 0; ///< ready slots discarded by capacity pressure
    u64 size = 0;      ///< resident entries right now
    u64 capacity = 0;  ///< configured bound (0 = unbounded)
};

/** One eviction candidate as the policy sees it. */
struct GoldenEvictionCandidate
{
    u64 lastUse = 0; ///< logical LRU stamp (higher = more recent)
    u64 cost = 0;    ///< rebuild cost (precise-run instructions)
};

/**
 * The cost-aware LRU victim policy, exposed as a pure function so
 * tests can pin it with synthetic candidates: consider the
 * ceil(n/4) least-recently-used candidates (so the MRU entry is
 * never evicted) and evict the *cheapest to rebuild* among them —
 * a stale-but-expensive golden survives over a stale-and-cheap one.
 * Ties fall back to strict LRU order. Returns an index into
 * @p candidates; @p candidates must be non-empty.
 */
std::size_t goldenEvictionVictim(
    const std::vector<GoldenEvictionCandidate> &candidates);

/**
 * Runs and caches evaluations.
 *
 * Golden (precise) runs are memoized per (workload, seed): every sweep
 * point reuses the same baseline for normalization and for the output
 * error comparison, exactly as the paper normalizes each benchmark to
 * its own precise execution.
 *
 * The memoization is a real cache with a lifecycle, not an unbounded
 * map: setGoldenCacheCapacity() bounds resident entries (the daemon
 * wires LVA_SERVE_CACHE here), eviction is cost-aware LRU
 * (goldenEvictionVictim), and builds are *single-flight* — concurrent
 * callers needing the same (workload, seed) block on the one caller
 * performing the precise run instead of duplicating it. Because every
 * golden is a deterministic function of (workload, seed, scale), an
 * evicted entry rebuilds bit-identically, so results never depend on
 * cache capacity or eviction schedule (pinned by
 * tests/golden_cache_test.cc).
 *
 * Thread safety: evaluate()/evaluatePrecise() may be called
 * concurrently (the SweepRunner does). Slots are shared_ptr-owned, so
 * an eviction never invalidates a golden another thread is still
 * reading; a slot mid-build is never an eviction candidate. A failed
 * build (including an injected fault) returns the slot to Empty, so a
 * retried point rebuilds the baseline instead of latching a broken
 * slot forever.
 */
class Evaluator
{
  public:
    /**
     * @param seeds number of simulation runs averaged (paper: 5)
     * @param scale workload working-set scale (1.0 = full size)
     *
     * Both default from the environment (LVA_SEEDS, LVA_SCALE) when
     * the arguments are zero, enabling quick smoke runs.
     */
    explicit Evaluator(u32 seeds = 0, double scale = 0.0);

    u32 seeds() const { return seeds_; }
    double scale() const { return scale_; }

    /** Evaluate @p workload under @p cfg, averaged over seeds. */
    EvalResult evaluate(const std::string &workload,
                        const ApproxMemory::Config &cfg);

    /** Baseline (precise) metrics for one workload (Table I). */
    EvalResult evaluatePrecise(const std::string &workload);

    /** evaluatePrecise under an explicit precise (machine) config. */
    EvalResult evaluatePrecise(const std::string &workload,
                               const ApproxMemory::Config &precise);

    /** The paper's baseline LVA configuration as an ApproxMemory config. */
    static ApproxMemory::Config baselineLva();

    /** A precise (no-mechanism) configuration. */
    static ApproxMemory::Config preciseConfig();

    /**
     * The precise baseline any result under @p cfg is normalized
     * against: preciseConfig() with the thread count and L1 geometry
     * of @p cfg (the mechanism never changes the machine a golden
     * runs on, only what sits beside the L1).
     */
    static ApproxMemory::Config
    preciseBaseFor(const ApproxMemory::Config &cfg);

    /**
     * Bound the golden cache to @p entries resident goldens (0 =
     * unbounded, the default and the standalone-driver behavior).
     * Shrinking below the current population evicts immediately.
     */
    void setGoldenCacheCapacity(u64 entries);

    /** Lifecycle totals since construction (see GoldenCacheCounters). */
    GoldenCacheCounters goldenCacheCounters();

    /**
     * Resident (Ready) cache keys in deterministic (map) order — a
     * test window into the eviction schedule, not a consumer API.
     */
    std::vector<std::pair<std::string, u64>> goldenResidentKeys();

  private:
    struct Golden
    {
        std::unique_ptr<Workload> workload; ///< completed precise run
        MemMetrics metrics;
        StatSnapshot stats;
    };

    /**
     * One cache slot walking Empty -> Building -> Ready under mutex_;
     * a failed build steps back to Empty (docs/serving.md diagrams
     * the lifecycle). shared_ptr ownership keeps an evicted golden
     * alive for readers that acquired it before the eviction.
     */
    struct GoldenSlot
    {
        enum class State { Empty, Building, Ready };
        State state = State::Empty;
        Golden golden;
        u64 lastUse = 0; ///< logical use-clock stamp (LRU order)
        u64 cost = 0;    ///< precise-run dynamic instructions
    };

    /**
     * Acquire the memoized precise run of (@p workload, @p seed) under
     * the machine geometry of @p precise. The cache key is the plain
     * workload name for the canonical preciseConfig() geometry (every
     * pre-machine caller) and a "name@t<threads>.s<size>..." variant
     * key otherwise, so goldens of different machines never alias.
     */
    std::shared_ptr<const Golden> golden(const std::string &workload,
                                         WorkloadFactory factory, u64 seed,
                                         const ApproxMemory::Config &precise);

    /** Evict until size <= capacity; call with mutex_ held. */
    void enforceCapacityLocked();

    u32 seeds_;
    double scale_;
    std::mutex mutex_; ///< guards goldens_ and all slot fields
    std::condition_variable cv_; ///< signals Building -> Ready/Empty
    std::map<std::pair<std::string, u64>, std::shared_ptr<GoldenSlot>>
        goldens_;
    u64 useClock_ = 0;     ///< advances on every acquisition
    u64 capacity_ = 0;     ///< 0 = unbounded
    GoldenCacheCounters counters_{};
};

} // namespace lva

#endif // LVA_EVAL_EVALUATOR_HH
