/**
 * @file
 * Design-space-exploration driver (the paper's phase-1 methodology):
 * runs each workload precisely and under a given memory configuration,
 * averages over several seeds, and reports normalized MPKI, normalized
 * fetches, coverage and application output error.
 */

#ifndef LVA_EVAL_EVALUATOR_HH
#define LVA_EVAL_EVALUATOR_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/approx_memory.hh"
#include "util/stat_registry.hh"
#include "workloads/workload.hh"

namespace lva {

/** Seed-averaged results of one (workload, configuration) evaluation. */
struct EvalResult
{
    double preciseMpki = 0.0;   ///< baseline effective MPKI
    double mpki = 0.0;          ///< configured effective MPKI
    double normMpki = 1.0;      ///< mpki / preciseMpki
    double preciseFetches = 0.0;///< baseline L1 block fills
    double fetches = 0.0;
    double normFetches = 1.0;   ///< fetches / preciseFetches
    double outputError = 0.0;   ///< application metric (section IV)
    double coverage = 0.0;      ///< approximated / approximable loads
    double instrVariation = 0.0;///< |instr - instr_precise| / precise
    double instructions = 0.0;  ///< dynamic instructions (configured run)

    /**
     * Set on the NaN placeholder a checked sweep leaves for a point
     * that could not be completed (see SweepRunner::runChecked);
     * never set on a result produced by an actual evaluation.
     */
    bool failed = false;

    /**
     * Registry snapshot merged over all seeds (counters summed), with
     * the seed-averaged derived metrics folded in as "eval.*" gauges.
     */
    StatSnapshot stats{};
};

/** Catalog row for one "eval.*" derived gauge. */
struct EvalMetricDef
{
    const char *path;
    const char *desc;
    const char *unit;
};

/** The fixed catalog of derived metrics exported under "eval.*". */
const std::vector<EvalMetricDef> &evalMetricDefs();

/** Fold the derived metrics of @p r into @p snap as "eval.*" gauges. */
void applyEvalDerived(StatSnapshot &snap, const EvalResult &r);

/**
 * Catalog of the static-workload gauges exported under "workload.*"
 * (fig12): [0] static approximate load sites, [1] all static load
 * sites.
 */
const std::vector<EvalMetricDef> &workloadStaticDefs();

/**
 * Runs and caches evaluations.
 *
 * Golden (precise) runs are memoized per (workload, seed): every sweep
 * point reuses the same baseline for normalization and for the output
 * error comparison, exactly as the paper normalizes each benchmark to
 * its own precise execution.
 *
 * Thread safety: evaluate()/evaluatePrecise() may be called
 * concurrently (the SweepRunner does). The golden cache is a std::map
 * guarded by a mutex for slot creation; each slot carries a
 * std::once_flag so exactly one caller performs the precise run while
 * concurrent callers for the same (workload, seed) block on the latch
 * instead of duplicating it. std::map's node stability keeps slot
 * references valid while other threads grow the map.
 */
class Evaluator
{
  public:
    /**
     * @param seeds number of simulation runs averaged (paper: 5)
     * @param scale workload working-set scale (1.0 = full size)
     *
     * Both default from the environment (LVA_SEEDS, LVA_SCALE) when
     * the arguments are zero, enabling quick smoke runs.
     */
    explicit Evaluator(u32 seeds = 0, double scale = 0.0);

    u32 seeds() const { return seeds_; }
    double scale() const { return scale_; }

    /** Evaluate @p workload under @p cfg, averaged over seeds. */
    EvalResult evaluate(const std::string &workload,
                        const ApproxMemory::Config &cfg);

    /** Baseline (precise) metrics for one workload (Table I). */
    EvalResult evaluatePrecise(const std::string &workload);

    /** The paper's baseline LVA configuration as an ApproxMemory config. */
    static ApproxMemory::Config baselineLva();

    /** A precise (no-mechanism) configuration. */
    static ApproxMemory::Config preciseConfig();

  private:
    struct Golden
    {
        std::unique_ptr<Workload> workload; ///< completed precise run
        MemMetrics metrics;
        StatSnapshot stats;
    };

    /** One memoization slot; the flag latches concurrent builders. */
    struct GoldenSlot
    {
        std::once_flag once;
        Golden golden;
    };

    const Golden &golden(const std::string &workload,
                         WorkloadFactory factory, u64 seed);

    u32 seeds_;
    double scale_;
    std::mutex mutex_; ///< guards goldens_ slot creation only
    std::map<std::pair<std::string, u64>, GoldenSlot> goldens_;
};

} // namespace lva

#endif // LVA_EVAL_EVALUATOR_HH
