#include "eval/service.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/machine_config.hh"
#include "util/checkpoint.hh"
#include "util/env_knob.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/stats_json.hh"

namespace lva {
namespace {

std::string
errorResponse(const std::string &message)
{
    return std::string("{\"schema\":") + jsonQuote(rpcSchema()) +
           ",\"ok\":false,\"error\":" + jsonQuote(message) + "}";
}

/** "{\"schema\":\"lva-rpc-v1\",\"ok\":true,\"op\":<op>" — callers
 *  append further members and the closing brace. */
std::string
okPrefix(const std::string &op)
{
    return std::string("{\"schema\":") + jsonQuote(rpcSchema()) +
           ",\"ok\":true,\"op\":" + jsonQuote(op);
}

u32
u32Field(const std::string &key, const JsonValue &value)
{
    const u64 v = value.asU64();
    if (v > std::numeric_limits<u32>::max())
        throw std::runtime_error("config: \"" + key +
                                 "\" out of range");
    return static_cast<u32>(v);
}

MemMode
modeFromName(const std::string &name)
{
    if (name == "lva")
        return MemMode::Lva;
    if (name == "lvp")
        return MemMode::Lvp;
    if (name == "prefetch")
        return MemMode::Prefetch;
    if (name == "precise")
        return MemMode::Precise;
    throw std::runtime_error("config: unknown mode \"" + name + "\"");
}

/**
 * Apply one approximator key to the config's global approx AND every
 * per-thread variant, so a request override like "ghb" stays coherent
 * on a heterogeneous machine; false when @p key is not an approx key.
 */
bool
applyApproxKeyAll(ApproxMemory::Config &out, const std::string &key,
                  const JsonValue &value)
{
    if (!applyApproxKey(out.approx, key, value))
        return false;
    for (ApproximatorConfig &variant : out.threadApprox)
        applyApproxKey(variant, key, value);
    return true;
}

} // namespace

const char *
rpcSchema()
{
    return "lva-rpc-v1";
}

u64
busyRetryAfterMs()
{
    return 100;
}

std::string
busyResponse()
{
    return std::string("{\"schema\":") + jsonQuote(rpcSchema()) +
           ",\"ok\":false,\"busy\":true,\"retryAfterMs\":" +
           std::to_string(busyRetryAfterMs()) +
           ",\"error\":\"server at capacity\"}";
}

std::string
fleetRouteKey(const std::string &requestJson)
{
    try {
        const JsonValue req = parseJson(requestJson);
        const std::string op = req.at("op").asString();
        if (op == "eval")
            return req.at("workload").asString();
        if (op == "sweep") {
            std::vector<std::string> names;
            for (const JsonValue &p : req.at("points").items)
                names.push_back(p.at("workload").asString());
            std::sort(names.begin(), names.end());
            names.erase(std::unique(names.begin(), names.end()),
                        names.end());
            std::string key;
            for (const std::string &n : names) {
                if (!key.empty())
                    key += ',';
                key += n;
            }
            // Shard-scoped sweeps (the coordinator's scatter) carry a
            // "shard" member so distinct shards of one sweep spread
            // across workers even when their workload sets overlap.
            if (const JsonValue *shard = req.find("shard"))
                key += "#shard:" + std::to_string(shard->asU64());
            return key;
        }
        return "op:" + op;
    } catch (const std::exception &) {
        return "op:invalid";
    }
}

u32
fleetShard(const std::string &key, u32 shards)
{
    lva_assert(shards > 0, "fleetShard: no shards");
    u32 best = 0;
    u64 bestScore = 0;
    for (u32 i = 0; i < shards; ++i) {
        const u64 score = fnv1a64(key + "#" + std::to_string(i));
        if (i == 0 || score > bestScore) {
            best = i;
            bestScore = score;
        }
    }
    return best;
}

ServeOptions
resolveServeOptions(ServeOptions opts)
{
    // All knobs go through the strict util/env_knob.hh parse: junk,
    // signs, and out-of-range values warn and fall back instead of
    // being coerced (DESIGN.md section 17).
    if (opts.port == 0)
        opts.port = static_cast<u16>(
            envKnobU64("LVA_SERVE_PORT", 0, 0, 65535));
    if (opts.workers == 0)
        opts.workers = static_cast<u32>(
            envKnobU64("LVA_SERVE_WORKERS", 0, 1, 256));
    if (opts.workers == 0)
        opts.workers = 2;
    if (opts.queueCap == 0)
        opts.queueCap = static_cast<u32>(
            envKnobU64("LVA_SERVE_QUEUE", 0, 1, 1000000));
    if (opts.queueCap == 0)
        opts.queueCap = 16;
    if (opts.deadlineMs == 0)
        opts.deadlineMs =
            envKnobU64("LVA_SERVE_DEADLINE_MS", 0, 1, 86400000);
    if (opts.deadlineMs == 0)
        opts.deadlineMs = 10000;
    if (opts.maxAttempts == 0)
        opts.maxAttempts = 1 + static_cast<u32>(
                                   envKnobU64("LVA_SERVE_RETRIES", 0,
                                              0, 99));
    if (opts.cacheCap == 0)
        opts.cacheCap = envKnobU64("LVA_SERVE_CACHE", 0, 0, 1000000);
    return opts;
}

ServeStats::ServeStats()
    : connections_(registry_.counter(
          "serve.connections", "client connections accepted",
          "connections")),
      rejects_(registry_.counter(
          "serve.rejects",
          "connections refused with a busy response at queue capacity",
          "connections")),
      requests_(registry_.counter("serve.requests",
                                  "request frames received",
                                  "requests")),
      errors_(registry_.counter("serve.errors",
                                "requests answered ok:false",
                                "requests")),
      failures_(registry_.counter(
          "serve.failures",
          "requests still failing after every isolated attempt",
          "requests")),
      retries_(registry_.counter(
          "serve.retries", "extra request attempts consumed by retry",
          "attempts")),
      queueDepth_(registry_.gauge(
          "serve.queueDepth",
          "accepted connections waiting for a handler", "connections")),
      cacheHits_(registry_.counter(
          "serve.cache.hits", "golden acquisitions served from cache",
          "goldens")),
      cacheMisses_(registry_.counter(
          "serve.cache.misses",
          "golden acquisitions that initiated a precise run",
          "goldens")),
      cacheBuilds_(registry_.counter("serve.cache.builds",
                                     "precise golden runs completed",
                                     "goldens")),
      cacheCoalesced_(registry_.counter(
          "serve.cache.coalesced",
          "golden acquisitions coalesced onto an in-flight build",
          "goldens")),
      cacheEvictions_(registry_.counter(
          "serve.cache.evictions",
          "goldens evicted by capacity pressure", "goldens")),
      cacheSize_(registry_.gauge("serve.cache.size",
                                 "resident goldens", "goldens")),
      cacheCapacity_(registry_.gauge(
          "serve.cache.capacity",
          "golden-cache bound (0 = unbounded)", "goldens"))
{
}

void
ServeStats::onConnection()
{
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.inc();
}

void
ServeStats::onReject()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rejects_.inc();
}

void
ServeStats::onRequest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    requests_.inc();
}

void
ServeStats::onError()
{
    std::lock_guard<std::mutex> lock(mutex_);
    errors_.inc();
}

void
ServeStats::onFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    failures_.inc();
}

void
ServeStats::onRetries(u32 extra)
{
    std::lock_guard<std::mutex> lock(mutex_);
    retries_.inc(extra);
}

void
ServeStats::setQueueDepth(std::size_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    queueDepth_.set(static_cast<double>(depth));
}

void
ServeStats::syncGoldenCache(const GoldenCacheCounters &c)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cacheHits_.inc(c.hits - lastCache_.hits);
    cacheMisses_.inc(c.misses - lastCache_.misses);
    cacheBuilds_.inc(c.builds - lastCache_.builds);
    cacheCoalesced_.inc(c.coalesced - lastCache_.coalesced);
    cacheEvictions_.inc(c.evictions - lastCache_.evictions);
    cacheSize_.set(static_cast<double>(c.size));
    cacheCapacity_.set(static_cast<double>(c.capacity));
    lastCache_ = c;
}

StatSnapshot
ServeStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return registry_.snapshot();
}

ApproxMemory::Config
configFromJson(const JsonValue &cfg)
{
    return configFromJson(cfg, Evaluator::baselineLva());
}

ApproxMemory::Config
configFromJson(const JsonValue &cfg, const ApproxMemory::Config &base)
{
    if (!cfg.isObject())
        throw std::runtime_error("config must be a JSON object");

    // "base" picks the starting configuration regardless of where it
    // appears in the object, so {"ghb":2,"base":"precise"} does not
    // silently drop the ghb override.
    ApproxMemory::Config out = base;
    if (const JsonValue *b = cfg.find("base")) {
        const std::string &name = b->asString();
        if (name == "precise")
            out = Evaluator::preciseBaseFor(base);
        else if (name != "baseline")
            throw std::runtime_error("config: unknown base \"" + name +
                                     "\"");
    }

    // Approximator keys are decoded by the same applyApproxKey the
    // lva-machine-v1 parser uses, so the RPC "config" object and the
    // machine file's "approx" object speak identical key names.
    for (const auto &[key, value] : cfg.members) {
        if (key == "base") {
            // handled above
        } else if (key == "mode") {
            out.mode = modeFromName(value.asString());
        } else if (key == "threads") {
            out.threads = u32Field(key, value);
        } else if (key == "prefetchDegree") {
            out.prefetch.degree = u32Field(key, value);
        } else if (applyApproxKeyAll(out, key, value)) {
            // one approximator knob, applied to every variant
        } else {
            throw std::runtime_error("config: unknown key \"" + key +
                                     "\"");
        }
    }
    return out;
}

std::vector<SweepPoint>
sweepPointsFromJson(const JsonValue &points)
{
    return sweepPointsFromJson(points, Evaluator::baselineLva());
}

std::vector<SweepPoint>
sweepPointsFromJson(const JsonValue &points,
                    const ApproxMemory::Config &base)
{
    if (!points.isArray())
        throw std::runtime_error("points must be a JSON array");
    std::vector<SweepPoint> out;
    out.reserve(points.items.size());
    for (std::size_t i = 0; i < points.items.size(); ++i) {
        const JsonValue &p = points.items[i];
        const std::string at = "points[" + std::to_string(i) + "]";
        if (!p.isObject())
            throw std::runtime_error(at + " must be a JSON object");
        for (const auto &[key, value] : p.members) {
            (void)value;
            if (key != "label" && key != "workload" && key != "config")
                throw std::runtime_error(at + ": unknown key \"" +
                                         key + "\"");
        }
        SweepPoint sp;
        sp.label = p.at("label").asString();
        sp.workload = p.at("workload").asString();
        sp.config = base;
        if (const JsonValue *cfg = p.find("config"))
            sp.config = configFromJson(*cfg, base);
        out.push_back(std::move(sp));
    }
    return out;
}

EvalService::EvalService(u32 seeds, double scale,
                         const ServeOptions &opts)
    : eval_(seeds, scale), runner_(eval_, opts.jobs),
      maxAttempts_(resolveServeOptions(opts).maxAttempts)
{
    // The batch checkpoint knobs make no sense per request (a daemon
    // has no single manifest identity, and resuming someone else's
    // manifest mid-service would return stale results), so the
    // service drops them before any request can resolve SweepOptions.
    // Runs before the serve loop spawns threads, so the unsetenv is
    // race-free.
    ::unsetenv("LVA_CHECKPOINT");
    ::unsetenv("LVA_RESUME");

    eval_.setGoldenCacheCapacity(resolveServeOptions(opts).cacheCap);
}

std::string
EvalService::handle(const std::string &requestJson)
{
    stats_.onRequest();
    const u64 index = nextRequest_.fetch_add(1);

    JsonValue req;
    std::string op;
    try {
        req = parseJson(requestJson);
        if (!req.isObject())
            throw std::runtime_error(
                "request must be a JSON object");
        if (const JsonValue *schema = req.find("schema")) {
            if (schema->asString() != rpcSchema())
                throw std::runtime_error("unsupported schema \"" +
                                         schema->asString() + "\"");
        }
        op = req.at("op").asString();
    } catch (const std::exception &e) {
        stats_.onError();
        return errorResponse(std::string("bad request: ") + e.what());
    }

    // Same retry discipline as a sweep point (DESIGN.md section 13):
    // each attempt runs under failure isolation and hits the request's
    // fault site, so LVA_FAULT can inject transient or permanent
    // failures per request, deterministically for any worker count.
    const std::string site = "serve.request." + std::to_string(index);
    std::string last_error;
    for (u32 attempt = 1; attempt <= maxAttempts_; ++attempt) {
        if (attempt > 1)
            stats_.onRetries(1);
        try {
            ScopedFailureIsolation isolate;
            faultPoint(site);
            return dispatch(req, op);
        } catch (const std::exception &e) {
            last_error = e.what();
        } catch (...) {
            last_error = "unknown error";
        }
    }
    stats_.onFailure();
    stats_.onError();
    return errorResponse(op + ": " + last_error);
}

std::string
EvalService::dispatch(const JsonValue &req, const std::string &op)
{
    if (op == "ping")
        return handlePing();
    if (op == "stats")
        return handleStats();
    if (op == "shutdown")
        return handleShutdown();
    if (op == "eval")
        return handleEval(req);
    if (op == "sweep")
        return handleSweep(req);
    throw std::runtime_error("unknown op \"" + op + "\"");
}

std::string
EvalService::handlePing() const
{
    return okPrefix("ping") +
           ",\"jobs\":" + std::to_string(runner_.jobs()) +
           ",\"seeds\":" + std::to_string(eval_.seeds()) +
           ",\"scale\":" + jsonDouble(eval_.scale()) + "}";
}

std::string
EvalService::handleStats()
{
    stats_.syncGoldenCache(eval_.goldenCacheCounters());
    return okPrefix("stats") +
           ",\"serve\":" + snapshotToJson(stats_.snapshot()) + "}";
}

std::string
EvalService::handleShutdown()
{
    shutdown_.store(true);
    return okPrefix("shutdown") + ",\"draining\":true}";
}

namespace {

/**
 * Decode a request's optional "machine" member (an inline
 * lva-machine-v1 object, docs/topology.md) into the phase-1 base
 * config every point starts from; absent = the built-in Table II
 * machine, whose base is exactly Evaluator::baselineLva().
 */
ApproxMemory::Config
machineBaseFromRequest(const JsonValue &req)
{
    if (const JsonValue *m = req.find("machine"))
        return machineFromJson(*m).phase1Lva();
    return Evaluator::baselineLva();
}

} // namespace

std::string
EvalService::handleEval(const JsonValue &req)
{
    const std::string workload = req.at("workload").asString();
    const ApproxMemory::Config base = machineBaseFromRequest(req);
    ApproxMemory::Config cfg = base;
    if (const JsonValue *c = req.find("config"))
        cfg = configFromJson(*c, base);

    const EvalResult r = eval_.evaluate(workload, cfg);
    return okPrefix("eval") +
           ",\"workload\":" + jsonQuote(workload) +
           ",\"result\":{\"preciseMpki\":" + jsonDouble(r.preciseMpki) +
           ",\"mpki\":" + jsonDouble(r.mpki) +
           ",\"normMpki\":" + jsonDouble(r.normMpki) +
           ",\"normFetches\":" + jsonDouble(r.normFetches) +
           ",\"coverage\":" + jsonDouble(r.coverage) +
           ",\"outputError\":" + jsonDouble(r.outputError) +
           ",\"instrVariation\":" + jsonDouble(r.instrVariation) +
           "}}";
}

std::string
EvalService::handleSweep(const JsonValue &req)
{
    const std::string driver = req.at("driver").asString();
    if (driver.empty())
        throw std::runtime_error("sweep: driver must be non-empty");
    const std::vector<SweepPoint> points = sweepPointsFromJson(
        req.at("points"), machineBaseFromRequest(req));
    if (points.empty())
        throw std::runtime_error("sweep: no points");

    SweepOptions opts;
    opts.driver = driver;
    const SweepOutcome outcome = runner_.runChecked(points, opts);

    std::string out = okPrefix("sweep") +
                      ",\"driver\":" + jsonQuote(driver) +
                      ",\"points\":" + std::to_string(points.size()) +
                      ",\"failures\":" +
                      std::to_string(outcome.failures.size()) +
                      ",\"resumed\":" + std::to_string(outcome.resumed);
    // A shard-scoped request ("shard": n) is echoed back so the
    // coordinator can verify the response matches its scatter.
    if (const JsonValue *shard = req.find("shard"))
        out += ",\"shard\":" + std::to_string(shard->asU64());

    const JsonValue *detail = req.find("detail");
    if (detail != nullptr && detail->type == JsonValue::Type::Bool &&
        detail->boolean) {
        // Detailed response (the coordinator's gather): per-point
        // encoded results (null = failed) plus structured failures,
        // instead of the rendered shard-local export — the
        // coordinator merges shards and renders the export itself.
        out += ",\"results\":[";
        for (std::size_t i = 0; i < outcome.results.size(); ++i) {
            if (i > 0)
                out += ',';
            out += outcome.results[i].failed
                       ? "null"
                       : encodeEvalResult(outcome.results[i]);
        }
        out += "],\"failureDetail\":[";
        for (std::size_t i = 0; i < outcome.failures.size(); ++i) {
            const PointFailure &f = outcome.failures[i];
            if (i > 0)
                out += ',';
            out += "{\"index\":" + std::to_string(f.index) +
                   ",\"label\":" + jsonQuote(f.label) +
                   ",\"workload\":" + jsonQuote(f.workload) +
                   ",\"error\":" + jsonQuote(f.error) +
                   ",\"attempts\":" + std::to_string(f.attempts) +
                   ",\"timedOut\":" +
                   (f.timedOut ? "true" : "false") + "}";
        }
        out += "]}";
        return out;
    }

    // The export travels inside the response as a quoted string; the
    // client unescapes it back to the exact bytes the driver's
    // exportSweepStats would have written to results/stats/.
    return out + ",\"export\":" +
           jsonQuote(renderSweepStats(driver, points, outcome)) + "}";
}

ServeLoop::ServeLoop(EvalService &service, const ServeOptions &opts)
    : service_(service), opts_(resolveServeOptions(opts)),
      listener_(opts_.port)
{
}

ServeLoop::~ServeLoop()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
    for (auto &t : handlers_)
        if (t.joinable())
            t.join();
}

bool
ServeLoop::stopping() const
{
    return stop_.load() || service_.shutdownRequested();
}

void
ServeLoop::run()
{
    handlers_.reserve(opts_.workers);
    for (u32 i = 0; i < opts_.workers; ++i)
        handlers_.emplace_back([this] { handlerMain(); });

    while (!stopping()) {
        TcpStream conn;
        try {
            faultPoint("serve.accept");
            // Short poll so the stop flag is observed promptly even
            // with no traffic (SIGTERM must drain, not hang).
            conn = listener_.acceptOne(200);
        } catch (const std::exception &e) {
            lva_warn("serve: accept: %s", e.what());
            continue;
        }
        if (!conn.valid())
            continue; // poll tick: re-check the stop flag

        service_.stats().onConnection();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (queue_.size() >= opts_.queueCap) {
                lock.unlock();
                service_.stats().onReject();
                try {
                    // Best-effort: a client gone before the busy
                    // frame lands is not the server's problem.
                    writeFrame(conn, busyResponse(), 1000);
                } catch (const std::exception &) {
                }
                continue;
            }
            queue_.push_back(std::move(conn));
            service_.stats().setQueueDepth(queue_.size());
        }
        cv_.notify_one();
    }

    // Drain: stop accepting, let the handlers finish every queued
    // connection's current request, then return.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
    for (auto &t : handlers_)
        t.join();
    handlers_.clear();
}

void
ServeLoop::handlerMain()
{
    for (;;) {
        TcpStream conn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return closed_ || !queue_.empty(); });
            if (queue_.empty())
                return; // closed and drained
            conn = std::move(queue_.front());
            queue_.pop_front();
            service_.stats().setQueueDepth(queue_.size());
        }
        handleConnection(std::move(conn));
    }
}

void
ServeLoop::handleConnection(TcpStream conn)
{
    try {
        std::string request;
        while (readFrame(conn, request, opts_.deadlineMs)) {
            writeFrame(conn, service_.handle(request),
                       opts_.deadlineMs);
            if (stopping())
                break; // drain: finish this request, take no more
        }
    } catch (const std::exception &e) {
        // A mid-request disconnect, a torn frame, or a wire deadline
        // ends this connection only; the daemon keeps serving.
        lva_warn("serve: connection: %s", e.what());
    }
}

} // namespace lva
