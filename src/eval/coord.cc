#include "eval/coord.hh"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "eval/service.hh"
#include "util/checkpoint.hh"
#include "util/logging.hh"
#include "util/stats_json.hh"

namespace lva {
namespace {

std::string
encodePointFailure(const PointFailure &f)
{
    return "{\"index\":" + std::to_string(f.index) +
           ",\"label\":" + jsonQuote(f.label) +
           ",\"workload\":" + jsonQuote(f.workload) +
           ",\"error\":" + jsonQuote(f.error) +
           ",\"attempts\":" + std::to_string(f.attempts) +
           ",\"timedOut\":" + (f.timedOut ? "true" : "false") + "}";
}

PointFailure
decodePointFailure(const JsonValue &v)
{
    PointFailure f;
    f.index = v.at("index").asU64();
    f.label = v.at("label").asString();
    f.workload = v.at("workload").asString();
    f.error = v.at("error").asString();
    const u64 attempts = v.at("attempts").asU64();
    if (attempts > 0xffffffffull)
        throw std::runtime_error("shard failure: attempts out of range");
    f.attempts = static_cast<u32>(attempts);
    const JsonValue &timedOut = v.at("timedOut");
    if (timedOut.type != JsonValue::Type::Bool)
        throw std::runtime_error(
            "shard failure: timedOut must be a bool");
    f.timedOut = timedOut.boolean;
    return f;
}

} // namespace

ShardPlan
planShards(const std::vector<SweepPoint> &points, u32 shards)
{
    lva_assert(shards > 0, "planShards: no shards");
    ShardPlan plan;
    plan.shards = shards;
    plan.members.resize(shards);
    plan.keys.resize(shards);
    for (u64 i = 0; i < points.size(); ++i)
        plan.members[fleetShard(points[i].workload, shards)]
            .push_back(i);
    for (u32 s = 0; s < shards; ++s) {
        std::vector<std::string> names;
        for (const u64 i : plan.members[s])
            names.push_back(points[i].workload);
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()),
                    names.end());
        std::string key;
        for (const std::string &n : names) {
            if (!key.empty())
                key += ',';
            key += n;
        }
        plan.keys[s] = key + "#shard:" + std::to_string(s);
    }
    return plan;
}

std::string
shardDigest(const ShardPlan &plan,
            const std::vector<SweepPoint> &points, u32 shard)
{
    lva_assert(shard < plan.members.size(),
               "shardDigest: shard out of range");
    std::string blob = "shard:" + std::to_string(shard);
    for (const u64 i : plan.members[shard]) {
        blob += '\0';
        blob += sweepPointDigest(points[i]);
    }
    return hexU64(fnv1a64(blob));
}

std::string
coordContextKey(const Evaluator &eval, u32 shards)
{
    return sweepContextKey(eval) +
           ";shards=" + std::to_string(shards);
}

std::vector<u32>
coordWorkerRank(const std::string &key, u32 workers)
{
    lva_assert(workers > 0, "coordWorkerRank: no workers");
    std::vector<u64> score(workers);
    for (u32 i = 0; i < workers; ++i)
        score[i] = fnv1a64(key + "#" + std::to_string(i));
    std::vector<u32> rank(workers);
    std::iota(rank.begin(), rank.end(), 0u);
    // Stable: ties keep the lower index first, matching fleetShard's
    // first-maximum rule, so rank[0] == fleetShard(key, workers).
    std::stable_sort(rank.begin(), rank.end(),
                     [&score](u32 a, u32 b) {
                         return score[a] > score[b];
                     });
    return rank;
}

std::string
encodeShardRecord(const ShardRecord &record)
{
    std::string out =
        "{\"shard\":" + std::to_string(record.shard) + ",\"results\":[";
    for (std::size_t i = 0; i < record.results.size(); ++i) {
        if (i > 0)
            out += ',';
        out += record.results[i].failed
                   ? "null"
                   : encodeEvalResult(record.results[i]);
    }
    out += "],\"failures\":[";
    for (std::size_t i = 0; i < record.failures.size(); ++i) {
        if (i > 0)
            out += ',';
        out += encodePointFailure(record.failures[i]);
    }
    out += "]}";
    return out;
}

ShardRecord
decodeShardRecord(const JsonValue &payload)
{
    ShardRecord record;
    const u64 shard = payload.at("shard").asU64();
    if (shard > 0xffffffffull)
        throw std::runtime_error("shard record: shard out of range");
    record.shard = static_cast<u32>(shard);
    const JsonValue &results = payload.at("results");
    if (!results.isArray())
        throw std::runtime_error(
            "shard record: 'results' is not an array");
    record.results.reserve(results.items.size());
    for (const JsonValue &item : results.items) {
        record.results.push_back(item.type == JsonValue::Type::Null
                                     ? failedPointPlaceholder()
                                     : decodeEvalResult(item));
    }
    const JsonValue &failures = payload.at("failures");
    if (!failures.isArray())
        throw std::runtime_error(
            "shard record: 'failures' is not an array");
    for (const JsonValue &item : failures.items) {
        PointFailure f = decodePointFailure(item);
        if (f.index >= record.results.size())
            throw std::runtime_error(
                "shard record: failure index out of range");
        record.failures.push_back(std::move(f));
    }
    return record;
}

ShardRecord
shardRecordFromResponse(const JsonValue &response, u32 shard,
                        std::size_t pointCount)
{
    const JsonValue &ok = response.at("ok");
    if (ok.type != JsonValue::Type::Bool || !ok.boolean) {
        std::string why = "worker answered ok:false";
        if (const JsonValue *error = response.find("error"))
            why += ": " + error->asString();
        throw std::runtime_error(why);
    }
    if (response.at("op").asString() != "sweep")
        throw std::runtime_error("worker answered the wrong op");
    if (response.at("shard").asU64() != shard)
        throw std::runtime_error("worker answered the wrong shard");

    ShardRecord record;
    record.shard = shard;
    const JsonValue &results = response.at("results");
    if (!results.isArray() || results.items.size() != pointCount)
        throw std::runtime_error(
            "worker response: 'results' does not match the shard's "
            "point count");
    record.results.reserve(pointCount);
    for (const JsonValue &item : results.items) {
        record.results.push_back(item.type == JsonValue::Type::Null
                                     ? failedPointPlaceholder()
                                     : decodeEvalResult(item));
    }
    const JsonValue &failures = response.at("failureDetail");
    if (!failures.isArray())
        throw std::runtime_error(
            "worker response: 'failureDetail' is not an array");
    for (const JsonValue &item : failures.items) {
        PointFailure f = decodePointFailure(item);
        if (f.index >= pointCount)
            throw std::runtime_error(
                "worker response: failure index out of range");
        record.failures.push_back(std::move(f));
    }
    return record;
}

SweepOutcome
mergeShards(const ShardPlan &plan, std::size_t pointCount,
            const std::vector<ShardRecord> &records)
{
    SweepOutcome out;
    out.results.resize(pointCount);
    std::vector<u8> covered(pointCount, 0);
    for (const ShardRecord &record : records) {
        if (record.shard >= plan.members.size())
            throw std::runtime_error(
                "merge: record for shard " +
                std::to_string(record.shard) + " outside the plan");
        const std::vector<u64> &members = plan.members[record.shard];
        if (record.results.size() != members.size())
            throw std::runtime_error(
                "merge: shard " + std::to_string(record.shard) +
                " has " + std::to_string(record.results.size()) +
                " results for " + std::to_string(members.size()) +
                " points");
        for (std::size_t i = 0; i < members.size(); ++i) {
            const u64 g = members[i];
            lva_assert(g < pointCount,
                       "merge: plan index out of range");
            if (covered[g])
                throw std::runtime_error(
                    "merge: point " + std::to_string(g) +
                    " covered by two shard records");
            covered[g] = 1;
            out.results[g] = record.results[i];
        }
        for (const PointFailure &f : record.failures) {
            if (f.index >= members.size())
                throw std::runtime_error(
                    "merge: failure index out of range");
            PointFailure g = f;
            g.index = members[f.index];
            out.failures.push_back(std::move(g));
        }
    }
    for (std::size_t g = 0; g < pointCount; ++g)
        if (!covered[g])
            throw std::runtime_error(
                "merge: point " + std::to_string(g) +
                " not covered by any shard record");
    // A single-process runChecked collects failures in ascending
    // point order; match it so the "failures" section renders
    // byte-identically.
    std::sort(out.failures.begin(), out.failures.end(),
              [](const PointFailure &a, const PointFailure &b) {
                  return a.index < b.index;
              });
    return out;
}

CoordStats::CoordStats()
    : shards_(registry_.gauge("coord.shards",
                              "shards in the sweep plan", "shards")),
      points_(registry_.gauge("coord.points",
                              "sweep points across all shards",
                              "points")),
      workers_(registry_.gauge(
          "coord.workers",
          "fleet workers supervised by the coordinator", "workers")),
      scattered_(registry_.counter(
          "coord.scattered", "shard requests dispatched to workers",
          "requests")),
      gathered_(registry_.counter(
          "coord.gathered", "shard responses merged into the export",
          "responses")),
      resumed_(registry_.counter(
          "coord.resumed",
          "shards restored from the checkpoint manifest", "shards")),
      stolen_(registry_.counter(
          "coord.stolen",
          "shards reassigned to another worker after a death",
          "shards")),
      respawns_(registry_.counter("coord.respawns",
                                  "workers respawned after death",
                                  "workers")),
      pointFailures_(registry_.counter(
          "coord.pointFailures",
          "points still failed after worker-side retry", "points"))
{
}

void
CoordStats::onPlan(u32 shards, u64 points, u32 workers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.set(static_cast<double>(shards));
    points_.set(static_cast<double>(points));
    workers_.set(static_cast<double>(workers));
}

void
CoordStats::onScatter()
{
    std::lock_guard<std::mutex> lock(mutex_);
    scattered_.inc();
}

void
CoordStats::onGather()
{
    std::lock_guard<std::mutex> lock(mutex_);
    gathered_.inc();
}

void
CoordStats::onResumed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    resumed_.inc();
}

void
CoordStats::onStolen()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stolen_.inc();
}

void
CoordStats::onRespawn()
{
    std::lock_guard<std::mutex> lock(mutex_);
    respawns_.inc();
}

void
CoordStats::onPointFailures(u64 n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pointFailures_.inc(n);
}

StatSnapshot
CoordStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return registry_.snapshot();
}

} // namespace lva
