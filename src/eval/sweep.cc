#include "eval/sweep.hh"

#include "eval/stat_report.hh"
#include "util/logging.hh"

namespace lva {

namespace {

std::unique_ptr<ThreadPool>
makePool(u32 jobs)
{
    return jobs > 1 ? std::make_unique<ThreadPool>(jobs) : nullptr;
}

} // namespace

SweepRunner::SweepRunner(Evaluator &eval, u32 jobs)
    : eval_(&eval),
      jobs_(jobs ? jobs : ThreadPool::defaultJobs()),
      pool_(makePool(jobs_))
{
}

SweepRunner::SweepRunner(u32 jobs)
    : eval_(nullptr),
      jobs_(jobs ? jobs : ThreadPool::defaultJobs()),
      pool_(makePool(jobs_))
{
}

std::vector<EvalResult>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    lva_assert(eval_ != nullptr,
               "SweepRunner::run needs an Evaluator; use the "
               "Evaluator constructor");
    Evaluator &eval = *eval_;
    return map(points.size(), [&eval, &points](u64 i) {
        const SweepPoint &p = points[i];
        return eval.evaluate(p.workload, p.config);
    });
}

std::string
exportSweepStats(const std::string &driver,
                 const std::vector<SweepPoint> &points,
                 const std::vector<EvalResult> &results)
{
    lva_assert(points.size() == results.size(),
               "point/result count mismatch: %zu vs %zu",
               points.size(), results.size());
    std::vector<NamedSnapshot> snaps;
    snaps.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        snaps.push_back(
            {points[i].label, points[i].workload, results[i].stats});
    return writeStatsJson(driver, snaps);
}

} // namespace lva
