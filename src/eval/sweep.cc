#include "eval/sweep.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "eval/stat_report.hh"
#include "sim/machine_config.hh"
#include "util/env_knob.hh"
#include "util/logging.hh"
#include "util/results_dir.hh"
#include "util/stats_json.hh"

namespace lva {

namespace {

std::unique_ptr<ThreadPool>
makePool(u32 jobs)
{
    return jobs > 1 ? std::make_unique<ThreadPool>(jobs) : nullptr;
}

/** "1"/"" truthiness for the boolean env knobs ("0" and unset = off). */
bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/** Load one machine-config file; exits(2) with the parse error. */
std::shared_ptr<const MachineConfig>
loadMachineOrDie(const std::string &path)
{
    try {
        return std::make_shared<MachineConfig>(machineFromFile(path));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

/** Strict decimal CLI-operand parse; exits(2) on junk. */
u64
cliU64(const std::string &flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "error: %s expects a decimal count, got "
                     "'%s'\n", flag.c_str(), text);
        std::exit(2);
    }
    return static_cast<u64>(parsed);
}

/**
 * JSON rendering of a double that survives our restricted parser:
 * non-finite values (NaN placeholders, infinite confidence windows)
 * travel as quoted strings because bare nan/inf are not JSON.
 */
std::string
numJson(double v)
{
    return std::isfinite(v) ? jsonDouble(v) : jsonQuote(jsonDouble(v));
}

double
numFromJson(const JsonValue &v)
{
    if (v.type == JsonValue::Type::String)
        return std::strtod(v.text.c_str(), nullptr);
    return v.asDouble();
}

StatType
statTypeFromName(const std::string &name)
{
    if (name == "counter")
        return StatType::Counter;
    if (name == "gauge")
        return StatType::Gauge;
    if (name == "histogram")
        return StatType::Histogram;
    throw std::runtime_error("unknown stat type '" + name + "'");
}

/** Fold the sweep-runtime gauges into a completed point's snapshot. */
void
applySweepRuntime(EvalResult &r, u32 attempts)
{
    for (const EvalMetricDef &d : sweepRuntimeDefs()) {
        const double v = std::string(d.path) == "eval.retries.attempts"
                             ? static_cast<double>(attempts)
                             : static_cast<double>(attempts - 1);
        r.stats.setGauge(d.path, v, d.desc, d.unit);
    }
}

/** The honest placeholder a failed point leaves in the result row. */
EvalResult
failedPlaceholder()
{
    EvalResult r;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    r.preciseMpki = r.mpki = r.normMpki = nan;
    r.preciseFetches = r.fetches = r.normFetches = nan;
    r.outputError = r.coverage = nan;
    r.instrVariation = r.instructions = nan;
    r.failed = true;
    applyEvalDerived(r.stats, r); // "eval.*" gauges render as nan
    return r;
}

} // namespace

EvalResult
failedPointPlaceholder()
{
    return failedPlaceholder();
}

SweepOptions
resolveSweepOptions(SweepOptions opts)
{
    if (!opts.checkpoint && envFlag("LVA_CHECKPOINT"))
        opts.checkpoint = true;
    if (!opts.resume && envFlag("LVA_RESUME"))
        opts.resume = true;
    if (opts.resume) // resuming without recording would lose progress
        opts.checkpoint = true;
    if (opts.maxAttempts == 0) {
        const u64 retries = envKnobU64("LVA_RETRIES", 0, 0, 99);
        opts.maxAttempts = static_cast<u32>(retries) + 1;
    }
    if (opts.backoffBaseMs == 0)
        opts.backoffBaseMs = 10;
    if (opts.backoffCapMs == 0)
        opts.backoffCapMs = 1000;
    if (opts.timeoutMs == 0)
        opts.timeoutMs =
            envKnobU64("LVA_POINT_TIMEOUT_MS", 0, 0, 86400000);
    if (!opts.machine) {
        // String-valued config path; validated by the parser it feeds.
        // lva-audit: allow(knob-unvalidated)
        const char *path = std::getenv("LVA_MACHINE");
        if (path != nullptr && *path != '\0')
            opts.machine = loadMachineOrDie(path);
    }
    return opts;
}

SweepOptions
sweepOptionsFromCli(const std::string &driver, int argc, char **argv)
{
    SweepOptions opts;
    opts.driver = driver;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs an operand\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--checkpoint") {
            opts.checkpoint = true;
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--retries") {
            opts.maxAttempts =
                static_cast<u32>(cliU64(arg, operand()) + 1);
        } else if (arg == "--timeout-ms") {
            opts.timeoutMs = cliU64(arg, operand());
        } else if (arg == "--machine") {
            opts.machine = loadMachineOrDie(operand());
        } else {
            std::fprintf(stderr,
                         "usage: %s [--checkpoint] [--resume] "
                         "[--retries N] [--timeout-ms N] "
                         "[--machine FILE]\n"
                         "  --checkpoint   record completed points in "
                         "a resumable manifest\n"
                         "  --resume       skip points already in the "
                         "manifest (implies --checkpoint)\n"
                         "  --retries N    re-attempt a failed point "
                         "up to N times\n"
                         "  --timeout-ms N abandon a point not done "
                         "within N ms (needs LVA_JOBS >= 2)\n"
                         "  --machine FILE run on the lva-machine-v1 "
                         "topology in FILE (docs/topology.md; also "
                         "LVA_MACHINE)\n",
                         driver.c_str());
            std::exit(2);
        }
    }
    return resolveSweepOptions(opts);
}

const MachineConfig &
sweepMachine(const SweepOptions &opts)
{
    return opts.machine ? *opts.machine : defaultMachine();
}

ApproxMemory::Config
machineBaseLva(const SweepOptions &opts)
{
    // Without a machine this must stay the exact historical object so
    // converted drivers keep byte-identical checkpoints and exports
    // (defaultMachine().phase1Lva() is equal, but equality is a test
    // pin while this identity is by construction).
    return opts.machine ? opts.machine->phase1Lva()
                        : Evaluator::baselineLva();
}

int
reportSweepFailures(const std::vector<PointFailure> &failures,
                    std::size_t total)
{
    for (const PointFailure &f : failures) {
        const char *what = f.label.empty()
                               ? (f.workload.empty() ? "task"
                                                     : f.workload.c_str())
                               : f.label.c_str();
        lva_warn("sweep point %llu (%s) failed after %u attempt(s): %s",
                 static_cast<unsigned long long>(f.index), what,
                 f.attempts, f.error.c_str());
    }
    if (failures.empty())
        return 0;
    lva_warn("%zu of %zu sweep points failed; exported results are "
             "partial (exit 3, see DESIGN.md section 13)",
             failures.size(), total);
    return 3;
}

int
reportSweepFailures(const SweepOutcome &outcome)
{
    return reportSweepFailures(outcome.failures,
                               outcome.results.size());
}

std::string
configKey(const ApproxMemory::Config &cfg)
{
    // Digest input for the checkpoint manifest: renders EVERY Config
    // field. When a field is added to ApproxMemory::Config (or its
    // nested configs) it MUST be appended here, or resumed manifests
    // will alias distinct configurations and restore wrong results.
    auto n = [](u64 v) { return std::to_string(v); };
    auto b = [](bool v) { return std::string(v ? "1" : "0"); };
    const ApproximatorConfig &a = cfg.approx;
    const GhbPrefetcherConfig &p = cfg.prefetch;
    auto approx = [&](const ApproximatorConfig &a) {
        return n(a.tableEntries) + "," + n(a.tableAssoc) + "," +
               n(a.confidenceBits) + "," +
               jsonDouble(a.confidenceWindow) + "," +
               b(a.confidenceForInts) + "," + b(a.confidenceDisabled) +
               "," + n(a.ghbEntries) + "," + n(a.lhbEntries) + "," +
               n(a.tagBits) + "," + n(a.valueDelay) + "," +
               n(a.approxDegree) + "," + estimatorName(a.estimator) +
               "," + b(a.proportionalConfidence) + "," +
               n(a.mantissaDropBits);
    };
    std::string k;
    k += "threads=" + n(cfg.threads);
    k += ";cache=" + n(cfg.cache.sizeBytes) + "/" + n(cfg.cache.assoc) +
         "/" + n(cfg.cache.blockBytes);
    k += ";mode=" + std::string(memModeName(cfg.mode));
    k += ";approx=" + approx(a);
    k += ";prefetch=" + n(p.ghbEntries) + "," + n(p.indexEntries) +
         "," + n(p.degree) + "," + n(p.blockBytes) + "," +
         n(p.maxChainWalk);
    // Appended only when present so every homogeneous (pre-machine)
    // config keeps its historical key and manifest digest.
    if (!cfg.threadApprox.empty()) {
        k += ";threadApprox=";
        for (std::size_t i = 0; i < cfg.threadApprox.size(); ++i) {
            if (i > 0)
                k += "|";
            k += approx(cfg.threadApprox[i]);
        }
    }
    return k;
}

std::string
sweepPointDigest(const SweepPoint &point)
{
    std::string data;
    data += point.label;
    data.push_back('\0');
    data += point.workload;
    data.push_back('\0');
    data += configKey(point.config);
    return hexU64(fnv1a64(data));
}

std::string
sweepContextKey(const Evaluator &eval)
{
    return std::string(manifestSchema()) + ";stats=" +
           statsJsonSchema() + ";seeds=" + std::to_string(eval.seeds()) +
           ";scale=" + jsonDouble(eval.scale());
}

std::string
sweepContextKey(const Evaluator &eval, const SweepOptions &opts)
{
    std::string key = sweepContextKey(eval);
    if (opts.machine)
        key += ";machine=" +
               hexU64(fnv1a64(renderMachineJson(*opts.machine)));
    return key;
}

const std::vector<EvalMetricDef> &
sweepRuntimeDefs()
{
    static const std::vector<EvalMetricDef> defs = {
        {"eval.failures.transient",
         "failed attempts recovered by retry before success",
         "attempts"},
        {"eval.retries.attempts",
         "evaluation attempts this point consumed (1 = first try)",
         "attempts"},
    };
    return defs;
}

SweepRunner::SweepRunner(Evaluator &eval, u32 jobs)
    : eval_(&eval),
      jobs_(jobs ? jobs : ThreadPool::defaultJobs()),
      pool_(makePool(jobs_))
{
}

SweepRunner::SweepRunner(u32 jobs)
    : eval_(nullptr),
      jobs_(jobs ? jobs : ThreadPool::defaultJobs()),
      pool_(makePool(jobs_))
{
}

void
SweepRunner::warnIfTimeoutUnsupported(const SweepOptions &opts)
{
    if (opts.timeoutMs > 0)
        lva_warn("per-point timeouts need a worker pool (jobs >= 2); "
                 "running without deadlines");
}

void
SweepRunner::backoff(const SweepOptions &opts, u32 attempt)
{
    const u32 shift = attempt > 20 ? 20 : attempt - 1;
    u64 ms = static_cast<u64>(opts.backoffBaseMs) << shift;
    if (ms > opts.backoffCapMs)
        ms = opts.backoffCapMs;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::vector<EvalResult>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    lva_assert(eval_ != nullptr,
               "SweepRunner::run needs an Evaluator; use the "
               "Evaluator constructor");
    Evaluator &eval = *eval_;
    return map(points.size(), [&eval, &points](u64 i) {
        const SweepPoint &p = points[i];
        return eval.evaluate(p.workload, p.config);
    });
}

namespace {

/**
 * Shared state kept alive by every worker task: a timed-out point's
 * task may still be queued or running when runChecked returns, so
 * anything it touches lives behind this shared_ptr, not on the
 * caller's stack.
 */
struct CheckedCtx
{
    SweepOptions opts;
    std::vector<SweepPoint> points;
    Evaluator *eval = nullptr;
    std::shared_ptr<CheckpointManifest> manifest;
};

} // namespace

SweepOutcome
SweepRunner::runChecked(const std::vector<SweepPoint> &points,
                        const SweepOptions &opts)
{
    lva_assert(eval_ != nullptr,
               "SweepRunner::runChecked needs an Evaluator; use the "
               "Evaluator constructor");
    auto ctx = std::make_shared<CheckedCtx>();
    ctx->opts = resolveSweepOptions(opts);
    ctx->points = points;
    ctx->eval = eval_;
    SweepOptions &eff = ctx->opts;
    if ((eff.checkpoint || eff.resume) && eff.driver.empty()) {
        lva_warn("sweep: checkpoint/resume requested without a driver "
                 "name; disabled");
        eff.checkpoint = eff.resume = false;
    }

    const u64 n = points.size();
    std::vector<std::string> digests(n);
    for (u64 i = 0; i < n; ++i)
        digests[i] = sweepPointDigest(points[i]);

    if (eff.checkpoint) {
        const std::string path =
            resultsPath("checkpoints/" + eff.driver + ".jsonl");
        const std::filesystem::path p(path);
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path());
        ctx->manifest = std::make_shared<CheckpointManifest>(
            path, eff.driver, sweepContextKey(*eval_, eff), eff.resume);
    }

    SweepOutcome out;
    out.results.resize(n);
    std::vector<u8> pending(n, 1);
    if (ctx->manifest && eff.resume) {
        for (u64 i = 0; i < n; ++i) {
            const std::string *payload = ctx->manifest->find(digests[i]);
            if (!payload)
                continue;
            try {
                out.results[i] = decodeEvalResult(parseJson(*payload));
                pending[i] = 0;
                ++out.resumed;
            } catch (const std::exception &e) {
                lva_warn("manifest record for point %llu unusable "
                         "(%s); re-running it",
                         static_cast<unsigned long long>(i), e.what());
            }
        }
        if (out.resumed > 0)
            lva_inform("%s: resumed %llu of %llu points from %s",
                       eff.driver.c_str(),
                       static_cast<unsigned long long>(out.resumed),
                       static_cast<unsigned long long>(n),
                       ctx->manifest->path().c_str());
    }

    // The whole per-point story — isolation, retry, runtime gauges,
    // durable checkpoint append — runs inside the worker task, so
    // completed points hit the manifest in completion order and
    // survive a kill even while the collector is blocked elsewhere.
    auto work = [ctx](u64 i, const std::string &digest) {
        const SweepPoint &p = ctx->points[i];
        Evaluator &eval = *ctx->eval;
        Tried<EvalResult> tried = attemptTask<EvalResult>(
            ctx->opts, i,
            [&eval, &p] { return eval.evaluate(p.workload, p.config); });
        if (tried.value) {
            applySweepRuntime(*tried.value, tried.attempts);
            if (ctx->manifest)
                ctx->manifest->append(digest,
                                      encodeEvalResult(*tried.value));
        } else {
            tried.failure->label = p.label;
            tried.failure->workload = p.workload;
        }
        return tried;
    };

    auto settle = [&](u64 i, Tried<EvalResult> &&tried) {
        if (tried.failure) {
            out.results[i] = failedPlaceholder();
            out.failures.push_back(std::move(*tried.failure));
        } else {
            out.results[i] = std::move(*tried.value);
        }
    };

    if (!pool_) {
        warnIfTimeoutUnsupported(eff);
        for (u64 i = 0; i < n; ++i) {
            if (!pending[i])
                continue;
            settle(i, work(i, digests[i]));
        }
        return out;
    }

    std::vector<std::future<Tried<EvalResult>>> futures(n);
    for (u64 i = 0; i < n; ++i) {
        if (!pending[i])
            continue;
        futures[i] = pool_->submit(
            [work, i, digest = digests[i]] { return work(i, digest); });
    }
    for (u64 i = 0; i < n; ++i) {
        if (!pending[i])
            continue;
        if (eff.timeoutMs > 0 &&
            futures[i].wait_for(std::chrono::milliseconds(
                eff.timeoutMs)) == std::future_status::timeout) {
            PointFailure f;
            f.index = i;
            f.label = points[i].label;
            f.workload = points[i].workload;
            f.error = "point deadline expired";
            f.attempts = eff.maxAttempts;
            f.timedOut = true;
            out.results[i] = failedPlaceholder();
            out.failures.push_back(std::move(f));
            continue; // abandoned; ctx keeps its state alive
        }
        settle(i, futures[i].get());
    }
    return out;
}

std::string
encodeEvalResult(const EvalResult &r)
{
    // One line of JSON (the manifest format is line-oriented). Doubles
    // travel as %.17g and u64 counters as exact integers so a decoded
    // result re-renders byte-identically through the stats export.
    std::string out = "{\"scalars\":{";
    out += "\"preciseMpki\":" + numJson(r.preciseMpki);
    out += ",\"mpki\":" + numJson(r.mpki);
    out += ",\"normMpki\":" + numJson(r.normMpki);
    out += ",\"preciseFetches\":" + numJson(r.preciseFetches);
    out += ",\"fetches\":" + numJson(r.fetches);
    out += ",\"normFetches\":" + numJson(r.normFetches);
    out += ",\"outputError\":" + numJson(r.outputError);
    out += ",\"coverage\":" + numJson(r.coverage);
    out += ",\"instrVariation\":" + numJson(r.instrVariation);
    out += ",\"instructions\":" + numJson(r.instructions);
    out += "},\"stats\":[";
    bool first = true;
    for (const SnapEntry &e : r.stats.entries) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"path\":" + jsonQuote(e.path);
        out += ",\"type\":\"" + std::string(statTypeName(e.type)) + "\"";
        if (!e.desc.empty())
            out += ",\"desc\":" + jsonQuote(e.desc);
        if (!e.unit.empty())
            out += ",\"unit\":" + jsonQuote(e.unit);
        switch (e.type) {
          case StatType::Counter:
            out += ",\"count\":" + std::to_string(e.count);
            break;
          case StatType::Gauge:
            out += ",\"gauge\":" + numJson(e.gauge);
            break;
          case StatType::Histogram:
            out += ",\"lo\":" + numJson(e.histLo);
            out += ",\"hi\":" + numJson(e.histHi);
            out += ",\"total\":" + std::to_string(e.histTotal);
            out += ",\"underflow\":" + std::to_string(e.histUnderflow);
            out += ",\"overflow\":" + std::to_string(e.histOverflow);
            out += ",\"buckets\":[";
            for (std::size_t b = 0; b < e.histBuckets.size(); ++b) {
                if (b > 0)
                    out += ",";
                out += std::to_string(e.histBuckets[b]);
            }
            out += "]";
            break;
        }
        out += "}";
    }
    out += "]}";
    return out;
}

EvalResult
decodeEvalResult(const JsonValue &payload)
{
    EvalResult r;
    const JsonValue &scalars = payload.at("scalars");
    r.preciseMpki = numFromJson(scalars.at("preciseMpki"));
    r.mpki = numFromJson(scalars.at("mpki"));
    r.normMpki = numFromJson(scalars.at("normMpki"));
    r.preciseFetches = numFromJson(scalars.at("preciseFetches"));
    r.fetches = numFromJson(scalars.at("fetches"));
    r.normFetches = numFromJson(scalars.at("normFetches"));
    r.outputError = numFromJson(scalars.at("outputError"));
    r.coverage = numFromJson(scalars.at("coverage"));
    r.instrVariation = numFromJson(scalars.at("instrVariation"));
    r.instructions = numFromJson(scalars.at("instructions"));
    const JsonValue &stats = payload.at("stats");
    if (!stats.isArray())
        throw std::runtime_error("eval payload: 'stats' is not an array");
    r.stats.entries.reserve(stats.items.size());
    for (const JsonValue &item : stats.items) {
        SnapEntry e;
        e.path = item.at("path").asString();
        e.type = statTypeFromName(item.at("type").asString());
        if (const JsonValue *desc = item.find("desc"))
            e.desc = desc->asString();
        if (const JsonValue *unit = item.find("unit"))
            e.unit = unit->asString();
        switch (e.type) {
          case StatType::Counter:
            e.count = item.at("count").asU64();
            break;
          case StatType::Gauge:
            e.gauge = numFromJson(item.at("gauge"));
            break;
          case StatType::Histogram: {
            e.histLo = numFromJson(item.at("lo"));
            e.histHi = numFromJson(item.at("hi"));
            e.histTotal = item.at("total").asU64();
            e.histUnderflow = item.at("underflow").asU64();
            e.histOverflow = item.at("overflow").asU64();
            const JsonValue &buckets = item.at("buckets");
            if (!buckets.isArray())
                throw std::runtime_error(
                    "eval payload: 'buckets' is not an array");
            e.histBuckets.reserve(buckets.items.size());
            for (const JsonValue &bucket : buckets.items)
                e.histBuckets.push_back(bucket.asU64());
            break;
          }
        }
        r.stats.entries.push_back(std::move(e));
    }
    return r;
}

namespace {

std::vector<NamedSnapshot>
namedSnapshots(const std::vector<SweepPoint> &points,
               const std::vector<EvalResult> &results)
{
    lva_assert(points.size() == results.size(),
               "point/result count mismatch: %zu vs %zu",
               points.size(), results.size());
    std::vector<NamedSnapshot> snaps;
    snaps.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        snaps.push_back(
            {points[i].label, points[i].workload, results[i].stats});
    return snaps;
}

/**
 * Completed points only: a failed point's placeholder snapshot would
 * export NaN gauges as real data, so failures are listed in the
 * structured "failures" section instead.
 */
std::vector<NamedSnapshot>
namedSnapshots(const std::vector<SweepPoint> &points,
               const SweepOutcome &outcome)
{
    lva_assert(points.size() == outcome.results.size(),
               "point/result count mismatch: %zu vs %zu",
               points.size(), outcome.results.size());
    std::vector<NamedSnapshot> snaps;
    snaps.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (outcome.results[i].failed)
            continue;
        snaps.push_back({points[i].label, points[i].workload,
                         outcome.results[i].stats});
    }
    return snaps;
}

} // namespace

std::string
renderSweepStats(const std::string &driver,
                 const std::vector<SweepPoint> &points,
                 const std::vector<EvalResult> &results)
{
    return renderStatsJson(driver, namedSnapshots(points, results));
}

std::string
renderSweepStats(const std::string &driver,
                 const std::vector<SweepPoint> &points,
                 const SweepOutcome &outcome)
{
    return renderStatsJson(driver, namedSnapshots(points, outcome),
                           outcome.failures);
}

std::string
exportSweepStats(const std::string &driver,
                 const std::vector<SweepPoint> &points,
                 const std::vector<EvalResult> &results)
{
    return writeStatsJson(driver, namedSnapshots(points, results));
}

std::string
exportSweepStats(const std::string &driver,
                 const std::vector<SweepPoint> &points,
                 const SweepOutcome &outcome)
{
    return writeStatsJson(driver, namedSnapshots(points, outcome),
                          outcome.failures);
}

} // namespace lva
