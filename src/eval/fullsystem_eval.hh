/**
 * @file
 * Full-system sweep driver (the paper's phase-2 methodology): records
 * a trace of each workload's precise execution and replays it through
 * the Table II timing model, precise versus LVA at several
 * approximation degrees.
 */

#ifndef LVA_EVAL_FULLSYSTEM_EVAL_HH
#define LVA_EVAL_FULLSYSTEM_EVAL_HH

#include <string>
#include <vector>

#include "sim/full_system.hh"

namespace lva {

/** Results of one workload's full-system sweep. */
struct FsSweep
{
    std::string workload;
    FullSystemResult baseline;           ///< precise replay
    std::vector<u32> degrees;
    std::vector<FullSystemResult> lva;   ///< one per degree

    /** Speedup of the degree-i LVA system over precise. */
    double
    speedup(std::size_t i) const
    {
        return baseline.cycles / lva[i].cycles - 1.0;
    }

    /** Memory-hierarchy dynamic-energy savings of the degree-i run. */
    double
    energySavings(std::size_t i) const
    {
        return 1.0 - lva[i].energy.total() / baseline.energy.total();
    }

    /** Normalized L1-miss energy-delay product (paper Figure 11). */
    double
    normMissEdp(std::size_t i) const
    {
        return lva[i].missEdp() / baseline.missEdp();
    }

    /** Reduction in average L1 miss latency. */
    double
    missLatencyReduction(std::size_t i) const
    {
        return 1.0 -
               lva[i].avgL1MissLatency / baseline.avgL1MissLatency;
    }

    /** Reduction in interconnect traffic (flit-hops). */
    double
    trafficReduction(std::size_t i) const
    {
        return 1.0 - static_cast<double>(lva[i].flitHops) /
                         static_cast<double>(baseline.flitHops);
    }
};

/**
 * Record @p workload's trace (precise run, given seed/scale) and
 * replay it under the baseline and under LVA at each degree.
 */
FsSweep runFullSystemSweep(const std::string &workload,
                           const std::vector<u32> &degrees,
                           u64 seed = 1, double scale = 0.0);

/** Scale from LVA_SCALE (1.0 default), as in the phase-1 evaluator. */
double fsScaleFromEnv();

} // namespace lva

#endif // LVA_EVAL_FULLSYSTEM_EVAL_HH
