/**
 * @file
 * Full-system sweep driver (the paper's phase-2 methodology): records
 * a trace of each workload's precise execution and replays it through
 * the Table II timing model, precise versus LVA at several
 * approximation degrees.
 */

#ifndef LVA_EVAL_FULLSYSTEM_EVAL_HH
#define LVA_EVAL_FULLSYSTEM_EVAL_HH

#include <string>
#include <vector>

#include "eval/stat_report.hh"
#include "sim/full_system.hh"

namespace lva {

/**
 * Results of one workload's full-system sweep.
 *
 * The figure helpers below read the registry snapshots rather than
 * the convenience fields of FullSystemResult, so every published
 * number flows from the same "system.*"/"energy.*" paths that the
 * JSON export serializes (see docs/metrics.md).
 */
struct FsSweep
{
    std::string workload;
    FullSystemResult baseline;           ///< precise replay
    std::vector<u32> degrees;
    std::vector<FullSystemResult> lva;   ///< one per degree

    /** Speedup of the degree-i LVA system over precise. */
    double
    speedup(std::size_t i) const
    {
        return baseline.stats.valueOf("system.cycles") /
                   lva[i].stats.valueOf("system.cycles") -
               1.0;
    }

    /** Memory-hierarchy dynamic-energy savings of the degree-i run. */
    double
    energySavings(std::size_t i) const
    {
        return 1.0 - lva[i].stats.valueOf("energy.total") /
                         baseline.stats.valueOf("energy.total");
    }

    /** Normalized L1-miss energy-delay product (paper Figure 11). */
    double
    normMissEdp(std::size_t i) const
    {
        return snapMissEdp(lva[i].stats) / snapMissEdp(baseline.stats);
    }

    /** Reduction in average L1 miss latency. */
    double
    missLatencyReduction(std::size_t i) const
    {
        return 1.0 - lva[i].stats.valueOf("system.avgL1MissLatency") /
                         baseline.stats.valueOf(
                             "system.avgL1MissLatency");
    }

    /** Reduction in interconnect traffic (flit-hops). */
    double
    trafficReduction(std::size_t i) const
    {
        return 1.0 -
               snapFlitHops(lva[i].stats) /
                   snapFlitHops(baseline.stats);
    }

    /** L1-miss EDP from a snapshot (mirrors missEdp()). */
    static double
    snapMissEdp(const StatSnapshot &s)
    {
        const double servicing = s.valueOf("energy.l2") +
                                 s.valueOf("energy.dram") +
                                 s.valueOf("energy.noc");
        return servicing * s.valueOf("system.avgL1MissLatency");
    }

    /** Total flit-hops (both mesh planes) from a snapshot. */
    static double
    snapFlitHops(const StatSnapshot &s)
    {
        return s.valueOf("energy.events.nocFlitHops") +
               s.valueOf("energy.events.nocFlitHopsSlow");
    }
};

struct MachineConfig;

/**
 * Record @p workload's trace (precise run, given seed/scale) and
 * replay it under the baseline and under LVA at each degree.
 * @p machine selects the CMP topology (thread count, cache/NoC
 * geometry, per-core approximators); null = the built-in Table II
 * machine, identical to the historical FullSystemConfig defaults.
 */
FsSweep runFullSystemSweep(const std::string &workload,
                           const std::vector<u32> &degrees,
                           u64 seed = 1, double scale = 0.0,
                           const MachineConfig *machine = nullptr);

/** Scale from LVA_SCALE (1.0 default), as in the phase-1 evaluator. */
double fsScaleFromEnv();

/**
 * Flatten full-system sweeps into labelled snapshots for the JSON
 * export: "<workload>/baseline" then "<workload>/lva-d<degree>" per
 * sweep, in sweep order.
 */
std::vector<NamedSnapshot>
fsSweepSnapshots(const std::vector<FsSweep> &sweeps);

} // namespace lva

#endif // LVA_EVAL_FULLSYSTEM_EVAL_HH
