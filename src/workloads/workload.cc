#include "workloads/workload.hh"

#include "util/logging.hh"
#include "workloads/blackscholes.hh"
#include "workloads/bodytrack.hh"
#include "workloads/canneal.hh"
#include "workloads/ferret.hh"
#include "workloads/fluidanimate.hh"
#include "workloads/swaptions.hh"
#include "workloads/x264.hh"

namespace lva {

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "blackscholes")
        return std::make_unique<BlackscholesWorkload>(params);
    if (name == "bodytrack")
        return std::make_unique<BodytrackWorkload>(params);
    if (name == "canneal")
        return std::make_unique<CannealWorkload>(params);
    if (name == "ferret")
        return std::make_unique<FerretWorkload>(params);
    if (name == "fluidanimate")
        return std::make_unique<FluidanimateWorkload>(params);
    if (name == "swaptions")
        return std::make_unique<SwaptionsWorkload>(params);
    if (name == "x264")
        return std::make_unique<X264Workload>(params);
    lva_fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "bodytrack", "canneal",   "ferret",
        "fluidanimate", "swaptions", "x264"};
    return names;
}

} // namespace lva
