#include "workloads/workload.hh"

#include "util/logging.hh"
#include "workloads/blackscholes.hh"
#include "workloads/bodytrack.hh"
#include "workloads/canneal.hh"
#include "workloads/ferret.hh"
#include "workloads/fluidanimate.hh"
#include "workloads/swaptions.hh"
#include "workloads/x264.hh"

namespace lva {

namespace {

template <typename W>
std::unique_ptr<Workload>
make(const WorkloadParams &params)
{
    return std::make_unique<W>(params);
}

} // namespace

WorkloadFactory
findWorkloadFactory(const std::string &name)
{
    if (name == "blackscholes")
        return make<BlackscholesWorkload>;
    if (name == "bodytrack")
        return make<BodytrackWorkload>;
    if (name == "canneal")
        return make<CannealWorkload>;
    if (name == "ferret")
        return make<FerretWorkload>;
    if (name == "fluidanimate")
        return make<FluidanimateWorkload>;
    if (name == "swaptions")
        return make<SwaptionsWorkload>;
    if (name == "x264")
        return make<X264Workload>;
    lva_fatal("unknown workload '%s'", name.c_str());
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    return findWorkloadFactory(name)(params);
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "bodytrack", "canneal",   "ferret",
        "fluidanimate", "swaptions", "x264"};
    return names;
}

} // namespace lva
