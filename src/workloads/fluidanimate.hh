/**
 * @file
 * Mini-fluidanimate: smoothed-particle-hydrodynamics fluid step in 2D.
 * Particles are binned into grid cells; density and pressure-force
 * computations iterate neighbouring cells. Particle position and
 * density loads inside those two hot loops are annotated approximable
 * (paper section IV); binning and integration read the same arrays
 * precisely.
 *
 * Output error metric: the percentage of particles that end in a
 * different grid cell than in the precise execution.
 */

#ifndef LVA_WORKLOADS_FLUIDANIMATE_HH
#define LVA_WORKLOADS_FLUIDANIMATE_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class FluidanimateWorkload : public Workload
{
  public:
    explicit FluidanimateWorkload(const WorkloadParams &params);

    const char *name() const override { return "fluidanimate"; }
    ValueKind approxKind() const override { return ValueKind::Float32; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    /** Final cell index per particle, keyed by original particle id
     *  (the arrays are kept in cell-major order internally). */
    std::vector<u32> finalCells() const;

  private:
    u32 cellIndexOf(float x, float y) const;

    /**
     * Re-sort the particle arrays into cell-major order and rebuild
     * the cell lists, as PARSEC's fluidanimate keeps particles in
     * per-cell storage. This is what gives the benchmark its locality
     * (Table I: MPKI 1.23 despite the neighbour gathers).
     */
    void reorderAndBin(MemoryBackend &mem);

    u64 numParticles_ = 0;
    u32 steps_ = 0;
    u32 cellsPerSide_ = 0;
    float domain_ = 0.0f;
    float h_ = 0.0f; ///< smoothing radius == cell side

    Region<float> posX_;    ///< approximable in density/force loops
    Region<float> posY_;    ///< approximable in density/force loops
    Region<float> velX_;    ///< precise
    Region<float> velY_;    ///< precise
    Region<float> density_; ///< approximable in the force loop
    Region<i32> cellIdx_;   ///< particle ids flattened by cell (precise)
    Region<i32> cellCount_; ///< particles per cell (precise)

    std::vector<u32> origId_; ///< original id of each array slot

    LoadSiteId siteBinX_, siteBinY_, siteCellCount_, siteCellIdx_,
        siteDenX_, siteDenY_, siteForX_, siteForY_, siteForDen_,
        siteVelLoad_, siteStorePos_, siteStoreVel_, siteStoreDen_;

    static constexpr u32 maxPerCell = 16;
};

} // namespace lva

#endif // LVA_WORKLOADS_FLUIDANIMATE_HH
