#include "workloads/blackscholes.hh"

#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

/** Cumulative normal distribution (Abramowitz & Stegun 26.2.17), as in
 *  the PARSEC kernel. */
float
cndf(float x)
{
    const bool negative = x < 0.0f;
    const float ax = std::fabs(x);
    const float k = 1.0f / (1.0f + 0.2316419f * ax);
    const float pdf =
        0.39894228040143267f * std::exp(-0.5f * ax * ax);
    const float poly =
        k * (0.319381530f +
             k * (-0.356563782f +
                  k * (1.781477937f +
                       k * (-1.821255978f + k * 1.330274429f))));
    const float cnd = 1.0f - pdf * poly;
    return negative ? 1.0f - cnd : cnd;
}

/** Non-memory instructions per option evaluation (CNDF + arithmetic),
 *  calibrated so precise MPKI lands near Table I. */
constexpr u64 instrPerOption = 1600;

} // namespace

BlackscholesWorkload::BlackscholesWorkload(const WorkloadParams &params)
    : Workload(params)
{
    siteSpot_ = declareSite("spot", true);
    siteStrike_ = declareSite("strike", true);
    siteRate_ = declareSite("rate", true);
    siteVol_ = declareSite("volatility", true);
    siteTime_ = declareSite("otime", true);
    siteType_ = declareSite("otype", false);
    siteStore_ = declareSite("price_out", false);
}

float
BlackscholesWorkload::price(float spot, float strike, float rate,
                            float vol, float time, bool is_call)
{
    // Guard against approximation-induced degenerate inputs: the real
    // kernel would produce NaN; clamping mimics a tolerant consumer.
    if (spot <= 0.0f)
        spot = 0.01f;
    if (strike <= 0.0f)
        strike = 0.01f;
    if (vol <= 1e-4f)
        vol = 1e-4f;
    if (time <= 1e-4f)
        time = 1e-4f;

    const float sqrt_t = std::sqrt(time);
    const float d1 =
        (std::log(spot / strike) + (rate + 0.5f * vol * vol) * time) /
        (vol * sqrt_t);
    const float d2 = d1 - vol * sqrt_t;
    const float discounted = strike * std::exp(-rate * time);
    if (is_call)
        return spot * cndf(d1) - discounted * cndf(d2);
    return discounted * cndf(-d2) - spot * cndf(-d1);
}

void
BlackscholesWorkload::generate()
{
    numOptions_ = params_.scaled(8192, 64);
    passes_ = 6;

    spot_.init(arena_, numOptions_, true);
    strike_.init(arena_, numOptions_, true);
    rate_.init(arena_, numOptions_, true);
    vol_.init(arena_, numOptions_, true);
    time_.init(arena_, numOptions_, true);
    type_.init(arena_, numOptions_, false);
    out_.init(arena_, numOptions_, false);

    Rng rng(mix64(params_.seed) ^ 0xb1ac5UL);

    // Redundant input pools, mirroring the simlarge distribution the
    // paper describes: the spot price takes 4 values, two of which
    // cover over 98% of the portfolio.
    const float spot_pool[4] = {42.00f, 57.50f, 100.00f, 17.50f};
    const double spot_cdf[4] = {0.60, 0.98, 0.995, 1.0};
    const float strike_pool[6] = {40.0f, 45.0f, 55.0f, 60.0f, 100.0f,
                                  20.0f};
    const float rate_pool[2] = {0.0275f, 0.1000f};
    const float vol_pool[4] = {0.10f, 0.20f, 0.30f, 0.40f};
    const float time_pool[4] = {0.25f, 0.50f, 0.75f, 1.00f};

    for (u64 i = 0; i < numOptions_; ++i) {
        const double u = rng.uniform();
        u32 s = 0;
        while (s < 3 && u > spot_cdf[s])
            ++s;
        spot_.raw(i) = spot_pool[s];
        strike_.raw(i) = strike_pool[rng.below(6)];
        rate_.raw(i) = rate_pool[rng.below(2)];
        vol_.raw(i) = vol_pool[rng.below(4)];
        time_.raw(i) = time_pool[rng.below(4)];
        type_.raw(i) = rng.chance(0.5) ? 1 : 0;
    }
}

void
BlackscholesWorkload::run(MemoryBackend &mem)
{
    lva_assert(numOptions_ > 0, "generate() must run first");

    for (u32 pass = 0; pass < passes_; ++pass) {
        for (u64 i = 0; i < numOptions_; ++i) {
            const ThreadId tid = threadOf(i);
            // One batched trip through the hierarchy per option: the
            // six per-option accesses are independent (no address
            // depends on another's result), and loadMany processes
            // them in array order, so the access stream — and every
            // exported byte — is identical to six scalar load()
            // calls.
            const LoadRequest reqs[6] = {
                spot_.loadRequest(tid, siteSpot_, i),
                strike_.loadRequest(tid, siteStrike_, i),
                rate_.loadRequest(tid, siteRate_, i),
                vol_.loadRequest(tid, siteVol_, i),
                time_.loadRequest(tid, siteTime_, i),
                type_.preciseRequest(tid, siteType_, i),
            };
            Value got[6];
            mem.loadMany(reqs, got, 6);
            const float spot = spot_.decode(got[0]);
            const float strike = strike_.decode(got[1]);
            const float rate = rate_.decode(got[2]);
            const float vol = vol_.decode(got[3]);
            const float otime = time_.decode(got[4]);
            // loadPrecise semantics: the consumed value is the host
            // (precise) one regardless of what the backend returned.
            const bool is_call = type_.raw(i) != 0;

            const float p =
                price(spot, strike, rate, vol, otime, is_call);
            out_.store(mem, tid, siteStore_, i, p);
            mem.tickInstructions(tid, instrPerOption);
        }
    }
    mem.finish();

    prices_ = out_.rawAll();
}

double
BlackscholesWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const BlackscholesWorkload &>(golden);
    lva_assert(ref.prices_.size() == prices_.size(),
               "golden run has different option count");
    lva_assert(!prices_.empty(), "run() must complete first");

    // Percentage of prices with relative error above 1%.
    u64 bad = 0;
    for (std::size_t i = 0; i < prices_.size(); ++i) {
        if (relativeError(prices_[i], ref.prices_[i]) > 0.01)
            ++bad;
    }
    return static_cast<double>(bad) / static_cast<double>(prices_.size());
}

} // namespace lva
