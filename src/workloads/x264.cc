#include "workloads/x264.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

constexpr u64 instrPerSadPoint = 6;

/** Per-block share of the rest of the encoder pipeline (transforms,
 *  entropy coding, deblocking), which the mini-kernel does not model
 *  but whose instructions dilute MPKI in the real x264. */
constexpr u64 instrPerBlock = 58000;

i32
clampPixel(i64 v)
{
    return static_cast<i32>(std::clamp<i64>(v, 0, 255));
}

} // namespace

X264Workload::X264Workload(const WorkloadParams &params)
    : Workload(params)
{
    siteCur_ = declareSite("cur_pixel", false);
    siteRefCenter_ = declareSite("ref_center", true);
    // Distinct static loads for each diamond-search direction and each
    // refinement direction, as the unrolled x264 asm kernels have.
    static const char *diamond_names[4] = {
        "ref_diamond_n", "ref_diamond_s", "ref_diamond_e",
        "ref_diamond_w"};
    static const char *refine_names[4] = {
        "ref_refine_ne", "ref_refine_nw", "ref_refine_se",
        "ref_refine_sw"};
    for (u32 i = 0; i < 4; ++i)
        siteRefDiamond_[i] = declareSite(diamond_names[i], true);
    for (u32 i = 0; i < 4; ++i)
        siteRefRefine_[i] = declareSite(refine_names[i], true);
    siteRefResidual_ = declareSite("ref_residual", true);
    siteReconStore_ = declareSite("recon_store", false);
}

void
X264Workload::renderFrame(u32 f, Region<i32> &out) const
{
    // Textured background panning right/down plus two moving objects;
    // deterministic in (seed, frame).
    const u64 texture_seed = mix64(params_.seed) ^ 0xc0dec0deUL;
    const i32 pan_x = static_cast<i32>(2 * f);
    const i32 pan_y = static_cast<i32>(f);

    const i32 obj1_x = static_cast<i32>((17 + 5 * f) % width_);
    const i32 obj1_y = static_cast<i32>((29 + 3 * f) % height_);
    const i32 obj2_x = static_cast<i32>((97 + 7 * f) % width_);
    const i32 obj2_y = static_cast<i32>((61 + 2 * f) % height_);

    for (u32 y = 0; y < height_; ++y) {
        for (u32 x = 0; x < width_; ++x) {
            const i32 tx = static_cast<i32>(x) + pan_x;
            const i32 ty = static_cast<i32>(y) + pan_y;
            // Smooth band texture with a hash-derived dither.
            i32 pix = 96 +
                      static_cast<i32>(48.0 *
                                       std::sin(tx * 0.12) *
                                       std::cos(ty * 0.09));
            pix += static_cast<i32>(
                mix64(texture_seed ^ (static_cast<u64>(tx / 4) << 20) ^
                      static_cast<u64>(ty / 4)) %
                9) - 4;

            auto in_obj = [&](i32 ox, i32 oy, i32 half) {
                return std::abs(static_cast<i32>(x) - ox) < half &&
                       std::abs(static_cast<i32>(y) - oy) < half;
            };
            if (in_obj(obj1_x, obj1_y, 12))
                pix = 220;
            if (in_obj(obj2_x, obj2_y, 9))
                pix = 30;

            out.raw(static_cast<u64>(y) * width_ + x) = clampPixel(pix);
        }
    }
}

i64
X264Workload::sad(MemoryBackend &mem, ThreadId tid, const i32 *cur_block,
                  i32 bx, i32 by, i32 dx, i32 dy, LoadSiteId site)
{
    i64 total = 0;
    u32 n = 0;
    for (u32 oy = 0; oy < blockSize; oy += sadPoints) {
        for (u32 ox = 0; ox < blockSize; ox += sadPoints, ++n) {
            const i32 rx = bx + static_cast<i32>(ox) + dx;
            const i32 ry = by + static_cast<i32>(oy) + dy;
            i32 ref_pix = 128;
            if (rx >= 0 && ry >= 0 && rx < static_cast<i32>(width_) &&
                ry < static_cast<i32>(height_)) {
                ref_pix = clampPixel(ref_.load(
                    mem, tid, site,
                    static_cast<u64>(ry) * width_ +
                        static_cast<u64>(rx)));
            }
            const i32 cur_pix =
                cur_block[(oy / sadPoints) * (blockSize / sadPoints) +
                          ox / sadPoints];
            total += std::abs(cur_pix - ref_pix);
            mem.tickInstructions(tid, instrPerSadPoint);
        }
    }
    return total;
}

void
X264Workload::generate()
{
    width_ = static_cast<u32>(params_.scaled(320, 64));
    height_ = static_cast<u32>(params_.scaled(240, 48));
    // Keep dimensions multiples of the block size.
    width_ -= width_ % blockSize;
    height_ -= height_ % blockSize;
    frames_ = 12;

    cur_.init(arena_, static_cast<u64>(width_) * height_, false);
    ref_.init(arena_, static_cast<u64>(width_) * height_, true);
}

void
X264Workload::run(MemoryBackend &mem)
{
    lva_assert(width_ > 0, "generate() must run first");

    double sq_err_sum = 0.0;
    u64 bits_sum = 0;
    u64 pixels = 0;

    renderFrame(0, ref_);

    for (u32 f = 1; f < frames_; ++f) {
        renderFrame(f, cur_);

        for (u32 by = 0; by + blockSize <= height_; by += blockSize) {
            for (u32 bx = 0; bx + blockSize <= width_; bx += blockSize) {
                const u32 block_id =
                    (by / blockSize) * (width_ / blockSize) +
                    bx / blockSize;
                const ThreadId tid = threadOf(block_id);

                // Load the subsampled current block (precise pixels).
                i32 cur_block[(blockSize / sadPoints) *
                              (blockSize / sadPoints)];
                u32 n = 0;
                for (u32 oy = 0; oy < blockSize; oy += sadPoints) {
                    for (u32 ox = 0; ox < blockSize;
                         ox += sadPoints, ++n) {
                        cur_block[n] = clampPixel(cur_.loadPrecise(
                            mem, tid, siteCur_,
                            static_cast<u64>(by + oy) * width_ +
                                (bx + ox)));
                    }
                }

                // Diamond search for the best motion vector.
                i32 best_dx = 0;
                i32 best_dy = 0;
                i64 best_sad =
                    sad(mem, tid, cur_block, static_cast<i32>(bx),
                        static_cast<i32>(by), 0, 0, siteRefCenter_);

                static const i32 diamond[4][2] = {
                    {0, -2}, {0, 2}, {2, 0}, {-2, 0}};
                for (i32 round = 0; round < searchRange / 2; ++round) {
                    i32 improved = -1;
                    for (u32 d = 0; d < 4; ++d) {
                        const i32 dx = best_dx + diamond[d][0];
                        const i32 dy = best_dy + diamond[d][1];
                        if (std::abs(dx) > searchRange ||
                            std::abs(dy) > searchRange)
                            continue;
                        const i64 s = sad(mem, tid, cur_block,
                                          static_cast<i32>(bx),
                                          static_cast<i32>(by), dx, dy,
                                          siteRefDiamond_[d]);
                        if (s < best_sad) {
                            best_sad = s;
                            improved = static_cast<i32>(d);
                        }
                    }
                    if (improved < 0)
                        break;
                    best_dx += diamond[improved][0];
                    best_dy += diamond[improved][1];
                }
                static const i32 refine[4][2] = {
                    {1, -1}, {-1, -1}, {1, 1}, {-1, 1}};
                for (u32 d = 0; d < 4; ++d) {
                    const i32 dx = best_dx + refine[d][0];
                    const i32 dy = best_dy + refine[d][1];
                    if (std::abs(dx) > searchRange ||
                        std::abs(dy) > searchRange)
                        continue;
                    const i64 s = sad(mem, tid, cur_block,
                                      static_cast<i32>(bx),
                                      static_cast<i32>(by), dx, dy,
                                      siteRefRefine_[d]);
                    if (s < best_sad) {
                        best_sad = s;
                        best_dx = dx;
                        best_dy = dy;
                    }
                }

                // Residual coding on a subsampled grid: quantize,
                // count bits, reconstruct into the reference frame.
                for (u32 oy = 0; oy < blockSize; oy += 2) {
                    for (u32 ox = 0; ox < blockSize; ox += 2) {
                        const u64 cur_idx =
                            static_cast<u64>(by + oy) * width_ +
                            (bx + ox);
                        const i32 cur_pix = clampPixel(
                            cur_.loadPrecise(mem, tid, siteCur_,
                                             cur_idx));
                        const i32 rx =
                            static_cast<i32>(bx + ox) + best_dx;
                        const i32 ry =
                            static_cast<i32>(by + oy) + best_dy;
                        // Residual coding is NOT annotated: the paper
                        // approximates pixels only inside motion
                        // estimation, so the prediction source here is
                        // a precise load.
                        i32 pred = 128;
                        if (rx >= 0 && ry >= 0 &&
                            rx < static_cast<i32>(width_) &&
                            ry < static_cast<i32>(height_)) {
                            pred = clampPixel(ref_.loadPrecise(
                                mem, tid, siteRefResidual_,
                                static_cast<u64>(ry) * width_ +
                                    static_cast<u64>(rx)));
                        }
                        const i32 residual = cur_pix - pred;
                        const i32 q =
                            (residual >= 0 ? residual + quant / 2
                                           : residual - quant / 2) /
                            quant;
                        // Bit-rate proxy: exp-Golomb-ish cost.
                        if (q != 0)
                            bits_sum += 1 + 2 * static_cast<u64>(
                                std::ceil(std::log2(
                                    std::abs(q) + 1.0)));
                        else
                            bits_sum += 1;

                        const i32 recon = clampPixel(pred + q * quant);
                        const double err =
                            static_cast<double>(cur_pix - recon);
                        sq_err_sum += err * err;
                        ++pixels;
                    }
                }
                mem.tickInstructions(tid, instrPerBlock);
            }
        }

        // The reconstructed current frame becomes the next reference;
        // for traffic purposes, write the frame to the ref region.
        for (u32 y = 0; y < height_; ++y) {
            for (u32 x = 0; x < width_; x += 16) {
                const ThreadId tid = threadOf(y);
                ref_.store(mem, tid, siteReconStore_,
                           static_cast<u64>(y) * width_ + x,
                           cur_.raw(static_cast<u64>(y) * width_ + x));
            }
            // Host copy of the full row (modelled at block granularity
            // above: one store per 16 pixels == one per 64B block).
            for (u32 x = 0; x < width_; ++x)
                ref_.raw(static_cast<u64>(y) * width_ + x) =
                    cur_.raw(static_cast<u64>(y) * width_ + x);
        }
    }
    mem.finish();

    const double mse =
        sq_err_sum / static_cast<double>(std::max<u64>(pixels, 1));
    psnr_ = 10.0 * std::log10(255.0 * 255.0 / std::max(mse, 1e-6));
    bits_ = static_cast<double>(bits_sum);
}

double
X264Workload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const X264Workload &>(golden);
    lva_assert(ref.psnr_ > 0.0, "golden run() must complete first");

    // Equal weighting of PSNR and bit-rate deviations (section IV).
    const double psnr_err = relativeError(psnr_, ref.psnr_);
    const double bits_err = relativeError(bits_, ref.bits_);
    return 0.5 * psnr_err + 0.5 * bits_err;
}

} // namespace lva
