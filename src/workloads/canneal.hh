/**
 * @file
 * Mini-canneal: simulated-annealing placement of netlist elements on a
 * 2D grid. Swap candidates are evaluated by a routing-cost function
 * over each element's fan-in/fan-out neighbours; only the integer
 * <x, y> coordinate loads inside the cost function are annotated
 * approximable (paper section IV). Neighbour index lists are pointers
 * and stay precise. Random placement over a large element array gives
 * the highest MPKI of the suite (Table I: 12.50).
 *
 * Output error metric: relative difference between the final routing
 * cost of the approximate and precise executions.
 */

#ifndef LVA_WORKLOADS_CANNEAL_HH
#define LVA_WORKLOADS_CANNEAL_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class CannealWorkload : public Workload
{
  public:
    explicit CannealWorkload(const WorkloadParams &params);

    const char *name() const override { return "canneal"; }
    ValueKind approxKind() const override { return ValueKind::Int64; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    /** Final routing cost, recomputed precisely from host data. */
    double finalCost() const { return finalCost_; }

    u64 swapsAccepted() const { return accepted_; }

  private:
    /** Precise routing cost of element @p e at its current position. */
    double hostCostOf(u64 e) const;

    /** Modelled half-perimeter cost of element @p e if placed at
     *  (x, y); issues annotated coordinate loads. */
    i64 modelledCost(MemoryBackend &mem, ThreadId tid, u64 e, i32 x,
                     i32 y);

    u64 numElements_ = 0;
    u64 steps_ = 0;
    u32 fanout_ = 0;
    i32 gridDim_ = 0;

    Region<i32> posX_; ///< approximable in the cost function
    Region<i32> posY_; ///< approximable in the cost function
    Region<i32> nets_; ///< flattened neighbour indices (precise)

    double finalCost_ = 0.0;
    u64 accepted_ = 0;

    LoadSiteId siteSelfX_, siteSelfY_, siteNet_, siteNbrX_, siteNbrY_,
        siteStoreX_, siteStoreY_;
};

} // namespace lva

#endif // LVA_WORKLOADS_CANNEAL_HH
