#include "workloads/swaptions.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

/** Non-memory instructions per Monte-Carlo step (path arithmetic). */
constexpr u64 instrPerStep = 150;

/** Extra per-trial bookkeeping instructions. */
constexpr u64 instrPerTrial = 40;

} // namespace

SwaptionsWorkload::SwaptionsWorkload(const WorkloadParams &params)
    : Workload(params)
{
    siteForward_ = declareSite("forward_curve", true);
    siteVol_ = declareSite("vol_curve", true);
    siteStrike_ = declareSite("strike", true);
    siteMaturity_ = declareSite("maturity", false);
}

void
SwaptionsWorkload::generate()
{
    numSwaptions_ = params_.scaled(16, 2);
    trials_ = params_.scaled(1200, 16);
    tenors_ = 11;

    forward_.init(arena_, tenors_, true);
    volCurve_.init(arena_, tenors_, true);
    strike_.init(arena_, numSwaptions_, true);
    maturity_.init(arena_, numSwaptions_, false);

    Rng rng(mix64(params_.seed) ^ 0x5a971055UL);

    // Gently upward-sloping forward curve with redundancy (quantized to
    // basis points), like real market snapshots.
    for (u32 k = 0; k < tenors_; ++k) {
        const double base = 0.02 + 0.002 * k;
        forward_.raw(k) =
            std::round((base + rng.uniform(-0.0005, 0.0005)) * 1e4) / 1e4;
        volCurve_.raw(k) =
            std::round((0.10 + 0.01 * k + rng.uniform(-0.005, 0.005)) *
                       1e3) / 1e3;
    }
    for (u64 s = 0; s < numSwaptions_; ++s) {
        strike_.raw(s) = std::round(rng.uniform(0.02, 0.05) * 1e4) / 1e4;
        maturity_.raw(s) = static_cast<i32>(rng.range(4, tenors_ - 1));
    }
}

void
SwaptionsWorkload::run(MemoryBackend &mem)
{
    lva_assert(numSwaptions_ > 0, "generate() must run first");
    prices_.assign(numSwaptions_, 0.0);

    constexpr double dt = 0.5;       // semi-annual steps
    constexpr double mean_rev = 0.1; // mean-reversion speed

    for (u64 s = 0; s < numSwaptions_; ++s) {
        const ThreadId tid = threadOf(s);
        // Dedicated path generator per swaption: identical shocks in
        // precise and approximate runs.
        Rng paths(mix64(params_.seed * 7919 + s) ^ 0x9a7500f1UL);

        const i32 steps = maturity_.loadPrecise(mem, tid, siteMaturity_, s);
        double payoff_sum = 0.0;

        for (u64 t = 0; t < trials_; ++t) {
            const double k =
                strike_.load(mem, tid, siteStrike_, s);
            double rate = forward_.load(mem, tid, siteForward_, 0);
            double discount = 1.0;

            for (i32 step = 1; step <= steps; ++step) {
                const double fwd = forward_.load(
                    mem, tid, siteForward_,
                    static_cast<std::size_t>(step));
                const double vol = volCurve_.load(
                    mem, tid, siteVol_,
                    static_cast<std::size_t>(step));
                const double shock =
                    vol * std::sqrt(dt) * paths.gaussian();
                rate += mean_rev * (fwd - rate) * dt + shock * rate;
                rate = std::max(rate, 1e-5);
                discount *= std::exp(-rate * dt);
                mem.tickInstructions(tid, instrPerStep);
            }

            // Payer swaption payoff on the terminal swap rate.
            const double swap_rate = rate;
            payoff_sum += discount * std::max(swap_rate - k, 0.0);
            mem.tickInstructions(tid, instrPerTrial);
        }
        prices_[s] = payoff_sum / static_cast<double>(trials_);
    }
    mem.finish();
}

double
SwaptionsWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const SwaptionsWorkload &>(golden);
    lva_assert(ref.prices_.size() == prices_.size(),
               "golden run has different swaption count");
    lva_assert(!prices_.empty(), "run() must complete first");

    // Mean relative price error, all swaptions weighted equally.
    double sum = 0.0;
    for (std::size_t i = 0; i < prices_.size(); ++i) {
        const double err = relativeError(prices_[i], ref.prices_[i]);
        sum += std::min(err, 1.0);
    }
    return sum / static_cast<double>(prices_.size());
}

} // namespace lva
