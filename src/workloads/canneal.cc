#include "workloads/canneal.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace lva {

namespace {

/** Annealing schedule: multiplicative cooling applied per batch. */
constexpr double initialTemp = 800.0;
constexpr double coolingRate = 0.95;
constexpr u64 stepsPerBatch = 1024;

/** Non-memory instructions per swap evaluation (cost arithmetic,
 *  accept test, temperature bookkeeping). */
constexpr u64 instrPerSwap = 1800;

} // namespace

CannealWorkload::CannealWorkload(const WorkloadParams &params)
    : Workload(params)
{
    siteSelfX_ = declareSite("self_x", true);
    siteSelfY_ = declareSite("self_y", true);
    siteNet_ = declareSite("net_index", false);
    siteNbrX_ = declareSite("neighbor_x", true);
    siteNbrY_ = declareSite("neighbor_y", true);
    siteStoreX_ = declareSite("swap_store_x", false);
    siteStoreY_ = declareSite("swap_store_y", false);
}

void
CannealWorkload::generate()
{
    numElements_ = params_.scaled(65536, 256);
    steps_ = params_.scaled(40000, 512);
    fanout_ = 5;
    gridDim_ = static_cast<i32>(
        std::ceil(std::sqrt(static_cast<double>(numElements_))));

    posX_.init(arena_, numElements_, true);
    posY_.init(arena_, numElements_, true);
    nets_.init(arena_, numElements_ * fanout_, false);

    Rng rng(mix64(params_.seed) ^ 0xca22ea1UL);

    for (u64 e = 0; e < numElements_; ++e) {
        posX_.raw(e) = static_cast<i32>(rng.below(gridDim_));
        posY_.raw(e) = static_cast<i32>(rng.below(gridDim_));
        for (u32 f = 0; f < fanout_; ++f) {
            // Mild locality in the netlist: most nets connect to a
            // nearby element id, some are global.
            u64 nbr;
            if (rng.chance(0.7)) {
                const i64 span = 512;
                i64 cand = static_cast<i64>(e) + rng.range(-span, span);
                cand = std::max<i64>(
                    0, std::min<i64>(cand,
                                     static_cast<i64>(numElements_) - 1));
                nbr = static_cast<u64>(cand);
            } else {
                nbr = rng.below(numElements_);
            }
            nets_.raw(e * fanout_ + f) = static_cast<i32>(nbr);
        }
    }
}

i64
CannealWorkload::modelledCost(MemoryBackend &mem, ThreadId tid, u64 e,
                              i32 x, i32 y)
{
    i64 cost = 0;
    for (u32 f = 0; f < fanout_; ++f) {
        const auto nbr = static_cast<u64>(
            nets_.loadPrecise(mem, tid, siteNet_, e * fanout_ + f));
        // Pointer chase: the coordinate addresses are produced by the
        // net-index load above.
        const i32 nx = static_cast<i32>(
            posX_.load(mem, tid, siteNbrX_, nbr, /*dependent=*/true));
        const i32 ny =
            static_cast<i32>(posY_.load(mem, tid, siteNbrY_, nbr));
        cost += std::abs(static_cast<i64>(x) - nx) +
                std::abs(static_cast<i64>(y) - ny);
    }
    return cost;
}

double
CannealWorkload::hostCostOf(u64 e) const
{
    double cost = 0.0;
    for (u32 f = 0; f < fanout_; ++f) {
        const auto nbr =
            static_cast<u64>(nets_.raw(e * fanout_ + f));
        cost += std::abs(posX_.raw(e) - posX_.raw(nbr)) +
                std::abs(posY_.raw(e) - posY_.raw(nbr));
    }
    return cost;
}

void
CannealWorkload::run(MemoryBackend &mem)
{
    lva_assert(numElements_ > 0, "generate() must run first");

    // The proposal stream is independent of data values so that precise
    // and approximate runs face identical swap candidates; acceptance
    // (which reads possibly-approximated coordinates) may diverge.
    Rng proposals(mix64(params_.seed) ^ 0x900d1dea5UL);
    double temp = initialTemp;
    accepted_ = 0;

    for (u64 step = 0; step < steps_; ++step) {
        const ThreadId tid = threadOf(step);
        const u64 a = proposals.below(numElements_);
        u64 b = proposals.below(numElements_);
        if (b == a)
            b = (b + 1) % numElements_;
        const double accept_draw = proposals.uniform();

        const i32 ax =
            static_cast<i32>(posX_.load(mem, tid, siteSelfX_, a));
        const i32 ay =
            static_cast<i32>(posY_.load(mem, tid, siteSelfY_, a));
        const i32 bx =
            static_cast<i32>(posX_.load(mem, tid, siteSelfX_, b));
        const i32 by =
            static_cast<i32>(posY_.load(mem, tid, siteSelfY_, b));

        const i64 cost_now = modelledCost(mem, tid, a, ax, ay) +
                             modelledCost(mem, tid, b, bx, by);
        const i64 cost_swapped = modelledCost(mem, tid, a, bx, by) +
                                 modelledCost(mem, tid, b, ax, ay);
        const i64 delta = cost_swapped - cost_now;

        const bool accept =
            delta < 0 ||
            accept_draw <
                std::exp(-static_cast<double>(delta) / temp);
        if (accept) {
            ++accepted_;
            // Swap the two placements (host truth + modelled stores).
            posX_.store(mem, tid, siteStoreX_, a, bx);
            posY_.store(mem, tid, siteStoreY_, a, by);
            posX_.store(mem, tid, siteStoreX_, b, ax);
            posY_.store(mem, tid, siteStoreY_, b, ay);
        }
        mem.tickInstructions(tid, instrPerSwap);

        if ((step + 1) % stepsPerBatch == 0)
            temp *= coolingRate;
    }
    mem.finish();

    // Final routing cost, computed precisely over the final placement.
    finalCost_ = 0.0;
    for (u64 e = 0; e < numElements_; ++e)
        finalCost_ += hostCostOf(e);
}

double
CannealWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const CannealWorkload &>(golden);
    lva_assert(ref.finalCost_ > 0.0, "golden run() must complete first");
    return relativeError(finalCost_, ref.finalCost_);
}

} // namespace lva
