/**
 * @file
 * Mini-blackscholes: Black-Scholes closed-form option pricing over a
 * portfolio with the heavy input redundancy the paper observes (the
 * underlying price takes four values, two of which cover >98% of the
 * options). The six per-option input arrays are annotated approximable;
 * the option-type flag (control flow) is precise.
 *
 * Output error metric (paper section IV): the percentage of option
 * prices whose relative error exceeds 1%.
 */

#ifndef LVA_WORKLOADS_BLACKSCHOLES_HH
#define LVA_WORKLOADS_BLACKSCHOLES_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class BlackscholesWorkload : public Workload
{
  public:
    explicit BlackscholesWorkload(const WorkloadParams &params);

    const char *name() const override { return "blackscholes"; }
    ValueKind approxKind() const override { return ValueKind::Float32; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    const std::vector<float> &prices() const { return prices_; }

    /** Closed-form Black-Scholes price (exposed for unit tests). */
    static float price(float spot, float strike, float rate, float vol,
                       float time, bool is_call);

  private:
    u64 numOptions_ = 0;
    u32 passes_ = 0;

    Region<float> spot_;
    Region<float> strike_;
    Region<float> rate_;
    Region<float> vol_;
    Region<float> time_;
    Region<i32> type_;    ///< 0 = put, 1 = call; precise (control flow)
    Region<float> out_;

    std::vector<float> prices_; ///< final outputs (host copy)

    LoadSiteId siteSpot_, siteStrike_, siteRate_, siteVol_, siteTime_,
        siteType_, siteStore_;
};

} // namespace lva

#endif // LVA_WORKLOADS_BLACKSCHOLES_HH
