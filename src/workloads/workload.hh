/**
 * @file
 * Workload abstraction: a mini-PARSEC kernel that performs its real
 * computation while reporting every modelled memory access to a
 * MemoryBackend, which may clobber annotated load values.
 *
 * Each workload mirrors the corresponding PARSEC 3.0 application's
 * computational core, its approximate-data annotations (paper section
 * IV) and its output-error metric. Work items are partitioned over
 * four logical threads as in the paper's evaluation.
 */

#ifndef LVA_WORKLOADS_WORKLOAD_HH
#define LVA_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/memory_backend.hh"
#include "util/arena.hh"
#include "util/random.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/** Sizing and seeding knobs shared by all workloads. */
struct WorkloadParams
{
    u32 threads = 4;   ///< logical threads (paper: 4)
    u64 seed = 1;      ///< input-generation seed (5-run averaging)
    double scale = 1.0;///< working-set scale factor (tests use < 1)

    /** Scale an extent, keeping it at least @p floor. */
    u64
    scaled(u64 n, u64 floor = 1) const
    {
        const u64 s = static_cast<u64>(static_cast<double>(n) * scale);
        return s < floor ? floor : s;
    }
};

/** One static load instruction in a workload kernel. */
struct LoadSite
{
    std::string name;
    bool approximable = false;
};

/**
 * Base class for the seven kernels.
 *
 * Lifecycle: construct with params -> generate() builds deterministic
 * inputs -> run(backend) executes the kernel -> outputErrorVs(golden)
 * compares final outputs against a precise run of an identically
 * generated twin.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : params_(params) {}
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** PARSEC benchmark name ("canneal", "x264", ...). */
    virtual const char *name() const = 0;

    /** Scalar type of the annotated data (paper section V-A). */
    virtual ValueKind approxKind() const = 0;

    /** Build inputs deterministically from params().seed. */
    virtual void generate() = 0;

    /** Execute the kernel, issuing all modelled accesses to @p mem. */
    virtual void run(MemoryBackend &mem) = 0;

    /**
     * Application-level output error versus a precise (golden) run,
     * using this benchmark's metric from paper section IV. The golden
     * workload must be the same type, generated with the same seed.
     *
     * @return error fraction in [0, 1] (may exceed 1 for unbounded
     *         relative metrics)
     */
    virtual double outputErrorVs(const Workload &golden) const = 0;

    const WorkloadParams &params() const { return params_; }

    /** All static load sites declared by this kernel. */
    const std::vector<LoadSite> &loadSites() const { return sites_; }

    /** Number of distinct static approximate-load PCs (paper Fig. 12). */
    u32
    approxLoadSites() const
    {
        u32 count = 0;
        for (const auto &site : sites_)
            if (site.approximable)
                ++count;
        return count;
    }

  protected:
    /** Register a static load site; the id doubles as its PC. */
    LoadSiteId
    declareSite(const char *site_name, bool approximable)
    {
        sites_.push_back(LoadSite{site_name, approximable});
        return static_cast<LoadSiteId>(0x400000 + 4 * (sites_.size() - 1));
    }

    /** Thread that owns work item @p i under block-cyclic partitioning. */
    ThreadId
    threadOf(u64 i) const
    {
        return static_cast<ThreadId>(i % params_.threads);
    }

    WorkloadParams params_;
    VirtualArena arena_;

  private:
    std::vector<LoadSite> sites_;
};

/** Factory signature for one benchmark kernel. */
using WorkloadFactory =
    std::unique_ptr<Workload> (*)(const WorkloadParams &params);

/**
 * Resolve a PARSEC name to its factory once; fatal on unknown names.
 * Hot loops (the evaluator runs one workload per seed per sweep
 * point) hoist this lookup instead of re-matching the name per run.
 */
WorkloadFactory findWorkloadFactory(const std::string &name);

/** Construct a workload by PARSEC name; fatal on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** The seven benchmark names in the paper's presentation order. */
const std::vector<std::string> &allWorkloadNames();

} // namespace lva

#endif // LVA_WORKLOADS_WORKLOAD_HH
