#include "workloads/fluidanimate.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

constexpr float restDensity = 1.0f;
constexpr float stiffness = 1.5f;
constexpr float timeStep = 0.04f;

/** Non-memory instructions per neighbour interaction. */
constexpr u64 instrPerPair = 12;

/** Per-particle bookkeeping per phase. */
constexpr u64 instrPerParticle = 30;

} // namespace

FluidanimateWorkload::FluidanimateWorkload(const WorkloadParams &params)
    : Workload(params)
{
    siteBinX_ = declareSite("bin_pos_x", false);
    siteBinY_ = declareSite("bin_pos_y", false);
    siteCellCount_ = declareSite("cell_count", false);
    siteCellIdx_ = declareSite("cell_index", false);
    siteDenX_ = declareSite("density_nbr_x", true);
    siteDenY_ = declareSite("density_nbr_y", true);
    siteForX_ = declareSite("force_nbr_x", true);
    siteForY_ = declareSite("force_nbr_y", true);
    siteForDen_ = declareSite("force_nbr_density", true);
    siteVelLoad_ = declareSite("velocity", false);
    siteStorePos_ = declareSite("pos_store", false);
    siteStoreVel_ = declareSite("vel_store", false);
    siteStoreDen_ = declareSite("density_store", false);
}

u32
FluidanimateWorkload::cellIndexOf(float x, float y) const
{
    const float clamped_x =
        std::clamp(x, 0.0f, domain_ - 1e-4f);
    const float clamped_y =
        std::clamp(y, 0.0f, domain_ - 1e-4f);
    const u32 cx = static_cast<u32>(clamped_x / h_);
    const u32 cy = static_cast<u32>(clamped_y / h_);
    return cy * cellsPerSide_ + cx;
}

void
FluidanimateWorkload::generate()
{
    numParticles_ = params_.scaled(8192, 128);
    steps_ = 5;
    cellsPerSide_ = 48;
    h_ = 1.0f;
    domain_ = h_ * static_cast<float>(cellsPerSide_);

    posX_.init(arena_, numParticles_, true);
    posY_.init(arena_, numParticles_, true);
    velX_.init(arena_, numParticles_, false);
    velY_.init(arena_, numParticles_, false);
    density_.init(arena_, numParticles_, true);
    cellIdx_.init(arena_,
                  static_cast<u64>(cellsPerSide_) * cellsPerSide_ *
                      maxPerCell,
                  false);
    cellCount_.init(arena_,
                    static_cast<u64>(cellsPerSide_) * cellsPerSide_,
                    false);

    Rng rng(mix64(params_.seed) ^ 0xf1a1d0UL);

    // A dam-break style column of fluid in the left third of the box.
    for (u64 p = 0; p < numParticles_; ++p) {
        posX_.raw(p) =
            static_cast<float>(rng.uniform(0.0, domain_ / 3.0));
        posY_.raw(p) =
            static_cast<float>(rng.uniform(0.0, domain_ * 0.8));
        velX_.raw(p) = 0.0f;
        velY_.raw(p) = 0.0f;
        density_.raw(p) = restDensity;
    }
    origId_.resize(numParticles_);
    for (u64 p = 0; p < numParticles_; ++p)
        origId_[p] = static_cast<u32>(p);
}

void
FluidanimateWorkload::reorderAndBin(MemoryBackend &mem)
{
    const u32 num_cells = cellsPerSide_ * cellsPerSide_;

    // Stable counting sort of particle slots by cell index. The cell
    // of each particle is computed from precise position loads (the
    // paper annotates positions only inside the density/force loops).
    std::vector<u32> cell_of(numParticles_);
    std::vector<u32> perm(numParticles_);
    for (u64 p = 0; p < numParticles_; ++p) {
        const ThreadId tid = threadOf(p);
        const float x = posX_.loadPrecise(mem, tid, siteBinX_, p);
        const float y = posY_.loadPrecise(mem, tid, siteBinY_, p);
        cell_of[p] = cellIndexOf(x, y);
        mem.tickInstructions(tid, instrPerParticle / 3);
    }
    std::vector<u32> start(num_cells + 1, 0);
    for (u64 p = 0; p < numParticles_; ++p)
        ++start[cell_of[p] + 1];
    for (u32 c = 0; c < num_cells; ++c)
        start[c + 1] += start[c];
    std::vector<u32> cursor = start;
    for (u64 p = 0; p < numParticles_; ++p)
        perm[cursor[cell_of[p]]++] = static_cast<u32>(p);

    // Apply the permutation: one modelled load+store pair per particle
    // slot, as the real benchmark migrates particles between cells.
    auto apply = [&](auto &region, LoadSiteId load_site,
                     LoadSiteId store_site) {
        using Elem = std::decay_t<decltype(region.raw(0))>;
        std::vector<Elem> tmp(numParticles_);
        for (u64 i = 0; i < numParticles_; ++i) {
            const ThreadId tid = threadOf(i);
            tmp[i] = region.loadPrecise(mem, tid, load_site, perm[i]);
        }
        for (u64 i = 0; i < numParticles_; ++i)
            region.raw(i) = tmp[i];
        for (u64 i = 0; i < numParticles_; ++i)
            mem.store(threadOf(i), store_site, region.addrOf(i));
    };
    apply(posX_, siteBinX_, siteStorePos_);
    apply(posY_, siteBinY_, siteStorePos_);
    apply(velX_, siteVelLoad_, siteStoreVel_);
    apply(velY_, siteVelLoad_, siteStoreVel_);
    apply(density_, siteVelLoad_, siteStoreDen_);

    std::vector<u32> ids(numParticles_);
    for (u64 i = 0; i < numParticles_; ++i)
        ids[i] = origId_[perm[i]];
    origId_ = std::move(ids);

    // Rebuild the per-cell particle lists over the sorted slots.
    for (u32 c = 0; c < num_cells; ++c)
        cellCount_.raw(c) = 0;
    for (u64 p = 0; p < numParticles_; ++p) {
        const u32 cell = cell_of[perm[p]];
        i32 &count = cellCount_.raw(cell);
        if (count < static_cast<i32>(maxPerCell)) {
            cellIdx_.raw(static_cast<u64>(cell) * maxPerCell +
                         static_cast<u64>(count)) =
                static_cast<i32>(p);
            ++count;
        }
    }
}

void
FluidanimateWorkload::run(MemoryBackend &mem)
{
    lva_assert(numParticles_ > 0, "generate() must run first");
    const u32 num_cells = cellsPerSide_ * cellsPerSide_;

    (void)num_cells;
    for (u32 step = 0; step < steps_; ++step) {
        // --- Phase 1: cell-major reorder + binning (precise loads). --
        reorderAndBin(mem);

        // --- Phase 2: density from neighbouring cells (approx loads).
        for (u64 p = 0; p < numParticles_; ++p) {
            const ThreadId tid = threadOf(p);
            const float px = posX_.raw(p);
            const float py = posY_.raw(p);
            const u32 home = cellIndexOf(px, py);
            const i32 hx = static_cast<i32>(home % cellsPerSide_);
            const i32 hy = static_cast<i32>(home / cellsPerSide_);

            float den = 0.0f;
            for (i32 dy = -1; dy <= 1; ++dy) {
                for (i32 dx = -1; dx <= 1; ++dx) {
                    const i32 cx = hx + dx;
                    const i32 cy = hy + dy;
                    if (cx < 0 || cy < 0 ||
                        cx >= static_cast<i32>(cellsPerSide_) ||
                        cy >= static_cast<i32>(cellsPerSide_))
                        continue;
                    const u32 cell =
                        static_cast<u32>(cy) * cellsPerSide_ +
                        static_cast<u32>(cx);
                    const i32 count = cellCount_.loadPrecise(
                        mem, tid, siteCellCount_, cell);
                    for (i32 k = 0; k < count; ++k) {
                        const auto q = static_cast<u64>(
                            cellIdx_.loadPrecise(
                                mem, tid, siteCellIdx_,
                                static_cast<u64>(cell) * maxPerCell +
                                    static_cast<u64>(k)));
                        // Pointer chase: addresses come from the
                        // cell-list index load above.
                        const float qx = posX_.load(
                            mem, tid, siteDenX_, q, /*dependent=*/true);
                        const float qy =
                            posY_.load(mem, tid, siteDenY_, q);
                        const float r2 = (px - qx) * (px - qx) +
                                         (py - qy) * (py - qy);
                        if (r2 < h_ * h_) {
                            const float w = h_ * h_ - r2;
                            den += w * w * w;
                        }
                        mem.tickInstructions(tid, instrPerPair);
                    }
                }
            }
            density_.store(mem, tid, siteStoreDen_, p, den);
            mem.tickInstructions(tid, instrPerParticle);
        }

        // --- Phase 3: pressure forces + integration (approx loads). --
        for (u64 p = 0; p < numParticles_; ++p) {
            const ThreadId tid = threadOf(p);
            const float px = posX_.raw(p);
            const float py = posY_.raw(p);
            const float pden = density_.raw(p);
            const u32 home = cellIndexOf(px, py);
            const i32 hx = static_cast<i32>(home % cellsPerSide_);
            const i32 hy = static_cast<i32>(home / cellsPerSide_);

            float ax = 0.0f;
            float ay = -0.35f; // gravity
            for (i32 dy = -1; dy <= 1; ++dy) {
                for (i32 dx = -1; dx <= 1; ++dx) {
                    const i32 cx = hx + dx;
                    const i32 cy = hy + dy;
                    if (cx < 0 || cy < 0 ||
                        cx >= static_cast<i32>(cellsPerSide_) ||
                        cy >= static_cast<i32>(cellsPerSide_))
                        continue;
                    const u32 cell =
                        static_cast<u32>(cy) * cellsPerSide_ +
                        static_cast<u32>(cx);
                    const i32 count = cellCount_.loadPrecise(
                        mem, tid, siteCellCount_, cell);
                    for (i32 k = 0; k < count; ++k) {
                        const auto q = static_cast<u64>(
                            cellIdx_.loadPrecise(
                                mem, tid, siteCellIdx_,
                                static_cast<u64>(cell) * maxPerCell +
                                    static_cast<u64>(k)));
                        if (q == p)
                            continue;
                        const float qx = posX_.load(
                            mem, tid, siteForX_, q, /*dependent=*/true);
                        const float qy =
                            posY_.load(mem, tid, siteForY_, q);
                        const float qden =
                            density_.load(mem, tid, siteForDen_, q);
                        const float rx = px - qx;
                        const float ry = py - qy;
                        const float r2 = rx * rx + ry * ry;
                        if (r2 < h_ * h_ && r2 > 1e-8f) {
                            const float r = std::sqrt(r2);
                            const float pressure =
                                stiffness *
                                ((pden - restDensity) +
                                 (qden - restDensity));
                            const float mag =
                                pressure * (h_ - r) / (r * 2.0f);
                            ax += mag * rx;
                            ay += mag * ry;
                        }
                        mem.tickInstructions(tid, instrPerPair);
                    }
                }
            }

            // Integrate (precise loads/stores of velocity/position).
            float vx = velX_.loadPrecise(mem, tid, siteVelLoad_, p);
            float vy = velY_.loadPrecise(mem, tid, siteVelLoad_, p);
            vx = (vx + ax * timeStep) * 0.995f;
            vy = (vy + ay * timeStep) * 0.995f;
            float nx = px + vx * timeStep;
            float ny = py + vy * timeStep;
            // Reflecting boundaries.
            if (nx < 0.0f) { nx = -nx; vx = -vx * 0.5f; }
            if (ny < 0.0f) { ny = -ny; vy = -vy * 0.5f; }
            if (nx >= domain_) { nx = 2.0f * domain_ - nx - 1e-3f;
                                 vx = -vx * 0.5f; }
            if (ny >= domain_) { ny = 2.0f * domain_ - ny - 1e-3f;
                                 vy = -vy * 0.5f; }
            velX_.store(mem, tid, siteStoreVel_, p, vx);
            velY_.store(mem, tid, siteStoreVel_, p, vy);
            posX_.store(mem, tid, siteStorePos_, p, nx);
            posY_.store(mem, tid, siteStorePos_, p, ny);
            mem.tickInstructions(tid, instrPerParticle);
        }
    }
    mem.finish();
}

std::vector<u32>
FluidanimateWorkload::finalCells() const
{
    std::vector<u32> cells(numParticles_);
    for (u64 p = 0; p < numParticles_; ++p)
        cells[origId_[p]] = cellIndexOf(posX_.raw(p), posY_.raw(p));
    return cells;
}

double
FluidanimateWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const FluidanimateWorkload &>(golden);
    const auto mine = finalCells();
    const auto theirs = ref.finalCells();
    lva_assert(mine.size() == theirs.size(),
               "golden run has different particle count");

    u64 moved = 0;
    for (std::size_t p = 0; p < mine.size(); ++p)
        if (mine[p] != theirs[p])
            ++moved;
    return static_cast<double>(moved) / static_cast<double>(mine.size());
}

} // namespace lva
