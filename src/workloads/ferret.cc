#include "workloads/ferret.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

/** Non-memory instructions per candidate vector: distance arithmetic
 *  plus the per-segment share of the wider ferret pipeline
 *  (segmentation, indexing) that the mini-kernel does not model. */
constexpr u64 instrPerVector = 290;

} // namespace

FerretWorkload::FerretWorkload(const WorkloadParams &params)
    : Workload(params)
{
    siteDb_ = declareSite("db_feature", true);
    siteQuery_ = declareSite("query_feature", false);
}

void
FerretWorkload::generate()
{
    dbSize_ = params_.scaled(8192, 128);
    numQueries_ = params_.scaled(8, 2);
    numClusters_ = 64;

    db_.init(arena_, dbSize_ * dims, true);
    queries_.init(arena_, numQueries_ * dims, false);

    Rng rng(mix64(params_.seed) ^ 0xfe22e7UL);

    // Clustered feature space: DB vectors are cluster centres plus
    // noise, queries are perturbed members, so top-K sets are
    // meaningful and similar features recur (value locality). Centres
    // follow a per-cluster random walk across dimensions, giving the
    // correlated adjacent bins of real histogram-style descriptors.
    std::vector<float> centres(numClusters_ * dims);
    for (u32 c = 0; c < numClusters_; ++c) {
        double level = rng.uniform(2.0, 6.0);
        for (u32 d = 0; d < dims; ++d) {
            level += rng.gaussian() * 0.18;
            level = std::clamp(level, 0.5, 8.0);
            centres[c * dims + d] = static_cast<float>(
                std::round(level * 16.0) / 16.0);
        }
    }

    // The database is stored mostly cluster-major, as ferret's indexed
    // image database keeps similar segments together — the source of
    // the approximate value locality LVA exploits here — with a
    // fraction of out-of-place segments, as in any real collection.
    for (u64 v = 0; v < dbSize_; ++v) {
        const u32 c = rng.chance(0.25)
                          ? static_cast<u32>(rng.below(numClusters_))
                          : static_cast<u32>(
                                (v * numClusters_) / dbSize_);
        for (u32 d = 0; d < dims; ++d) {
            const float noise = static_cast<float>(
                std::round(rng.gaussian() * 0.15 * 16.0) / 16.0);
            db_.raw(v * dims + d) = centres[c * dims + d] + noise;
        }
    }
    for (u64 q = 0; q < numQueries_; ++q) {
        const u64 v = rng.below(dbSize_);
        for (u32 d = 0; d < dims; ++d) {
            queries_.raw(q * dims + d) =
                db_.raw(v * dims + d) +
                static_cast<float>(rng.gaussian() * 0.05);
        }
    }
}

void
FerretWorkload::run(MemoryBackend &mem)
{
    lva_assert(dbSize_ > 0, "generate() must run first");
    results_.assign(numQueries_, {});

    for (u64 q = 0; q < numQueries_; ++q) {
        const ThreadId tid = threadOf(q);

        // The small query vector is read precisely once per query and
        // kept in registers across the candidate scan.
        float qvec[dims];
        for (u32 d = 0; d < dims; ++d)
            qvec[d] =
                queries_.loadPrecise(mem, tid, siteQuery_, q * dims + d);

        std::vector<std::pair<float, u32>> ranked;
        ranked.reserve(dbSize_);

        for (u64 v = 0; v < dbSize_; ++v) {
            float dist2 = 0.0f;
            for (u32 d = 0; d < dims; ++d) {
                const float feat =
                    db_.load(mem, tid, siteDb_, v * dims + d);
                const float diff = qvec[d] - feat;
                dist2 += diff * diff;
            }
            ranked.emplace_back(dist2, static_cast<u32>(v));
            mem.tickInstructions(tid, instrPerVector);
        }

        std::partial_sort(ranked.begin(), ranked.begin() + topK,
                          ranked.end());
        auto &out = results_[q];
        out.reserve(topK);
        for (u32 k = 0; k < topK; ++k)
            out.push_back(ranked[k].second);
    }
    mem.finish();
}

double
FerretWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const FerretWorkload &>(golden);
    lva_assert(ref.results_.size() == results_.size(),
               "golden run has different query count");
    lva_assert(!results_.empty(), "run() must complete first");

    double error_sum = 0.0;
    for (std::size_t q = 0; q < results_.size(); ++q) {
        u32 overlap = 0;
        for (u32 id : results_[q]) {
            for (u32 ref_id : ref.results_[q]) {
                if (id == ref_id) {
                    ++overlap;
                    break;
                }
            }
        }
        error_sum += 1.0 - static_cast<double>(overlap) /
                               static_cast<double>(topK);
    }
    return error_sum / static_cast<double>(results_.size());
}

} // namespace lva
