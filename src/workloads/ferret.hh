/**
 * @file
 * Mini-ferret: content-based image similarity search. A database of
 * per-segment feature vectors is ranked by L2 distance against query
 * vectors; the database feature-vector loads are annotated approximable
 * (paper section IV). Streaming the database gives ferret its mid-range
 * MPKI (Table I: 3.28).
 *
 * Output error metric: 1 - |approx top-K  ∩  precise top-K| / K,
 * averaged over queries — the paper's (conservative) intersection
 * metric.
 */

#ifndef LVA_WORKLOADS_FERRET_HH
#define LVA_WORKLOADS_FERRET_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class FerretWorkload : public Workload
{
  public:
    explicit FerretWorkload(const WorkloadParams &params);

    const char *name() const override { return "ferret"; }
    ValueKind approxKind() const override { return ValueKind::Float32; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    /** Ranked result ids, one vector of K per query. */
    const std::vector<std::vector<u32>> &results() const
    {
        return results_;
    }

    static constexpr u32 dims = 16; ///< feature dimensions per segment
    static constexpr u32 topK = 10; ///< results returned per query

  private:
    u64 dbSize_ = 0;
    u64 numQueries_ = 0;
    u32 numClusters_ = 0;

    Region<float> db_;      ///< flattened DB vectors (approximable)
    Region<float> queries_; ///< flattened query vectors (precise)

    std::vector<std::vector<u32>> results_;

    LoadSiteId siteDb_, siteQuery_;
};

} // namespace lva

#endif // LVA_WORKLOADS_FERRET_HH
