/**
 * @file
 * Mini-x264: block motion estimation and residual coding between
 * consecutive synthetic frames. Reference-frame pixel loads inside the
 * SAD search and the residual computation are annotated approximable
 * (paper section IV: "the approximated data are integer values of
 * pixels"). The search window has strong reuse, so MPKI is low
 * (Table I: 0.59).
 *
 * Output error metric: PSNR difference and bit-rate difference versus
 * the precise encode, equally weighted.
 */

#ifndef LVA_WORKLOADS_X264_HH
#define LVA_WORKLOADS_X264_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class X264Workload : public Workload
{
  public:
    explicit X264Workload(const WorkloadParams &params);

    const char *name() const override { return "x264"; }
    ValueKind approxKind() const override { return ValueKind::Int64; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    double psnr() const { return psnr_; }
    double bits() const { return bits_; }

  private:
    /** Synthesize frame @p f into @p out (textured pan + objects). */
    void renderFrame(u32 f, Region<i32> &out) const;

    /** Subsampled SAD of the 16x16 block at (bx, by) against the
     *  reference at displacement (dx, dy); annotated ref loads. */
    i64 sad(MemoryBackend &mem, ThreadId tid, const i32 *cur_block,
            i32 bx, i32 by, i32 dx, i32 dy, LoadSiteId site);

    u32 width_ = 0;
    u32 height_ = 0;
    u32 frames_ = 0;

    Region<i32> cur_; ///< current frame (precise loads)
    Region<i32> ref_; ///< reference frame (approximable loads)

    double psnr_ = 0.0;
    double bits_ = 0.0;

    static constexpr u32 blockSize = 16;
    static constexpr u32 sadPoints = 4; ///< subsample stride in SAD
    static constexpr i32 searchRange = 8;
    static constexpr i32 quant = 8;

    LoadSiteId siteCur_, siteRefCenter_, siteRefDiamond_[4],
        siteRefRefine_[4], siteRefResidual_, siteReconStore_;
};

} // namespace lva

#endif // LVA_WORKLOADS_X264_HH
