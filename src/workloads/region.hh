/**
 * @file
 * Typed data regions bridging host containers and the simulated
 * memory system.
 *
 * A Region<T> owns its elements in a host vector and a deterministic
 * virtual address range. Reads issued through load() travel through the
 * MemoryBackend, which may return an approximated value (the EnerJ-style
 * annotation is the `approximable` flag given at initialization). Writes
 * update the host data and issue a simulated store.
 */

#ifndef LVA_WORKLOADS_REGION_HH
#define LVA_WORKLOADS_REGION_HH

#include <type_traits>
#include <vector>

#include "core/memory_backend.hh"
#include "util/arena.hh"
#include "util/logging.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

namespace detail {

template <typename T>
constexpr ValueKind
kindOf()
{
    if constexpr (std::is_same_v<T, float>)
        return ValueKind::Float32;
    else if constexpr (std::is_same_v<T, double>)
        return ValueKind::Float64;
    else if constexpr (std::is_integral_v<T>)
        return ValueKind::Int64;
    else
        static_assert(!sizeof(T), "unsupported region element type");
}

template <typename T>
Value
toValue(T v)
{
    if constexpr (std::is_same_v<T, float>)
        return Value::fromFloat(v);
    else if constexpr (std::is_same_v<T, double>)
        return Value::fromDouble(v);
    else
        return Value::fromInt(static_cast<i64>(v));
}

template <typename T>
T
fromValue(const Value &v)
{
    if constexpr (std::is_same_v<T, float>)
        return v.asFloat();
    else if constexpr (std::is_same_v<T, double>)
        return static_cast<T>(v.asDouble());
    else
        return static_cast<T>(v.asInt());
}

} // namespace detail

/**
 * An array of T living at a deterministic simulated address range.
 */
template <typename T>
class Region
{
  public:
    Region() = default;

    /** Allocate @p n elements from @p arena. */
    void
    init(VirtualArena &arena, std::size_t n, bool approximable,
         T fill = T{})
    {
        data_.assign(n, fill);
        base_ = arena.allocate(n * sizeof(T));
        approximable_ = approximable;
    }

    std::size_t size() const { return data_.size(); }
    bool approximable() const { return approximable_; }
    Addr base() const { return base_; }

    Addr
    addrOf(std::size_t i) const
    {
        return base_ + i * sizeof(T);
    }

    /** Direct host access for input generation / golden readout. */
    T &raw(std::size_t i) { return data_[boundsCheck(i)]; }
    const T &raw(std::size_t i) const { return data_[boundsCheck(i)]; }
    const std::vector<T> &rawAll() const { return data_; }

    /**
     * A modelled load: issues the access to @p mem and returns the
     * (possibly approximated) value the core would consume.
     */
    T
    load(MemoryBackend &mem, ThreadId tid, LoadSiteId pc,
         std::size_t i, bool dependent = false) const
    {
        const T precise = data_[boundsCheck(i)];
        const Value got = mem.load(tid, pc, addrOf(i),
                                   detail::toValue<T>(precise),
                                   approximable_, dependent);
        return detail::fromValue<T>(got);
    }

    /**
     * A modelled load that is always precise, regardless of the region
     * annotation. The paper annotates data "for only small regions of
     * code" (section IV): the same array may be loaded approximately in
     * the hot cost loop and precisely elsewhere (e.g. during binning).
     */
    T
    loadPrecise(MemoryBackend &mem, ThreadId tid, LoadSiteId pc,
                std::size_t i, bool dependent = false) const
    {
        const T precise = data_[boundsCheck(i)];
        mem.load(tid, pc, addrOf(i), detail::toValue<T>(precise), false,
                 dependent);
        return precise;
    }

    /**
     * Fill a request for MemoryBackend::loadMany (the batched load
     * entry): same address, precise value and annotation as load()
     * would issue for element @p i. Decode the batch result with
     * decode(); a batch is byte-identical to the scalar call
     * sequence because loadMany processes requests in array order.
     */
    LoadRequest
    loadRequest(ThreadId tid, LoadSiteId pc, std::size_t i,
                bool dependent = false) const
    {
        LoadRequest req;
        req.addr = addrOf(i);
        req.precise = detail::toValue<T>(data_[boundsCheck(i)]);
        req.pc = pc;
        req.tid = tid;
        req.approximable = approximable_;
        req.dependent = dependent;
        return req;
    }

    /** As loadRequest() but always precise (see loadPrecise()). */
    LoadRequest
    preciseRequest(ThreadId tid, LoadSiteId pc, std::size_t i,
                   bool dependent = false) const
    {
        LoadRequest req = loadRequest(tid, pc, i, dependent);
        req.approximable = false;
        return req;
    }

    /** The element a loadMany() result decodes to for this region. */
    static T
    decode(const Value &v)
    {
        return detail::fromValue<T>(v);
    }

    /** A modelled store: updates host data and simulates the write. */
    void
    store(MemoryBackend &mem, ThreadId tid, LoadSiteId pc, std::size_t i,
          T v)
    {
        data_[boundsCheck(i)] = v;
        mem.store(tid, pc, addrOf(i));
    }

  private:
    std::size_t
    boundsCheck(std::size_t i) const
    {
        lva_assert(i < data_.size(), "region index %zu out of %zu", i,
                   data_.size());
        return i;
    }

    std::vector<T> data_;
    Addr base_ = invalidAddr;
    bool approximable_ = false;
};

} // namespace lva

#endif // LVA_WORKLOADS_REGION_HH
