/**
 * @file
 * Mini-swaptions: Monte-Carlo pricing of European payer swaptions under
 * a one-factor short-rate model over a shared forward curve. The
 * floating-point market-data arrays (forward curve, volatilities,
 * strikes) are annotated approximable, as in the paper; the working set
 * is tiny, so precise MPKI is essentially zero (Table I: 4.92e-05).
 *
 * Output error metric (paper section IV): the mean relative error of
 * the approximated prices versus the precise prices, equally weighted.
 */

#ifndef LVA_WORKLOADS_SWAPTIONS_HH
#define LVA_WORKLOADS_SWAPTIONS_HH

#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace lva {

class SwaptionsWorkload : public Workload
{
  public:
    explicit SwaptionsWorkload(const WorkloadParams &params);

    const char *name() const override { return "swaptions"; }
    ValueKind approxKind() const override { return ValueKind::Float64; }
    void generate() override;
    void run(MemoryBackend &mem) override;
    double outputErrorVs(const Workload &golden) const override;

    const std::vector<double> &prices() const { return prices_; }

  private:
    u64 numSwaptions_ = 0;
    u64 trials_ = 0;
    u32 tenors_ = 0;

    Region<double> forward_;  ///< shared forward curve (approximable)
    Region<double> volCurve_; ///< per-tenor volatility (approximable)
    Region<double> strike_;   ///< per-swaption strike (approximable)
    Region<i32> maturity_;    ///< per-swaption maturity step (precise)

    std::vector<double> prices_;

    LoadSiteId siteForward_, siteVol_, siteStrike_, siteMaturity_;
};

} // namespace lva

#endif // LVA_WORKLOADS_SWAPTIONS_HH
