#include "workloads/bodytrack.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lva {

namespace {

constexpr u64 instrPerSample = 63;
constexpr u64 instrPerParticle = 70;

/** Body-part offsets from the body centre (head, torso, two limbs,
 *  leg), matching the sampled likelihood sites. */
constexpr i32 partOffset[5][2] = {
    {0, -18}, {0, 0}, {-14, 12}, {14, 12}, {0, 22}};

constexpr i32 partRadius[5] = {7, 12, 5, 5, 6};

/** Half-width of the region around the body that is rendered with
 *  the full gaussian model; pixels outside carry sensor noise only
 *  (they are almost never sampled, and this keeps host-side frame
 *  synthesis cheap). */
constexpr i32 renderHalo = 64;

} // namespace

BodytrackWorkload::BodytrackWorkload(const WorkloadParams &params)
    : Workload(params)
{
    static const char *names[5] = {"pix_head", "pix_torso", "pix_limb_l",
                                   "pix_limb_r", "pix_leg"};
    for (u32 i = 0; i < 5; ++i)
        sitePixel_[i] = declareSite(names[i], true);
    sitePartLoad_ = declareSite("particle_state", false);
    sitePartStore_ = declareSite("particle_store", false);
    siteWeightStore_ = declareSite("weight_store", false);
}

std::pair<double, double>
BodytrackWorkload::truthAt(u32 f) const
{
    // Smooth Lissajous-style trajectory inside the frame.
    const double t = static_cast<double>(f) * 0.22;
    const double cx =
        width_ * (0.5 + 0.30 * std::sin(t + 0.7));
    const double cy =
        height_ * (0.5 + 0.28 * std::sin(1.4 * t));
    return {cx, cy};
}

std::pair<double, double>
BodytrackWorkload::toCamera(u32 cam, double x, double y) const
{
    // Four slightly different affine views of the scene, as if from
    // four calibrated cameras around the capture volume.
    static const double scale_x[cameras] = {1.00, 0.94, 1.05, 0.97};
    static const double scale_y[cameras] = {1.00, 1.04, 0.95, 1.02};
    static const double off_x[cameras] = {0.0, 9.0, -12.0, 5.0};
    static const double off_y[cameras] = {0.0, -7.0, 6.0, -11.0};
    const double cx = width_ / 2.0;
    const double cy = height_ / 2.0;
    return {cx + (x - cx) * scale_x[cam] + off_x[cam],
            cy + (y - cy) * scale_y[cam] + off_y[cam]};
}

void
BodytrackWorkload::renderFrame(u32 f)
{
    const auto [tx, ty] = truthAt(f);

    for (u32 cam = 0; cam < cameras; ++cam) {
        const u64 noise_seed =
            mix64(params_.seed * 131 + f) ^ (0xb0d17ac4UL + cam);
        const auto [cx, cy] = toCamera(cam, tx, ty);

        auto noise_at = [&](u32 x, u32 y) {
            return static_cast<i32>(
                       mix64(noise_seed ^
                             (static_cast<u64>(x) << 24) ^ y) % 21) -
                   10;
        };

        // Cheap pass: sensor noise everywhere.
        for (u32 y = 0; y < height_; ++y)
            for (u32 x = 0; x < width_; ++x)
                image_[cam].raw(static_cast<u64>(y) * width_ + x) =
                    std::clamp(noise_at(x, y) + 8, 0, 255);

        // Full gaussian body model near the body only.
        const i32 x0 = std::max(0, static_cast<i32>(cx) - renderHalo);
        const i32 y0 = std::max(0, static_cast<i32>(cy) - renderHalo);
        const i32 x1 = std::min(static_cast<i32>(width_) - 1,
                                static_cast<i32>(cx) + renderHalo);
        const i32 y1 = std::min(static_cast<i32>(height_) - 1,
                                static_cast<i32>(cy) + renderHalo);
        for (i32 y = y0; y <= y1; ++y) {
            for (i32 x = x0; x <= x1; ++x) {
                double best = 0.0;
                for (u32 part = 0; part < 5; ++part) {
                    const double px = cx + partOffset[part][0];
                    const double py = cy + partOffset[part][1];
                    const double dx = x - px;
                    const double dy = y - py;
                    const double r = partRadius[part] * 2.2;
                    const double v = 220.0 *
                        std::exp(-(dx * dx + dy * dy) / (r * r));
                    best = std::max(best, v);
                }
                const i32 pix = static_cast<i32>(best) +
                                noise_at(static_cast<u32>(x),
                                         static_cast<u32>(y));
                image_[cam].raw(static_cast<u64>(y) * width_ +
                                static_cast<u64>(x)) =
                    std::clamp(pix, 0, 255);
            }
        }
    }
}

void
BodytrackWorkload::generate()
{
    width_ = 256;
    height_ = 256;
    frames_ = static_cast<u32>(params_.scaled(12, 3));
    particles_ = static_cast<u32>(params_.scaled(192, 24));
    layers_ = 3;

    for (u32 cam = 0; cam < cameras; ++cam)
        image_[cam].init(arena_, static_cast<u64>(width_) * height_,
                         true);
    partX_.init(arena_, particles_, false);
    partY_.init(arena_, particles_, false);
    weight_.init(arena_, particles_, false);
}

void
BodytrackWorkload::run(MemoryBackend &mem)
{
    lva_assert(width_ > 0, "generate() must run first");
    track_.clear();

    Rng filter_rng(mix64(params_.seed) ^ 0x7ac4e25UL);

    // Initialize particles around the first-frame truth.
    const auto [x0, y0] = truthAt(0);
    for (u32 p = 0; p < particles_; ++p) {
        partX_.raw(p) =
            static_cast<float>(x0 + filter_rng.gaussian() * 6.0);
        partY_.raw(p) =
            static_cast<float>(y0 + filter_rng.gaussian() * 6.0);
    }

    std::vector<float> new_x(particles_);
    std::vector<float> new_y(particles_);

    for (u32 f = 0; f < frames_; ++f) {
        renderFrame(f);

        double sigma = 10.0;
        for (u32 layer = 0; layer < layers_; ++layer) {
            // --- Weight every particle by multi-camera likelihood. --
            double weight_sum = 0.0;
            for (u32 p = 0; p < particles_; ++p) {
                const ThreadId tid = threadOf(p);
                const float px =
                    partX_.loadPrecise(mem, tid, sitePartLoad_, p);
                const float py =
                    partY_.loadPrecise(mem, tid, sitePartLoad_, p);

                // Squared error between sampled pixels and the body
                // template at each sample point, summed over all
                // camera views (the paper's error calculations "in
                // long loops").
                double err_sum = 0.0;
                for (u32 cam = 0; cam < cameras; ++cam) {
                    const auto [hx, hy] = toCamera(cam, px, py);
                    for (u32 part = 0; part < 5; ++part) {
                        for (i32 sy = -1; sy <= 1; ++sy) {
                            for (i32 sx = -1; sx <= 1; ++sx) {
                                const i32 ix =
                                    static_cast<i32>(hx) +
                                    partOffset[part][0] + sx * 3;
                                const i32 iy =
                                    static_cast<i32>(hy) +
                                    partOffset[part][1] + sy * 3;
                                i32 pix = 0;
                                if (ix >= 0 && iy >= 0 &&
                                    ix < static_cast<i32>(width_) &&
                                    iy < static_cast<i32>(height_)) {
                                    pix = static_cast<i32>(
                                        image_[cam].load(
                                            mem, tid,
                                            sitePixel_[part],
                                            static_cast<u64>(iy) *
                                                    width_ +
                                                static_cast<u64>(
                                                    ix)));
                                    pix = std::clamp(pix, 0, 255);
                                }
                                const double r =
                                    partRadius[part] * 2.2;
                                const double d2 =
                                    9.0 * (sx * sx + sy * sy);
                                const double expected =
                                    220.0 *
                                    std::exp(-d2 / (r * r));
                                const double diff = pix - expected;
                                err_sum += diff * diff;
                            }
                        }
                    }
                }
                // The sampling loops above are tight unrolled
                // kernels: their arithmetic is accounted in one batch
                // so the pixel loads stay back-to-back (high MLP), as
                // in the real vectorized likelihood code.
                mem.tickInstructions(tid,
                                     cameras * 45 * instrPerSample);
                // Store and accumulate the float-precision weight so
                // the degeneracy guard sees exactly what resampling
                // will read (doubles would hide float underflow).
                const float w = static_cast<float>(
                    std::exp(-err_sum / (6000.0 * cameras)));
                weight_.store(mem, tid, siteWeightStore_, p, w);
                weight_sum += w;
                mem.tickInstructions(tid, instrPerParticle);
            }

            // Degeneracy guard: if every weight underflowed (all
            // samples wildly off under heavy approximation), fall
            // back to uniform weights rather than dividing by zero.
            if (!(weight_sum > 1e-300) || !std::isfinite(weight_sum)) {
                for (u32 p = 0; p < particles_; ++p)
                    weight_.raw(p) = 1.0f;
                weight_sum = static_cast<double>(particles_);
            }

            // --- Systematic resampling + annealed diffusion. ---
            const double step =
                weight_sum / static_cast<double>(particles_);
            double cursor = filter_rng.uniform() * step;
            double acc = 0.0;
            u32 src = 0;
            for (u32 p = 0; p < particles_; ++p) {
                while (acc + weight_.raw(src) < cursor &&
                       src + 1 < particles_) {
                    acc += weight_.raw(src);
                    ++src;
                }
                new_x[p] = partX_.raw(src) +
                           static_cast<float>(
                               filter_rng.gaussian() * sigma);
                new_y[p] = partY_.raw(src) +
                           static_cast<float>(
                               filter_rng.gaussian() * sigma);
                cursor += step;
            }
            for (u32 p = 0; p < particles_; ++p) {
                const ThreadId tid = threadOf(p);
                partX_.store(mem, tid, sitePartStore_, p,
                             std::clamp(new_x[p], 0.0f,
                                        static_cast<float>(width_ - 1)));
                partY_.store(mem, tid, sitePartStore_, p,
                             std::clamp(new_y[p], 0.0f,
                                        static_cast<float>(height_ -
                                                           1)));
            }
            sigma *= 0.55; // anneal
        }

        // --- Estimate: weighted mean of the final layer. ---
        double wx = 0.0;
        double wy = 0.0;
        double wsum = 0.0;
        for (u32 p = 0; p < particles_; ++p) {
            const double w = weight_.raw(p);
            wx += w * partX_.raw(p);
            wy += w * partY_.raw(p);
            wsum += w;
        }
        track_.emplace_back(wx / wsum, wy / wsum);
    }
    mem.finish();
}

GrayImage
BodytrackWorkload::renderTrack() const
{
    lva_assert(!track_.empty(), "run() must complete first");
    GrayImage img(width_, height_, 0);
    // Background: camera 0's final likelihood map.
    for (u32 y = 0; y < height_; ++y)
        for (u32 x = 0; x < width_; ++x)
            img.set(x, y,
                    static_cast<u8>(
                        image_[0].raw(static_cast<u64>(y) * width_ +
                                      x) / 2));
    // Estimated positions: skeleton discs + trajectory line.
    for (std::size_t f = 0; f < track_.size(); ++f) {
        const auto [ex, ey] = track_[f];
        if (f + 1 == track_.size()) {
            for (u32 part = 0; part < 5; ++part) {
                img.fillCircle(static_cast<i32>(ex) + partOffset[part][0],
                               static_cast<i32>(ey) + partOffset[part][1],
                               partRadius[part], 255);
            }
        } else {
            const auto [nx, ny] = track_[f + 1];
            img.drawLine(static_cast<i32>(ex), static_cast<i32>(ey),
                         static_cast<i32>(nx), static_cast<i32>(ny),
                         200);
        }
    }
    return img;
}

double
BodytrackWorkload::outputErrorVs(const Workload &golden) const
{
    const auto &ref = dynamic_cast<const BodytrackWorkload &>(golden);
    lva_assert(ref.track_.size() == track_.size(),
               "golden run has different frame count");
    lva_assert(!track_.empty(), "run() must complete first");

    // Mean pair-wise vector distance, normalized by the image diagonal.
    const double diag = std::sqrt(
        static_cast<double>(width_) * width_ +
        static_cast<double>(height_) * height_);
    double sum = 0.0;
    for (std::size_t f = 0; f < track_.size(); ++f) {
        const double dx = track_[f].first - ref.track_[f].first;
        const double dy = track_[f].second - ref.track_[f].second;
        sum += std::sqrt(dx * dx + dy * dy);
    }
    return sum / (static_cast<double>(track_.size()) * diag);
}

} // namespace lva
