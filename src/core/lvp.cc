#include "core/lvp.hh"

#include "core/context_hash.hh"
#include "util/logging.hh"

namespace lva {

LvpStats::LvpStats(StatRegistry &reg, const std::string &prefix)
    : lookups(reg.counter(StatRegistry::joinPath(prefix, "lookups"),
                          "misses presented to the predictor")),
      correct(reg.counter(StatRegistry::joinPath(prefix, "correct"),
                          "oracle-correct predictions")),
      incorrect(reg.counter(StatRegistry::joinPath(prefix, "incorrect"),
                            "mispredictions (rolled back)")),
      cold(reg.counter(StatRegistry::joinPath(prefix, "cold"),
                       "misses with no usable history")),
      trainings(reg.counter(StatRegistry::joinPath(prefix, "trainings"),
                            "actual values applied to the table"))
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config)
    : IdealizedLvp(config, nullptr, "lvp")
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config,
                           StatRegistry &reg, const std::string &prefix)
    : IdealizedLvp(config, &reg, prefix)
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config,
                           StatRegistry *reg, const std::string &prefix)
    : config_(config), ghb_(config.ghbEntries),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      stats_(*reg_, prefix)
{
    lva_assert(config.tableEntries > 0, "table must have entries");
    table_.reserve(config.tableEntries);
    for (u32 i = 0; i < config.tableEntries; ++i)
        table_.emplace_back(config);
    pending_.resize(config.valueDelay + 2);
}

// lva-hot-path: begin (per-miss predict/train path; see
// docs/performance.md)

bool
IdealizedLvp::onMiss(LoadSiteId pc, const Value &precise)
{
    ++loadCount_;
    applyDueTrainings();
    stats_.lookups.inc();

    const u64 hash = contextHash(pc, ghb_, config_.mantissaDropBits);
    const HashSplit split =
        splitHash(hash, config_.tableEntries, config_.tagBits);
    Entry &entry = table_[split.index];

    bool predicted_correctly = false;

    if (!entry.valid || entry.tag != split.tag) {
        entry.valid = true;
        entry.tag = split.tag;
        entry.lhb.clear();
        stats_.cold.inc();
    } else if (entry.lhb.empty()) {
        stats_.cold.inc();
    } else {
        // Perfect selection: correct iff any LHB value matches
        // exactly (oldest-first, in place — no snapshot copy).
        for (u32 i = 0; i < entry.lhb.size(); ++i) {
            if (entry.lhb.oldest(i).exactlyEquals(precise)) {
                predicted_correctly = true;
                break;
            }
        }
        if (predicted_correctly)
            stats_.correct.inc();
        else
            stats_.incorrect.inc();
    }

    // LVP always fetches: validation requires the actual data.
    enqueueTraining(split.index, split.tag, precise);

    return predicted_correctly;
}

void
IdealizedLvp::enqueueTraining(u32 index, u64 tag, const Value &actual)
{
    const u32 cap = static_cast<u32>(pending_.size());
    lva_assert(pendingCount_ < cap,
               "pending ring overflow (%u of %u)", pendingCount_, cap);
    u32 tail = pendingHead_ + pendingCount_;
    if (tail >= cap)
        tail -= cap;
    PendingTrain &train = pending_[tail];
    train.dueAtLoad = loadCount_ + config_.valueDelay;
    train.index = index;
    train.tag = tag;
    train.actual = actual;
    ++pendingCount_;
}

void
IdealizedLvp::onHit(LoadSiteId pc, const Value &precise)
{
    (void)pc;
    ++loadCount_;
    applyDueTrainings();
    ghb_.push(precise);
}

void
IdealizedLvp::applyFront()
{
    const PendingTrain &train = pending_[pendingHead_];
    stats_.trainings.inc();
    ghb_.push(train.actual);
    Entry &entry = table_[train.index];
    if (entry.valid && entry.tag == train.tag)
        entry.lhb.push(train.actual);
    if (++pendingHead_ == static_cast<u32>(pending_.size()))
        pendingHead_ = 0;
    --pendingCount_;
}

void
IdealizedLvp::applyDueTrainings()
{
    while (pendingCount_ > 0 &&
           pending_[pendingHead_].dueAtLoad <= loadCount_)
        applyFront();
}

// lva-hot-path: end

void
IdealizedLvp::drainPending()
{
    while (pendingCount_ > 0)
        applyFront();
}

} // namespace lva
