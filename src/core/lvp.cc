#include "core/lvp.hh"

#include "core/context_hash.hh"
#include "util/logging.hh"

namespace lva {

LvpStats::LvpStats(StatRegistry &reg, const std::string &prefix)
    : lookups(reg.counter(StatRegistry::joinPath(prefix, "lookups"),
                          "misses presented to the predictor")),
      correct(reg.counter(StatRegistry::joinPath(prefix, "correct"),
                          "oracle-correct predictions")),
      incorrect(reg.counter(StatRegistry::joinPath(prefix, "incorrect"),
                            "mispredictions (rolled back)")),
      cold(reg.counter(StatRegistry::joinPath(prefix, "cold"),
                       "misses with no usable history")),
      trainings(reg.counter(StatRegistry::joinPath(prefix, "trainings"),
                            "actual values applied to the table"))
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config)
    : IdealizedLvp(config, nullptr, "lvp")
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config,
                           StatRegistry &reg, const std::string &prefix)
    : IdealizedLvp(config, &reg, prefix)
{
}

IdealizedLvp::IdealizedLvp(const ApproximatorConfig &config,
                           StatRegistry *reg, const std::string &prefix)
    : config_(config), ghb_(config.ghbEntries),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      stats_(*reg_, prefix)
{
    lva_assert(config.tableEntries > 0, "table must have entries");
    table_.reserve(config.tableEntries);
    for (u32 i = 0; i < config.tableEntries; ++i)
        table_.emplace_back(config);
}

bool
IdealizedLvp::onMiss(LoadSiteId pc, const Value &precise)
{
    ++loadCount_;
    applyDueTrainings();
    stats_.lookups.inc();

    const u64 hash = contextHash(pc, ghb_, config_.mantissaDropBits);
    const HashSplit split =
        splitHash(hash, config_.tableEntries, config_.tagBits);
    Entry &entry = table_[split.index];

    bool predicted_correctly = false;

    if (!entry.valid || entry.tag != split.tag) {
        entry.valid = true;
        entry.tag = split.tag;
        entry.lhb.clear();
        stats_.cold.inc();
    } else if (entry.lhb.empty()) {
        stats_.cold.inc();
    } else {
        // Perfect selection: correct iff any LHB value matches exactly.
        for (const Value &v : entry.lhb.snapshot()) {
            if (v.exactlyEquals(precise)) {
                predicted_correctly = true;
                break;
            }
        }
        if (predicted_correctly)
            stats_.correct.inc();
        else
            stats_.incorrect.inc();
    }

    // LVP always fetches: validation requires the actual data.
    PendingTrain train;
    train.dueAtLoad = loadCount_ + config_.valueDelay;
    train.index = split.index;
    train.tag = split.tag;
    train.actual = precise;
    pending_.push_back(train);

    return predicted_correctly;
}

void
IdealizedLvp::onHit(LoadSiteId pc, const Value &precise)
{
    (void)pc;
    ++loadCount_;
    applyDueTrainings();
    ghb_.push(precise);
}

void
IdealizedLvp::applyDueTrainings()
{
    while (!pending_.empty() && pending_.front().dueAtLoad <= loadCount_) {
        const PendingTrain &train = pending_.front();
        stats_.trainings.inc();
        ghb_.push(train.actual);
        Entry &entry = table_[train.index];
        if (entry.valid && entry.tag == train.tag)
            entry.lhb.push(train.actual);
        pending_.pop_front();
    }
}

void
IdealizedLvp::drainPending()
{
    while (!pending_.empty()) {
        const PendingTrain &train = pending_.front();
        stats_.trainings.inc();
        ghb_.push(train.actual);
        Entry &entry = table_[train.index];
        if (entry.valid && entry.tag == train.tag)
            entry.lhb.push(train.actual);
        pending_.pop_front();
    }
}

} // namespace lva
