#include "core/approx_memory.hh"

#include "util/logging.hh"

namespace lva {

const char *
memModeName(MemMode mode)
{
    switch (mode) {
      case MemMode::Precise:
        return "precise";
      case MemMode::Lva:
        return "LVA";
      case MemMode::Lvp:
        return "LVP";
      case MemMode::Prefetch:
        return "prefetch";
    }
    return "?";
}

LaneCounters::LaneCounters(StatRegistry &reg, const std::string &prefix)
    : instructions(reg.counter(
          StatRegistry::joinPath(prefix, "instructions"),
          "dynamic instructions (incl. memory ops)")),
      loads(reg.counter(StatRegistry::joinPath(prefix, "loads"),
                        "load instructions issued")),
      stores(reg.counter(StatRegistry::joinPath(prefix, "stores"),
                         "store instructions issued")),
      loadMisses(reg.counter(
          StatRegistry::joinPath(prefix, "loadMisses"),
          "raw L1 load misses")),
      effectiveMisses(reg.counter(
          StatRegistry::joinPath(prefix, "effectiveMisses"),
          "misses not hidden by approximation/LVP")),
      fetches(reg.counter(StatRegistry::joinPath(prefix, "fetches"),
                          "L1 block fills (demand + train + prefetch)")),
      approxLoads(reg.counter(
          StatRegistry::joinPath(prefix, "approxLoads"),
          "loads returning an approximate value")),
      approximableLoads(reg.counter(
          StatRegistry::joinPath(prefix, "approximableLoads"),
          "loads to annotated data"))
{
}

MemMetrics
LaneCounters::value() const
{
    MemMetrics m;
    m.instructions = instructions.value();
    m.loads = loads.value();
    m.stores = stores.value();
    m.loadMisses = loadMisses.value();
    m.effectiveMisses = effectiveMisses.value();
    m.fetches = fetches.value();
    m.approxLoads = approxLoads.value();
    m.approximableLoads = approximableLoads.value();
    return m;
}

ApproxMemory::ApproxMemory(const Config &config)
    : MemoryBackend(BackendKind::Approx), config_(config)
{
    lva_assert(config.threads > 0, "need at least one thread");
    lva_assert(config.threadApprox.empty() ||
                   config.threadApprox.size() == config.threads,
               "threadApprox must carry one entry per thread");
    lanes_.resize(config.threads);
    for (u32 t = 0; t < config.threads; ++t) {
        Lane &lane = lanes_[t];
        const std::string tp = "thread" + std::to_string(t);
        const ApproximatorConfig &variant =
            config.threadApprox.empty() ? config.approx
                                        : config.threadApprox[t];
        lane.cache = std::make_unique<Cache>(config.cache, registry_,
                                             tp + ".l1");
        lane.mem = std::make_unique<LaneCounters>(registry_, tp + ".mem");
        switch (config.mode) {
          case MemMode::Lva:
            lane.lva = std::make_unique<LoadValueApproximator>(
                variant, registry_, tp + ".lva");
            break;
          case MemMode::Lvp:
            lane.lvp = std::make_unique<IdealizedLvp>(
                variant, registry_, tp + ".lvp");
            break;
          case MemMode::Prefetch:
            lane.prefetcher = std::make_unique<GhbPrefetcher>(
                config.prefetch, registry_, tp + ".prefetch");
            break;
          case MemMode::Precise:
            break;
        }
    }
}

ApproxMemory::Lane &
ApproxMemory::laneFor(ThreadId tid)
{
    lva_assert(tid < lanes_.size(), "thread %u out of range", tid);
    return lanes_[tid];
}

const ApproxMemory::Lane &
ApproxMemory::laneFor(ThreadId tid) const
{
    lva_assert(tid < lanes_.size(), "thread %u out of range", tid);
    return lanes_[tid];
}

// lva-hot-path: begin (per-load fast path; see docs/performance.md)

Value
ApproxMemory::loadDirect(ThreadId tid, LoadSiteId pc, Addr addr,
                         const Value &precise, bool approximable,
                         bool dependent)
{
    (void)dependent; // functional simulation: timing-only property
    Lane &lane = laneFor(tid);
    LaneCounters &m = *lane.mem;
    m.instructions.inc();
    m.loads.inc();
    if (approximable)
        m.approximableLoads.inc();

    const bool hit = lane.cache->access(addr, /*is_write=*/false);
    if (hit) {
        if (approximable) {
            if (lane.lva)
                lane.lva->onHit(pc, precise);
            else if (lane.lvp)
                lane.lvp->onHit(pc, precise);
        }
        return precise;
    }

    m.loadMisses.inc();

    // --- LVA: the approximator may hide the miss and cancel the fetch.
    if (lane.lva && approximable) {
        const MissResponse resp = lane.lva->onMiss(pc, precise);
        if (resp.fetch) {
            lane.cache->fill(addr);
            m.fetches.inc();
        }
        if (resp.approximated) {
            m.approxLoads.inc();
            // Approximated values count as cache hits for effective
            // MPKI (paper section V-A).
            return resp.value;
        }
        m.effectiveMisses.inc();
        return precise;
    }

    // --- Idealized LVP: always fetches; oracle hides correct ones.
    if (lane.lvp && approximable) {
        const bool correct = lane.lvp->onMiss(pc, precise);
        lane.cache->fill(addr);
        m.fetches.inc();
        if (correct) {
            m.approxLoads.inc();
        } else {
            m.effectiveMisses.inc();
        }
        // LVP output is always precise (mispredictions roll back).
        return precise;
    }

    // --- Prefetcher: demand fetch plus pattern-driven extra fetches.
    // Unlike LVA, prefetching applies to all loads, annotated or not
    // (paper section VI-D).
    if (lane.prefetcher) {
        m.effectiveMisses.inc();
        lane.cache->fill(addr);
        m.fetches.inc();
        for (const Addr pf : lane.prefetcher->onMiss(pc, addr)) {
            if (!lane.cache->probe(pf)) {
                lane.cache->fill(pf);
                m.fetches.inc();
            }
        }
        return precise;
    }

    // --- Precise baseline (or non-annotated load under LVA/LVP).
    m.effectiveMisses.inc();
    lane.cache->fill(addr);
    m.fetches.inc();
    return precise;
}

void
ApproxMemory::loadManyDirect(const LoadRequest *reqs, Value *out,
                             u32 n)
{
    for (u32 i = 0; i < n; ++i) {
        const LoadRequest &r = reqs[i];
        out[i] = loadDirect(r.tid, r.pc, r.addr, r.precise,
                            r.approximable, r.dependent);
    }
}

/**
 * The sealed dispatchers live in this translation unit, next to
 * loadDirect, so the compiler inlines the ApproxMemory fast path into
 * them: the common per-load flow is one direct (non-virtual) call from
 * the workload, with no indirect branch. Generic backends take the
 * historical virtual route.
 */
Value
MemoryBackend::load(ThreadId tid, LoadSiteId pc, Addr addr,
                    const Value &precise, bool approximable,
                    bool dependent)
{
    switch (kind()) {
      case BackendKind::Approx:
        return static_cast<ApproxMemory *>(this)->loadDirect(
            tid, pc, addr, precise, approximable, dependent);
      case BackendKind::Null:
        return precise;
      case BackendKind::Generic:
        break;
    }
    return loadVirtual(tid, pc, addr, precise, approximable, dependent);
}

void
MemoryBackend::loadMany(const LoadRequest *reqs, Value *out, u32 n)
{
    switch (kind()) {
      case BackendKind::Approx:
        static_cast<ApproxMemory *>(this)->loadManyDirect(reqs, out, n);
        return;
      case BackendKind::Null:
        for (u32 i = 0; i < n; ++i)
            out[i] = reqs[i].precise;
        return;
      case BackendKind::Generic:
        break;
    }
    for (u32 i = 0; i < n; ++i) {
        const LoadRequest &r = reqs[i];
        out[i] = loadVirtual(r.tid, r.pc, r.addr, r.precise,
                             r.approximable, r.dependent);
    }
}

// lva-hot-path: end

void
ApproxMemory::store(ThreadId tid, LoadSiteId pc, Addr addr)
{
    (void)pc;
    Lane &lane = laneFor(tid);
    LaneCounters &m = *lane.mem;
    m.instructions.inc();
    m.stores.inc();

    // Write-allocate, write-back; store misses are off the critical
    // path (paper section V-A) and never approximated, but they do
    // fetch blocks.
    if (!lane.cache->access(addr, /*is_write=*/true)) {
        lane.cache->fill(addr, /*is_write=*/true);
        m.fetches.inc();
    }
}

void
ApproxMemory::tickInstructions(ThreadId tid, u64 n)
{
    laneFor(tid).mem->instructions.inc(n);
}

void
ApproxMemory::finish()
{
    for (auto &lane : lanes_) {
        if (lane.lva)
            lane.lva->drainPending();
        if (lane.lvp)
            lane.lvp->drainPending();
    }
}

MemMetrics
ApproxMemory::metrics() const
{
    MemMetrics total;
    for (const auto &lane : lanes_) {
        const MemMetrics m = lane.mem->value();
        total.instructions += m.instructions;
        total.loads += m.loads;
        total.stores += m.stores;
        total.loadMisses += m.loadMisses;
        total.effectiveMisses += m.effectiveMisses;
        total.fetches += m.fetches;
        total.approxLoads += m.approxLoads;
        total.approximableLoads += m.approximableLoads;
    }
    return total;
}

MemMetrics
ApproxMemory::metricsFor(ThreadId tid) const
{
    return laneFor(tid).mem->value();
}

const Cache &
ApproxMemory::cacheFor(ThreadId tid) const
{
    return *laneFor(tid).cache;
}

const LoadValueApproximator &
ApproxMemory::approximatorFor(ThreadId tid) const
{
    const Lane &lane = laneFor(tid);
    lva_assert(lane.lva != nullptr, "thread %u has no approximator", tid);
    return *lane.lva;
}

const IdealizedLvp &
ApproxMemory::lvpFor(ThreadId tid) const
{
    const Lane &lane = laneFor(tid);
    lva_assert(lane.lvp != nullptr, "thread %u has no LVP", tid);
    return *lane.lvp;
}

const GhbPrefetcher &
ApproxMemory::prefetcherFor(ThreadId tid) const
{
    const Lane &lane = laneFor(tid);
    lva_assert(lane.prefetcher != nullptr,
               "thread %u has no prefetcher", tid);
    return *lane.prefetcher;
}

} // namespace lva
