/**
 * @file
 * The interface through which workloads issue simulated memory traffic.
 *
 * Workload kernels keep their data in host containers but report every
 * modelled access here, tagged with a logical thread, a static load site
 * (the PC) and, for approximable loads, the precise value. The backend
 * may return a different (approximated) value, which the kernel must
 * consume — exactly what the paper's Pin tool does when it clobbers load
 * return values.
 *
 * Dispatch is sealed on the load path (the per-access hot path): every
 * backend carries a BackendKind tag and the non-virtual load()/
 * loadMany() entry points switch on it, routing the overwhelmingly
 * common kinds (ApproxMemory, NullBackend) to direct calls that the
 * compiler can inline, while anything else falls through to the
 * loadVirtual() virtual as before. The virtual boundary remains at the
 * run level (Workload::run takes MemoryBackend&); only the per-load
 * indirect branch is gone. loadMany() amortizes even the remaining
 * call per access: workloads push runs of independent accesses through
 * the hierarchy in one call (requests are processed strictly in array
 * order, so results are byte-identical to the scalar loop).
 */

#ifndef LVA_CORE_MEMORY_BACKEND_HH
#define LVA_CORE_MEMORY_BACKEND_HH

#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/** Sealed-dispatch tag: which concrete backend this is. */
enum class BackendKind : u8 {
    Generic, ///< anything else: dispatch via the loadVirtual() virtual
    Approx,  ///< ApproxMemory (phase-1 functional memory system)
    Null,    ///< NullBackend (golden runs: precise, no bookkeeping)
};

/** One load for the batched loadMany() entry point. */
struct LoadRequest
{
    Addr addr = 0;
    Value precise{};      ///< the value stored at addr in this run
    LoadSiteId pc = 0;
    ThreadId tid = 0;
    bool approximable = false;
    bool dependent = false;
};

/**
 * Abstract memory-system backend.
 *
 * Implementations: ApproxMemory (phase-1 functional simulation with
 * per-thread private L1 caches and approximators), TraceRecorder
 * (phase-2 trace capture for the full-system timing model).
 * Subclasses implement loadVirtual(); callers use load()/loadMany().
 */
class MemoryBackend
{
  public:
    explicit MemoryBackend(BackendKind kind = BackendKind::Generic)
        : kind_(kind)
    {}

    virtual ~MemoryBackend() = default;

    BackendKind kind() const { return kind_; }

    /**
     * A load instruction (sealed dispatch; defined in
     * approx_memory.cc so the ApproxMemory fast path inlines).
     *
     * @param tid         issuing logical thread
     * @param pc          static load site
     * @param addr        virtual address accessed
     * @param precise     the value stored at @p addr in this run
     * @param approximable whether the programmer annotated this load
     * @param dependent   true when this load's address depends on the
     *                    value of the immediately preceding load on
     *                    this thread (pointer chasing); the timing
     *                    model serializes such pairs, which is exactly
     *                    the latency LVA hides when the producer is
     *                    approximated
     * @return the value the core receives (possibly approximated)
     */
    Value load(ThreadId tid, LoadSiteId pc, Addr addr,
               const Value &precise, bool approximable,
               bool dependent = false);

    /**
     * A run of @p n independent loads, processed strictly in array
     * order: out[i] is exactly what load(reqs[i]...) would have
     * returned in a scalar loop, for any backend. One boundary call
     * per batch instead of per access.
     */
    void loadMany(const LoadRequest *reqs, Value *out, u32 n);

    /**
     * A load of non-annotated data whose value the model never needs
     * (cache-traffic accounting only).
     */
    void
    touchLoad(ThreadId tid, LoadSiteId pc, Addr addr)
    {
        load(tid, pc, addr, Value::fromInt(0), false);
    }

    /** A store instruction (write-allocate; value not modelled). */
    virtual void store(ThreadId tid, LoadSiteId pc, Addr addr) = 0;

    /** Account @p n non-memory instructions on thread @p tid. */
    virtual void tickInstructions(ThreadId tid, u64 n) = 0;

    /** End-of-run hook (drain value-delayed trainings, etc.). */
    virtual void finish() {}

  protected:
    /** Generic (BackendKind::Generic) implementation of one load. */
    virtual Value loadVirtual(ThreadId tid, LoadSiteId pc, Addr addr,
                              const Value &precise, bool approximable,
                              bool dependent) = 0;

  private:
    BackendKind kind_;
};

/**
 * Backend that models nothing: loads return the precise value and no
 * statistics are kept. Used to execute reference (golden) runs at full
 * host speed. load() short-circuits on BackendKind::Null before any
 * virtual dispatch.
 */
class NullBackend : public MemoryBackend
{
  public:
    NullBackend() : MemoryBackend(BackendKind::Null) {}

    void store(ThreadId, LoadSiteId, Addr) override {}
    void tickInstructions(ThreadId, u64) override {}

  protected:
    Value
    loadVirtual(ThreadId, LoadSiteId, Addr, const Value &precise, bool,
                bool) override
    {
        return precise;
    }
};

} // namespace lva

#endif // LVA_CORE_MEMORY_BACKEND_HH
