/**
 * @file
 * The interface through which workloads issue simulated memory traffic.
 *
 * Workload kernels keep their data in host containers but report every
 * modelled access here, tagged with a logical thread, a static load site
 * (the PC) and, for approximable loads, the precise value. The backend
 * may return a different (approximated) value, which the kernel must
 * consume — exactly what the paper's Pin tool does when it clobbers load
 * return values.
 */

#ifndef LVA_CORE_MEMORY_BACKEND_HH
#define LVA_CORE_MEMORY_BACKEND_HH

#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/**
 * Abstract memory-system backend.
 *
 * Implementations: ApproxMemory (phase-1 functional simulation with
 * per-thread private L1 caches and approximators), TraceRecorder
 * (phase-2 trace capture for the full-system timing model).
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * A load instruction.
     *
     * @param tid         issuing logical thread
     * @param pc          static load site
     * @param addr        virtual address accessed
     * @param precise     the value stored at @p addr in this run
     * @param approximable whether the programmer annotated this load
     * @param dependent   true when this load's address depends on the
     *                    value of the immediately preceding load on
     *                    this thread (pointer chasing); the timing
     *                    model serializes such pairs, which is exactly
     *                    the latency LVA hides when the producer is
     *                    approximated
     * @return the value the core receives (possibly approximated)
     */
    virtual Value load(ThreadId tid, LoadSiteId pc, Addr addr,
                       const Value &precise, bool approximable,
                       bool dependent = false) = 0;

    /**
     * A load of non-annotated data whose value the model never needs
     * (cache-traffic accounting only).
     */
    void
    touchLoad(ThreadId tid, LoadSiteId pc, Addr addr)
    {
        load(tid, pc, addr, Value::fromInt(0), false);
    }

    /** A store instruction (write-allocate; value not modelled). */
    virtual void store(ThreadId tid, LoadSiteId pc, Addr addr) = 0;

    /** Account @p n non-memory instructions on thread @p tid. */
    virtual void tickInstructions(ThreadId tid, u64 n) = 0;

    /** End-of-run hook (drain value-delayed trainings, etc.). */
    virtual void finish() {}
};

/**
 * Backend that models nothing: loads return the precise value and no
 * statistics are kept. Used to execute reference (golden) runs at full
 * host speed.
 */
class NullBackend : public MemoryBackend
{
  public:
    Value
    load(ThreadId, LoadSiteId, Addr, const Value &precise, bool,
         bool) override
    {
        return precise;
    }

    void store(ThreadId, LoadSiteId, Addr) override {}
    void tickInstructions(ThreadId, u64) override {}
};

} // namespace lva

#endif // LVA_CORE_MEMORY_BACKEND_HH
