/**
 * @file
 * Phase-1 functional memory system: private per-thread L1 data caches
 * with a load value approximator (or a baseline) beside each, realizing
 * the flow of paper Figure 2.
 *
 * This is the software analogue of the paper's Pin methodology: it
 * decides hit/miss per access, lets the approximator clobber load
 * values, and accumulates the design-space-exploration metrics (MPKI,
 * blocks fetched, coverage).
 */

#ifndef LVA_CORE_APPROX_MEMORY_HH
#define LVA_CORE_APPROX_MEMORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/approximator.hh"
#include "core/lvp.hh"
#include "core/memory_backend.hh"
#include "mem/cache.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"

namespace lva {

/** Which mechanism sits beside the L1 cache. */
enum class MemMode : u8 {
    Precise,  ///< no mechanism: every miss fetches, values exact
    Lva,      ///< load value approximation (the paper)
    Lvp,      ///< idealized load value prediction baseline
    Prefetch, ///< GHB prefetcher baseline (applies to ALL loads)
};

const char *memModeName(MemMode mode);

/** Aggregate per-run metrics (across all threads). */
struct MemMetrics
{
    u64 instructions = 0;   ///< dynamic instruction count (incl. mem ops)
    u64 loads = 0;          ///< load instructions issued
    u64 stores = 0;
    u64 loadMisses = 0;     ///< raw L1 load misses
    u64 effectiveMisses = 0;///< misses not hidden by approximation/LVP
    u64 fetches = 0;        ///< L1 block fills (demand + train + prefetch)
    u64 approxLoads = 0;    ///< loads returning an approximate value
    u64 approximableLoads = 0; ///< loads to annotated data

    /** Effective misses per kilo-instruction (approximations are hits). */
    double
    mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(effectiveMisses) /
                         static_cast<double>(instructions);
    }

    double
    rawMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(loadMisses) /
                         static_cast<double>(instructions);
    }

    /** Coverage: fraction of approximable loads that were approximated. */
    double
    coverage() const
    {
        return approximableLoads == 0
                   ? 0.0
                   : static_cast<double>(approxLoads) /
                         static_cast<double>(approximableLoads);
    }
};

/**
 * Live per-thread memory counters, registry-backed under
 * "<prefix>.instructions" etc.; value() copies them out into the
 * plain MemMetrics aggregate used by reporting code.
 */
struct LaneCounters
{
    LaneCounters(StatRegistry &reg, const std::string &prefix);

    Counter &instructions;
    Counter &loads;
    Counter &stores;
    Counter &loadMisses;
    Counter &effectiveMisses;
    Counter &fetches;
    Counter &approxLoads;
    Counter &approximableLoads;

    MemMetrics value() const;
};

/**
 * Functional memory simulator with one private L1 (and one mechanism
 * instance) per logical thread, as in the paper's 4-thread PARSEC runs.
 */
class ApproxMemory : public MemoryBackend
{
  public:
    struct Config
    {
        u32 threads = 4;
        CacheConfig cache = CacheConfig::pinL1();
        MemMode mode = MemMode::Lva;
        ApproximatorConfig approx{};
        GhbPrefetcherConfig prefetch{};

        /**
         * Per-thread approximator variants (from a heterogeneous
         * MachineConfig): empty means homogeneous — every lane uses
         * approx; otherwise exactly one entry per thread.
         */
        std::vector<ApproximatorConfig> threadApprox;

        /**
         * Apply @p fn to approx AND every per-thread variant. Sweep
         * drivers edit their swept knob through this so the edit
         * lands on heterogeneous machines too — when threadApprox is
         * populated every lane is built from it, and a bare
         * approx.<field> write would be silently ignored. The RPC
         * "config" decoder and lva_explore apply the same
         * all-lanes semantics.
         */
        template <typename Fn>
        void
        editApprox(Fn &&fn)
        {
            fn(approx);
            for (ApproximatorConfig &variant : threadApprox)
                fn(variant);
        }
    };

    explicit ApproxMemory(const Config &config);

    /**
     * One load, called directly (no dispatch). MemoryBackend::load
     * routes BackendKind::Approx here; both entries are defined in
     * approx_memory.cc so the dispatcher inlines this body.
     */
    Value loadDirect(ThreadId tid, LoadSiteId pc, Addr addr,
                     const Value &precise, bool approximable,
                     bool dependent = false);

    /** A run of loads, in array order (see MemoryBackend::loadMany). */
    void loadManyDirect(const LoadRequest *reqs, Value *out, u32 n);

    // MemoryBackend interface
    void store(ThreadId tid, LoadSiteId pc, Addr addr) override;
    void tickInstructions(ThreadId tid, u64 n) override;
    void finish() override;

    const Config &config() const { return config_; }

    /** Metrics summed over all threads. */
    MemMetrics metrics() const;

    /** Metrics of one thread (tests, per-lane reporting). */
    MemMetrics metricsFor(ThreadId tid) const;

    /**
     * The simulation's stat registry; all per-thread component stats
     * live here under "thread<N>.{mem,l1,lva,lvp,prefetch}.*".
     */
    const StatRegistry &registry() const { return registry_; }
    StatRegistry &registry() { return registry_; }

    /** Convenience: snapshot of the whole registry. */
    StatSnapshot snapshot() const { return registry_.snapshot(); }

    /** Per-thread component access (tests, detailed reporting). */
    const Cache &cacheFor(ThreadId tid) const;
    const LoadValueApproximator &approximatorFor(ThreadId tid) const;
    const IdealizedLvp &lvpFor(ThreadId tid) const;
    const GhbPrefetcher &prefetcherFor(ThreadId tid) const;

  protected:
    Value
    loadVirtual(ThreadId tid, LoadSiteId pc, Addr addr,
                const Value &precise, bool approximable,
                bool dependent) override
    {
        return loadDirect(tid, pc, addr, precise, approximable,
                          dependent);
    }

  private:
    struct Lane
    {
        std::unique_ptr<Cache> cache;
        std::unique_ptr<LoadValueApproximator> lva;
        std::unique_ptr<IdealizedLvp> lvp;
        std::unique_ptr<GhbPrefetcher> prefetcher;
        std::unique_ptr<LaneCounters> mem;
    };

    Lane &laneFor(ThreadId tid);
    const Lane &laneFor(ThreadId tid) const;

    Config config_;
    StatRegistry registry_; ///< declared before lanes_: stats outlive refs
    std::vector<Lane> lanes_;
};

} // namespace lva

#endif // LVA_CORE_APPROX_MEMORY_HH
