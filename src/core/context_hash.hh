/**
 * @file
 * Context hash h(PC, GHB) used to index the approximator table.
 */

#ifndef LVA_CORE_CONTEXT_HASH_HH
#define LVA_CORE_CONTEXT_HASH_HH

#include <bit>

#include "core/history_buffer.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace lva {

/**
 * XOR the load's instruction address with the (optionally
 * mantissa-truncated) bit patterns of the GHB contents, then mix so the
 * low bits are well distributed for direct-mapped indexing.
 *
 * This is the paper's XOR(PC, GHB) context hash; with a zero-entry GHB
 * it degenerates to a hash of the PC alone.
 */
inline u64
contextHash(LoadSiteId pc, const HistoryBuffer &ghb, u32 mantissa_drop)
{
    u64 h = static_cast<u64>(pc);
    for (u32 i = 0; i < ghb.size(); ++i)
        h ^= ghb.newest(i).hashBits(mantissa_drop);
    return mix64(h);
}

/** Split a context hash into a table index and a tag. */
struct HashSplit
{
    u32 index;
    u64 tag;
};

inline HashSplit
splitHash(u64 hash, u32 table_entries, u32 tag_bits)
{
    HashSplit out;
    const u64 tag_mask =
        tag_bits >= 64 ? ~u64(0) : ((u64(1) << tag_bits) - 1);
    if ((table_entries & (table_entries - 1)) == 0) {
        // Power-of-two table (the practical case): shift/mask is
        // bit-identical to the divide below but avoids two 64-bit
        // divisions on the per-miss path.
        const u32 shift =
            static_cast<u32>(std::countr_zero(table_entries));
        out.index = static_cast<u32>(hash & (table_entries - 1));
        out.tag = (hash >> shift) & tag_mask;
        return out;
    }
    out.index = static_cast<u32>(hash % table_entries);
    out.tag = (hash / table_entries) & tag_mask;
    return out;
}

} // namespace lva

#endif // LVA_CORE_CONTEXT_HASH_HH
