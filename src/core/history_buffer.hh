/**
 * @file
 * Fixed-capacity FIFO history buffer used for both the global history
 * buffer (GHB) and the per-entry local history buffers (LHB).
 */

#ifndef LVA_CORE_HISTORY_BUFFER_HH
#define LVA_CORE_HISTORY_BUFFER_HH

#include <vector>

#include "util/logging.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/**
 * Ring buffer holding the most recent N values, oldest first when
 * iterated via snapshot().
 *
 * A capacity of zero is legal (the baseline GHB has zero entries) and
 * makes push() a no-op.
 */
class HistoryBuffer
{
  public:
    explicit HistoryBuffer(u32 capacity)
        : capacity_(capacity), storage_(capacity)
    {}

    u32 capacity() const { return capacity_; }
    u32 size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Append @p v, discarding the oldest value when full. */
    void
    push(const Value &v)
    {
        if (capacity_ == 0)
            return;
        storage_[head_] = v;
        head_ = (head_ + 1) % capacity_;
        if (size_ < capacity_)
            ++size_;
    }

    /** Oldest-to-newest copy of the contents. */
    std::vector<Value>
    snapshot() const
    {
        std::vector<Value> out;
        out.reserve(size_);
        const u32 start = (head_ + capacity_ - size_) % (capacity_ ? capacity_ : 1);
        for (u32 i = 0; i < size_; ++i)
            out.push_back(storage_[(start + i) % capacity_]);
        return out;
    }

    /** i-th newest value (0 = most recent). */
    const Value &
    newest(u32 i = 0) const
    {
        lva_assert(i < size_, "history index %u out of %u", i, size_);
        const u32 idx = (head_ + capacity_ - 1 - i) % capacity_;
        return storage_[idx];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    u32 capacity_;
    std::vector<Value> storage_;
    u32 head_ = 0;
    u32 size_ = 0;
};

} // namespace lva

#endif // LVA_CORE_HISTORY_BUFFER_HH
