/**
 * @file
 * Fixed-capacity FIFO history buffer used for both the global history
 * buffer (GHB) and the per-entry local history buffers (LHB).
 */

#ifndef LVA_CORE_HISTORY_BUFFER_HH
#define LVA_CORE_HISTORY_BUFFER_HH

#include <vector>

#include "util/logging.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/**
 * Ring buffer holding the most recent N values, oldest first when
 * iterated via snapshot().
 *
 * A capacity of zero is legal (the baseline GHB has zero entries) and
 * makes push() a no-op.
 */
class HistoryBuffer
{
  public:
    explicit HistoryBuffer(u32 capacity)
        : capacity_(capacity), storage_(capacity)
    {}

    u32 capacity() const { return capacity_; }
    u32 size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Append @p v, discarding the oldest value when full. */
    void
    push(const Value &v)
    {
        if (capacity_ == 0)
            return;
        storage_[head_] = v;
        // Conditional wrap instead of %: the ring index math stays
        // free of integer divides on the per-load path.
        if (++head_ == capacity_)
            head_ = 0;
        if (size_ < capacity_)
            ++size_;
    }

    /**
     * Oldest-to-newest copy of the contents. Allocates; hot paths use
     * oldest()/newest() in-place indexed reads instead (the estimate
     * and context-hash paths must stay allocation-free — see
     * docs/performance.md).
     */
    std::vector<Value>
    snapshot() const
    {
        std::vector<Value> out;
        out.reserve(size_);
        for (u32 i = 0; i < size_; ++i)
            out.push_back(oldest(i));
        return out;
    }

    /** i-th oldest value (0 = oldest), read in place. */
    const Value &
    oldest(u32 i) const
    {
        lva_assert(i < size_, "history index %u out of %u", i, size_);
        u32 idx = head_ + capacity_ - size_ + i;
        if (idx >= capacity_)
            idx -= capacity_;
        return storage_[idx];
    }

    /** i-th newest value (0 = most recent). */
    const Value &
    newest(u32 i = 0) const
    {
        lva_assert(i < size_, "history index %u out of %u", i, size_);
        u32 idx = head_ + capacity_ - 1 - i;
        if (idx >= capacity_)
            idx -= capacity_;
        return storage_[idx];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    u32 capacity_;
    std::vector<Value> storage_;
    u32 head_ = 0;
    u32 size_ = 0;
};

} // namespace lva

#endif // LVA_CORE_HISTORY_BUFFER_HH
