/**
 * @file
 * Idealized load value predictor baseline.
 *
 * Matches the paper's comparison point (section VI): the same table /
 * GHB / LHB structure as the approximator, but a prediction counts as
 * correct iff ANY value in the LHB equals the precise value bit-exactly
 * (a perfect selection mechanism — an upper bound on real LVP designs).
 * LVP must always fetch the block to validate, so its fetch:miss ratio
 * is pinned at 1:1, and mispredictions roll back, so application output
 * is always precise.
 */

#ifndef LVA_CORE_LVP_HH
#define LVA_CORE_LVP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/approximator_config.hh"
#include "core/history_buffer.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/** Event counts for the idealized predictor (registry-backed). */
struct LvpStats
{
    LvpStats(StatRegistry &reg, const std::string &prefix);

    Counter &lookups;     ///< misses presented
    Counter &correct;     ///< oracle-correct predictions (hide the miss)
    Counter &incorrect;   ///< mispredictions (rollback; full miss cost)
    Counter &cold;        ///< no usable history (no prediction made)
    Counter &trainings;

    void
    reset()
    {
        lookups.reset();
        correct.reset();
        incorrect.reset();
        cold.reset();
        trainings.reset();
    }
};

/**
 * Idealized LVP with the same geometry knobs as the approximator
 * (table entries, tag bits, GHB size, LHB size, value delay).
 */
class IdealizedLvp
{
  public:
    /** Standalone predictor with a private registry ("lvp.*"). */
    explicit IdealizedLvp(const ApproximatorConfig &config);

    /** Predictor whose stats register in @p reg under @p prefix. */
    IdealizedLvp(const ApproximatorConfig &config, StatRegistry &reg,
                 const std::string &prefix);

    /**
     * Handle an L1 load miss.
     * @return true iff the oracle predicts correctly (the miss latency
     *         is hidden; with rollback-based LVP an incorrect prediction
     *         costs at least the full miss).
     */
    bool onMiss(LoadSiteId pc, const Value &precise);

    /** L1 hit: precise value enters the global history. */
    void onHit(LoadSiteId pc, const Value &precise);

    void drainPending();

    const LvpStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        explicit Entry(const ApproximatorConfig &config)
            : lhb(config.lhbEntries)
        {}

        bool valid = false;
        u64 tag = 0;
        HistoryBuffer lhb;
    };

    struct PendingTrain
    {
        u64 dueAtLoad;
        u32 index;
        u64 tag;
        Value actual;
    };

    void applyDueTrainings();

    void enqueueTraining(u32 index, u64 tag, const Value &actual);
    void applyFront();

    IdealizedLvp(const ApproximatorConfig &config, StatRegistry *reg,
                 const std::string &prefix);

    ApproximatorConfig config_;
    std::vector<Entry> table_;
    HistoryBuffer ghb_;

    /**
     * Pending-train fixed ring (same occupancy bound as the
     * approximator's: at most one enqueue per load, due within
     * valueDelay loads — sized valueDelay + 2 at construction, never
     * resized).
     */
    std::vector<PendingTrain> pending_;
    u32 pendingHead_ = 0;
    u32 pendingCount_ = 0;

    u64 loadCount_ = 0;
    std::unique_ptr<StatRegistry> ownedReg_; ///< standalone ctor only
    StatRegistry *reg_;
    LvpStats stats_;
};

} // namespace lva

#endif // LVA_CORE_LVP_HH
