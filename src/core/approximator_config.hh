/**
 * @file
 * Configuration of the load value approximator (paper Table II).
 */

#ifndef LVA_CORE_APPROXIMATOR_CONFIG_HH
#define LVA_CORE_APPROXIMATOR_CONFIG_HH

#include <limits>

#include "util/types.hh"

namespace lva {

/** The computation function f applied to the local history buffer. */
enum class Estimator : u8 {
    Average, ///< mean of the LHB values (the paper's choice)
    Last,    ///< most recent LHB value (ablation)
    Stride,  ///< newest value + mean successive delta (ablation)
};

const char *estimatorName(Estimator e);

/**
 * All tunables of the approximator. Defaults reproduce the paper's
 * baseline configuration (Table II):
 *
 *   512-entry direct-mapped table, 4-bit signed confidence in [-8, 7],
 *   +/-10% relaxed confidence window (floating-point data only),
 *   XOR(PC, GHB) context hash, 0-entry GHB, AVERAGE over a 4-entry LHB,
 *   21 tag bits, value delay of 4 load instructions, approximation
 *   degree 0.
 */
struct ApproximatorConfig
{
    /** Number of approximator table entries. */
    u32 tableEntries = 512;

    /**
     * Ways per table set. The paper's table is direct-mapped (1);
     * higher associativity is an alternative to growing the table for
     * reducing the destructive aliasing of similar floating-point
     * contexts (section VI-A). Must divide tableEntries.
     */
    u32 tableAssoc = 1;

    /** Width of the signed saturating confidence counter in bits. */
    u32 confidenceBits = 4;

    /**
     * Relaxed confidence window as a fraction (0.10 = +/-10%).
     * 0 demands exact match (traditional value prediction);
     * +infinity never decrements confidence.
     */
    double confidenceWindow = 0.10;

    /**
     * Apply the confidence gate to integer data. The paper's baseline
     * does not employ confidence for integer data (section VI); the
     * Figure 6 sweep enables it for both types.
     */
    bool confidenceForInts = false;

    /**
     * Disable the confidence gate entirely (always approximate when
     * history exists). Used by the Figure 13 precision study, which
     * disables confidence "to omit its effect on coverage".
     */
    bool confidenceDisabled = false;

    /** Number of global history buffer entries hashed into the context. */
    u32 ghbEntries = 0;

    /** Number of local history buffer entries per table entry. */
    u32 lhbEntries = 4;

    /** Tag bits stored per entry to disambiguate contexts. */
    u32 tagBits = 21;

    /**
     * Value delay: number of approximable load instructions between an
     * approximation and the arrival of X_actual for training.
     */
    u32 valueDelay = 4;

    /**
     * Approximation degree: how many additional misses reuse a generated
     * value before the block is fetched for training (fetch:miss ratio of
     * 1:(degree+1)). Degree 0 fetches on every miss.
     */
    u32 approxDegree = 0;

    /** The computation function f over the LHB. */
    Estimator estimator = Estimator::Average;

    /**
     * Proportional confidence updates — the optimization the paper
     * defers to future work (section III-B): instead of a fixed -1, a
     * failed validation decrements confidence by 1 plus how many
     * window-widths the estimate was off (capped at 4). Only possible
     * because approximation error is a distance, not a binary
     * mispredict.
     */
    bool proportionalConfidence = false;

    /**
     * Low-order floating-point mantissa bits zeroed before hashing GHB
     * values (paper section VII-B); improves FP context locality.
     */
    u32 mantissaDropBits = 0;

    /** Infinite confidence window constant. */
    static constexpr double infiniteWindow =
        std::numeric_limits<double>::infinity();

    /** The paper's baseline configuration. */
    static ApproximatorConfig baseline() { return {}; }

    /** Approximate storage cost in bytes (paper section VII-A). */
    u64 storageBytes(u32 value_bytes = 8) const;
};

} // namespace lva

#endif // LVA_CORE_APPROXIMATOR_CONFIG_HH
