#include "core/approximator.hh"

#include <cmath>

#include "core/context_hash.hh"
#include "util/logging.hh"

namespace lva {

const char *
estimatorName(Estimator e)
{
    switch (e) {
      case Estimator::Average:
        return "AVERAGE";
      case Estimator::Last:
        return "LAST";
      case Estimator::Stride:
        return "STRIDE";
    }
    return "?";
}

u64
ApproximatorConfig::storageBytes(u32 value_bytes) const
{
    // Per entry: tag + confidence + degree counter + LHB values.
    const u64 tag_bits = tagBits;
    const u64 conf_bits = confidenceBits;
    const u64 degree_bits = 8;
    const u64 lhb_bits = u64(lhbEntries) * value_bytes * 8;
    const u64 entry_bits = tag_bits + conf_bits + degree_bits + lhb_bits;
    const u64 ghb_bits = u64(ghbEntries) * value_bytes * 8;
    return (u64(tableEntries) * entry_bits + ghb_bits + 7) / 8;
}

ApproximatorStats::ApproximatorStats(StatRegistry &reg,
                                     const std::string &prefix)
    : lookups(reg.counter(
          StatRegistry::joinPath(prefix, "lookups"),
          "misses presented to the approximator")),
      approximations(reg.counter(
          StatRegistry::joinPath(prefix, "approximations"),
          "misses answered with X_approx")),
      fetchesSkipped(reg.counter(
          StatRegistry::joinPath(prefix, "fetchesSkipped"),
          "block fetches cancelled by the degree counter")),
      trainings(reg.counter(
          StatRegistry::joinPath(prefix, "trainings"),
          "X_actual arrivals applied")),
      allocations(reg.counter(
          StatRegistry::joinPath(prefix, "allocations"),
          "table entries (re)allocated")),
      confRejects(reg.counter(
          StatRegistry::joinPath(prefix, "confRejects"),
          "misses rejected by the confidence gate")),
      coldRejects(reg.counter(
          StatRegistry::joinPath(prefix, "coldRejects"),
          "misses with no history yet")),
      staleDrops(reg.counter(
          StatRegistry::joinPath(prefix, "staleDrops"),
          "trainings dropped after re-allocation")),
      error(reg.histogram(
          StatRegistry::joinPath(prefix, "error"), 0.0, 1.0, 20,
          "relative error of validated estimates", "rel_error")),
      occupancy(reg.gauge(
          StatRegistry::joinPath(prefix, "occupancy"),
          "valid table entries at drain", "entries"))
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config)
    : LoadValueApproximator(config, nullptr, "lva")
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config, StatRegistry &reg,
    const std::string &prefix)
    : LoadValueApproximator(config, &reg, prefix)
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config, StatRegistry *reg,
    const std::string &prefix)
    : config_(config), ghb_(config.ghbEntries),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      traceApprox_(StatRegistry::joinPath(prefix, "approx")),
      traceTrain_(StatRegistry::joinPath(prefix, "train")),
      stats_(*reg_, prefix)
{
    lva_assert(config.tableEntries > 0, "table must have entries");
    lva_assert(config.lhbEntries > 0, "LHB must have entries");
    lva_assert(config.tableAssoc > 0 &&
               config.tableEntries % config.tableAssoc == 0,
               "associativity %u must divide %u entries",
               config.tableAssoc, config.tableEntries);
    table_.reserve(config.tableEntries);
    for (u32 i = 0; i < config.tableEntries; ++i)
        table_.emplace_back(config);
}

LoadValueApproximator::Entry &
LoadValueApproximator::lookup(u64 hash, u32 &slot, bool &tag_match,
                              u64 &tag_out)
{
    const u32 sets = config_.tableEntries / config_.tableAssoc;
    const HashSplit split = splitHash(hash, sets, config_.tagBits);
    tag_out = split.tag;
    const u32 base = split.index * config_.tableAssoc;

    Entry *victim = nullptr;
    u32 victim_slot = base;
    for (u32 w = 0; w < config_.tableAssoc; ++w) {
        Entry &entry = table_[base + w];
        if (entry.valid && entry.tag == split.tag) {
            entry.lastUse = ++useClock_;
            slot = base + w;
            tag_match = true;
            return entry;
        }
        if (!entry.valid) {
            if (victim == nullptr || victim->valid) {
                victim = &entry;
                victim_slot = base + w;
            }
        } else if (victim == nullptr ||
                   (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
            victim_slot = base + w;
        }
    }
    victim->lastUse = ++useClock_;
    slot = victim_slot;
    tag_match = false;
    return *victim;
}

Value
LoadValueApproximator::estimate(const Entry &entry) const
{
    const auto values = entry.lhb.snapshot();
    switch (config_.estimator) {
      case Estimator::Average:
        return averageOf(values);
      case Estimator::Last:
        return lastOf(values);
      case Estimator::Stride:
        return strideOf(values);
    }
    lva_panic("bad estimator %d", static_cast<int>(config_.estimator));
}

bool
LoadValueApproximator::gateApplies(ValueKind kind) const
{
    if (config_.confidenceDisabled)
        return false;
    if (kind == ValueKind::Int64)
        return config_.confidenceForInts;
    return true;
}

MissResponse
LoadValueApproximator::onMiss(LoadSiteId pc, const Value &precise)
{
    ++loadCount_;
    applyDueTrainings();
    stats_.lookups.inc();

    const u64 hash = contextHash(pc, ghb_, config_.mantissaDropBits);
    u32 slot = 0;
    bool tag_match = false;
    u64 tag = 0;
    Entry &entry = lookup(hash, slot, tag_match, tag);

    MissResponse resp;

    if (!tag_match) {
        // Context never seen (or aliased away): (re)allocate and train.
        stats_.allocations.inc();
        entry.valid = true;
        entry.tag = tag;
        entry.conf.reset(0);
        entry.degree.reset();
        entry.lhb.clear();
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, std::nullopt, precise);
        return resp;
    }

    if (entry.lhb.empty()) {
        // Matching context but no history yet (training in flight).
        stats_.coldRejects.inc();
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, std::nullopt, precise);
        return resp;
    }

    const Value xhat = estimate(entry);
    const bool confident =
        !gateApplies(precise.kind()) || entry.conf.value() >= 0;

    if (!confident) {
        // Fetch as a normal miss; the would-be estimate still trains
        // confidence so the entry can recover.
        stats_.confRejects.inc();
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, xhat, precise);
        return resp;
    }

    resp.approximated = true;
    resp.value = xhat;
    stats_.approximations.inc();
    reg_->trace(traceApprox_, xhat.toReal());

    if (entry.degree.atZero()) {
        // Degree exhausted: fetch the block to train, then rearm.
        resp.fetch = true;
        entry.degree.reset();
        enqueueTraining(slot, tag, xhat, precise);
    } else {
        // Reuse the approximation; the fetch is cancelled outright.
        entry.degree.consume();
        resp.fetch = false;
        stats_.fetchesSkipped.inc();
    }
    return resp;
}

void
LoadValueApproximator::onHit(LoadSiteId pc, const Value &precise)
{
    (void)pc;
    ++loadCount_;
    applyDueTrainings();
    // The precise value is available at L1-hit latency: it enters the
    // global history immediately, providing context for later misses.
    ghb_.push(precise);
}

void
LoadValueApproximator::enqueueTraining(u32 index, u64 tag,
                                       const std::optional<Value> &xhat,
                                       const Value &actual)
{
    PendingTrain train;
    train.dueAtLoad = loadCount_ + config_.valueDelay;
    train.index = index;
    train.tag = tag;
    train.xhat = xhat;
    train.actual = actual;
    pending_.push_back(train);
}

void
LoadValueApproximator::applyDueTrainings()
{
    while (!pending_.empty() && pending_.front().dueAtLoad <= loadCount_) {
        applyTraining(pending_.front());
        pending_.pop_front();
    }
}

void
LoadValueApproximator::applyTraining(const PendingTrain &train)
{
    stats_.trainings.inc();
    reg_->trace(traceTrain_, train.actual.toReal());

    // X_actual always enters the global history on arrival.
    ghb_.push(train.actual);

    Entry &entry = table_[train.index];
    if (!entry.valid || entry.tag != train.tag) {
        // Entry was re-allocated to another context while the block was
        // in flight; only the GHB benefits from this value.
        stats_.staleDrops.inc();
        return;
    }

    if (train.xhat.has_value()) {
        const double validated_rel = relativeError(
            train.xhat->toReal(), train.actual.toReal());
        stats_.error.sample(
            std::isnan(validated_rel) ? 1.0 : validated_rel);
        const bool close = std::isinf(config_.confidenceWindow)
                               ? true
                               : withinWindow(*train.xhat, train.actual,
                                              config_.confidenceWindow);
        if (close) {
            entry.conf.increment();
        } else if (config_.proportionalConfidence &&
                   config_.confidenceWindow > 0.0) {
            // Penalize in proportion to how far outside the window
            // the estimate landed (capped), so wildly wrong contexts
            // shut off faster while borderline ones keep probing.
            const double rel = relativeError(train.xhat->toReal(),
                                             train.actual.toReal());
            const double widths = rel / config_.confidenceWindow;
            i32 penalty = 1;
            if (std::isfinite(widths))
                penalty += static_cast<i32>(std::min(widths, 3.0));
            entry.conf.decrement(penalty);
        } else {
            entry.conf.decrement();
        }
    }

    entry.lhb.push(train.actual);
}

void
LoadValueApproximator::drainPending()
{
    while (!pending_.empty()) {
        applyTraining(pending_.front());
        pending_.pop_front();
    }
    stats_.occupancy.set(static_cast<double>(validEntries()));
}

u32
LoadValueApproximator::validEntries() const
{
    u32 count = 0;
    for (const auto &entry : table_)
        if (entry.valid)
            ++count;
    return count;
}

} // namespace lva
