#include "core/approximator.hh"

#include <cmath>

#include "core/context_hash.hh"
#include "util/logging.hh"

namespace lva {

const char *
estimatorName(Estimator e)
{
    switch (e) {
      case Estimator::Average:
        return "AVERAGE";
      case Estimator::Last:
        return "LAST";
      case Estimator::Stride:
        return "STRIDE";
    }
    return "?";
}

u64
ApproximatorConfig::storageBytes(u32 value_bytes) const
{
    // Per entry: tag + confidence + degree counter + LHB values.
    const u64 tag_bits = tagBits;
    const u64 conf_bits = confidenceBits;
    const u64 degree_bits = 8;
    const u64 lhb_bits = u64(lhbEntries) * value_bytes * 8;
    const u64 entry_bits = tag_bits + conf_bits + degree_bits + lhb_bits;
    const u64 ghb_bits = u64(ghbEntries) * value_bytes * 8;
    return (u64(tableEntries) * entry_bits + ghb_bits + 7) / 8;
}

ApproximatorStats::ApproximatorStats(StatRegistry &reg,
                                     const std::string &prefix)
    : lookups(reg.counter(
          StatRegistry::joinPath(prefix, "lookups"),
          "misses presented to the approximator")),
      approximations(reg.counter(
          StatRegistry::joinPath(prefix, "approximations"),
          "misses answered with X_approx")),
      fetchesSkipped(reg.counter(
          StatRegistry::joinPath(prefix, "fetchesSkipped"),
          "block fetches cancelled by the degree counter")),
      trainings(reg.counter(
          StatRegistry::joinPath(prefix, "trainings"),
          "X_actual arrivals applied")),
      allocations(reg.counter(
          StatRegistry::joinPath(prefix, "allocations"),
          "table entries (re)allocated")),
      confRejects(reg.counter(
          StatRegistry::joinPath(prefix, "confRejects"),
          "misses rejected by the confidence gate")),
      coldRejects(reg.counter(
          StatRegistry::joinPath(prefix, "coldRejects"),
          "misses with no history yet")),
      staleDrops(reg.counter(
          StatRegistry::joinPath(prefix, "staleDrops"),
          "trainings dropped after re-allocation")),
      error(reg.histogram(
          StatRegistry::joinPath(prefix, "error"), 0.0, 1.0, 20,
          "relative error of validated estimates", "rel_error")),
      occupancy(reg.gauge(
          StatRegistry::joinPath(prefix, "occupancy"),
          "valid table entries at drain", "entries"))
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config)
    : LoadValueApproximator(config, nullptr, "lva")
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config, StatRegistry &reg,
    const std::string &prefix)
    : LoadValueApproximator(config, &reg, prefix)
{
}

LoadValueApproximator::LoadValueApproximator(
    const ApproximatorConfig &config, StatRegistry *reg,
    const std::string &prefix)
    : config_(config), ghb_(config.ghbEntries),
      ownedReg_(reg == nullptr ? std::make_unique<StatRegistry>()
                               : nullptr),
      reg_(reg != nullptr ? reg : ownedReg_.get()),
      traceApprox_(StatRegistry::joinPath(prefix, "approx")),
      traceTrain_(StatRegistry::joinPath(prefix, "train")),
      stats_(*reg_, prefix)
{
    lva_assert(config.tableEntries > 0, "table must have entries");
    lva_assert(config.lhbEntries > 0, "LHB must have entries");
    lva_assert(config.tableAssoc > 0 &&
               config.tableEntries % config.tableAssoc == 0,
               "associativity %u must divide %u entries",
               config.tableAssoc, config.tableEntries);
    const u32 entries = config.tableEntries;
    valid_.assign(entries, 0);
    tags_.assign(entries, 0);
    lastUse_.assign(entries, 0);
    conf_.assign(entries,
                 SignedSatCounter::fromBits(config.confidenceBits));
    degree_.assign(entries, DegreeCounter(config.approxDegree));
    lhbValues_.assign(u64(entries) * config.lhbEntries, Value{});
    lhbHead_.assign(entries, 0);
    lhbSize_.assign(entries, 0);
    estCache_.assign(entries, Value{});
    estValid_.assign(entries, 0);
    pending_.resize(config.valueDelay + 2);
}

// lva-hot-path: begin (per-miss estimate/train path; see
// docs/performance.md — no allocation, no per-miss copies)

u32
LoadValueApproximator::lookup(u64 hash, bool &tag_match, u64 &tag_out)
{
    const u32 sets = config_.tableEntries / config_.tableAssoc;
    const HashSplit split = splitHash(hash, sets, config_.tagBits);
    tag_out = split.tag;
    const u32 base = split.index * config_.tableAssoc;

    bool have_victim = false;
    u32 victim_slot = base;
    for (u32 w = 0; w < config_.tableAssoc; ++w) {
        const u32 s = base + w;
        if (valid_[s] && tags_[s] == split.tag) {
            lastUse_[s] = ++useClock_;
            tag_match = true;
            return s;
        }
        if (!valid_[s]) {
            if (!have_victim || valid_[victim_slot]) {
                have_victim = true;
                victim_slot = s;
            }
        } else if (!have_victim ||
                   (valid_[victim_slot] &&
                    lastUse_[s] < lastUse_[victim_slot])) {
            have_victim = true;
            victim_slot = s;
        }
    }
    lastUse_[victim_slot] = ++useClock_;
    tag_match = false;
    return victim_slot;
}

Value
LoadValueApproximator::estimate(u32 slot)
{
    if (estValid_[slot])
        return estCache_[slot];
    // In-place ring iteration, oldest-first — the same kernels (and
    // so the same floating-point summation order) as the historical
    // snapshot()+span path, without the per-miss vector.
    const u32 n = lhbSize_[slot];
    const u32 cap = config_.lhbEntries;
    const Value *vals = &lhbValues_[u64(slot) * cap];
    u32 start = lhbHead_[slot] + cap - n;
    if (start >= cap)
        start -= cap;
    const auto at = [vals, cap, start](u32 i) -> const Value & {
        u32 idx = start + i;
        if (idx >= cap)
            idx -= cap;
        return vals[idx];
    };
    Value v;
    switch (config_.estimator) {
      case Estimator::Average:
        v = averageAt(n, at);
        break;
      case Estimator::Last:
        v = lastAt(n, at);
        break;
      case Estimator::Stride:
        v = strideAt(n, at);
        break;
      default:
        lva_panic("bad estimator %d",
                  static_cast<int>(config_.estimator));
    }
    estCache_[slot] = v;
    estValid_[slot] = 1;
    return v;
}

bool
LoadValueApproximator::gateApplies(ValueKind kind) const
{
    if (config_.confidenceDisabled)
        return false;
    if (kind == ValueKind::Int64)
        return config_.confidenceForInts;
    return true;
}

MissResponse
LoadValueApproximator::onMiss(LoadSiteId pc, const Value &precise)
{
    ++loadCount_;
    applyDueTrainings();
    stats_.lookups.inc();

    const u64 hash = contextHash(pc, ghb_, config_.mantissaDropBits);
    bool tag_match = false;
    u64 tag = 0;
    const u32 slot = lookup(hash, tag_match, tag);

    MissResponse resp;

    if (!tag_match) {
        // Context never seen (or aliased away): (re)allocate and train.
        stats_.allocations.inc();
        valid_[slot] = 1;
        tags_[slot] = tag;
        conf_[slot].reset(0);
        degree_[slot].reset();
        lhbClear(slot);
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, std::nullopt, precise);
        return resp;
    }

    if (lhbSize_[slot] == 0) {
        // Matching context but no history yet (training in flight).
        stats_.coldRejects.inc();
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, std::nullopt, precise);
        return resp;
    }

    const Value xhat = estimate(slot);
    const bool confident =
        !gateApplies(precise.kind()) || conf_[slot].value() >= 0;

    if (!confident) {
        // Fetch as a normal miss; the would-be estimate still trains
        // confidence so the entry can recover.
        stats_.confRejects.inc();
        resp.approximated = false;
        resp.fetch = true;
        enqueueTraining(slot, tag, xhat, precise);
        return resp;
    }

    resp.approximated = true;
    resp.value = xhat;
    stats_.approximations.inc();
    if (reg_->tracingEnabled())
        reg_->trace(traceApprox_, xhat.toReal());

    if (degree_[slot].atZero()) {
        // Degree exhausted: fetch the block to train, then rearm.
        resp.fetch = true;
        degree_[slot].reset();
        enqueueTraining(slot, tag, xhat, precise);
    } else {
        // Reuse the approximation; the fetch is cancelled outright.
        degree_[slot].consume();
        resp.fetch = false;
        stats_.fetchesSkipped.inc();
    }
    return resp;
}

void
LoadValueApproximator::onHit(LoadSiteId pc, const Value &precise)
{
    (void)pc;
    ++loadCount_;
    applyDueTrainings();
    // The precise value is available at L1-hit latency: it enters the
    // global history immediately, providing context for later misses.
    ghb_.push(precise);
}

void
LoadValueApproximator::enqueueTraining(u32 index, u64 tag,
                                       const std::optional<Value> &xhat,
                                       const Value &actual)
{
    const u32 cap = static_cast<u32>(pending_.size());
    lva_assert(pendingCount_ < cap,
               "pending ring overflow (%u of %u)", pendingCount_, cap);
    u32 tail = pendingHead_ + pendingCount_;
    if (tail >= cap)
        tail -= cap;
    PendingTrain &train = pending_[tail];
    train.dueAtLoad = loadCount_ + config_.valueDelay;
    train.index = index;
    train.tag = tag;
    train.hasXhat = xhat.has_value();
    train.xhat = xhat.has_value() ? *xhat : Value{};
    train.actual = actual;
    ++pendingCount_;
}

void
LoadValueApproximator::popPendingFront()
{
    if (++pendingHead_ == static_cast<u32>(pending_.size()))
        pendingHead_ = 0;
    --pendingCount_;
}

void
LoadValueApproximator::applyDueTrainings()
{
    while (pendingCount_ > 0 &&
           pending_[pendingHead_].dueAtLoad <= loadCount_) {
        applyTraining(pending_[pendingHead_]);
        popPendingFront();
    }
}

void
LoadValueApproximator::applyTraining(const PendingTrain &train)
{
    stats_.trainings.inc();
    if (reg_->tracingEnabled())
        reg_->trace(traceTrain_, train.actual.toReal());

    // X_actual always enters the global history on arrival.
    ghb_.push(train.actual);

    const u32 slot = train.index;
    if (!valid_[slot] || tags_[slot] != train.tag) {
        // Entry was re-allocated to another context while the block was
        // in flight; only the GHB benefits from this value.
        stats_.staleDrops.inc();
        return;
    }

    if (train.hasXhat) {
        const double validated_rel = relativeError(
            train.xhat.toReal(), train.actual.toReal());
        stats_.error.sample(
            std::isnan(validated_rel) ? 1.0 : validated_rel);
        // Same condition withinWindow() would evaluate, reusing the
        // relative error already computed for the histogram (the
        // window <= 0 case degenerates to exact equality, as there).
        const double window = config_.confidenceWindow;
        const bool close =
            std::isinf(window)
                ? true
                : (window <= 0.0
                       ? train.xhat.exactlyEquals(train.actual)
                       : validated_rel <= window);
        if (close) {
            conf_[slot].increment();
        } else if (config_.proportionalConfidence &&
                   config_.confidenceWindow > 0.0) {
            // Penalize in proportion to how far outside the window
            // the estimate landed (capped), so wildly wrong contexts
            // shut off faster while borderline ones keep probing.
            const double widths = validated_rel / config_.confidenceWindow;
            i32 penalty = 1;
            if (std::isfinite(widths))
                penalty += static_cast<i32>(std::min(widths, 3.0));
            conf_[slot].decrement(penalty);
        } else {
            conf_[slot].decrement();
        }
    }

    lhbPush(slot, train.actual);
}

// lva-hot-path: end

void
LoadValueApproximator::drainPending()
{
    while (pendingCount_ > 0) {
        applyTraining(pending_[pendingHead_]);
        popPendingFront();
    }
    stats_.occupancy.set(static_cast<double>(validEntries()));
}

u32
LoadValueApproximator::validEntries() const
{
    u32 count = 0;
    for (const u8 v : valid_)
        count += v;
    return count;
}

} // namespace lva
