/**
 * @file
 * The load value approximator — the paper's primary contribution.
 *
 * Structure (paper Figure 3): a global history buffer of recent precise
 * load values is hashed with the load PC to index a direct-mapped table;
 * each entry holds a tag, a signed saturating confidence counter, a
 * degree counter and a local history buffer. On an L1 miss the entry's
 * LHB is reduced by a computation function f (AVERAGE by default) to
 * produce X_approx, which the core consumes without speculation; the
 * block is fetched only when the entry's degree counter is exhausted, and
 * the fetched X_actual trains the entry after the configured value delay.
 */

#ifndef LVA_CORE_APPROXIMATOR_HH
#define LVA_CORE_APPROXIMATOR_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/approximator_config.hh"
#include "core/history_buffer.hh"
#include "util/sat_counter.hh"
#include "util/stat_registry.hh"
#include "util/stats.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/** What the approximator decided about one L1 load miss. */
struct MissResponse
{
    /** True if X_approx was generated and consumed by the core. */
    bool approximated = false;

    /** True if the block is fetched from the next level (training). */
    bool fetch = true;

    /** The generated value; meaningful only when approximated. */
    Value value{};
};

/**
 * Event counts for the approximator, registry-backed under
 * "<prefix>.lookups" etc.; the error histogram buckets the relative
 * error of every validated estimate (X_hat vs X_actual) and the
 * occupancy gauge tracks valid table entries at drain time.
 */
struct ApproximatorStats
{
    ApproximatorStats(StatRegistry &reg, const std::string &prefix);

    Counter &lookups;        ///< misses presented to the approximator
    Counter &approximations; ///< misses answered with X_approx
    Counter &fetchesSkipped; ///< misses whose block fetch was cancelled
    Counter &trainings;      ///< X_actual arrivals applied to the table
    Counter &allocations;    ///< table entries (re)allocated on tag miss
    Counter &confRejects;    ///< misses rejected by the confidence gate
    Counter &coldRejects;    ///< misses with a matching tag but empty LHB
    Counter &staleDrops;     ///< trainings dropped: entry re-allocated
    Histogram &error;        ///< relative error of validated estimates
    Gauge &occupancy;        ///< valid table entries (set at drain)

    void
    reset()
    {
        lookups.reset();
        approximations.reset();
        fetchesSkipped.reset();
        trainings.reset();
        allocations.reset();
        confRejects.reset();
        coldRejects.reset();
        staleDrops.reset();
        error.reset();
        occupancy.reset();
    }
};

/**
 * Load value approximator with relaxed confidence estimation,
 * approximation degree and value-delayed training.
 *
 * The approximator is oblivious to addresses: it operates on the
 * (PC, value-history) context stream, exactly as the hardware in the
 * paper. The caller (ApproxMemory) owns the cache and supplies precise
 * values so that deferred training can be simulated.
 */
class LoadValueApproximator
{
  public:
    /** Standalone approximator with a private registry ("lva.*"). */
    explicit LoadValueApproximator(const ApproximatorConfig &config);

    /** Approximator whose stats register in @p reg under @p prefix. */
    LoadValueApproximator(const ApproximatorConfig &config,
                          StatRegistry &reg, const std::string &prefix);

    const ApproximatorConfig &config() const { return config_; }

    /**
     * Handle an L1 load miss to approximable data.
     *
     * @param pc     static load site (instruction address)
     * @param precise the actual memory value; used ONLY to model the
     *               deferred training of the table (the generation path
     *               never inspects it)
     * @return what the core and the memory system should do
     */
    MissResponse onMiss(LoadSiteId pc, const Value &precise);

    /**
     * Handle an L1 load hit to approximable data: the precise value is
     * available immediately and enters the global history.
     */
    void onHit(LoadSiteId pc, const Value &precise);

    /**
     * Flush all pending (value-delayed) trainings, as at the end of a
     * region of interest.
     */
    void drainPending();

    const ApproximatorStats &stats() const { return stats_; }

    /** Coverage: fraction of presented misses that were approximated. */
    double
    coverage() const
    {
        return stats_.lookups.value() == 0
                   ? 0.0
                   : static_cast<double>(stats_.approximations.value()) /
                         static_cast<double>(stats_.lookups.value());
    }

    /** Number of table entries currently holding a valid tag (tests). */
    u32 validEntries() const;

  private:
    /**
     * Locate (or allocate-victimize) the slot for a context hash in
     * its (possibly multi-way) set.
     *
     * @param[out] tag_match true if the slot already held this tag
     * @param[out] tag_out   the tag derived from the hash
     * @return flat table index of the chosen slot
     */
    u32 lookup(u64 hash, bool &tag_match, u64 &tag_out);

    /** An X_actual in flight from the next memory level. */
    struct PendingTrain
    {
        u64 dueAtLoad;   ///< loadCount_ when the block arrives
        u32 index;       ///< table entry being trained
        u64 tag;         ///< tag at issue time
        bool hasXhat;    ///< true when xhat holds an estimate
        Value xhat;      ///< estimate to validate (when hasXhat)
        Value actual;    ///< X_actual from memory
    };

    /** The computation function f over slot @p slot's LHB ring. */
    /**
     * Memoized per slot: the estimate is a pure function of the
     * slot's LHB contents, so the cached Value is reused bit-exactly
     * until lhbPush()/lhbClear() touches the slot (frequent under
     * approximation degrees > 1, where fetch-skipped misses re-read
     * an unchanged history).
     */
    Value estimate(u32 slot);

    /** Does the confidence gate apply to values of this kind? */
    bool gateApplies(ValueKind kind) const;

    /** Apply all trainings whose data has arrived. */
    void applyDueTrainings();

    void applyTraining(const PendingTrain &train);

    void enqueueTraining(u32 index, u64 tag,
                         const std::optional<Value> &xhat,
                         const Value &actual);

    // --- LHB ring helpers over the contiguous SoA storage. Slot s's
    // values occupy lhbValues_[s*lhbCap .. s*lhbCap+lhbCap); ring
    // state (next-write head, fill) lives in lhbHead_/lhbSize_[s].

    void
    lhbClear(u32 slot)
    {
        lhbHead_[slot] = 0;
        lhbSize_[slot] = 0;
        estValid_[slot] = 0;
    }

    void
    lhbPush(u32 slot, const Value &v)
    {
        const u32 cap = config_.lhbEntries;
        const u32 head = lhbHead_[slot];
        lhbValues_[slot * cap + head] = v;
        // Conditional wrap instead of %: no integer divide per train.
        lhbHead_[slot] = (head + 1 == cap) ? 0 : head + 1;
        if (lhbSize_[slot] < cap)
            ++lhbSize_[slot];
        estValid_[slot] = 0;
    }

    /** i-th oldest LHB value of @p slot (0 = oldest), in place. */
    const Value &
    lhbOldest(u32 slot, u32 i) const
    {
        const u32 cap = config_.lhbEntries;
        // head + cap - size + i < 2*cap, so one conditional wrap
        // replaces the divide.
        u32 idx = lhbHead_[slot] + cap - lhbSize_[slot] + i;
        if (idx >= cap)
            idx -= cap;
        return lhbValues_[slot * cap + idx];
    }

    // --- Pending-train fixed ring. At most one enqueue per load and
    // every entry due within valueDelay loads of its enqueue, so
    // occupancy never exceeds valueDelay + 1 (enforced by lva_assert
    // in enqueueTraining); the ring is sized valueDelay + 2 once at
    // construction and the steady state never allocates.

    void popPendingFront();

    LoadValueApproximator(const ApproximatorConfig &config,
                          StatRegistry *reg, const std::string &prefix);

    ApproximatorConfig config_;

    /**
     * The table in structure-of-arrays layout — the columns of the
     * paper's Figure 3 as separate contiguous arrays, indexed by flat
     * slot. A lookup touches only the columns it needs (tags_ and
     * lastUse_ for the set scan), instead of striding across
     * full AoS entries; LHB values for all slots share one
     * contiguous allocation.
     */
    std::vector<u8> valid_;
    std::vector<u64> tags_;
    std::vector<u64> lastUse_; ///< LRU within a set (associative)
    std::vector<SignedSatCounter> conf_;
    std::vector<DegreeCounter> degree_;
    std::vector<Value> lhbValues_; ///< tableEntries x lhbEntries
    std::vector<u32> lhbHead_;     ///< per-slot ring next-write index
    std::vector<u32> lhbSize_;     ///< per-slot ring fill
    std::vector<Value> estCache_;  ///< memoized estimate per slot
    std::vector<u8> estValid_;     ///< estCache_ entry is current

    HistoryBuffer ghb_;

    std::vector<PendingTrain> pending_; ///< fixed ring, never resized
    u32 pendingHead_ = 0;  ///< index of the oldest pending training
    u32 pendingCount_ = 0; ///< live entries in the ring

    u64 loadCount_ = 0;
    u64 useClock_ = 0;
    std::unique_ptr<StatRegistry> ownedReg_; ///< standalone ctor only
    StatRegistry *reg_;
    std::string traceApprox_; ///< precomputed tracer paths
    std::string traceTrain_;
    ApproximatorStats stats_;
};

} // namespace lva

#endif // LVA_CORE_APPROXIMATOR_HH
