/**
 * @file
 * Dynamic-energy model of the memory hierarchy (the CACTI substitute).
 *
 * Per-access energies are representative 32 nm values in nanojoules,
 * in CACTI 5.1's range for the Table II geometries. The paper's energy
 * results are relative (savings versus precise execution), which
 * depend on the event-count ratios rather than the absolute constants;
 * any self-consistent constant set reproduces them. Approximator table
 * lookups and trainings are charged, so the overhead of LVA itself is
 * factored in (paper section V-B).
 */

#ifndef LVA_ENERGY_ENERGY_MODEL_HH
#define LVA_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "util/stat_registry.hh"
#include "util/types.hh"

namespace lva {

/** Per-event dynamic energies in nanojoules (32 nm). */
struct EnergyParams
{
    double l1Access = 0.020;     ///< 16 KB 8-way read/write
    double l2Access = 0.095;     ///< 128 KB bank access
    double dramAccess = 3.5;     ///< 64 B DRAM transfer
    double nocFlitHop = 0.012;   ///< one flit across one link+router
    /** Flit-hop on the slow, low-voltage NoC plane that carries
     *  deprioritized training fetches (paper section VI-C). */
    double nocFlitHopSlow = 0.005;
    double approxLookup = 0.006; ///< approximator table read
    double approxTrain = 0.007;  ///< approximator table update
};

/** Event counts accumulated during a timing replay. */
struct EnergyEvents
{
    u64 l1Accesses = 0;
    u64 l2Accesses = 0;
    u64 dramAccesses = 0;
    u64 nocFlitHops = 0;
    u64 nocFlitHopsSlow = 0; ///< on the heterogeneous (slow) plane
    u64 approxLookups = 0;
    u64 approxTrains = 0;
};

/**
 * Live energy-event counters, registry-backed under
 * "<prefix>.l1Accesses" etc.; value() copies them out into the plain
 * EnergyEvents aggregate consumed by computeEnergy().
 */
struct EnergyEventCounters
{
    EnergyEventCounters(StatRegistry &reg, const std::string &prefix);

    Counter &l1Accesses;
    Counter &l2Accesses;
    Counter &dramAccesses;
    Counter &nocFlitHops;
    Counter &nocFlitHopsSlow;
    Counter &approxLookups;
    Counter &approxTrains;

    EnergyEvents value() const;
};

/** Energy breakdown in nanojoules. */
struct EnergyBreakdown
{
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double noc = 0.0;
    double approximator = 0.0;

    double
    total() const
    {
        return l1 + l2 + dram + noc + approximator;
    }

    /** Energy beyond the L1 — the cost of servicing L1 misses. */
    double
    missServicing() const
    {
        return l2 + dram + noc;
    }
};

/** Fold event counts into a breakdown. */
EnergyBreakdown computeEnergy(const EnergyEvents &events,
                              const EnergyParams &params = {});

} // namespace lva

#endif // LVA_ENERGY_ENERGY_MODEL_HH
