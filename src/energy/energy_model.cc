#include "energy/energy_model.hh"

namespace lva {

EnergyEventCounters::EnergyEventCounters(StatRegistry &reg,
                                         const std::string &prefix)
    : l1Accesses(reg.counter(
          StatRegistry::joinPath(prefix, "l1Accesses"),
          "L1 reads and writes")),
      l2Accesses(reg.counter(
          StatRegistry::joinPath(prefix, "l2Accesses"),
          "L2 bank accesses")),
      dramAccesses(reg.counter(
          StatRegistry::joinPath(prefix, "dramAccesses"),
          "64 B DRAM transfers")),
      nocFlitHops(reg.counter(
          StatRegistry::joinPath(prefix, "nocFlitHops"),
          "flit-hops on the fast NoC plane")),
      nocFlitHopsSlow(reg.counter(
          StatRegistry::joinPath(prefix, "nocFlitHopsSlow"),
          "flit-hops on the slow (training) NoC plane")),
      approxLookups(reg.counter(
          StatRegistry::joinPath(prefix, "approxLookups"),
          "approximator table reads")),
      approxTrains(reg.counter(
          StatRegistry::joinPath(prefix, "approxTrains"),
          "approximator table updates"))
{
}

EnergyEvents
EnergyEventCounters::value() const
{
    EnergyEvents e;
    e.l1Accesses = l1Accesses.value();
    e.l2Accesses = l2Accesses.value();
    e.dramAccesses = dramAccesses.value();
    e.nocFlitHops = nocFlitHops.value();
    e.nocFlitHopsSlow = nocFlitHopsSlow.value();
    e.approxLookups = approxLookups.value();
    e.approxTrains = approxTrains.value();
    return e;
}

EnergyBreakdown
computeEnergy(const EnergyEvents &events, const EnergyParams &params)
{
    EnergyBreakdown out;
    out.l1 = params.l1Access * static_cast<double>(events.l1Accesses);
    out.l2 = params.l2Access * static_cast<double>(events.l2Accesses);
    out.dram =
        params.dramAccess * static_cast<double>(events.dramAccesses);
    out.noc =
        params.nocFlitHop * static_cast<double>(events.nocFlitHops) +
        params.nocFlitHopSlow *
            static_cast<double>(events.nocFlitHopsSlow);
    out.approximator =
        params.approxLookup * static_cast<double>(events.approxLookups) +
        params.approxTrain * static_cast<double>(events.approxTrains);
    return out;
}

} // namespace lva
