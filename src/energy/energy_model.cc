#include "energy/energy_model.hh"

namespace lva {

EnergyBreakdown
computeEnergy(const EnergyEvents &events, const EnergyParams &params)
{
    EnergyBreakdown out;
    out.l1 = params.l1Access * static_cast<double>(events.l1Accesses);
    out.l2 = params.l2Access * static_cast<double>(events.l2Accesses);
    out.dram =
        params.dramAccess * static_cast<double>(events.dramAccesses);
    out.noc =
        params.nocFlitHop * static_cast<double>(events.nocFlitHops) +
        params.nocFlitHopSlow *
            static_cast<double>(events.nocFlitHopsSlow);
    out.approximator =
        params.approxLookup * static_cast<double>(events.approxLookups) +
        params.approxTrain * static_cast<double>(events.approxTrains);
    return out;
}

} // namespace lva
